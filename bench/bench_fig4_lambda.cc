// Reproduces Fig. 4: effect of the loss balancer lambda on RCKT-DKT and
// RCKT-AKT for ASSIST09 and ASSIST12. lambda sweeps
// {0, 0.01, 0.05, 0.1, 0.2, 0.3}; the paper's shape is an inverted U with
// the peak in [0.01, 0.1].
#include <vector>

#include "bench/bench_common.h"

namespace kt {
namespace bench {
namespace {

constexpr float kLambdas[] = {0.0f, 0.01f, 0.05f, 0.1f, 0.2f, 0.3f};
// Smoke mode sweeps ASSIST09 only (the full paper pair in KT_BENCH_FULL=1).
const std::vector<std::string> kDatasets() {
  if (FullMode()) return {"assist09", "assist12"};
  return {"assist09"};
}
constexpr rckt::EncoderKind kEncoders[] = {rckt::EncoderKind::kDKT,
                                           rckt::EncoderKind::kAKT};

void Run() {
  PrintHeader("Fig. 4: loss balancer lambda sweep",
              "paper: AUC/ACC peak for lambda in [0.01, 0.1] on both "
              "ASSIST datasets and both encoders (inverted-U shape)");

  const BenchScale scale = GetScale();
  for (const std::string& dataset_name : kDatasets()) {
    const char* dataset = dataset_name.c_str();
    data::Dataset windows = MakeWindows(dataset);
    for (rckt::EncoderKind encoder : kEncoders) {
      const std::string name =
          std::string("RCKT-") + rckt::EncoderKindName(encoder);
      TablePrinter table({"lambda", "AUC", "ACC"});
      for (float lambda : kLambdas) {
        rckt::RcktFactory factory =
            [&](const data::Dataset& train) -> std::unique_ptr<rckt::RCKT> {
          rckt::RcktConfig config =
              BenchRcktConfig(dataset, encoder, /*seed=*/91);
          config.lambda = lambda;
          // lambda == 0 means no joint training at all.
          config.joint_training = lambda > 0.0f;
          return std::make_unique<rckt::RCKT>(train.num_questions,
                                              train.num_concepts, config);
        };
        // One fold per lambda point (the sweep is about the curve shape).
        const auto cv = rckt::RunRcktCrossValidation(
            windows, 2, factory, RcktBenchOptions(5),
            /*seed=*/11, ValidationFraction(),
            /*folds_to_run=*/FullMode() ? 2 : 1);
        table.AddRow({StrPrintf("%.2f", static_cast<double>(lambda)),
                      Fmt4(cv.auc_mean), Fmt4(cv.acc_mean)});
        std::fprintf(stderr, "[fig4] %s %s lambda=%.2f auc %.4f\n", dataset,
                     name.c_str(), static_cast<double>(lambda), cv.auc_mean);
      }
      std::printf("\n%s on %s:\n", name.c_str(), dataset);
      table.Print(std::cout);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run();
  return 0;
}
