// Continual-learning overhead bench (DESIGN.md §16): measures the three
// costs the streaming trainer adds to a serving deployment —
//
//   * ingest: Record() + DrainNow() throughput for committed update events
//     (the per-event tax on the serve update path),
//   * mini-epoch: wall-clock of RunMiniEpoch over a populated reservoir +
//     tail, including the holdout promotion gate (the recurring background
//     cost),
//   * swap pause: ShardSet::SwapWeights latency under concurrent predict
//     traffic (the quiesce barrier every promotion pays).
//
// Traffic is the drift scenario (data/scenarios.h) — the workload the
// continual loop exists for. Results merge into BENCH_serve_scenarios.json
// as a "continual" section (override the path with --out=<path>); the rest
// of the file is left untouched, so run bench_serve_scenarios first for a
// full refresh.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "continual/trainer.h"
#include "data/scenarios.h"
#include "nn/serialize.h"
#include "serve/shard.h"

namespace kt {
namespace bench {
namespace {

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

serve::ServeRequest PredictRequest(const std::string& student,
                                   int64_t question) {
  serve::ServeRequest r;
  r.op = serve::Op::kPredict;
  r.student = student;
  r.question = question;
  r.has_concepts = true;
  r.concepts = {question % 4};
  return r;
}

struct ContinualMetrics {
  int64_t events = 0;
  double ingest_elapsed_s = 0.0;
  double ingest_events_per_sec = 0.0;
  int64_t reservoir_size = 0;
  int64_t reservoir_capacity = 0;
  int64_t mini_epochs = 0;
  int64_t promotions = 0;
  double mini_epoch_p50_ms = 0.0;
  double mini_epoch_p99_ms = 0.0;
  double mini_epoch_mean_ms = 0.0;
  int64_t swaps = 0;
  double swap_p50_us = 0.0;
  double swap_p99_us = 0.0;
  double swap_mean_us = 0.0;
};

std::string MetricsJson(const ContinualMetrics& m) {
  std::ostringstream out;
  out << "{\"threads\":" << GetNumThreads() << ",\"events\":" << m.events
      << ",\"ingest_elapsed_s\":" << m.ingest_elapsed_s
      << ",\"ingest_events_per_sec\":" << m.ingest_events_per_sec
      << ",\"reservoir_size\":" << m.reservoir_size
      << ",\"reservoir_capacity\":" << m.reservoir_capacity
      << ",\"mini_epochs\":" << m.mini_epochs
      << ",\"promotions\":" << m.promotions
      << ",\"mini_epoch_p50_ms\":" << m.mini_epoch_p50_ms
      << ",\"mini_epoch_p99_ms\":" << m.mini_epoch_p99_ms
      << ",\"mini_epoch_mean_ms\":" << m.mini_epoch_mean_ms
      << ",\"swaps\":" << m.swaps << ",\"swap_p50_us\":" << m.swap_p50_us
      << ",\"swap_p99_us\":" << m.swap_p99_us
      << ",\"swap_mean_us\":" << m.swap_mean_us << "}";
  return out.str();
}

// Splices `section` in as the (single, last) "continual" key of the JSON
// object at `path`, replacing an existing section from a prior run. Creates
// a minimal document when the file is missing so the bench can run alone.
bool MergeIntoScenarioJson(const std::string& path,
                           const std::string& section) {
  std::string text;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
  }
  if (text.find('{') == std::string::npos) {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"continual\": " << section << "\n}\n";
    return static_cast<bool>(out);
  }
  const size_t existing = text.find("\n  \"continual\":");
  if (existing != std::string::npos) {
    const size_t comma = text.rfind(',', existing);
    if (comma == std::string::npos) return false;
    text.erase(comma);
  } else {
    const size_t brace = text.rfind('}');
    if (brace == std::string::npos) return false;
    text.erase(brace);
  }
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == ' ' || text.back() == '\t')) {
    text.pop_back();
  }
  text += ",\n  \"continual\": " + section + "\n}\n";
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

void Run(const std::string& out_path) {
  PrintHeader("Continual trainer: ingest, mini-epoch, swap pause",
              "expectation: ingest far above serve throughput (the update "
              "tap is not the bottleneck); swap pause bounded by one "
              "in-flight batch per shard");

  // Drift traffic: the mid-stream concept shift the continual loop exists
  // to absorb. Smoke keeps the stream small enough for seconds-long runs.
  const double traffic_scale = FullMode() ? 0.5 : 0.1;
  const data::SimulatorConfig config = data::DriftScenario(traffic_scale);
  const data::StudentSimulator simulator(config);
  const data::Dataset ds = simulator.Generate();

  rckt::RCKT serving(ds.num_questions, ds.num_concepts,
                     BenchRcktConfig("assist09", rckt::EncoderKind::kDKT, 7));

  ContinualMetrics metrics;

  continual::TrainerOptions options;
  options.reservoir_capacity = FullMode() ? 1024 : 256;
  options.tail_capacity = FullMode() ? 256 : 64;
  options.window = 16;
  options.min_history = 4;
  options.shards = 4;
  options.lr = 1e-4f;
  continual::ContinualTrainer trainer(serving, options);
  metrics.reservoir_capacity = options.reservoir_capacity;

  // --- ingest: every drift interaction as a committed update event ---
  {
    const auto start = std::chrono::steady_clock::now();
    for (const data::ResponseSequence& seq : ds.sequences) {
      const std::string student = "drift-s" + std::to_string(seq.student);
      const int shard = static_cast<int>(serve::ShardSet::ShardFor(
          student, static_cast<uint32_t>(options.shards)));
      for (size_t i = 0; i < seq.interactions.size(); ++i) {
        const data::Interaction& it = seq.interactions[i];
        serve::UpdateEvent event;
        event.student = student;
        event.index = static_cast<int64_t>(i);
        event.question = it.question;
        event.response = it.response;
        event.concepts = &it.concepts;
        trainer.Record(shard, event);
        ++metrics.events;
      }
    }
    trainer.DrainNow();
    metrics.ingest_elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    metrics.ingest_events_per_sec =
        metrics.ingest_elapsed_s > 0.0
            ? static_cast<double>(metrics.events) / metrics.ingest_elapsed_s
            : 0.0;
  }

  // --- mini-epoch: train + gate over the populated replay set ---
  {
    const int64_t epochs = FullMode() ? 12 : 6;
    std::vector<double> epoch_ms;
    epoch_ms.reserve(static_cast<size_t>(epochs));
    for (int64_t e = 0; e < epochs; ++e) {
      const auto t0 = std::chrono::steady_clock::now();
      KT_CHECK(trainer.RunMiniEpoch()) << "empty replay set";
      epoch_ms.push_back(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
    }
    const continual::ContinualTrainer::Stats stats = trainer.GetStats();
    metrics.reservoir_size = stats.reservoir_size;
    metrics.mini_epochs = stats.mini_epochs;
    metrics.promotions = stats.promotions;
    metrics.mini_epoch_p50_ms = Percentile(epoch_ms, 0.50);
    metrics.mini_epoch_p99_ms = Percentile(epoch_ms, 0.99);
    metrics.mini_epoch_mean_ms = Mean(epoch_ms);
  }

  // --- swap pause: SwapWeights under live predict traffic ---
  {
    rckt::RcktConfig other_config =
        BenchRcktConfig("assist09", rckt::EncoderKind::kDKT, 99);
    rckt::RCKT model_a(ds.num_questions, ds.num_concepts,
                       BenchRcktConfig("assist09", rckt::EncoderKind::kDKT, 7));
    rckt::RCKT model_b(ds.num_questions, ds.num_concepts, other_config);
    const std::vector<Tensor> state_a = model_a.StateClone();
    const std::vector<Tensor> state_b = model_b.StateClone();
    const uint64_t fp_a = nn::FingerprintModule(model_a);
    const uint64_t fp_b = nn::FingerprintModule(model_b);

    serve::ShardSetOptions shard_options;
    shard_options.shards = 2;
    shard_options.engine.num_questions = ds.num_questions;
    shard_options.engine.num_concepts = ds.num_concepts;
    serve::ShardSet shards(model_a, shard_options, nullptr);

    // Warm a few sessions so the swap has streams to drop and rebuild.
    for (int student = 0; student < 16; ++student) {
      const std::string name = "swap-s" + std::to_string(student);
      for (int step = 0; step < 16; ++step) {
        serve::ServeRequest update = PredictRequest(name, (step * 5) % 25);
        update.op = serve::Op::kUpdate;
        update.response = step % 2;
        KT_CHECK(shards.SubmitSync(update).ok);
      }
    }

    std::atomic<bool> stop{false};
    std::thread traffic([&] {
      int64_t step = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string name = "swap-s" + std::to_string(step % 16);
        shards.SubmitSync(PredictRequest(name, step % 25));
        ++step;
      }
    });

    const int64_t swaps = FullMode() ? 64 : 24;
    std::vector<double> swap_us;
    swap_us.reserve(static_cast<size_t>(swaps));
    for (int64_t i = 0; i < swaps; ++i) {
      const bool to_b = (i % 2) == 0;
      const auto t0 = std::chrono::steady_clock::now();
      KT_CHECK(shards.SwapWeights(to_b ? state_b : state_a,
                                  to_b ? fp_b : fp_a, i + 1));
      swap_us.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
    }
    stop.store(true, std::memory_order_relaxed);
    traffic.join();
    shards.Stop();
    metrics.swaps = swaps;
    metrics.swap_p50_us = Percentile(swap_us, 0.50);
    metrics.swap_p99_us = Percentile(swap_us, 0.99);
    metrics.swap_mean_us = Mean(swap_us);
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"events ingested", std::to_string(metrics.events)});
  table.AddRow({"ingest events/s",
                FormatFloat(metrics.ingest_events_per_sec, 0)});
  table.AddRow({"reservoir fill", std::to_string(metrics.reservoir_size) +
                                      "/" +
                                      std::to_string(
                                          metrics.reservoir_capacity)});
  table.AddRow({"mini-epoch p50/p99 ms",
                FormatFloat(metrics.mini_epoch_p50_ms, 1) + "/" +
                    FormatFloat(metrics.mini_epoch_p99_ms, 1)});
  table.AddRow({"promotions", std::to_string(metrics.promotions) + "/" +
                                  std::to_string(metrics.mini_epochs)});
  table.AddRow({"swap pause p50/p99 us",
                FormatFloat(metrics.swap_p50_us, 0) + "/" +
                    FormatFloat(metrics.swap_p99_us, 0)});
  table.Print(std::cout);

  if (!MergeIntoScenarioJson(out_path, MetricsJson(metrics))) {
    std::fprintf(stderr, "failed to update %s\n", out_path.c_str());
    std::exit(1);
  }
  std::printf("\nmerged continual section into %s\n", out_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  const kt::FlagParser flags = kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run(flags.GetString("out", "BENCH_serve_scenarios.json"));
  return 0;
}
