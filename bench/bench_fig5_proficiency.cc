// Reproduces Fig. 5: interpretable knowledge-proficiency tracking of one
// (ASSIST12-like) student by RCKT.
//
// For a student answering 18 questions across 3 concepts, we print:
//   * the response series (concept, correct/incorrect),
//   * per-concept proficiency after every response (the Eq. 30 concept
//     probe, scaled into (0,1)),
//   * the three groups of response influences on mastering each concept
//     after all 18 responses (with incorrect-response influences negated,
//     matching the figure's rendering).
// Paper shape: proficiency rises after correct answers and falls after
// incorrect ones; same-concept responses carry larger influence; more
// recent responses carry larger influence (forgetting).
#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "bench/bench_common.h"

namespace kt {
namespace bench {
namespace {

// Finds a window with >= 18 responses spanning >= 3 distinct primary
// concepts, preferring one with a mix of correct and incorrect answers.
const data::ResponseSequence* PickCaseStudent(const data::Dataset& windows) {
  const data::ResponseSequence* best = nullptr;
  double best_mix = -1.0;
  for (const auto& seq : windows.sequences) {
    if (seq.length() < 18) continue;
    std::set<int64_t> concepts;
    int correct = 0;
    for (int64_t t = 0; t < 18; ++t) {
      concepts.insert(seq.interactions[static_cast<size_t>(t)].concepts[0]);
      correct += seq.interactions[static_cast<size_t>(t)].response;
    }
    if (concepts.size() < 3) continue;
    const double rate = correct / 18.0;
    const double mix = 1.0 - std::fabs(rate - 0.5) * 2.0;
    if (mix > best_mix) {
      best_mix = mix;
      best = &seq;
    }
  }
  return best;
}

// A prefix of `seq` up to position t (inclusive) plus one placeholder
// target slot for the concept probe.
data::ResponseSequence ProbePrefix(const data::ResponseSequence& seq,
                                   int64_t t) {
  data::ResponseSequence prefix;
  prefix.interactions.assign(
      seq.interactions.begin(),
      seq.interactions.begin() + static_cast<size_t>(t + 1));
  // Placeholder target; its question embedding is replaced by the probe and
  // its response category by the assumed outcomes.
  prefix.interactions.push_back({0, 0, {0}});
  return prefix;
}

void Run() {
  PrintHeader(
      "Fig. 5: interpretable knowledge-proficiency tracking (ASSIST12)",
      "paper: proficiency rises on correct and falls on incorrect "
      "responses; same-concept and recent responses carry the largest "
      "influence");

  data::Dataset windows = MakeWindows("assist12");
  // Train RCKT-DKT briefly.
  Rng rng(91);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), GetScale().folds, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, 0, 0.1, rng);
  rckt::RCKT model(
      windows.num_questions, windows.num_concepts,
      BenchRcktConfig("assist12", rckt::EncoderKind::kDKT, /*seed=*/91));
  rckt::TrainAndEvaluateRckt(model, split, RcktBenchOptions(5));

  const data::ResponseSequence* student = PickCaseStudent(windows);
  KT_CHECK(student != nullptr) << "no 18-response 3-concept window found";

  // The three most frequent primary concepts in the first 18 responses.
  std::map<int64_t, int> concept_counts;
  for (int64_t t = 0; t < 18; ++t) {
    concept_counts[student->interactions[static_cast<size_t>(t)]
                       .concepts[0]]++;
  }
  std::vector<std::pair<int64_t, int>> ranked(concept_counts.begin(),
                                              concept_counts.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<int64_t> traced_concepts;
  for (size_t i = 0; i < 3 && i < ranked.size(); ++i) {
    traced_concepts.push_back(ranked[i].first);
  }

  // Questions per traced concept (needed by the Eq. 30 probe).
  data::SimulatorConfig sim_config =
      data::PresetByName("assist12", GetScale().dataset_scale).value();
  data::StudentSimulator simulator(sim_config);
  std::map<int64_t, std::vector<int64_t>> concept_questions;
  for (int64_t q = 0; q < windows.num_questions; ++q) {
    for (int64_t k : simulator.question_concepts()[static_cast<size_t>(q)]) {
      concept_questions[k].push_back(q);
    }
  }

  // Proficiency series: probe each concept after each of the 18 responses.
  std::vector<std::string> header = {"t", "concept", "response"};
  for (int64_t k : traced_concepts) {
    header.push_back("prof(k" + std::to_string(k) + ")");
  }
  TablePrinter table(header);
  for (int64_t t = 0; t < 18; ++t) {
    const auto& interaction = student->interactions[static_cast<size_t>(t)];
    std::vector<std::string> row = {
        std::to_string(t), "k" + std::to_string(interaction.concepts[0]),
        interaction.response ? "correct" : "INCORRECT"};
    data::ResponseSequence prefix = ProbePrefix(*student, t);
    data::Batch batch = data::MakeBatch({&prefix});
    for (int64_t k : traced_concepts) {
      const float p =
          model.ScoreConceptProbe(batch, concept_questions[k], k)[0];
      row.push_back(FormatFloat(p, 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  // Influence groups after all 18 responses (one group per concept), with
  // incorrect influences negated as in the figure.
  std::printf("\nresponse influences on mastering each concept after t=17 "
              "(incorrect responses negated):\n");
  data::ResponseSequence prefix = ProbePrefix(*student, 17);
  data::Batch batch = data::MakeBatch({&prefix});
  for (int64_t k : traced_concepts) {
    const auto explanation =
        model.ExplainConceptProbe(batch, concept_questions[k], k)[0];
    std::printf("concept k%lld:", static_cast<long long>(k));
    for (int64_t t = 0; t < 18; ++t) {
      float v = explanation.influence[static_cast<size_t>(t)];
      if (explanation.responses[static_cast<size_t>(t)] == 0) v = -v;
      const bool same_concept =
          student->interactions[static_cast<size_t>(t)].concepts[0] == k;
      std::printf(" %+0.3f%s", v, same_concept ? "*" : " ");
    }
    std::printf("   (* = same-concept response)\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run();
  return 0;
}
