// Reproduces Table VI: RCKT before vs after the response-influence
// approximation on ASSIST09 with the DKT and AKT encoders.
//
//   Before = exact forward influences: flip each past response separately,
//            one generator pass per history position (O(t) passes).
//   After  = backward approximation: intervene on the target only, four
//            generator passes total.
//
// Paper shape: AUC/ACC slightly BETTER after the approximation (the
// bidirectional encoder helps), and inference ~20x faster.
#include "bench/bench_common.h"

#include "core/timer.h"

namespace kt {
namespace bench {
namespace {

struct ModeResult {
  double auc = 0.0;
  double acc = 0.0;
  double ms_per_sample = 0.0;
};

ModeResult RunMode(const data::Dataset& windows, rckt::EncoderKind encoder,
                   bool exact) {
  Rng rng(91);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), GetScale().folds, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, 0, 0.1, rng);

  rckt::RcktConfig config = BenchRcktConfig("assist09", encoder, /*seed=*/91);
  rckt::RCKT model(windows.num_questions, windows.num_concepts, config);

  rckt::RcktTrainOptions options = RcktBenchOptions(5);
  options.exact = exact;
  // Both modes share the same (sparser) evaluation grid in smoke mode so
  // their AUC columns are computed on identical samples.
  if (!FullMode()) options.eval_stride = 10;
  if (exact) {
    // The exact path costs O(t) generator passes per batch; keep the train
    // budget bounded (the paper hit the same wall: Table VI uses only the
    // smallest dataset).
    options.max_epochs = std::max(2, options.max_epochs / 3);
    options.train_stride = 12;
  }
  rckt::RcktTrainResult result =
      rckt::TrainAndEvaluateRckt(model, split, options);

  // Timed inference over the test samples.
  auto samples = rckt::MakePrefixSamples(split.test, options.eval_stride,
                                         options.min_target);
  int64_t scored = 0;
  WallTimer timer;
  for (const auto& group :
       rckt::GroupIntoBatches(samples, options.batch_size, nullptr)) {
    data::Batch batch = rckt::MakePrefixBatch(group);
    if (exact) {
      model.ScoreTargetsExact(batch);
    } else {
      model.ScoreTargets(batch);
    }
    scored += batch.batch_size;
  }
  ModeResult mode;
  mode.auc = result.test.auc;
  mode.acc = result.test.acc;
  mode.ms_per_sample = timer.ElapsedMs() / static_cast<double>(scored);
  return mode;
}

void Run() {
  PrintHeader("Table VI: response-influence approximation (ASSIST09)",
              "paper: Before RCKT-DKT/AKT AUC 0.7896/0.7913, time "
              "214.6/305.7 ms; After AUC 0.7929/0.7947, time 10.6/14.3 ms "
              "(~20x speedup, slightly better accuracy)");

  data::Dataset windows = MakeWindows("assist09");
  TablePrinter table({"Model", "mode", "AUC", "ACC", "ms/sample"});
  for (rckt::EncoderKind encoder :
       {rckt::EncoderKind::kDKT, rckt::EncoderKind::kAKT}) {
    const std::string name =
        std::string("RCKT-") + rckt::EncoderKindName(encoder);
    const ModeResult before = RunMode(windows, encoder, /*exact=*/true);
    const ModeResult after = RunMode(windows, encoder, /*exact=*/false);
    table.AddRow({name, "Before (exact)", Fmt4(before.auc), Fmt4(before.acc),
                  FormatFloat(before.ms_per_sample, 2)});
    table.AddRow({name, "After (approx)", Fmt4(after.auc), Fmt4(after.acc),
                  FormatFloat(after.ms_per_sample, 2)});
    table.AddRow({name, "speedup", "-", "-",
                  StrPrintf("%.1fx", before.ms_per_sample /
                                         std::max(after.ms_per_sample, 1e-9))});
    table.AddSeparator();
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run();
  return 0;
}
