// Reproduces Table V: ablation of RCKT's three components with the two
// best encoders (DKT and AKT) on all four datasets:
//   -joint : lambda = 0 (no joint generator training, Eq. 29)
//   -mono  : no monotonicity-based mask/retain in counterfactuals
//   -con   : no non-negativity constraint on influences (Eq. 17)
// Paper shape: every ablation hurts; -mono hurts the most.
#include <map>
#include <vector>

#include "bench/bench_common.h"

namespace kt {
namespace bench {
namespace {

// Smoke mode ablates on ASSIST09 + Eedi; full mode covers all four.
const std::vector<std::string> kDatasets() {
  if (FullMode()) return {"assist09", "assist12", "slepemapy", "eedi"};
  return {"assist09", "eedi"};
}
constexpr rckt::EncoderKind kEncoders[] = {rckt::EncoderKind::kDKT,
                                           rckt::EncoderKind::kAKT};
constexpr const char* kVariants[] = {"RCKT", "-joint", "-mono", "-con"};

rckt::RcktConfig VariantConfig(const std::string& dataset,
                               rckt::EncoderKind encoder,
                               const std::string& variant) {
  rckt::RcktConfig config = BenchRcktConfig(dataset, encoder, /*seed=*/91);
  if (variant == "-joint") {
    config.joint_training = false;
  } else if (variant == "-mono") {
    config.use_monotonicity = false;
  } else if (variant == "-con") {
    config.use_constraint = false;
  }
  return config;
}

void Run() {
  PrintHeader("Table V: ablation study (DKT and AKT encoders)",
              "paper: all three removals degrade AUC/ACC; -mono is the "
              "largest drop, then -joint and -con");

  const BenchScale scale = GetScale();
  // variant -> "dataset/encoder" -> {auc, acc}
  std::map<std::string, std::map<std::string, std::pair<double, double>>>
      results;

  const auto datasets = kDatasets();
  for (const std::string& dataset_name : datasets) {
    const char* dataset = dataset_name.c_str();
    data::Dataset windows = MakeWindows(dataset);
    for (rckt::EncoderKind encoder : kEncoders) {
      for (const char* variant : kVariants) {
        rckt::RcktFactory factory =
            [&](const data::Dataset& train) -> std::unique_ptr<rckt::RCKT> {
          return std::make_unique<rckt::RCKT>(
              train.num_questions, train.num_concepts,
              VariantConfig(dataset, encoder, variant));
        };
        // One fold per cell in smoke mode (the comparison is same-seed).
        const auto cv = rckt::RunRcktCrossValidation(
            windows, FullMode() ? scale.folds : 2, factory,
            RcktBenchOptions(5), /*seed=*/11, ValidationFraction(),
            /*folds_to_run=*/FullMode() ? -1 : 1);
        const std::string key = std::string(dataset) + "/" +
                                rckt::EncoderKindName(encoder);
        results[variant][key] = {cv.auc_mean, cv.acc_mean};
        std::fprintf(stderr, "[table5] %s %s auc %.4f\n", key.c_str(),
                     variant, cv.auc_mean);
      }
    }
  }

  std::vector<std::string> header = {"Variant"};
  for (const std::string& dataset : datasets) {
    for (rckt::EncoderKind encoder : kEncoders) {
      const std::string key = dataset + "/" + rckt::EncoderKindName(encoder);
      header.push_back(key + " AUC");
      header.push_back(key + " ACC");
    }
  }
  TablePrinter table(header);
  for (const char* variant : kVariants) {
    std::vector<std::string> row = {variant};
    for (const std::string& dataset : datasets) {
      for (rckt::EncoderKind encoder : kEncoders) {
        const std::string key = dataset + "/" + rckt::EncoderKindName(encoder);
        row.push_back(Fmt4(results[variant][key].first));
        row.push_back(Fmt4(results[variant][key].second));
      }
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf(
      "\npaper Table V reference (ASSIST09 AUC, DKT/AKT): RCKT "
      "0.7929/0.7947, -joint 0.7894/0.7909, -mono 0.7812/0.7850, -con "
      "0.7901/0.7918\n");
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run();
  return 0;
}
