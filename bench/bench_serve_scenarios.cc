// Scenario-fleet serving benchmark (DESIGN.md §12): one RCKT model trained
// on the scenario_base historical log, then every registered workload
// scenario streamed through the kt::serve engine in-process — the same
// predict-then-update traffic `kt_loadgen --mode scenario` sends over TCP,
// minus the socket, so the numbers isolate the engine.
//
// Per scenario the report carries:
//   * rolling online AUC of the engine's predictions against the
//     simulator's outcomes (the model never trains on scenario traffic —
//     this measures robustness of one model across traffic shapes),
//   * predict/update latency p50/p99 from kt::obs histograms (bucket
//     resolution, constant memory at any request count),
//   * the order-independent traffic digest (equal across runs and across
//     machines iff the scenario stream is seed-deterministic).
//
// Writes BENCH_serve_scenarios.json (override with --out=<path>).
// Expectation: AUC clearly above 0.5 everywhere except adversarial (bursts
// replace ~20% of responses with guess/slip noise) and drift (the second
// half of each sequence contradicts the first); cold_start lowest latency
// (shortest histories), forgetting highest (longest).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "data/scenarios.h"
#include "obs/obs.h"
#include "serve/engine.h"
#include "serve/loadgen.h"

namespace kt {
namespace bench {
namespace {

struct ScenarioResult {
  serve::ScenarioSummary summary;
  double base_test_auc = 0.0;  // same for every row; kept for context
};

// Streams every student of `config` through the engine: predict before
// each update, exactly like kt_loadgen --mode scenario. Students generate
// one at a time (GenerateStudentAuto) — nothing is materialized.
serve::ScenarioSummary RunScenario(const data::SimulatorConfig& config,
                                   serve::InferenceEngine& engine,
                                   int64_t auc_window) {
  const data::StudentSimulator simulator(config);
  obs::Histogram* predict_hist =
      obs::Histogram::Get("bench.scenario.predict_us");
  obs::Histogram* update_hist =
      obs::Histogram::Get("bench.scenario.update_us");
  predict_hist->Reset();
  update_hist->Reset();

  serve::RollingAuc auc(auc_window);
  serve::ScenarioSummary summary;
  summary.scenario = config.name;
  summary.connections = 1;
  summary.seed = config.seed;
  summary.students = config.num_students;
  summary.auc_window = auc_window;

  const auto start = std::chrono::steady_clock::now();
  for (int64_t s = 0; s < config.num_students; ++s) {
    const data::ResponseSequence seq =
        simulator.GenerateStudentAuto(static_cast<uint64_t>(s));
    const std::string student = config.name + "-s" + std::to_string(s);
    uint64_t h = serve::kFnvOffset;
    uint64_t ph = serve::kFnvOffset;  // this student's prediction bits
    for (const auto& it : seq.interactions) {
      serve::ServeRequest predict;
      predict.op = serve::Op::kPredict;
      predict.student = student;
      predict.question = it.question;
      predict.has_concepts = true;
      predict.concepts = it.concepts;
      const auto t0 = std::chrono::steady_clock::now();
      const serve::ServeResponse predicted = engine.Execute(predict);
      const auto t1 = std::chrono::steady_clock::now();
      KT_CHECK(predicted.ok) << predicted.error;
      predict_hist->Record(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
      auc.Add(predicted.p, it.response);
      ph = serve::FnvMixU64(ph, serve::FloatBits(predicted.p));
      ++summary.predictions;

      serve::ServeRequest update = predict;
      update.op = serve::Op::kUpdate;
      update.response = it.response;
      const auto t2 = std::chrono::steady_clock::now();
      const serve::ServeResponse updated = engine.Execute(update);
      const auto t3 = std::chrono::steady_clock::now();
      KT_CHECK(updated.ok) << updated.error;
      update_hist->Record(
          std::chrono::duration<double, std::micro>(t3 - t2).count());
      ++summary.interactions;
      h = serve::FnvMixInteraction(h, it.question, it.concepts, it.response);
    }
    summary.traffic_fnv64 ^= h;
    summary.pred_fnv64 ^= ph;
  }
  summary.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  summary.throughput_rps =
      summary.elapsed_s > 0.0
          ? static_cast<double>(summary.interactions + summary.predictions) /
                summary.elapsed_s
          : 0.0;
  summary.auc = auc.Auc();
  summary.auc_samples = auc.count();
  const obs::HistogramSnapshot ps = predict_hist->Snapshot();
  const obs::HistogramSnapshot us = update_hist->Snapshot();
  summary.predict_p50_us = ps.Percentile(0.50);
  summary.predict_p99_us = ps.Percentile(0.99);
  summary.predict_mean_us = ps.Mean();
  summary.update_p50_us = us.Percentile(0.50);
  summary.update_p99_us = us.Percentile(0.99);
  summary.update_mean_us = us.Mean();
  return summary;
}

bool WriteJson(const std::string& path, double base_auc,
               const std::vector<serve::ScenarioSummary>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"serve_scenarios\",\n  \"threads\": "
      << GetNumThreads() << ",\n  \"base_test_auc\": " << base_auc
      << ",\n  \"scenarios\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    // The per-scenario schema matches kt_loadgen --mode scenario (minus
    // mode/connections/scale, which are fixed in-process).
    out << "    " << serve::ScenarioSummaryJson(rows[i])
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return static_cast<bool>(out);
}

void Run(const std::string& out_path) {
  PrintHeader("Scenario fleet: one model, five traffic shapes",
              "expectation: AUC above 0.5 except adversarial/drift (traffic "
              "designed to break the learned student state); latency "
              "ordered by history length (cold_start < base < forgetting)");
  obs::SetEnabled(true);

  // One model trained on the scenario_base log serves every scenario
  // (shared question/concept space — see data/scenarios.h).
  const double train_scale = FullMode() ? 1.0 : 0.25;
  data::SimulatorConfig base = data::ScenarioBase(train_scale);
  data::StudentSimulator base_sim(base);
  data::Dataset windows = data::SplitIntoWindows(base_sim.Generate(), 50, 5);
  Rng rng(91);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), GetScale().folds, rng);
  data::FoldSplit split =
      data::MakeFold(windows, folds, 0, ValidationFraction(), rng);
  rckt::RCKT model(windows.num_questions, windows.num_concepts,
                   BenchRcktConfig("assist09", rckt::EncoderKind::kDKT, 91));
  const auto trained =
      rckt::TrainAndEvaluateRckt(model, split, RcktBenchOptions(5));
  std::printf("scenario_base test AUC %.4f (the served model)\n\n",
              trained.test.auc);

  serve::EngineOptions options;
  options.num_questions = windows.num_questions;
  options.num_concepts = windows.num_concepts;
  serve::InferenceEngine engine(model, options);

  const double traffic_scale = FullMode() ? 0.5 : 0.1;
  TablePrinter table({"scenario", "students", "requests", "auc",
                      "predict p50/p99 us", "update p50/p99 us"});
  std::vector<serve::ScenarioSummary> rows;
  for (const data::SimulatorConfig& config :
       data::AllScenarios(traffic_scale)) {
    serve::ScenarioSummary s = RunScenario(config, engine, /*auc_window=*/
                                           50000);
    table.AddRow({s.scenario, std::to_string(s.students),
                  std::to_string(s.interactions + s.predictions),
                  FormatFloat(s.auc, 4),
                  FormatFloat(s.predict_p50_us, 0) + "/" +
                      FormatFloat(s.predict_p99_us, 0),
                  FormatFloat(s.update_p50_us, 0) + "/" +
                      FormatFloat(s.update_p99_us, 0)});
    rows.push_back(std::move(s));
  }
  table.Print(std::cout);

  if (!WriteJson(out_path, trained.test.auc, rows)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    std::exit(1);
  }
  std::printf("\nwrote %s\n", out_path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  const kt::FlagParser flags = kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run(flags.GetString("out", "BENCH_serve_scenarios.json"));
  return 0;
}
