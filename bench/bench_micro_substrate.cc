// Micro-benchmarks of the numeric substrate (google-benchmark): GEMM,
// LSTM and attention forward passes, autograd overhead, simulator
// throughput, and RCKT approximate-vs-exact single-batch scoring — the
// kernel-level counterpart of Table VI.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "bench/bench_common.h"
#include "core/parallel.h"
#include "data/presets.h"
#include "nn/attention.h"
#include "nn/lstm.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"
#include "tensor/tensor_ops.h"

namespace kt {
namespace {

// Pins the kt::parallel pool to `threads` for one benchmark's duration and
// restores the ambient setting after. The *Threads benchmark families sweep
// thread counts in-process so one run reports the speedup curve directly
// (compare e.g. BM_GemmThreads/256/1 against BM_GemmThreads/256/4); outputs
// are bit-identical across the sweep by the pool's determinism contract.
class ThreadCountScope {
 public:
  explicit ThreadCountScope(int threads) : previous_(GetNumThreads()) {
    SetNumThreads(threads);
  }
  ~ThreadCountScope() { SetNumThreads(previous_); }

 private:
  int previous_;
};

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Uniform({n, n}, -1, 1, rng);
  Tensor b = Tensor::Uniform({n, n}, -1, 1, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  ThreadCountScope threads(static_cast<int>(state.range(1)));
  Rng rng(1);
  Tensor a = Tensor::Uniform({n, n}, -1, 1, rng);
  Tensor b = Tensor::Uniform({n, n}, -1, 1, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmThreads)
    ->ArgsProduct({{128, 256}, {1, 2, 4}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime();

void BM_BatchedAttentionScores(benchmark::State& state) {
  const int64_t t = state.range(0);
  Rng rng(2);
  Tensor q = Tensor::Uniform({16, t, 32}, -1, 1, rng);
  Tensor k = Tensor::Uniform({16, t, 32}, -1, 1, rng);
  for (auto _ : state) {
    Tensor scores = BatchMatMul(q, k.TransposeLast2());
    Tensor probs = SoftmaxLastDim(scores);
    benchmark::DoNotOptimize(probs.data());
  }
}
BENCHMARK(BM_BatchedAttentionScores)->Arg(25)->Arg(50);

void BM_LstmForward(benchmark::State& state) {
  const int64_t t = state.range(0);
  Rng rng(3);
  nn::LSTM lstm(32, 32, rng);
  Tensor x = Tensor::Uniform({16, t, 32}, -1, 1, rng);
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    ag::Variable out = lstm.Forward(ag::Constant(x));
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_LstmForward)->Arg(25)->Arg(50);

void BM_TransformerBlockForward(benchmark::State& state) {
  const int64_t t = state.range(0);
  Rng rng(4);
  nn::TransformerBlock block(32, 2, 0.0f, /*monotonic=*/true, rng);
  Tensor x = Tensor::Uniform({16, t, 32}, -1, 1, rng);
  const Tensor mask =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kCausalInclusive);
  nn::Context ctx;
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    ag::Variable out = block.Forward(ag::Constant(x), mask, ctx);
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_TransformerBlockForward)->Arg(25)->Arg(50);

void BM_AutogradBackwardMlp(benchmark::State& state) {
  Rng rng(5);
  ag::Variable w1 = ag::Variable::Leaf(Tensor::Uniform({64, 64}, -1, 1, rng),
                                       true);
  ag::Variable w2 = ag::Variable::Leaf(Tensor::Uniform({64, 1}, -1, 1, rng),
                                       true);
  Tensor x = Tensor::Uniform({128, 64}, -1, 1, rng);
  for (auto _ : state) {
    w1.ZeroGrad();
    w2.ZeroGrad();
    ag::Variable loss = ag::MeanAll(
        ag::MatMul(ag::Sigmoid(ag::MatMul(ag::Constant(x), w1)), w2));
    loss.Backward();
    benchmark::DoNotOptimize(w1.grad().data());
  }
}
BENCHMARK(BM_AutogradBackwardMlp);

void BM_SimulatorGenerate(benchmark::State& state) {
  data::SimulatorConfig config = data::Assist09Preset(0.05);
  data::StudentSimulator simulator(config);
  for (auto _ : state) {
    data::Dataset ds = simulator.Generate();
    benchmark::DoNotOptimize(ds.sequences.data());
  }
  state.SetItemsProcessed(state.iterations() * config.num_students);
}
BENCHMARK(BM_SimulatorGenerate);

// The Table VI kernel: approximate (4 passes) vs exact (t+1 passes) RCKT
// scoring of one prefix batch.
class RcktScoringFixture {
 public:
  RcktScoringFixture() : windows_(MakeWindows()) {
    rckt::RcktConfig config;
    config.dim = 32;
    config.seed = 9;
    model_ = std::make_unique<rckt::RCKT>(windows_.num_questions,
                                          windows_.num_concepts, config);
    std::vector<rckt::PrefixSample> samples;
    for (const auto& seq : windows_.sequences) {
      if (seq.length() > 24) samples.push_back({&seq, 24});
      if (samples.size() == 16) break;
    }
    batch_ = rckt::MakePrefixBatch(samples);
  }

  static data::Dataset MakeWindows() {
    data::SimulatorConfig config = data::Assist09Preset(0.05);
    data::StudentSimulator simulator(config);
    return data::SplitIntoWindows(simulator.Generate(), 50, 5);
  }

  data::Dataset windows_;
  std::unique_ptr<rckt::RCKT> model_;
  data::Batch batch_;
};

void BM_RcktScoreApproximate(benchmark::State& state) {
  RcktScoringFixture fixture;
  for (auto _ : state) {
    auto scores = fixture.model_->ScoreTargets(fixture.batch_);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * fixture.batch_.batch_size);
}
BENCHMARK(BM_RcktScoreApproximate);

void BM_RcktScoreExact(benchmark::State& state) {
  RcktScoringFixture fixture;
  for (auto _ : state) {
    auto scores = fixture.model_->ScoreTargetsExact(fixture.batch_);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * fixture.batch_.batch_size);
}
BENCHMARK(BM_RcktScoreExact);

// Counterfactual-inference throughput vs thread count: approximate mode
// fans out 4 generator passes per batch, exact mode fans out one pass per
// history position (24 here). Scores are bit-identical across the sweep.
void BM_RcktScoreApproximateThreads(benchmark::State& state) {
  ThreadCountScope threads(static_cast<int>(state.range(0)));
  RcktScoringFixture fixture;
  for (auto _ : state) {
    auto scores = fixture.model_->ScoreTargets(fixture.batch_);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * fixture.batch_.batch_size);
}
BENCHMARK(BM_RcktScoreApproximateThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->UseRealTime();

void BM_RcktScoreExactThreads(benchmark::State& state) {
  ThreadCountScope threads(static_cast<int>(state.range(0)));
  RcktScoringFixture fixture;
  for (auto _ : state) {
    auto scores = fixture.model_->ScoreTargetsExact(fixture.batch_);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() * fixture.batch_.batch_size);
}
BENCHMARK(BM_RcktScoreExactThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->UseRealTime();

// Tees every run into a flat JSON record set (op, shape, threads, ns/iter,
// GFLOP/s where the items counter measures flops) while still printing the
// normal console table. The machine-readable artifact is what DESIGN.md
// Sec. 9 and the README performance table are sourced from.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      Record rec;
      const std::string name = run.benchmark_name();
      const size_t slash = name.find('/');
      rec.op = name.substr(0, slash);
      rec.shape = slash == std::string::npos ? "" : name.substr(slash + 1);
      rec.threads = ThreadsFromName(name);
      rec.ns_per_iter = run.GetAdjustedRealTime();  // default time unit: ns
      auto it = run.counters.find("items_per_second");
      rec.items_per_second = it == run.counters.end() ? 0.0 : it->second.value;
      records_.push_back(rec);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  bool WriteJson(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    out << "{\n  \"bench\": \"micro_substrate\",\n  \"results\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      out << "    {\"op\": \"" << r.op << "\", \"shape\": \"" << r.shape
          << "\", \"threads\": " << r.threads
          << ", \"ns_per_iter\": " << r.ns_per_iter;
      // The GEMM families count flops as items, so items/s is FLOP/s there;
      // other families report raw items/s (batches, students, ...).
      if (r.op.rfind("BM_Gemm", 0) == 0) {
        out << ", \"gflops\": " << r.items_per_second / 1e9;
      } else if (r.items_per_second > 0.0) {
        out << ", \"items_per_second\": " << r.items_per_second;
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  struct Record {
    std::string op;
    std::string shape;
    int threads = 1;
    double ns_per_iter = 0.0;
    double items_per_second = 0.0;
  };

  // The *Threads sweeps encode the pool size as a "threads:N" name segment;
  // everything else runs at the ambient pool size.
  static int ThreadsFromName(const std::string& name) {
    const size_t pos = name.find("threads:");
    if (pos == std::string::npos) return kt::GetNumThreads();
    return std::atoi(name.c_str() + pos + std::strlen("threads:"));
  }

  std::vector<Record> records_;
};

}  // namespace
}  // namespace kt

// Custom main so the run header reports the ambient pool size next to
// google-benchmark's own context lines, and so results also land in
// BENCH_micro_substrate.json (override the path with --json_out=<path>).
int main(int argc, char** argv) {
  // Strip the shared kt flags (--threads, --obs, --trace-out, --run-log)
  // before google-benchmark sees argv; it rejects unrecognized arguments.
  kt::bench::InitBenchFlags(&argc, argv);
  std::printf("kt::parallel threads: %d (KT_NUM_THREADS / --threads sweep "
              "benchmarks override per-run)\n",
              kt::GetNumThreads());
  std::string json_path = "BENCH_micro_substrate.json";
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  kt::JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!reporter.WriteJson(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
