// Extension bench (beyond the paper): QUANTITATIVE interpretability of
// RCKT's response influences, enabled by the synthetic substrate's ground
// truth (paper Sec. V-E explains why this is infeasible on real data):
//   * deletion fidelity — masking the most-influential responses must move
//     the prediction more than masking random ones,
//   * proficiency fidelity — correlation of the Eq. 30 concept probe with
//     the simulator's latent theta,
// plus the RCKT-GRU extension encoder on the Table IV protocol, exercising
// the paper's "adaptive encoder" claim with a fourth sequential core.
#include "bench/bench_common.h"
#include "rckt/interpretability.h"

namespace kt {
namespace bench {
namespace {

void Run() {
  PrintHeader("Extension: quantitative interpretability + RCKT-GRU",
              "expectation: fidelity ratio > 1 (influences identify the "
              "responses that matter); probe-vs-theta correlation > 0; "
              "RCKT-GRU competitive with RCKT-DKT");

  const std::string dataset_name = "assist09";
  data::SimulatorConfig sim_config =
      data::PresetByName(dataset_name, GetScale().dataset_scale).value();
  data::StudentSimulator simulator(sim_config);
  data::Dataset windows =
      data::SplitIntoWindows(simulator.Generate(), 50, 5);

  Rng rng(91);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), GetScale().folds, rng);
  data::FoldSplit split =
      data::MakeFold(windows, folds, 0, ValidationFraction(), rng);

  // Train RCKT-DKT once; reuse for both metrics.
  rckt::RCKT model(windows.num_questions, windows.num_concepts,
                   BenchRcktConfig(dataset_name, rckt::EncoderKind::kDKT, 91));
  const auto trained =
      rckt::TrainAndEvaluateRckt(model, split, RcktBenchOptions(5));
  std::printf("RCKT-DKT test AUC %.4f (reference point)\n\n",
              trained.test.auc);

  Rng deletion_rng(17);
  const auto deletion = rckt::DeletionFidelity(
      model, split.test, /*k=*/3, /*max_samples=*/FullMode() ? 80 : 30,
      deletion_rng);
  TablePrinter fidelity({"metric", "value"});
  fidelity.AddRow({"deletion: targeted shift",
                   FormatFloat(deletion.targeted_shift, 4)});
  fidelity.AddRow(
      {"deletion: random shift", FormatFloat(deletion.random_shift, 4)});
  fidelity.AddRow(
      {"deletion: fidelity ratio", FormatFloat(deletion.fidelity_ratio, 2)});
  fidelity.AddRow({"deletion: samples",
                   std::to_string(deletion.num_samples)});

  const auto proficiency = rckt::ProficiencyFidelity(
      model, simulator, /*num_students=*/FullMode() ? 12 : 5,
      /*sequence_length=*/25);
  fidelity.AddRow({"proficiency: mean corr(probe, theta)",
                   FormatFloat(proficiency.mean_correlation, 3)});
  fidelity.AddRow({"proficiency: students",
                   std::to_string(proficiency.num_students)});
  fidelity.Print(std::cout);

  // RCKT-GRU on the same fold (encoder-adaptivity extension).
  rckt::RCKT gru_model(
      windows.num_questions, windows.num_concepts,
      BenchRcktConfig(dataset_name, rckt::EncoderKind::kGRU, 91));
  const auto gru_result =
      rckt::TrainAndEvaluateRckt(gru_model, split, RcktBenchOptions(5));
  std::printf(
      "\nRCKT-GRU (extension encoder): test AUC %.4f ACC %.4f vs RCKT-DKT "
      "AUC %.4f\n",
      gru_result.test.auc, gru_result.test.acc, trained.test.auc);
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run();
  return 0;
}
