// Extension bench (beyond the paper's Table IV rows): the classic
// pre-deep-learning KT models the paper's background discusses — BKT
// (Corbett & Anderson, ref. [1]), PFA (ref. [30]) and KTM (ref. [12]) — on
// the same prefix-sample protocol, next to DKT and RCKT-DKT reference
// points. Expected shape: the classics are competitive at small scale but
// are overtaken by the neural models as data grows (the historical arc the
// paper's introduction describes).
#include "bench/bench_common.h"
#include "models/bkt.h"
#include "models/ktm.h"
#include "models/pfa.h"

namespace kt {
namespace bench {
namespace {

std::unique_ptr<models::KTModel> MakeClassic(const std::string& name,
                                             const data::Dataset& train) {
  if (name == "BKT") {
    return std::make_unique<models::BKT>(train.num_concepts,
                                         models::BktConfig{});
  }
  if (name == "PFA") {
    return std::make_unique<models::PFA>(train.num_concepts,
                                         models::PfaConfig{});
  }
  if (name == "KTM") {
    return std::make_unique<models::KTM>(train.num_questions,
                                         train.num_concepts,
                                         models::KtmConfig{});
  }
  return MakeBaselineByName(name, train, /*seed=*/91);
}

void Run() {
  PrintHeader("Extension: classic KT baselines (BKT / PFA / KTM)",
              "historical arc: BKT -> PFA/KTM -> deep models; classics are "
              "strong at small scale, neural models win at real scale");

  const BenchScale scale = GetScale();
  constexpr const char* kModels[] = {"BKT", "PFA", "KTM", "IKT", "DKT"};
  constexpr const char* kDatasets[] = {"assist09", "eedi"};

  std::vector<std::string> header = {"Model"};
  for (const char* dataset : kDatasets) {
    header.push_back(std::string(dataset) + " AUC");
    header.push_back(std::string(dataset) + " ACC");
  }
  TablePrinter table(header);

  for (const char* model_name : kModels) {
    std::vector<std::string> row = {model_name};
    for (const char* dataset : kDatasets) {
      data::Dataset windows = MakeWindows(dataset);
      eval::ModelFactory factory =
          [&](const data::Dataset& train) -> std::unique_ptr<models::KTModel> {
        return MakeClassic(model_name, train);
      };
      const auto cv = rckt::RunBaselineCrossValidation(
          windows, scale.folds, factory, BaselineTrainOptions(5),
          RcktBenchOptions(5), /*seed=*/11, ValidationFraction());
      row.push_back(Fmt4(cv.auc_mean));
      row.push_back(Fmt4(cv.acc_mean));
      std::fprintf(stderr, "[classic] %s/%s auc %.4f\n", dataset, model_name,
                   cv.auc_mean);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run();
  return 0;
}
