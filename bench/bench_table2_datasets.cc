// Reproduces Table II: statistics of the four (synthetic stand-in)
// preprocessed datasets. Paper values are printed alongside for reference;
// absolute counts are scaled down (see DESIGN.md), while the structural
// columns (#concept/question, %correct) are reproduction targets.
#include "bench/bench_common.h"

namespace kt {
namespace bench {
namespace {

struct PaperRow {
  const char* dataset;
  const char* responses;
  const char* sequences;
  const char* questions;
  const char* concepts;
  double concepts_per_question;
  double correct_rate;
};

constexpr PaperRow kPaperRows[] = {
    {"assist09", "0.4m", "10.7k", "13.5k", "151", 1.22, 0.63},
    {"assist12", "2.7m", "62.6k", "53.1k", "265", 1.0, 0.70},
    {"slepemapy", "10.0m", "234.5k", "2.2k", "1458", 1.0, 0.78},
    {"eedi", "(challenge)", "-", "-", "-", 1.0, 0.64},
};

void Run() {
  PrintHeader("Table II: dataset statistics",
              "paper: response/sequence/question/concept counts, "
              "#concept/question, %correct");

  TablePrinter table({"dataset", "#response", "#sequence", "#question",
                      "#concept", "#concept/question", "%correct",
                      "paper #c/q", "paper %correct"});
  for (const PaperRow& row : kPaperRows) {
    data::Dataset windows = MakeWindows(row.dataset);
    table.AddRow({windows.name, std::to_string(windows.TotalResponses()),
                  std::to_string(windows.sequences.size()),
                  std::to_string(windows.num_questions),
                  std::to_string(windows.num_concepts),
                  FormatFloat(windows.ConceptsPerQuestion(), 2),
                  FormatFloat(windows.CorrectRate(), 2),
                  FormatFloat(row.concepts_per_question, 2),
                  FormatFloat(row.correct_rate, 2)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run();
  return 0;
}
