// Before/after benchmark for the hot-path compute overhaul (DESIGN.md
// Sec. 9): tiled vs reference GEMM kernels at encoder shapes, and
// end-to-end RCKT throughput with the full optimized stack (tiled kernels
// + fused ops + stacked counterfactual fan-out) against the baseline stack
// (reference kernels, composed ops, per-pass fan-out).
//
// Because every optimization is toggleable at runtime and bit-identical by
// contract, one binary measures both modes on the same machine in the same
// run — no pre-PR checkout needed — and writes BENCH_hotpath.json
// (override the path with --out=<path>).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "data/presets.h"
#include "data/simulator.h"
#include "nn/module.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace kt {
namespace {

volatile float g_sink = 0.0f;  // defeats dead-code elimination

// Runs fn repeatedly until it has consumed ~min_time (after a short
// warmup) and returns the mean wall time per call in nanoseconds.
double TimeNs(const std::function<void()>& fn, double min_time_sec = 0.25,
              int min_iters = 3) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < 2; ++i) fn();  // warmup
  int64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < min_time_sec || iters < min_iters) {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  return elapsed * 1e9 / static_cast<double>(iters);
}

struct Result {
  std::string section;  // "gemm" | "e2e"
  std::string op;
  std::string shape;
  std::string mode;  // "baseline" | "optimized"
  int threads = 1;
  double ns_per_iter = 0.0;
  double rate = 0.0;  // GFLOP/s for gemm, items/s for e2e
};

std::vector<Result> g_results;

// ---- GEMM section: tiled vs reference at encoder shapes ----

void BenchGemmShape(int64_t m, int64_t k, int64_t n) {
  Rng rng(1);
  Tensor a = Tensor::Uniform({m, k}, -1, 1, rng);
  Tensor b = Tensor::Uniform({k, n}, -1, 1, rng);
  Tensor c({m, n});
  const double flops = 2.0 * static_cast<double>(m) * k * n;
  char shape[64];
  std::snprintf(shape, sizeof(shape), "m%lld_k%lld_n%lld",
                static_cast<long long>(m), static_cast<long long>(k),
                static_cast<long long>(n));
  for (GemmKernel kernel : {GemmKernel::kReference, GemmKernel::kTiled}) {
    SetGemmKernel(kernel);
    const double ns = TimeNs([&] {
      Gemm(a.data(), b.data(), c.data(), m, k, n);
      g_sink = c.data()[0];
    });
    Result r;
    r.section = "gemm";
    r.op = "Gemm";
    r.shape = shape;
    r.mode = kernel == GemmKernel::kReference ? "baseline" : "optimized";
    r.threads = GetNumThreads();
    r.ns_per_iter = ns;
    r.rate = flops / ns;  // GFLOP/s (flops per ns)
    g_results.push_back(r);
    std::printf("  %-10s %-16s %-9s %12.0f ns  %7.2f GFLOP/s\n",
                r.op.c_str(), r.shape.c_str(), r.mode.c_str(), ns, r.rate);
  }
  SetGemmKernel(GemmKernel::kAuto);
}

// ---- Low-precision serve-path section ----
//
// Per-backend GEMM sweep at the serve predict-head shapes: (m, 2d, d) and
// (m, d, 1) for the bench model dim plus a square encoder shape. The fp32
// baseline is the tiled kernel exactly as the serve path runs it (B packed
// per call); bf16/int8 use pre-packed weight panels, the way the serve
// engine holds them after model load — the comparison measures what a
// predict request actually pays per backend. int8 quantizes activations
// per call against a fixed scale (static quantization), also as served.
void BenchLowpShape(int64_t m, int64_t k, int64_t n) {
  Rng rng(3);
  Tensor a = Tensor::Uniform({m, k}, -1, 1, rng);
  Tensor b = Tensor::Uniform({k, n}, -1, 1, rng);
  Tensor c({m, n});
  const double flops = 2.0 * static_cast<double>(m) * k * n;
  char shape[64];
  std::snprintf(shape, sizeof(shape), "m%lld_k%lld_n%lld",
                static_cast<long long>(m), static_cast<long long>(k),
                static_cast<long long>(n));
  const quant::Bf16Panels bf16_panels = quant::PackBf16(b.data(), k, n);
  const quant::Int8Panels int8_panels = quant::PackInt8(b.data(), k, n);
  const quant::QuantParams a_params =
      quant::CalibrateSymmetric(a.data(), a.numel());

  struct Backend {
    const char* name;
    bool available;
    std::function<void()> run;
  };
  const std::vector<Backend> backends = {
      {"fp32_tiled", true,
       [&] {
         SetGemmKernel(GemmKernel::kTiled);
         Gemm(a.data(), b.data(), c.data(), m, k, n);
         SetGemmKernel(GemmKernel::kAuto);
       }},
      {"fp32_tiled_fma", FindGemmBackend("tiled_fma")->available,
       [&] {
         SetGemmKernel(GemmKernel::kTiledFma);
         Gemm(a.data(), b.data(), c.data(), m, k, n);
         SetGemmKernel(GemmKernel::kAuto);
       }},
      {"bf16", true,
       [&] { quant::GemmBf16(a.data(), bf16_panels, c.data(), m); }},
      {"int8", true,
       [&] {
         quant::GemmInt8FromFloat(a.data(), a_params, int8_panels, c.data(),
                                  m);
       }},
  };
  for (const Backend& backend : backends) {
    if (!backend.available) continue;
    const double ns = TimeNs([&] {
      backend.run();
      g_sink = c.data()[0];
    });
    Result r;
    r.section = "lowp";
    r.op = "Gemm";
    r.shape = shape;
    r.mode = backend.name;
    r.threads = GetNumThreads();
    r.ns_per_iter = ns;
    r.rate = flops / ns;
    g_results.push_back(r);
    std::printf("  %-10s %-16s %-14s %12.0f ns  %7.2f GFLOP/s\n",
                r.op.c_str(), r.shape.c_str(), r.mode.c_str(), ns, r.rate);
  }
}

// ---- End-to-end section: full optimized stack vs full baseline stack ----

struct HotpathFixture {
  HotpathFixture() {
    data::SimulatorConfig config = data::Assist09Preset(0.05);
    data::StudentSimulator simulator(config);
    windows = data::SplitIntoWindows(simulator.Generate(), 50, 5);
    std::vector<rckt::PrefixSample> samples;
    for (const auto& seq : windows.sequences) {
      if (seq.length() > 24) samples.push_back({&seq, 24});
      if (samples.size() == 16) break;
    }
    batch = rckt::MakePrefixBatch(samples);
  }

  std::unique_ptr<rckt::RCKT> MakeModel(bool optimized) const {
    rckt::RcktConfig config;
    config.dim = 32;
    config.seed = 9;
    config.stacked_fanout = optimized;
    return std::make_unique<rckt::RCKT>(windows.num_questions,
                                        windows.num_concepts, config);
  }

  data::Dataset windows;
  data::Batch batch;
};

void BenchEndToEnd(const HotpathFixture& fixture) {
  struct Op {
    const char* name;
    double min_time;
    std::function<void(rckt::RCKT&)> run;
  };
  const std::vector<Op> ops = {
      {"ScoreTargets", 0.5,
       [&](rckt::RCKT& m) { g_sink = m.ScoreTargets(fixture.batch)[0]; }},
      {"ScoreTargetsExact", 1.0,
       [&](rckt::RCKT& m) { g_sink = m.ScoreTargetsExact(fixture.batch)[0]; }},
      {"TrainStep", 0.5,
       [&](rckt::RCKT& m) { g_sink = m.TrainStep(fixture.batch); }},
  };
  for (const Op& op : ops) {
    for (bool optimized : {false, true}) {
      // The whole stack toggles together: kernel family, op fusion, and
      // stacked fan-out (the last via the model config).
      SetGemmKernel(optimized ? GemmKernel::kAuto : GemmKernel::kReference);
      nn::SetFusedOpsEnabled(optimized);
      auto model = fixture.MakeModel(optimized);
      const double ns =
          TimeNs([&] { op.run(*model); }, op.min_time, /*min_iters=*/3);
      Result r;
      r.section = "e2e";
      r.op = op.name;
      r.shape = "batch16_len24_dim32";
      r.mode = optimized ? "optimized" : "baseline";
      r.threads = GetNumThreads();
      r.ns_per_iter = ns;
      r.rate = static_cast<double>(fixture.batch.batch_size) * 1e9 / ns;
      g_results.push_back(r);
      std::printf("  %-18s %-9s %12.0f ns  %8.2f samples/s\n", op.name,
                  r.mode.c_str(), ns, r.rate);
    }
  }
  SetGemmKernel(GemmKernel::kAuto);
  nn::SetFusedOpsEnabled(true);
}

bool WriteJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"hotpath\",\n  \"threads\": " << GetNumThreads()
      << ",\n  \"results\": [\n";
  for (size_t i = 0; i < g_results.size(); ++i) {
    const Result& r = g_results[i];
    out << "    {\"section\": \"" << r.section << "\", \"op\": \"" << r.op
        << "\", \"shape\": \"" << r.shape << "\", \"mode\": \"" << r.mode
        << "\", \"threads\": " << r.threads
        << ", \"ns_per_iter\": " << r.ns_per_iter << ", ";
    out << (r.section == "gemm" ? "\"gflops\": " : "\"items_per_second\": ")
        << r.rate << "}" << (i + 1 < g_results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedups\": {\n";
  // baseline/optimized pairs are adjacent: speedup = ns_base / ns_opt.
  bool first = true;
  for (size_t i = 0; i + 1 < g_results.size(); ++i) {
    const Result& base = g_results[i];
    const Result& opt = g_results[i + 1];
    if (base.mode != "baseline" || opt.mode != "optimized" ||
        base.op != opt.op || base.shape != opt.shape) {
      continue;
    }
    if (!first) out << ",\n";
    first = false;
    const std::string key = base.section == "gemm"
                                ? base.op + "_" + base.shape
                                : base.op;
    out << "    \"" << key << "\": " << base.ns_per_iter / opt.ns_per_iter;
  }
  out << "\n  },\n  \"lowp_speedups\": {\n";
  // Low-precision backends vs the fp32 tiled row at the same shape.
  first = true;
  for (size_t i = 0; i < g_results.size(); ++i) {
    const Result& base = g_results[i];
    if (base.section != "lowp" || base.mode != "fp32_tiled") continue;
    for (size_t j = i + 1;
         j < g_results.size() && g_results[j].section == "lowp" &&
         g_results[j].shape == base.shape;
         ++j) {
      const Result& other = g_results[j];
      if (!first) out << ",\n";
      first = false;
      out << "    \"" << other.mode << "_" << other.shape
          << "\": " << base.ns_per_iter / other.ns_per_iter;
    }
  }
  out << "\n  }\n}\n";
  return static_cast<bool>(out);
}

}  // namespace
}  // namespace kt

int main(int argc, char** argv) {
  const kt::FlagParser flags = kt::bench::InitBenchFlags(&argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_hotpath.json");
  std::printf("hot-path before/after (threads=%d)\n", kt::GetNumThreads());

  std::printf("GEMM kernels (reference vs tiled):\n");
  kt::BenchGemmShape(64, 64, 64);
  kt::BenchGemmShape(64, 128, 128);
  kt::BenchGemmShape(256, 64, 64);
  kt::BenchGemmShape(256, 128, 128);
  kt::BenchGemmShape(128, 128, 128);

  std::printf("low-precision serve-path backends (vs fp32 tiled):\n");
  // Serve predict-head shapes for dim 32 at single-request and full-batch
  // sizes, plus a square encoder shape.
  kt::BenchLowpShape(1, 64, 32);
  kt::BenchLowpShape(16, 64, 32);
  kt::BenchLowpShape(64, 64, 32);
  kt::BenchLowpShape(64, 64, 64);
  kt::BenchLowpShape(128, 128, 128);

  std::printf("end-to-end RCKT (baseline stack vs optimized stack):\n");
  kt::HotpathFixture fixture;
  kt::BenchEndToEnd(fixture);

  if (!kt::WriteJson(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
