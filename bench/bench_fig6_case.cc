// Reproduces Fig. 6: a case study contrasting RCKT-AKT's response
// influences with SAKT+'s attention values on one Eedi student with nine
// history responses and a target question.
//
// Paper shape: RCKT assigns large influence to a correct response sharing
// the target's concept even when incorrect responses dominate the history,
// predicting correctly; SAKT+'s attention concentrates on incorrect
// responses (near-zero on correct ones) and errs.
#include <cmath>

#include "bench/bench_common.h"

namespace kt {
namespace bench {
namespace {

// Picks a sample whose target was answered correctly although the history
// holds more incorrect than correct responses — the paper's setup.
struct Case {
  const data::ResponseSequence* sequence = nullptr;
  int64_t target = 0;
};

Case PickCase(const data::Dataset& windows) {
  for (const auto& seq : windows.sequences) {
    if (seq.length() < 10) continue;
    const int64_t target = 9;
    if (seq.interactions[static_cast<size_t>(target)].response != 1) continue;
    int correct = 0;
    for (int64_t t = 0; t < target; ++t) {
      correct += seq.interactions[static_cast<size_t>(t)].response;
    }
    const int incorrect = static_cast<int>(target) - correct;
    if (incorrect > correct && correct >= 2) return {&seq, target};
  }
  // Fallback: any window with 10 responses.
  for (const auto& seq : windows.sequences) {
    if (seq.length() >= 10) return {&seq, 9};
  }
  return {};
}

void Run() {
  PrintHeader("Fig. 6: response influences (RCKT-AKT) vs attention (SAKT+)",
              "paper: RCKT credits the same-concept correct response and "
              "predicts correctly; SAKT+ attention is near zero on correct "
              "responses and errs");

  data::Dataset windows = MakeWindows("eedi");
  Rng rng(91);
  const auto folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), GetScale().folds, rng);
  data::FoldSplit split = data::MakeFold(windows, folds, 0, 0.1, rng);

  // RCKT-AKT, trained on the counterfactual objective.
  rckt::RCKT model(windows.num_questions, windows.num_concepts,
                   BenchRcktConfig("eedi", rckt::EncoderKind::kAKT, 91));
  rckt::TrainAndEvaluateRckt(model, split, RcktBenchOptions(5));

  // SAKT+ (SAKT with question-ID embeddings — the shared embedder already
  // includes them), trained conventionally.
  models::SAKT sakt(windows.num_questions, windows.num_concepts,
                    BaselineConfig(91));
  eval::TrainAndEvaluate(sakt, split, BaselineTrainOptions(5));

  const Case story = PickCase(windows);
  KT_CHECK(story.sequence != nullptr);
  const auto& seq = *story.sequence;

  rckt::PrefixSample sample{&seq, story.target};
  data::Batch batch = rckt::MakePrefixBatch({sample});
  const auto explanation = model.ExplainTargets(batch).front();

  sakt.set_capture_attention(true);
  Tensor sakt_probs = sakt.PredictBatch(batch);
  const Tensor& attention = sakt.last_attention();  // [1, T, T]

  const auto& target_interaction =
      seq.interactions[static_cast<size_t>(story.target)];
  TablePrinter table({"pos", "question", "concept", "response", "RCKT Inf.",
                      "SAKT+ Att."});
  for (int64_t t = 0; t < story.target; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    const bool same_concept = it.concepts[0] == target_interaction.concepts[0];
    table.AddRow(
        {std::to_string(t),
         "q" + std::to_string(it.question),
         "k" + std::to_string(it.concepts[0]) + (same_concept ? " *" : ""),
         it.response ? "correct" : "INCORRECT",
         FormatFloat(explanation.influence[static_cast<size_t>(t)], 4),
         FormatFloat(attention.at({0, story.target, t}), 4)});
  }
  table.Print(std::cout);
  std::printf("(* = same concept as the target question q%lld/k%lld)\n",
              static_cast<long long>(target_interaction.question),
              static_cast<long long>(target_interaction.concepts[0]));

  const float rckt_prob =
      1.0f / (1.0f + std::exp(-explanation.score));
  const float sakt_prob = sakt_probs.flat(
      batch.FlatIndex(0, story.target));
  std::printf(
      "\nRCKT: total correct influence %.4f vs incorrect %.4f -> %s "
      "(score %.4f)\n",
      explanation.total_correct, explanation.total_incorrect,
      explanation.predicted_correct ? "predict CORRECT" : "predict INCORRECT",
      rckt_prob);
  std::printf("SAKT+: p(correct) = %.4f -> predict %s\n", sakt_prob,
              sakt_prob >= 0.5f ? "CORRECT" : "INCORRECT");
  std::printf("ground truth: %s\n",
              target_interaction.response ? "CORRECT" : "INCORRECT");
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run();
  return 0;
}
