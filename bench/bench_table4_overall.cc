// Reproduces Table IV: overall AUC/ACC of six baselines and three RCKT
// variants on all four datasets, with the paper's "improv." row (best RCKT
// vs best baseline) and a t-test over per-fold AUCs.
//
// Every model — baseline or RCKT — is scored on the identical prefix-sample
// protocol (rckt/samples.h), so the comparison is apples-to-apples. The
// paper's Table III hyper-parameters (lr, lambda, l2, dropout, layers) are
// applied per dataset/encoder and printed below the table.
#include <array>
#include <map>

#include "bench/bench_common.h"
#include "eval/ttest.h"

namespace kt {
namespace bench {
namespace {

constexpr const char* kBaselines[] = {"DKT",   "SAKT", "AKT",
                                      "DIMKT", "IKT",  "QIKT"};
constexpr rckt::EncoderKind kEncoders[] = {
    rckt::EncoderKind::kDKT, rckt::EncoderKind::kSAKT,
    rckt::EncoderKind::kAKT};
constexpr const char* kDatasets[] = {"assist09", "assist12", "slepemapy",
                                     "eedi"};

// Paper Table IV values for reference printing: {auc, acc} per dataset in
// kDatasets order.
const std::map<std::string, std::array<double, 8>> kPaperTable4 = {
    {"DKT", {0.7706, 0.7263, 0.7287, 0.7345, 0.7813, 0.7988, 0.7391, 0.7014}},
    {"SAKT", {0.7674, 0.7248, 0.7283, 0.7344, 0.7850, 0.8012, 0.7417, 0.7030}},
    {"AKT", {0.7837, 0.7343, 0.7718, 0.7536, 0.7866, 0.8019, 0.7828, 0.7281}},
    {"DIMKT", {0.7854, 0.7387, 0.7709, 0.7541, 0.7888, 0.8021, 0.7835, 0.7285}},
    {"IKT", {0.7774, 0.7261, 0.7624, 0.7452, 0.6664, 0.7846, 0.7680, 0.7192}},
    {"QIKT", {0.7815, 0.7324, 0.7623, 0.7462, 0.7832, 0.8003, 0.7803, 0.7260}},
    {"RCKT-DKT",
     {0.7929, 0.7439, 0.7746, 0.7545, 0.7879, 0.8036, 0.7857, 0.7303}},
    {"RCKT-SAKT",
     {0.7899, 0.7425, 0.7728, 0.7559, 0.7844, 0.8041, 0.7807, 0.7285}},
    {"RCKT-AKT",
     {0.7947, 0.7449, 0.7782, 0.7576, 0.7955, 0.8047, 0.7868, 0.7311}},
};

struct CellResult {
  eval::CrossValidationResult cv;
};

void Run() {
  PrintHeader(
      "Table IV: overall performance (AUC/ACC), 5-fold CV",
      "paper: RCKT-AKT best everywhere; RCKT variants take 7 of 8 second "
      "places; improv. +0.35%..+1.19% AUC over the best baseline");

  const BenchScale scale = GetScale();
  // model -> dataset -> cv result
  std::map<std::string, std::map<std::string, CellResult>> results;

  for (const char* dataset : kDatasets) {
    data::Dataset windows = MakeWindows(dataset);
    std::fprintf(stderr, "[table4] dataset %s: %zu windows\n", dataset,
                 windows.sequences.size());

    for (const char* baseline : kBaselines) {
      eval::ModelFactory factory =
          [&](const data::Dataset& train) -> std::unique_ptr<models::KTModel> {
        return MakeBaselineByName(baseline, train, /*seed=*/91);
      };
      CellResult cell;
      cell.cv = rckt::RunBaselineCrossValidation(
          windows, scale.folds, factory, BaselineTrainOptions(5),
          RcktBenchOptions(5), /*seed=*/11, ValidationFraction());
      std::fprintf(stderr, "[table4] %s/%s auc %.4f\n", dataset, baseline,
                   cell.cv.auc_mean);
      results[baseline][dataset] = cell;
    }

    for (rckt::EncoderKind encoder : kEncoders) {
      const std::string name =
          std::string("RCKT-") + rckt::EncoderKindName(encoder);
      rckt::RcktFactory factory =
          [&](const data::Dataset& train) -> std::unique_ptr<rckt::RCKT> {
        return std::make_unique<rckt::RCKT>(
            train.num_questions, train.num_concepts,
            BenchRcktConfig(dataset, encoder, /*seed=*/91));
      };
      CellResult cell;
      cell.cv = rckt::RunRcktCrossValidation(windows, scale.folds, factory,
                                             RcktBenchOptions(5),
                                             /*seed=*/11,
                                             ValidationFraction());
      std::fprintf(stderr, "[table4] %s/%s auc %.4f\n", dataset, name.c_str(),
                   cell.cv.auc_mean);
      results[name][dataset] = cell;
    }
  }

  // Render the table in paper row order.
  std::vector<std::string> row_order;
  for (const char* b : kBaselines) row_order.push_back(b);
  for (rckt::EncoderKind e : kEncoders) {
    row_order.push_back(std::string("RCKT-") + rckt::EncoderKindName(e));
  }

  std::vector<std::string> header = {"Model"};
  for (const char* dataset : kDatasets) {
    header.push_back(std::string(dataset) + " AUC");
    header.push_back(std::string(dataset) + " ACC");
  }
  TablePrinter table(header);
  for (const auto& model : row_order) {
    std::vector<std::string> row = {model};
    for (const char* dataset : kDatasets) {
      const auto& cv = results[model][dataset].cv;
      row.push_back(Fmt4(cv.auc_mean));
      row.push_back(Fmt4(cv.acc_mean));
    }
    table.AddRow(row);
    if (model == "QIKT") table.AddSeparator();
  }

  // improv. row: best RCKT vs best baseline per dataset (AUC), plus t-test.
  std::vector<std::string> improv_row = {"improv. (AUC)"};
  std::vector<std::string> ttest_row = {"t-test p (AUC)"};
  for (const char* dataset : kDatasets) {
    double best_baseline = 0.0;
    std::string best_baseline_name;
    for (const char* b : kBaselines) {
      const double auc = results[b][dataset].cv.auc_mean;
      if (auc > best_baseline) {
        best_baseline = auc;
        best_baseline_name = b;
      }
    }
    double best_rckt = 0.0;
    std::string best_rckt_name;
    for (rckt::EncoderKind e : kEncoders) {
      const std::string name =
          std::string("RCKT-") + rckt::EncoderKindName(e);
      const double auc = results[name][dataset].cv.auc_mean;
      if (auc > best_rckt) {
        best_rckt = auc;
        best_rckt_name = name;
      }
    }
    const double improv = (best_rckt / best_baseline - 1.0) * 100.0;
    improv_row.push_back(StrPrintf("%+.2f%%", improv));
    improv_row.push_back(best_rckt_name);
    const auto t = eval::WelchTTest(
        results[best_rckt_name][dataset].cv.fold_auc,
        results[best_baseline_name][dataset].cv.fold_auc);
    ttest_row.push_back(StrPrintf("p=%.3f", t.p_value));
    ttest_row.push_back("vs " + best_baseline_name);
  }
  table.AddSeparator();
  table.AddRow(improv_row);
  table.AddRow(ttest_row);
  table.Print(std::cout);

  // Paper reference values.
  std::printf("\npaper Table IV reference (AUC/ACC):\n");
  TablePrinter paper(header);
  for (const auto& model : row_order) {
    std::vector<std::string> row = {model};
    const auto& vals = kPaperTable4.at(model);
    for (size_t d = 0; d < 4; ++d) {
      row.push_back(Fmt4(vals[2 * d]));
      row.push_back(Fmt4(vals[2 * d + 1]));
    }
    paper.AddRow(row);
  }
  paper.Print(std::cout);

  // Table III: the RCKT hyper-parameters actually used.
  std::printf("\nTable III hyper-parameters {lr, lambda, l2, dropout, layers} "
              "(layers capped at %s):\n",
              FullMode() ? "2" : "1 in smoke mode");
  TablePrinter hp({"dataset", "RCKT-DKT", "RCKT-SAKT", "RCKT-AKT"});
  for (const char* dataset : kDatasets) {
    std::vector<std::string> row = {dataset};
    for (rckt::EncoderKind e : kEncoders) {
      rckt::RcktConfig c = BenchRcktConfig(dataset, e, 0);
      row.push_back(StrPrintf("{%g, %g, %g, %g, %lld}",
                              static_cast<double>(c.lr),
                              static_cast<double>(c.lambda),
                              static_cast<double>(c.weight_decay),
                              static_cast<double>(c.dropout),
                              static_cast<long long>(c.num_layers)));
    }
    hp.AddRow(row);
  }
  hp.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace kt

int main(int argc, char** argv) {
  kt::bench::InitBenchFlags(&argc, argv);
  kt::bench::Run();
  return 0;
}
