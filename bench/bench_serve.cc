// Online-serving benchmark (DESIGN.md §11): incremental predict/update via
// kt::serve against the offline baseline that re-encodes the whole prefix
// per prediction, plus micro-batcher throughput.
//
// The two paths are bit-identical by contract (tests/serve_test.cc), so one
// binary measures both on the same machine in the same run and writes
// BENCH_serve.json (override with --out=<path>). The headline number is
// "speedups.predict_<enc>_T<len>": single-response latency of the O(1)
// session-cache path over full re-encoding at that history length.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/parallel.h"
#include "data/simulator.h"
#include "rckt/samples.h"
#include "serve/batcher.h"
#include "serve/engine.h"

namespace kt {
namespace {

volatile float g_sink = 0.0f;  // defeats dead-code elimination

double TimeNs(const std::function<void()>& fn, double min_time_sec = 0.2,
              int min_iters = 3) {
  using Clock = std::chrono::steady_clock;
  for (int i = 0; i < 2; ++i) fn();  // warmup
  int64_t iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < min_time_sec || iters < min_iters) {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  return elapsed * 1e9 / static_cast<double>(iters);
}

struct Result {
  std::string encoder;
  std::string op;      // "predict" | "update"
  int64_t seq_len = 0;
  std::string mode;    // "offline_reencode" | "online_incremental"
  double ns_per_iter = 0.0;
};

std::vector<Result> g_results;
double g_batcher_rps = 0.0;
int g_batcher_connections = 0;

// One long-history student per encoder: predict latency at history length
// `T` for (a) the offline scorer re-encoding all T interactions and (b) the
// serving engine answering from its session cache.
void BenchEncoder(rckt::EncoderKind kind, const data::Dataset& ds,
                  int64_t T) {
  rckt::RcktConfig config;
  config.encoder = kind;
  config.dim = 32;
  config.num_layers = 1;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.seed = 4;
  rckt::RCKT model(ds.num_questions, ds.num_concepts, config);
  const auto& seq = ds.sequences[0];
  KT_CHECK(seq.length() > T) << "simulated sequence shorter than T";

  // Offline baseline: every request re-builds and re-encodes the prefix.
  data::Batch batch = rckt::MakePrefixBatch({{&seq, T}});
  const double offline_ns = TimeNs([&] {
    g_sink = model.GeneratorScoreTargets(batch)[0];
  });

  // Online: warm a session to T history steps, then serve predicts from the
  // cached forward stream.
  serve::EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  serve::InferenceEngine engine(model, options);
  for (int64_t t = 0; t < T; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    serve::ServeRequest update;
    update.op = serve::Op::kUpdate;
    update.student = "s";
    update.question = it.question;
    update.response = it.response;
    update.has_concepts = true;
    update.concepts = it.concepts;
    KT_CHECK(engine.Execute(update).ok);
  }
  serve::ServeRequest predict;
  predict.op = serve::Op::kPredict;
  predict.student = "s";
  predict.question = seq.interactions[static_cast<size_t>(T)].question;
  predict.has_concepts = true;
  predict.concepts = seq.interactions[static_cast<size_t>(T)].concepts;
  const double online_ns = TimeNs([&] {
    g_sink = engine.Execute(predict).p;
  });

  // Incremental update cost at this history depth (grows the session; keep
  // the measurement window modest so attention caches stay near T).
  serve::ServeRequest update = predict;
  update.op = serve::Op::kUpdate;
  update.response = 1;
  const double update_ns = TimeNs([&] {
    g_sink = static_cast<float>(engine.Execute(update).history);
  }, /*min_time_sec=*/0.05);

  const char* name = rckt::EncoderKindName(kind);
  g_results.push_back({name, "predict", T, "offline_reencode", offline_ns});
  g_results.push_back({name, "predict", T, "online_incremental", online_ns});
  g_results.push_back({name, "update", T, "online_incremental", update_ns});
  std::printf("  %-4s T=%-4lld offline %10.0f ns  online %8.0f ns  "
              "(%.1fx)  update %8.0f ns\n",
              name, static_cast<long long>(T), offline_ns, online_ns,
              offline_ns / online_ns, update_ns);
}

// Counterfactual recourse at history length T: the stacked fast path
// (insert-only candidates scored from cloned forward streams, flip
// candidates fanned out through GeneratorScoreTargetsStacked) against
// --brute, which runs one full forward pass per candidate set. The two
// are bit-identical by contract (tests/serve_test.cc), so the speedup is
// pure batching.
void BenchRecourse(rckt::EncoderKind kind, const data::Dataset& ds,
                   int64_t T, int k) {
  rckt::RcktConfig config;
  config.encoder = kind;
  config.dim = 32;
  config.num_layers = 1;
  config.num_heads = 2;
  config.dropout = 0.0f;
  config.seed = 4;
  rckt::RCKT model(ds.num_questions, ds.num_concepts, config);
  const auto& seq = ds.sequences[0];
  KT_CHECK(seq.length() > T) << "simulated sequence shorter than T";

  serve::EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  serve::InferenceEngine engine(model, options);
  for (int64_t t = 0; t < T; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    serve::ServeRequest update;
    update.op = serve::Op::kUpdate;
    update.student = "s";
    update.question = it.question;
    update.response = it.response;
    update.has_concepts = true;
    update.concepts = it.concepts;
    KT_CHECK(engine.Execute(update).ok);
  }
  serve::ServeRequest fast;
  fast.op = serve::Op::kRecourse;
  fast.student = "s";
  fast.question = seq.interactions[static_cast<size_t>(T)].question;
  fast.has_concepts = true;
  fast.concepts = seq.interactions[static_cast<size_t>(T)].concepts;
  fast.k = k;
  fast.top = 8;
  serve::ServeRequest brute = fast;
  brute.brute = true;

  const int64_t evaluated = engine.Execute(fast).evaluated;
  const double brute_ns = TimeNs([&] {
    g_sink = engine.Execute(brute).base_p;
  }, /*min_time_sec=*/0.3);
  const double fast_ns = TimeNs([&] {
    g_sink = engine.Execute(fast).base_p;
  }, /*min_time_sec=*/0.3);

  const char* name = rckt::EncoderKindName(kind);
  g_results.push_back({name, "recourse", T, "brute_per_candidate", brute_ns});
  g_results.push_back({name, "recourse", T, "stacked_fanout", fast_ns});
  std::printf("  %-4s T=%-4lld recourse k=%d (%lld sets)  brute %10.0f ns"
              "  stacked %9.0f ns  (%.1fx)\n",
              name, static_cast<long long>(T), k,
              static_cast<long long>(evaluated), brute_ns, fast_ns,
              brute_ns / fast_ns);
}

// Micro-batcher throughput: concurrent closed-loop producers hammering one
// engine through the batcher (in-process; no socket overhead).
void BenchBatcher(const data::Dataset& ds) {
  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 32;
  config.seed = 4;
  rckt::RCKT model(ds.num_questions, ds.num_concepts, config);
  serve::EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  serve::InferenceEngine engine(model, options);
  serve::BatcherOptions batcher_options;
  batcher_options.max_batch = 16;
  batcher_options.max_wait_us = 200;
  serve::MicroBatcher batcher(engine, batcher_options);

  constexpr int kProducers = 8;
  constexpr int kRequests = 400;  // per producer
  std::vector<std::thread> producers;
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      serve::ServeRequest request;
      request.student = "p" + std::to_string(p);
      for (int r = 0; r < kRequests; ++r) {
        request.question = (p * 31 + r) % ds.num_questions;
        if (r % 2 == 0) {
          request.op = serve::Op::kPredict;
        } else {
          request.op = serve::Op::kUpdate;
          request.response = r & 2 ? 1 : 0;
        }
        KT_CHECK(batcher.Submit(request).ok);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  batcher.Stop();
  g_batcher_connections = kProducers;
  g_batcher_rps = kProducers * kRequests / elapsed;
  std::printf("  batcher: %d producers, %.0f requests/s\n", kProducers,
              g_batcher_rps);
}

bool WriteJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"serve\",\n  \"threads\": " << GetNumThreads()
      << ",\n  \"results\": [\n";
  for (size_t i = 0; i < g_results.size(); ++i) {
    const Result& r = g_results[i];
    out << "    {\"encoder\": \"" << r.encoder << "\", \"op\": \"" << r.op
        << "\", \"seq_len\": " << r.seq_len << ", \"mode\": \"" << r.mode
        << "\", \"ns_per_iter\": " << r.ns_per_iter << "}"
        << (i + 1 < g_results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedups\": {\n";
  bool first = true;
  for (size_t i = 0; i + 1 < g_results.size(); ++i) {
    const Result& base = g_results[i];
    const Result& opt = g_results[i + 1];
    const bool predict_pair = base.mode == "offline_reencode" &&
                              opt.mode == "online_incremental" &&
                              base.op == opt.op;
    const bool recourse_pair = base.mode == "brute_per_candidate" &&
                               opt.mode == "stacked_fanout" &&
                               base.op == "recourse" && opt.op == "recourse";
    if (!predict_pair && !recourse_pair) continue;
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << base.op << "_" << base.encoder << "_T" << base.seq_len
        << "\": " << base.ns_per_iter / opt.ns_per_iter;
  }
  out << "\n  },\n  \"batcher\": {\"connections\": " << g_batcher_connections
      << ", \"requests_per_second\": " << g_batcher_rps << "}\n}\n";
  return static_cast<bool>(out);
}

}  // namespace
}  // namespace kt

int main(int argc, char** argv) {
  const kt::FlagParser flags = kt::bench::InitBenchFlags(&argc, argv);
  const std::string out_path = flags.GetString("out", "BENCH_serve.json");

  kt::data::SimulatorConfig sim_config;
  sim_config.num_students = 4;
  sim_config.num_questions = 200;
  sim_config.num_concepts = 10;
  sim_config.min_responses = 140;
  sim_config.max_responses = 160;
  sim_config.seed = 21;
  kt::data::StudentSimulator sim(sim_config);
  const kt::data::Dataset ds = sim.Generate();

  std::printf("serving latency: incremental session cache vs full "
              "re-encoding (threads=%d)\n",
              kt::GetNumThreads());
  for (kt::rckt::EncoderKind kind :
       {kt::rckt::EncoderKind::kDKT, kt::rckt::EncoderKind::kGRU,
        kt::rckt::EncoderKind::kSAKT, kt::rckt::EncoderKind::kAKT}) {
    kt::BenchEncoder(kind, ds, /*T=*/100);
  }
  std::printf("recourse: stacked fan-out vs brute per-candidate passes\n");
  for (kt::rckt::EncoderKind kind :
       {kt::rckt::EncoderKind::kDKT, kt::rckt::EncoderKind::kSAKT}) {
    kt::BenchRecourse(kind, ds, /*T=*/100, /*k=*/3);
  }
  kt::BenchBatcher(ds);

  if (!kt::WriteJson(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
