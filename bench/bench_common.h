// Shared infrastructure for the experiment benches (one binary per paper
// table/figure; see DESIGN.md experiment index).
//
// Scale control: benches default to SMOKE mode, sized so the whole suite
// finishes on one CPU core in minutes. Setting KT_BENCH_FULL=1 enlarges the
// datasets, fold count, and epoch budgets for more stable numbers (closer
// to the paper's protocol). Absolute AUC/ACC differ from the paper (the
// substrate is a synthetic simulator; see DESIGN.md); the shapes —
// orderings, ablation drops, speedups — are the reproduction target.
#ifndef KT_BENCH_BENCH_COMMON_H_
#define KT_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "core/flags.h"
#include "core/parallel.h"
#include "core/string_util.h"
#include "core/table_printer.h"
#include "data/dataset.h"
#include "data/presets.h"
#include "eval/trainer.h"
#include "models/akt.h"
#include "models/difficulty.h"
#include "models/dimkt.h"
#include "models/dkt.h"
#include "models/ikt.h"
#include "models/qikt.h"
#include "models/sakt.h"
#include "obs/obs_flags.h"
#include "rckt/rckt_model.h"
#include "rckt/rckt_trainer.h"
#include "tensor/gemm.h"

namespace kt {
namespace bench {

inline bool FullMode() {
  const char* env = std::getenv("KT_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

// Flags shared by every bench binary (and ktcli): --threads sizes the
// kt::parallel pool, --obs / --trace-out / --run-log arm kt::obs telemetry
// so a BENCH_*.json run carries the same observability artifacts as a
// training run, and --gemm-kernel applies the process-wide GEMM dispatch
// override (tensor/gemm.h contract) so any bench can be pinned to one
// backend family.
inline bool IsCommonBenchFlag(const std::string& key) {
  return key == "threads" || key == "obs" || key == "trace-out" ||
         key == "run-log" || key == "gemm-kernel";
}

// Parses and applies the shared flags, then compacts argv so wrappers with
// their own flag parsing (google-benchmark) never see them. Returns the
// parser for bench-specific flags (e.g. --out).
inline FlagParser InitBenchFlags(int* argc, char** argv) {
  FlagParser flags;
  const Status status = flags.Parse(*argc, argv);
  KT_CHECK(status.ok()) << status.ToString();
  obs::ApplyCommonObsFlags(ApplyCommonFlags(flags));
  const std::string gemm_kernel = flags.GetString("gemm-kernel", "");
  if (!gemm_kernel.empty()) {
    GemmKernel kernel;
    KT_CHECK(GemmKernelByName(gemm_kernel, &kernel))
        << "unknown --gemm-kernel '" << gemm_kernel
        << "' (want auto|reference|tiled|tiled_fma)";
    SetGemmKernel(kernel);
  }
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    bool drop = false;
    if (arg.rfind("--", 0) == 0) {
      std::string key = arg.substr(2);
      const size_t eq = key.find('=');
      const bool has_value_inline = eq != std::string::npos;
      if (has_value_inline) key = key.substr(0, eq);
      if (IsCommonBenchFlag(key)) {
        drop = true;
        // "--key value" form: the value travels with the key.
        if (!has_value_inline && i + 1 < *argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
          ++i;
        }
      }
    }
    if (!drop) argv[kept++] = argv[i];
  }
  *argc = kept;
  return flags;
}

struct BenchScale {
  double dataset_scale;
  int folds;
  int baseline_epochs;
  int rckt_epochs;
  int64_t dim;
  int64_t batch_size;
};

inline BenchScale GetScale() {
  if (FullMode()) {
    return {1.0, 5, 30, 10, 32, 64};
  }
  return {0.3, 2, 30, 5, 32, 32};
}

// Validation fraction for early stopping: the paper's 10% in full mode; a
// larger slice in smoke mode, where 10% of a small dataset gives too noisy
// a stopping signal.
inline double ValidationFraction() { return FullMode() ? 0.1 : 0.2; }

// Generates a preset dataset at bench scale and windows it (paper protocol:
// window 50, minimum length 5).
inline data::Dataset MakeWindows(const std::string& preset_name) {
  const BenchScale scale = GetScale();
  data::SimulatorConfig config =
      data::PresetByName(preset_name, scale.dataset_scale).value();
  data::StudentSimulator simulator(config);
  return data::SplitIntoWindows(simulator.Generate(), 50, 5);
}

inline models::NeuralConfig BaselineConfig(uint64_t seed) {
  models::NeuralConfig config;
  config.dim = GetScale().dim;
  config.num_layers = 1;
  config.num_heads = 2;
  config.dropout = 0.1f;
  config.lr = 1e-3f;
  config.weight_decay = 1e-5f;
  config.seed = seed;
  return config;
}

// Baseline factory by paper name: DKT, SAKT, AKT, DIMKT, IKT, QIKT.
inline std::unique_ptr<models::KTModel> MakeBaselineByName(
    const std::string& name, const data::Dataset& train, uint64_t seed) {
  const models::NeuralConfig config = BaselineConfig(seed);
  if (name == "DKT") {
    return std::make_unique<models::DKT>(train.num_questions,
                                         train.num_concepts, config);
  }
  if (name == "SAKT") {
    return std::make_unique<models::SAKT>(train.num_questions,
                                          train.num_concepts, config);
  }
  if (name == "AKT") {
    return std::make_unique<models::AKT>(train.num_questions,
                                         train.num_concepts, config);
  }
  if (name == "DIMKT") {
    return std::make_unique<models::DIMKT>(
        train.num_questions, train.num_concepts,
        models::ComputeDifficulty(train, train.num_questions), config);
  }
  if (name == "IKT") {
    return std::make_unique<models::IKT>(train.num_questions,
                                         models::IktConfig{});
  }
  if (name == "QIKT") {
    return std::make_unique<models::QIKT>(train.num_questions,
                                          train.num_concepts, config);
  }
  KT_CHECK(false) << "unknown baseline " << name;
  return nullptr;
}

// RCKT config for a dataset/encoder pair: paper Table III hyper-parameters
// with the bench-scale dimension/layer budget applied.
inline rckt::RcktConfig BenchRcktConfig(const std::string& dataset,
                                        rckt::EncoderKind encoder,
                                        uint64_t seed) {
  rckt::RcktConfig config = rckt::RcktConfigFor(dataset, encoder);
  config.dim = GetScale().dim;
  if (!FullMode()) config.num_layers = 1;
  config.seed = seed;
  return config;
}

inline eval::TrainOptions BaselineTrainOptions(uint64_t seed) {
  eval::TrainOptions options;
  options.max_epochs = GetScale().baseline_epochs;
  options.patience = 8;
  options.batch_size = GetScale().batch_size;
  options.seed = seed;
  return options;
}

inline rckt::RcktTrainOptions RcktBenchOptions(uint64_t seed) {
  rckt::RcktTrainOptions options;
  options.max_epochs = GetScale().rckt_epochs;
  options.patience = 3;
  options.batch_size = GetScale().batch_size;
  options.train_stride = 5;
  options.eval_stride = 4;
  options.seed = seed;
  return options;
}

inline std::string Fmt4(double v) { return FormatFloat(v, 4); }

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%s\n", paper.c_str());
  std::printf("mode: %s\n", FullMode() ? "FULL (KT_BENCH_FULL=1)" : "SMOKE");
  // All benches are deterministic in KT_NUM_THREADS; the count only moves
  // wall-clock time, never a metric.
  std::printf("threads: %d (KT_NUM_THREADS)\n\n", GetNumThreads());
}

}  // namespace bench
}  // namespace kt

#endif  // KT_BENCH_BENCH_COMMON_H_
