#include "data/batch.h"

#include <algorithm>

#include "core/check.h"

namespace kt {
namespace data {

Batch MakeBatch(const std::vector<const ResponseSequence*>& sequences,
                int64_t pad_to) {
  KT_CHECK(!sequences.empty());
  Batch batch;
  batch.batch_size = static_cast<int64_t>(sequences.size());
  int64_t max_len = 0;
  for (const auto* seq : sequences)
    max_len = std::max(max_len, seq->length());
  if (pad_to > 0) {
    KT_CHECK_LE(max_len, pad_to);
    max_len = pad_to;
  }
  batch.max_len = max_len;

  const int64_t flat = batch.batch_size * max_len;
  batch.questions.assign(static_cast<size_t>(flat), 0);
  batch.responses.assign(static_cast<size_t>(flat), 0);
  batch.concept_bags.assign(static_cast<size_t>(flat), {});
  batch.valid = Tensor::Zeros(Shape{batch.batch_size, max_len});
  batch.targets = Tensor::Zeros(Shape{batch.batch_size, max_len});

  for (int64_t b = 0; b < batch.batch_size; ++b) {
    const ResponseSequence& seq = *sequences[static_cast<size_t>(b)];
    batch.lengths.push_back(seq.length());
    for (int64_t t = 0; t < seq.length(); ++t) {
      const Interaction& it = seq.interactions[static_cast<size_t>(t)];
      const int64_t i = batch.FlatIndex(b, t);
      batch.questions[static_cast<size_t>(i)] = it.question;
      batch.responses[static_cast<size_t>(i)] = it.response;
      batch.concept_bags[static_cast<size_t>(i)] = it.concepts;
      batch.valid.flat(i) = 1.0f;
      batch.targets.flat(i) = static_cast<float>(it.response);
    }
  }
  return batch;
}

BatchIterator::BatchIterator(const Dataset& dataset, int64_t batch_size,
                             Rng& rng, bool shuffle)
    : dataset_(dataset),
      batch_size_(batch_size),
      rng_(rng),
      shuffle_(shuffle) {
  KT_CHECK_GT(batch_size, 0);
  order_.resize(dataset.sequences.size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  Reset();
}

void BatchIterator::Reset() {
  cursor_ = 0;
  if (shuffle_) rng_.Shuffle(order_);
}

int64_t BatchIterator::NumBatches() const {
  const int64_t n = static_cast<int64_t>(order_.size());
  return (n + batch_size_ - 1) / batch_size_;
}

bool BatchIterator::Next(Batch* batch) {
  if (cursor_ >= order_.size()) return false;
  std::vector<const ResponseSequence*> members;
  while (cursor_ < order_.size() &&
         static_cast<int64_t>(members.size()) < batch_size_) {
    members.push_back(&dataset_.sequences[order_[cursor_]]);
    ++cursor_;
  }
  *batch = MakeBatch(members);
  return true;
}

}  // namespace data
}  // namespace kt
