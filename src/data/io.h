// Dataset import/export in a simple CSV format, so users can run the
// library on real response logs (e.g. preprocessed ASSISTments exports)
// instead of the synthetic simulator.
//
// Format: one interaction per line, header required:
//   student_id,question_id,correct,concept_ids
// where concept_ids is a ';'-separated list (at least one). Lines are
// assumed time-ordered within each student; students may interleave.
// Example:
//   student_id,question_id,correct,concept_ids
//   17,403,1,12;13
//   17,92,0,12
#ifndef KT_DATA_IO_H_
#define KT_DATA_IO_H_

#include <string>

#include "core/status.h"
#include "data/dataset.h"

namespace kt {
namespace data {

// Parses `path` into a Dataset. `num_questions`/`num_concepts` are set to
// 1 + max id encountered. Malformed lines produce descriptive errors with
// line numbers.
Result<Dataset> LoadCsv(const std::string& path);

// Writes `dataset` in the same format (students in sequence order).
Status SaveCsv(const Dataset& dataset, const std::string& path);

}  // namespace data
}  // namespace kt

#endif  // KT_DATA_IO_H_
