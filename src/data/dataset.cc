#include "data/dataset.h"

#include <numeric>

#include "core/check.h"

namespace kt {
namespace data {

int64_t Dataset::TotalResponses() const {
  int64_t total = 0;
  for (const auto& seq : sequences) total += seq.length();
  return total;
}

double Dataset::CorrectRate() const {
  int64_t correct = 0;
  int64_t total = 0;
  for (const auto& seq : sequences) {
    for (const auto& it : seq.interactions) {
      correct += it.response;
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / total;
}

double Dataset::ConceptsPerQuestion() const {
  int64_t concepts = 0;
  int64_t total = 0;
  for (const auto& seq : sequences) {
    for (const auto& it : seq.interactions) {
      concepts += static_cast<int64_t>(it.concepts.size());
      ++total;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(concepts) / total;
}

Dataset SplitIntoWindows(const Dataset& raw, int64_t window,
                         int64_t min_length) {
  KT_CHECK_GT(window, 0);
  KT_CHECK_GT(min_length, 0);
  Dataset out;
  out.name = raw.name;
  out.num_questions = raw.num_questions;
  out.num_concepts = raw.num_concepts;
  for (const auto& seq : raw.sequences) {
    for (int64_t start = 0; start < seq.length(); start += window) {
      const int64_t end = std::min(start + window, seq.length());
      if (end - start < min_length) continue;
      ResponseSequence piece;
      piece.student = seq.student;
      piece.interactions.assign(
          seq.interactions.begin() + static_cast<size_t>(start),
          seq.interactions.begin() + static_cast<size_t>(end));
      out.sequences.push_back(std::move(piece));
    }
  }
  return out;
}

std::vector<int> KFoldAssignment(int64_t num_sequences, int k, Rng& rng) {
  KT_CHECK_GT(k, 1);
  std::vector<int> folds(static_cast<size_t>(num_sequences));
  for (size_t i = 0; i < folds.size(); ++i)
    folds[i] = static_cast<int>(i % static_cast<size_t>(k));
  rng.Shuffle(folds);
  return folds;
}

FoldSplit MakeFold(const Dataset& dataset, const std::vector<int>& folds,
                   int test_fold, double validation_fraction, Rng& rng) {
  KT_CHECK_EQ(static_cast<int64_t>(folds.size()),
              static_cast<int64_t>(dataset.sequences.size()));
  FoldSplit split;
  for (Dataset* d : {&split.train, &split.validation, &split.test}) {
    d->name = dataset.name;
    d->num_questions = dataset.num_questions;
    d->num_concepts = dataset.num_concepts;
  }

  std::vector<size_t> train_indices;
  for (size_t i = 0; i < dataset.sequences.size(); ++i) {
    if (folds[i] == test_fold) {
      split.test.sequences.push_back(dataset.sequences[i]);
    } else {
      train_indices.push_back(i);
    }
  }
  rng.Shuffle(train_indices);
  const size_t val_count = static_cast<size_t>(
      validation_fraction * static_cast<double>(train_indices.size()));
  for (size_t j = 0; j < train_indices.size(); ++j) {
    const auto& seq = dataset.sequences[train_indices[j]];
    if (j < val_count) {
      split.validation.sequences.push_back(seq);
    } else {
      split.train.sequences.push_back(seq);
    }
  }
  return split;
}

}  // namespace data
}  // namespace kt
