#include "data/io.h"

#include <algorithm>
#include <fstream>
#include <map>

#include "core/string_util.h"

namespace kt {
namespace data {
namespace {

// Parses one non-negative integer field; returns -1 on failure.
int64_t ParseId(const std::string& field) {
  if (field.empty()) return -1;
  int64_t value = 0;
  for (char c : field) {
    if (c < '0' || c > '9') return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace

Result<Dataset> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);

  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty file: " + path);
  }
  if (line != "student_id,question_id,correct,concept_ids") {
    return Status::InvalidArgument(
        "unexpected header (want "
        "'student_id,question_id,correct,concept_ids'): " +
        line);
  }

  // Preserve first-seen student order so the output is deterministic.
  std::map<int64_t, size_t> student_index;
  Dataset dataset;
  dataset.name = path;
  int64_t max_question = -1;
  int64_t max_concept = -1;
  int64_t line_number = 1;

  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = Split(line, ',');
    if (fields.size() != 4) {
      return Status::InvalidArgument(StrPrintf(
          "%s:%lld: expected 4 fields, got %zu", path.c_str(),
          static_cast<long long>(line_number), fields.size()));
    }
    const int64_t student = ParseId(fields[0]);
    const int64_t question = ParseId(fields[1]);
    const int64_t correct = ParseId(fields[2]);
    if (student < 0 || question < 0 || correct < 0 || correct > 1) {
      return Status::InvalidArgument(StrPrintf(
          "%s:%lld: malformed ids or correctness", path.c_str(),
          static_cast<long long>(line_number)));
    }

    Interaction interaction;
    interaction.question = question;
    interaction.response = static_cast<int>(correct);
    for (const std::string& concept_field : Split(fields[3], ';')) {
      const int64_t k = ParseId(concept_field);
      if (k < 0) {
        return Status::InvalidArgument(StrPrintf(
            "%s:%lld: malformed concept id '%s'", path.c_str(),
            static_cast<long long>(line_number), concept_field.c_str()));
      }
      interaction.concepts.push_back(k);
      max_concept = std::max(max_concept, k);
    }
    if (interaction.concepts.empty()) {
      return Status::InvalidArgument(
          StrPrintf("%s:%lld: no concepts", path.c_str(),
                    static_cast<long long>(line_number)));
    }
    max_question = std::max(max_question, question);

    auto [it, inserted] =
        student_index.try_emplace(student, dataset.sequences.size());
    if (inserted) {
      ResponseSequence seq;
      seq.student = student;
      dataset.sequences.push_back(std::move(seq));
    }
    dataset.sequences[it->second].interactions.push_back(
        std::move(interaction));
  }

  if (dataset.sequences.empty()) {
    return Status::InvalidArgument("no interactions in " + path);
  }
  dataset.num_questions = max_question + 1;
  dataset.num_concepts = max_concept + 1;
  return dataset;
}

Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "student_id,question_id,correct,concept_ids\n";
  for (const auto& seq : dataset.sequences) {
    for (const auto& it : seq.interactions) {
      out << seq.student << ',' << it.question << ',' << it.response << ',';
      for (size_t i = 0; i < it.concepts.size(); ++i) {
        if (i) out << ';';
        out << it.concepts[i];
      }
      out << '\n';
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace data
}  // namespace kt
