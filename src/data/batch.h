// Mini-batching: pads variable-length windows into rectangular batches with
// validity masks, flattening index fields for embedding lookups.
#ifndef KT_DATA_BATCH_H_
#define KT_DATA_BATCH_H_

#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace kt {
namespace data {

struct Batch {
  int64_t batch_size = 0;
  int64_t max_len = 0;
  // Flattened [B * T] row-major (sequence-major) fields; padding entries
  // hold question 0, response 0, empty concept bag, valid 0.
  std::vector<int64_t> questions;
  std::vector<int> responses;
  std::vector<std::vector<int64_t>> concept_bags;
  std::vector<int64_t> lengths;  // [B]
  Tensor valid;                  // [B, T] 1/0
  Tensor targets;                // [B, T] float correctness

  int64_t FlatIndex(int64_t b, int64_t t) const { return b * max_len + t; }
};

// Builds a batch from sequence pointers. If `pad_to` > 0, every sequence is
// padded to that length (sequences longer than pad_to are rejected);
// otherwise the batch pads to its longest member.
Batch MakeBatch(const std::vector<const ResponseSequence*>& sequences,
                int64_t pad_to = 0);

// Iterates a dataset in shuffled mini-batches; reshuffles each epoch.
class BatchIterator {
 public:
  BatchIterator(const Dataset& dataset, int64_t batch_size, Rng& rng,
                bool shuffle = true);

  // Returns false at epoch end; call Reset() to start the next epoch.
  bool Next(Batch* batch);
  void Reset();

  int64_t NumBatches() const;

 private:
  const Dataset& dataset_;
  int64_t batch_size_;
  Rng& rng_;
  bool shuffle_;
  std::vector<size_t> order_;
  size_t cursor_ = 0;
};

}  // namespace data
}  // namespace kt

#endif  // KT_DATA_BATCH_H_
