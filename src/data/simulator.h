// Synthetic student simulator.
//
// Stands in for the four proprietary datasets the paper evaluates on
// (ASSIST09, ASSIST12, Slepemapy, Eedi — see DESIGN.md substitution table).
// The generative model combines the standard ingredients of student
// modeling:
//   * multi-concept IRT response model with guess and slip:
//       p(correct) = guess + (1 - guess - slip) * sigmoid(a * (theta - b))
//     where theta averages the student's proficiency over the question's
//     concepts,
//   * learning: proficiency on practiced concepts rises with each attempt,
//   * forgetting: unpracticed concepts decay toward their initial level,
//   * cross-concept correlation via a per-student general-ability term,
//   * temporal coherence: students work within a concept for a stretch
//     before switching (as in real tutoring sessions).
//
// These are exactly the structural properties knowledge-tracing models
// exploit, so relative model quality transfers to the synthetic data.
#ifndef KT_DATA_SIMULATOR_H_
#define KT_DATA_SIMULATOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace kt {
namespace data {

struct SimulatorConfig {
  std::string name = "synthetic";
  int64_t num_students = 200;
  int64_t num_questions = 400;
  int64_t num_concepts = 20;
  // Mean concepts per question; values in (1, 2] add a second related
  // concept with probability (avg - 1).
  double avg_concepts_per_question = 1.0;
  int64_t min_responses = 20;
  int64_t max_responses = 100;
  // Desired fraction of correct responses; an ability offset is calibrated
  // to approach it (Table II's %correct column).
  double target_correct_rate = 0.65;

  // Learning dynamics.
  double learn_rate = 0.15;
  double forget_rate = 0.02;
  double guess = 0.15;
  double slip = 0.08;
  double discrimination = 1.3;
  double concept_switch_prob = 0.25;
  // Student heterogeneity.
  double general_ability_std = 0.8;
  double concept_ability_std = 0.6;
  double difficulty_std = 0.9;

  // --- Scenario knobs (src/data/scenarios.cc) ---
  // All default to "off" and, when off, consume no RNG draws, so existing
  // presets generate bit-identical sequences to builds without these knobs.

  // Heavy-tailed question popularity: when > 0, questions within a concept
  // pool are drawn Zipf-distributed (probability proportional to
  // 1/rank^zipf_exponent, rank = position in the pool) instead of
  // uniformly, mimicking real item banks where a few questions dominate.
  double zipf_exponent = 0.0;

  // Adversarial guess/slip bursts: when burst_start_prob > 0, each step
  // outside a burst starts one with that probability; inside a burst each
  // step continues it with burst_continue_prob (geometric length). During a
  // burst the IRT guess/slip are overridden by burst_guess/burst_slip —
  // cheating-like stretches where responses decouple from proficiency.
  double burst_start_prob = 0.0;
  double burst_continue_prob = 0.85;
  double burst_guess = 0.9;
  double burst_slip = 0.02;

  // Spaced-repetition gaps: when gap_prob > 0, before each step (after the
  // first) the student takes a break with that probability, applying
  // gap_steps rounds of forgetting to every concept at once — the
  // forgetting-heavy schedule of spaced practice.
  double gap_prob = 0.0;
  int64_t gap_steps = 25;

  // Mid-stream concept drift: when drift_at is in (0, 1], from step
  // floor(drift_at * length) onward the student's effective ability shifts
  // by drift_ability_shift and every question's difficulty by
  // drift_difficulty_shift — a time-indexed regime change (curriculum jump,
  // interface change) that serving must survive.
  double drift_at = 0.0;
  double drift_ability_shift = 0.0;
  double drift_difficulty_shift = 0.0;

  uint64_t seed = 7;
};

// Ground-truth proficiency trajectory of one student, used by the
// interpretability case studies: proficiency[t][k] is the student's latent
// proficiency on concept k after responding at step t.
struct SimulationTrace {
  std::vector<std::vector<double>> proficiency;
};

class StudentSimulator {
 public:
  explicit StudentSimulator(SimulatorConfig config);

  // Generates the full dataset (one raw sequence per student). Deterministic
  // in config.seed.
  Dataset Generate() const;

  // Generates a single student's sequence of exactly `length` responses,
  // optionally recording the latent proficiency trajectory. `student_seed`
  // selects the student.
  ResponseSequence GenerateStudent(int64_t length, uint64_t student_seed,
                                   SimulationTrace* trace = nullptr) const;

  // Concepts attached to each question (fixed per config seed).
  const std::vector<std::vector<int64_t>>& question_concepts() const {
    return question_concepts_;
  }
  // Per-question IRT difficulty.
  const std::vector<double>& question_difficulty() const {
    return question_difficulty_;
  }

  const SimulatorConfig& config() const { return config_; }
  // The ability offset chosen by calibration to meet target_correct_rate.
  double ability_offset() const { return ability_offset_; }

  // Generates student `student_seed` exactly as Generate() would produce it
  // (sequence length drawn from the per-student stream). The streaming
  // equivalent of Generate(): kt_loadgen --mode scenario iterates students
  // through this so million-student traffic never materializes a Dataset.
  ResponseSequence GenerateStudentAuto(uint64_t student_seed,
                                       SimulationTrace* trace = nullptr) const;

 private:
  void BuildQuestionBank();
  void CalibrateOffset();
  ResponseSequence SimulateOne(int64_t length, Rng& rng, double offset,
                               SimulationTrace* trace) const;

  SimulatorConfig config_;
  std::vector<std::vector<int64_t>> question_concepts_;
  std::vector<double> question_difficulty_;
  std::vector<double> question_discrimination_;
  // concept -> questions whose primary concept it is
  std::vector<std::vector<int64_t>> concept_questions_;
  // Per-concept cumulative Zipf weights over concept_questions_; empty
  // unless config_.zipf_exponent > 0.
  std::vector<std::vector<double>> concept_question_cdf_;
  double ability_offset_ = 0.0;
};

}  // namespace data
}  // namespace kt

#endif  // KT_DATA_SIMULATOR_H_
