// Synthetic student simulator.
//
// Stands in for the four proprietary datasets the paper evaluates on
// (ASSIST09, ASSIST12, Slepemapy, Eedi — see DESIGN.md substitution table).
// The generative model combines the standard ingredients of student
// modeling:
//   * multi-concept IRT response model with guess and slip:
//       p(correct) = guess + (1 - guess - slip) * sigmoid(a * (theta - b))
//     where theta averages the student's proficiency over the question's
//     concepts,
//   * learning: proficiency on practiced concepts rises with each attempt,
//   * forgetting: unpracticed concepts decay toward their initial level,
//   * cross-concept correlation via a per-student general-ability term,
//   * temporal coherence: students work within a concept for a stretch
//     before switching (as in real tutoring sessions).
//
// These are exactly the structural properties knowledge-tracing models
// exploit, so relative model quality transfers to the synthetic data.
#ifndef KT_DATA_SIMULATOR_H_
#define KT_DATA_SIMULATOR_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace kt {
namespace data {

struct SimulatorConfig {
  std::string name = "synthetic";
  int64_t num_students = 200;
  int64_t num_questions = 400;
  int64_t num_concepts = 20;
  // Mean concepts per question; values in (1, 2] add a second related
  // concept with probability (avg - 1).
  double avg_concepts_per_question = 1.0;
  int64_t min_responses = 20;
  int64_t max_responses = 100;
  // Desired fraction of correct responses; an ability offset is calibrated
  // to approach it (Table II's %correct column).
  double target_correct_rate = 0.65;

  // Learning dynamics.
  double learn_rate = 0.15;
  double forget_rate = 0.02;
  double guess = 0.15;
  double slip = 0.08;
  double discrimination = 1.3;
  double concept_switch_prob = 0.25;
  // Student heterogeneity.
  double general_ability_std = 0.8;
  double concept_ability_std = 0.6;
  double difficulty_std = 0.9;

  uint64_t seed = 7;
};

// Ground-truth proficiency trajectory of one student, used by the
// interpretability case studies: proficiency[t][k] is the student's latent
// proficiency on concept k after responding at step t.
struct SimulationTrace {
  std::vector<std::vector<double>> proficiency;
};

class StudentSimulator {
 public:
  explicit StudentSimulator(SimulatorConfig config);

  // Generates the full dataset (one raw sequence per student). Deterministic
  // in config.seed.
  Dataset Generate() const;

  // Generates a single student's sequence of exactly `length` responses,
  // optionally recording the latent proficiency trajectory. `student_seed`
  // selects the student.
  ResponseSequence GenerateStudent(int64_t length, uint64_t student_seed,
                                   SimulationTrace* trace = nullptr) const;

  // Concepts attached to each question (fixed per config seed).
  const std::vector<std::vector<int64_t>>& question_concepts() const {
    return question_concepts_;
  }
  // Per-question IRT difficulty.
  const std::vector<double>& question_difficulty() const {
    return question_difficulty_;
  }

  const SimulatorConfig& config() const { return config_; }
  // The ability offset chosen by calibration to meet target_correct_rate.
  double ability_offset() const { return ability_offset_; }

 private:
  void BuildQuestionBank();
  void CalibrateOffset();
  ResponseSequence SimulateOne(int64_t length, Rng& rng, double offset,
                               SimulationTrace* trace) const;

  SimulatorConfig config_;
  std::vector<std::vector<int64_t>> question_concepts_;
  std::vector<double> question_difficulty_;
  std::vector<double> question_discrimination_;
  // concept -> questions whose primary concept it is
  std::vector<std::vector<int64_t>> concept_questions_;
  double ability_offset_ = 0.0;
};

}  // namespace data
}  // namespace kt

#endif  // KT_DATA_SIMULATOR_H_
