#include "data/simulator.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace kt {
namespace data {
namespace {

double SigmoidD(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

StudentSimulator::StudentSimulator(SimulatorConfig config)
    : config_(std::move(config)) {
  KT_CHECK_GT(config_.num_students, 0);
  KT_CHECK_GT(config_.num_questions, 0);
  KT_CHECK_GT(config_.num_concepts, 0);
  KT_CHECK_GE(config_.avg_concepts_per_question, 1.0);
  KT_CHECK_LE(config_.avg_concepts_per_question, 2.0);
  KT_CHECK(config_.guess + config_.slip < 1.0);
  KT_CHECK_GE(config_.zipf_exponent, 0.0);
  if (config_.burst_start_prob > 0.0) {
    KT_CHECK(config_.burst_guess + config_.burst_slip < 1.0);
  }
  if (config_.gap_prob > 0.0) KT_CHECK_GT(config_.gap_steps, 0);
  KT_CHECK_LE(config_.drift_at, 1.0);
  BuildQuestionBank();
  CalibrateOffset();
}

void StudentSimulator::BuildQuestionBank() {
  Rng rng(config_.seed * 1000003 + 17);
  question_concepts_.resize(static_cast<size_t>(config_.num_questions));
  question_difficulty_.resize(static_cast<size_t>(config_.num_questions));
  question_discrimination_.resize(static_cast<size_t>(config_.num_questions));
  concept_questions_.assign(static_cast<size_t>(config_.num_concepts), {});

  const double extra_prob = config_.avg_concepts_per_question - 1.0;
  for (int64_t q = 0; q < config_.num_questions; ++q) {
    const int64_t primary = rng.UniformInt(config_.num_concepts);
    auto& concepts = question_concepts_[static_cast<size_t>(q)];
    concepts.push_back(primary);
    if (config_.num_concepts > 1 && rng.Bernoulli(extra_prob)) {
      // A related concept: ring-neighbor of the primary, so "relatedness"
      // is structured rather than arbitrary.
      concepts.push_back((primary + 1) % config_.num_concepts);
    }
    question_difficulty_[static_cast<size_t>(q)] =
        rng.Gaussian(0.0, config_.difficulty_std);
    // Mild heterogeneity around the configured discrimination.
    question_discrimination_[static_cast<size_t>(q)] =
        config_.discrimination * std::exp(rng.Gaussian(0.0, 0.2));
    concept_questions_[static_cast<size_t>(primary)].push_back(q);
  }
  // Ensure no concept has an empty question pool (selection needs one).
  for (int64_t k = 0; k < config_.num_concepts; ++k) {
    if (concept_questions_[static_cast<size_t>(k)].empty()) {
      const int64_t q = rng.UniformInt(config_.num_questions);
      concept_questions_[static_cast<size_t>(k)].push_back(q);
    }
  }
  // Zipf popularity: cumulative weight 1/rank^s over each concept's pool,
  // so sampling is one uniform draw plus a binary search.
  if (config_.zipf_exponent > 0.0) {
    concept_question_cdf_.resize(concept_questions_.size());
    for (size_t k = 0; k < concept_questions_.size(); ++k) {
      auto& cdf = concept_question_cdf_[k];
      cdf.resize(concept_questions_[k].size());
      double total = 0.0;
      for (size_t rank = 0; rank < cdf.size(); ++rank) {
        total += std::pow(static_cast<double>(rank + 1),
                          -config_.zipf_exponent);
        cdf[rank] = total;
      }
    }
  }
}

ResponseSequence StudentSimulator::SimulateOne(int64_t length, Rng& rng,
                                               double offset,
                                               SimulationTrace* trace) const {
  const int64_t num_concepts = config_.num_concepts;

  // Latent state: initial and current proficiency per concept.
  const double base = rng.Gaussian(0.0, config_.general_ability_std);
  std::vector<double> initial(static_cast<size_t>(num_concepts));
  std::vector<double> theta(static_cast<size_t>(num_concepts));
  for (int64_t k = 0; k < num_concepts; ++k) {
    initial[static_cast<size_t>(k)] =
        base + rng.Gaussian(0.0, config_.concept_ability_std);
    theta[static_cast<size_t>(k)] = initial[static_cast<size_t>(k)];
  }

  ResponseSequence seq;
  seq.interactions.reserve(static_cast<size_t>(length));
  int64_t current_concept = rng.UniformInt(num_concepts);
  // Drift activates from this step onward (never when drift_at is 0).
  const int64_t drift_step =
      config_.drift_at > 0.0
          ? static_cast<int64_t>(config_.drift_at *
                                 static_cast<double>(length))
          : length + 1;
  bool in_burst = false;

  for (int64_t t = 0; t < length; ++t) {
    // Spaced-practice gap: gap_steps rounds of forgetting applied at once
    // (closed form of the per-step decay toward the initial level).
    if (config_.gap_prob > 0.0 && t > 0 && rng.Bernoulli(config_.gap_prob)) {
      const double keep = std::pow(1.0 - config_.forget_rate,
                                   static_cast<double>(config_.gap_steps));
      for (int64_t k = 0; k < num_concepts; ++k) {
        double& v = theta[static_cast<size_t>(k)];
        v = initial[static_cast<size_t>(k)] +
            (v - initial[static_cast<size_t>(k)]) * keep;
      }
    }
    if (rng.Bernoulli(config_.concept_switch_prob)) {
      current_concept = rng.UniformInt(num_concepts);
    }
    const auto& pool = concept_questions_[static_cast<size_t>(current_concept)];
    int64_t q;
    if (config_.zipf_exponent > 0.0) {
      const auto& cdf =
          concept_question_cdf_[static_cast<size_t>(current_concept)];
      const double u = rng.Uniform() * cdf.back();
      const size_t rank = static_cast<size_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      q = pool[std::min(rank, pool.size() - 1)];
    } else {
      q = pool[static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(pool.size())))];
    }
    const auto& concepts = question_concepts_[static_cast<size_t>(q)];

    double mean_theta = 0.0;
    for (int64_t k : concepts) mean_theta += theta[static_cast<size_t>(k)];
    mean_theta /= static_cast<double>(concepts.size());

    // Adversarial bursts: one Bernoulli per step keeps the draw count
    // deterministic; inside a burst guess/slip are overridden.
    double guess = config_.guess;
    double slip = config_.slip;
    if (config_.burst_start_prob > 0.0) {
      in_burst = in_burst ? rng.Bernoulli(config_.burst_continue_prob)
                          : rng.Bernoulli(config_.burst_start_prob);
      if (in_burst) {
        guess = config_.burst_guess;
        slip = config_.burst_slip;
      }
    }
    const double drift_ability = t >= drift_step
                                     ? config_.drift_ability_shift
                                     : 0.0;
    const double drift_difficulty = t >= drift_step
                                        ? config_.drift_difficulty_shift
                                        : 0.0;

    const double irt = SigmoidD(
        question_discrimination_[static_cast<size_t>(q)] *
        (mean_theta + offset + drift_ability -
         (question_difficulty_[static_cast<size_t>(q)] + drift_difficulty)));
    const double p_correct = guess + (1.0 - guess - slip) * irt;
    const int response = rng.Bernoulli(p_correct) ? 1 : 0;

    Interaction interaction;
    interaction.question = q;
    interaction.response = response;
    interaction.concepts = concepts;
    seq.interactions.push_back(std::move(interaction));

    // Learning on practiced concepts (slightly stronger after an incorrect
    // answer, mirroring remediation), forgetting elsewhere.
    for (int64_t k = 0; k < num_concepts; ++k) {
      const bool practiced =
          std::find(concepts.begin(), concepts.end(), k) != concepts.end();
      double& v = theta[static_cast<size_t>(k)];
      if (practiced) {
        const double gain = config_.learn_rate * (response ? 1.0 : 1.3);
        // Diminishing returns near mastery.
        v += gain * (1.0 - SigmoidD(v - 1.5));
      } else {
        v -= config_.forget_rate * (v - initial[static_cast<size_t>(k)]);
      }
    }
    if (trace) trace->proficiency.push_back(theta);
  }
  return seq;
}

void StudentSimulator::CalibrateOffset() {
  // Bisection on the ability offset: simulate a small probe population and
  // adjust until the correct rate lands near the target. Probe seeds are
  // disjoint from generation seeds so calibration doesn't reuse students.
  double lo = -3.0, hi = 3.0;
  const int64_t probe_students = std::min<int64_t>(80, std::max<int64_t>(30, config_.num_students));
  auto probe_rate = [&](double offset) {
    int64_t correct = 0, total = 0;
    for (int64_t s = 0; s < probe_students; ++s) {
      Rng rng(config_.seed * 7919 + 31 * static_cast<uint64_t>(s) + 1);
      const int64_t len =
          (config_.min_responses + config_.max_responses) / 2;
      ResponseSequence seq = SimulateOne(len, rng, offset, nullptr);
      for (const auto& it : seq.interactions) {
        correct += it.response;
        ++total;
      }
    }
    return static_cast<double>(correct) / static_cast<double>(total);
  };
  for (int iter = 0; iter < 12; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (probe_rate(mid) < config_.target_correct_rate) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  ability_offset_ = 0.5 * (lo + hi);
}

ResponseSequence StudentSimulator::GenerateStudent(
    int64_t length, uint64_t student_seed, SimulationTrace* trace) const {
  Rng rng(config_.seed * 104729 + student_seed * 13 + 5);
  ResponseSequence seq = SimulateOne(length, rng, ability_offset_, trace);
  seq.student = static_cast<int64_t>(student_seed);
  return seq;
}

ResponseSequence StudentSimulator::GenerateStudentAuto(
    uint64_t student_seed, SimulationTrace* trace) const {
  Rng rng(config_.seed * 104729 + student_seed * 13 + 5);
  const int64_t len =
      config_.min_responses +
      rng.UniformInt(config_.max_responses - config_.min_responses + 1);
  ResponseSequence seq = SimulateOne(len, rng, ability_offset_, trace);
  seq.student = static_cast<int64_t>(student_seed);
  return seq;
}

Dataset StudentSimulator::Generate() const {
  Dataset out;
  out.name = config_.name;
  out.num_questions = config_.num_questions;
  out.num_concepts = config_.num_concepts;
  out.sequences.reserve(static_cast<size_t>(config_.num_students));
  for (int64_t s = 0; s < config_.num_students; ++s) {
    out.sequences.push_back(GenerateStudentAuto(static_cast<uint64_t>(s)));
  }
  return out;
}

}  // namespace data
}  // namespace kt
