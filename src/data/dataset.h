// Core data types for knowledge tracing: interactions, response sequences,
// and datasets, plus the preprocessing used throughout the paper
// (length-50 windows, minimum length 5, dataset statistics for Table II).
#ifndef KT_DATA_DATASET_H_
#define KT_DATA_DATASET_H_

#include <string>
#include <vector>

#include "core/rng.h"

namespace kt {
namespace data {

// One student response: question id, binary correctness, and the question's
// knowledge concepts (>= 1 entry).
struct Interaction {
  int64_t question = 0;
  int response = 0;  // 0 = incorrect, 1 = correct
  std::vector<int64_t> concepts;
};

// One student's (windowed) response sequence, ordered by time.
struct ResponseSequence {
  int64_t student = 0;
  std::vector<Interaction> interactions;

  int64_t length() const {
    return static_cast<int64_t>(interactions.size());
  }
};

struct Dataset {
  std::string name;
  int64_t num_questions = 0;
  int64_t num_concepts = 0;
  std::vector<ResponseSequence> sequences;

  int64_t TotalResponses() const;
  // Fraction of correct responses across all interactions.
  double CorrectRate() const;
  // Mean number of concepts attached to each interaction.
  double ConceptsPerQuestion() const;
};

// Splits each raw sequence into windows of at most `window` interactions,
// dropping windows shorter than `min_length` (paper Sec. V-A1: window 50,
// minimum 5). Padding is not materialized here; batching handles it.
Dataset SplitIntoWindows(const Dataset& raw, int64_t window,
                         int64_t min_length);

// Deterministic k-fold assignment: returns fold index in [0, k) for each
// sequence, balanced within +-1 after shuffling with `rng`.
std::vector<int> KFoldAssignment(int64_t num_sequences, int k, Rng& rng);

// Train/test view of a dataset for one fold; additionally carves
// `validation_fraction` of the training sequences into a validation set
// (paper: 10% for early stopping).
struct FoldSplit {
  Dataset train;
  Dataset validation;
  Dataset test;
};
FoldSplit MakeFold(const Dataset& dataset, const std::vector<int>& folds,
                   int test_fold, double validation_fraction, Rng& rng);

}  // namespace data
}  // namespace kt

#endif  // KT_DATA_DATASET_H_
