#include "data/scenarios.h"

namespace kt {
namespace data {
namespace {

int64_t ScaleCount(int64_t base, double scale) {
  const int64_t scaled = static_cast<int64_t>(base * scale);
  return scaled < 8 ? 8 : scaled;
}

}  // namespace

SimulatorConfig ScenarioBase(double scale) {
  SimulatorConfig c;
  c.name = "scenario_base";
  c.num_students = ScaleCount(400, scale);
  c.num_questions = kScenarioQuestions;
  c.num_concepts = kScenarioConcepts;
  c.min_responses = 20;
  c.max_responses = 90;
  c.target_correct_rate = 0.65;
  c.seed = 6001;
  return c;
}

SimulatorConfig ColdStartScenario(double scale) {
  // A flood of brand-new students: every session has < 5 interactions, so
  // serving lives entirely on the empty-history / short-replay hot path and
  // the session store churns through many tiny sessions.
  SimulatorConfig c = ScenarioBase(scale);
  c.name = "cold_start";
  c.num_students = ScaleCount(2000, scale);
  c.min_responses = 1;
  c.max_responses = 4;
  c.seed = 6010;
  return c;
}

SimulatorConfig ForgettingScenario(double scale) {
  // Spaced-repetition schedules: frequent long breaks with strong decay, so
  // proficiency sawtooths instead of climbing — the regime where forgetting
  // dominates and recency matters most.
  SimulatorConfig c = ScenarioBase(scale);
  c.name = "forgetting";
  c.min_responses = 40;
  c.max_responses = 120;
  c.forget_rate = 0.08;
  c.learn_rate = 0.18;
  c.gap_prob = 0.15;
  c.gap_steps = 30;
  c.concept_switch_prob = 0.15;
  c.seed = 6020;
  return c;
}

SimulatorConfig AdversarialScenario(double scale) {
  // Cheating-like bursts: stretches where responses decouple from
  // proficiency (answer keys, random clicking). Mean burst length is
  // 1 / (1 - burst_continue_prob) ≈ 6.7 steps; roughly a fifth of traffic
  // lands inside a burst.
  SimulatorConfig c = ScenarioBase(scale);
  c.name = "adversarial";
  c.burst_start_prob = 0.04;
  c.burst_continue_prob = 0.85;
  c.burst_guess = 0.9;
  c.burst_slip = 0.02;
  c.seed = 6030;
  return c;
}

SimulatorConfig DriftScenario(double scale) {
  // Mid-stream regime change: halfway through each sequence ability drops
  // and items harden (curriculum jump), so the second half contradicts what
  // the first half taught the model about the student.
  SimulatorConfig c = ScenarioBase(scale);
  c.name = "drift";
  c.min_responses = 30;
  c.max_responses = 100;
  c.drift_at = 0.5;
  c.drift_ability_shift = -0.8;
  c.drift_difficulty_shift = 0.4;
  c.seed = 6040;
  return c;
}

SimulatorConfig ZipfScenario(double scale) {
  // Heavy-tailed question popularity: a few items dominate the traffic
  // (real item banks), stressing per-question state and cache behavior.
  SimulatorConfig c = ScenarioBase(scale);
  c.name = "zipf";
  c.zipf_exponent = 1.2;
  c.seed = 6050;
  return c;
}

std::vector<SimulatorConfig> AllScenarios(double scale) {
  return {ColdStartScenario(scale), ForgettingScenario(scale),
          AdversarialScenario(scale), DriftScenario(scale),
          ZipfScenario(scale)};
}

std::vector<std::string> ScenarioNames() {
  return {"cold_start", "forgetting", "adversarial", "drift", "zipf"};
}

Result<SimulatorConfig> ScenarioByName(const std::string& name,
                                       double scale) {
  // The base training log resolves too, so `ktcli simulate --scenario
  // scenario_base` can produce the log the serving model trains on.
  if (name == "scenario_base") return ScenarioBase(scale);
  if (name == "cold_start") return ColdStartScenario(scale);
  if (name == "forgetting") return ForgettingScenario(scale);
  if (name == "adversarial") return AdversarialScenario(scale);
  if (name == "drift") return DriftScenario(scale);
  if (name == "zipf") return ZipfScenario(scale);
  std::string known;
  for (const std::string& s : ScenarioNames()) {
    if (!known.empty()) known += ", ";
    known += s;
  }
  return Status::NotFound("unknown scenario '" + name + "' (valid: " + known +
                          ")");
}

}  // namespace data
}  // namespace kt
