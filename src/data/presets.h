// Simulator presets mirroring the four paper datasets (Table II).
//
// Counts are scaled down from the real logs so CPU training stays tractable;
// the structural statistics the models depend on (correct rate, concepts per
// question, question/concept ratios) follow the paper's Table II.
#ifndef KT_DATA_PRESETS_H_
#define KT_DATA_PRESETS_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/simulator.h"

namespace kt {
namespace data {

// `scale` in (0, 1] multiplies the student count (and thus #responses);
// 1.0 is the default evaluation size used by the benches in full mode.
SimulatorConfig Assist09Preset(double scale = 1.0);
SimulatorConfig Assist12Preset(double scale = 1.0);
SimulatorConfig SlepemapyPreset(double scale = 1.0);
SimulatorConfig EediPreset(double scale = 1.0);

// All four presets in paper order.
std::vector<SimulatorConfig> AllPresets(double scale = 1.0);

// The valid preset names, in paper order.
std::vector<std::string> PresetNames();

// Preset by dataset name ("assist09", "assist12", "slepemapy", "eedi").
// Unknown names return NotFound with the valid name list in the message —
// CLI front ends print it instead of aborting.
Result<SimulatorConfig> PresetByName(const std::string& name,
                                     double scale = 1.0);

}  // namespace data
}  // namespace kt

#endif  // KT_DATA_PRESETS_H_
