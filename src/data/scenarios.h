// Simulator scenarios: production workload classes beyond the four paper
// presets (DESIGN.md §12).
//
// The presets mirror the paper's *datasets*; scenarios mirror the *traffic
// shapes* a deployed `kt::serve` sees — cold-start floods, spaced-practice
// forgetting, adversarial guess/slip bursts, mid-stream concept drift, and
// heavy-tailed question popularity. Every scenario shares one question/
// concept space (kScenarioQuestions x kScenarioConcepts) so a single model
// trained on the `ScenarioBase` log can serve traffic from all of them —
// scripts/check_scenarios.sh gates per-scenario AUC and latency on exactly
// that setup.
#ifndef KT_DATA_SCENARIOS_H_
#define KT_DATA_SCENARIOS_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/simulator.h"

namespace kt {
namespace data {

// Shared id space: every scenario (and the base training log) uses these
// shapes, so models and scenario traffic are interchangeable.
inline constexpr int64_t kScenarioQuestions = 400;
inline constexpr int64_t kScenarioConcepts = 20;

// The "historical log" a scenario-serving model is trained on: the default
// generative model in the scenario id space, no scenario knobs.
SimulatorConfig ScenarioBase(double scale = 1.0);

// `scale` multiplies the student count, as in presets.h.
SimulatorConfig ColdStartScenario(double scale = 1.0);
SimulatorConfig ForgettingScenario(double scale = 1.0);
SimulatorConfig AdversarialScenario(double scale = 1.0);
SimulatorConfig DriftScenario(double scale = 1.0);
SimulatorConfig ZipfScenario(double scale = 1.0);

// All five scenarios in registry order.
std::vector<SimulatorConfig> AllScenarios(double scale = 1.0);

// The valid scenario names, in registry order.
std::vector<std::string> ScenarioNames();

// Scenario by name ("cold_start", "forgetting", "adversarial", "drift",
// "zipf", plus "scenario_base" for the training log). Unknown names return
// NotFound with the valid name list in the message — CLI front ends print
// it instead of aborting.
Result<SimulatorConfig> ScenarioByName(const std::string& name,
                                       double scale = 1.0);

}  // namespace data
}  // namespace kt

#endif  // KT_DATA_SCENARIOS_H_
