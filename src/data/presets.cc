#include "data/presets.h"

namespace kt {
namespace data {
namespace {

int64_t ScaleCount(int64_t base, double scale) {
  const int64_t scaled = static_cast<int64_t>(base * scale);
  return scaled < 8 ? 8 : scaled;
}

}  // namespace

SimulatorConfig Assist09Preset(double scale) {
  SimulatorConfig c;
  c.name = "assist09";
  // Paper: 0.4m responses, 10.7k sequences, 13.5k questions, 151 concepts,
  // 1.22 concepts/question, 63% correct. Scaled ~25x down.
  c.num_students = ScaleCount(420, scale);
  c.num_questions = 520;
  c.num_concepts = 24;
  c.avg_concepts_per_question = 1.22;
  c.min_responses = 20;
  c.max_responses = 90;
  c.target_correct_rate = 0.63;
  c.seed = 109;
  return c;
}

SimulatorConfig Assist12Preset(double scale) {
  SimulatorConfig c;
  c.name = "assist12";
  // Paper: 2.7m responses, 62.6k sequences, 53.1k questions, 265 concepts,
  // 1 concept/question, 70% correct.
  c.num_students = ScaleCount(600, scale);
  c.num_questions = 800;
  c.num_concepts = 36;
  c.avg_concepts_per_question = 1.0;
  c.min_responses = 25;
  c.max_responses = 100;
  c.target_correct_rate = 0.70;
  c.seed = 112;
  return c;
}

SimulatorConfig SlepemapyPreset(double scale) {
  SimulatorConfig c;
  c.name = "slepemapy";
  // Paper: 10.0m responses, 234.5k sequences, 2.2k questions, 1458 concepts,
  // 1 concept/question, 78% correct. Geography facts: many concepts, few
  // question types per place, easy items.
  c.num_students = ScaleCount(800, scale);
  c.num_questions = 300;
  c.num_concepts = 120;
  c.avg_concepts_per_question = 1.0;
  c.min_responses = 30;
  c.max_responses = 110;
  c.target_correct_rate = 0.78;
  // Drill-style practice: faster learning, more within-topic repetition.
  c.learn_rate = 0.2;
  c.concept_switch_prob = 0.15;
  c.seed = 135;
  return c;
}

SimulatorConfig EediPreset(double scale) {
  SimulatorConfig c;
  c.name = "eedi";
  // Paper: NeurIPS 2020 challenge math questions with a concept tree; we use
  // leaf concepts. Correct rate ~64% (diagnostic 4-choice questions; guess
  // rate 0.25).
  c.num_students = ScaleCount(700, scale);
  c.num_questions = 640;
  c.num_concepts = 40;
  c.avg_concepts_per_question = 1.0;
  c.min_responses = 20;
  c.max_responses = 90;
  c.target_correct_rate = 0.64;
  c.guess = 0.25;  // four-option multiple choice
  c.seed = 120;
  return c;
}

std::vector<SimulatorConfig> AllPresets(double scale) {
  return {Assist09Preset(scale), Assist12Preset(scale),
          SlepemapyPreset(scale), EediPreset(scale)};
}

std::vector<std::string> PresetNames() {
  return {"assist09", "assist12", "slepemapy", "eedi"};
}

Result<SimulatorConfig> PresetByName(const std::string& name, double scale) {
  if (name == "assist09") return Assist09Preset(scale);
  if (name == "assist12") return Assist12Preset(scale);
  if (name == "slepemapy") return SlepemapyPreset(scale);
  if (name == "eedi") return EediPreset(scale);
  std::string known;
  for (const std::string& p : PresetNames()) {
    if (!known.empty()) known += ", ";
    known += p;
  }
  return Status::NotFound("unknown preset '" + name + "' (valid: " + known +
                          ")");
}

}  // namespace data
}  // namespace kt
