#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "core/fileio.h"
#include "obs/obs.h"

namespace kt {
namespace obs {
namespace {

constexpr size_t kMaxTraceEventsPerThread = 1 << 20;

struct TraceEvent {
  const char* name;  // string literal supplied by KT_OBS_SCOPE
  double ts_us;      // relative to trace start
  double dur_us;
  int tid;
};

// Per-thread event buffer. The owning thread appends; the flushing thread
// reads under the same mutex. Registered once in a global list.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  int tid = 0;
};

std::atomic<bool> g_tracing{false};
std::atomic<double> g_trace_start_us{0.0};

std::mutex& GlobalMutex() {
  static std::mutex mu;
  return mu;
}

// All thread buffers ever created (never freed: threads outlive regions and
// buffers are tiny when unused).
std::vector<ThreadBuffer*>& AllBuffers() {
  static auto* v = new std::vector<ThreadBuffer*>();
  return *v;
}

std::string& TracePath() {
  static auto* s = new std::string();
  return *s;
}

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();
    b->tid = internal::ThreadSlot();
    std::lock_guard<std::mutex> lock(GlobalMutex());
    AllBuffers().push_back(b);
    return b;
  }();
  return *buffer;
}

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendEventJson(std::string* out, const TraceEvent& event) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "{\"name\":\"%s\",\"cat\":\"kt\",\"ph\":\"X\",\"pid\":1,"
                "\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}",
                event.name, event.tid, event.ts_us, event.dur_us);
  *out += line;
}

}  // namespace

bool TracingActive() { return g_tracing.load(std::memory_order_relaxed); }

void StartTracing(const std::string& path) {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  TracePath() = path;
  for (ThreadBuffer* buffer : AllBuffers()) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  g_trace_start_us.store(NowUs(), std::memory_order_relaxed);
  SetEnabled(true);
  g_tracing.store(true, std::memory_order_relaxed);
}

Status WriteTrace(const std::string& path) {
  // Snapshot every buffer, then render outside the buffer locks.
  std::vector<TraceEvent> events;
  std::vector<int> tids;
  {
    std::lock_guard<std::mutex> lock(GlobalMutex());
    for (ThreadBuffer* buffer : AllBuffers()) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      if (buffer->events.empty()) continue;
      tids.push_back(buffer->tid);
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }

  std::string json;
  json.reserve(events.size() * 96 + 256);
  json += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata first: track 0 is the main thread (first thread
  // slot ever assigned), everything else is a kt::parallel pool worker.
  for (int tid : tids) {
    if (!first) json += ",";
    first = false;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s%d\"}}",
                  tid, tid == 0 ? "main" : "worker-", tid);
    // "main0" would be ugly; track 0 is just "main".
    if (tid == 0) {
      std::snprintf(line, sizeof(line),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":0,\"args\":{\"name\":\"main\"}}");
    }
    json += line;
  }
  for (const TraceEvent& event : events) {
    if (!first) json += ",";
    first = false;
    AppendEventJson(&json, event);
  }
  json += "]}\n";
  return AtomicWriteFile(path, json);
}

Status StopTracing() {
  if (!TracingActive()) return Status::Ok();
  g_tracing.store(false, std::memory_order_relaxed);
  std::string path;
  {
    std::lock_guard<std::mutex> lock(GlobalMutex());
    path = TracePath();
  }
  if (path.empty()) return Status::Ok();
  return WriteTrace(path);
}

namespace internal {

void TraceComplete(const char* name, double start_us, double dur_us) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.events.size() >= kMaxTraceEventsPerThread) {
    static Counter* const dropped = Counter::Get("obs.trace.dropped");
    dropped->Add(1);
    return;
  }
  buffer.events.push_back(
      {name, start_us - g_trace_start_us.load(std::memory_order_relaxed),
       dur_us, buffer.tid});
}

}  // namespace internal
}  // namespace obs
}  // namespace kt
