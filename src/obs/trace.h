// Chrome trace-event JSON collection (chrome://tracing / Perfetto "load
// legacy trace" compatible).
//
// StartTracing(path) arms collection and implicitly enables kt::obs
// recording; every KT_OBS_SCOPE that closes while tracing is active appends
// one complete ("ph":"X") slice to the calling thread's buffer. Threads are
// mapped to stable track ids in first-use order — the main thread is track
// 0 ("main"), each kt::parallel pool worker gets its own track
// ("worker-N") — so a fan-out renders as parallel slices across tracks.
//
// StopTracing() merges the per-thread buffers and atomically writes
//   {"displayTimeUnit":"ms","traceEvents":[...]}
// through AtomicWriteFile; a crash mid-run loses the trace but can never
// leave a torn file under the target name. Timestamps are microseconds
// since StartTracing().
//
// Event names must be string literals (they are stored by pointer until
// flush). Collection is bounded: after kMaxTraceEvents per thread, further
// slices are dropped and counted in the "obs.trace.dropped" counter.
#ifndef KT_OBS_TRACE_H_
#define KT_OBS_TRACE_H_

#include <string>

#include "core/status.h"

namespace kt {
namespace obs {

// True while a StartTracing() collection is running.
bool TracingActive();

// Begins collection into memory; `path` is remembered for StopTracing().
// Also turns on SetEnabled(true) (timers feed the trace). Starting while
// already active restarts the clock and drops buffered events.
void StartTracing(const std::string& path);

// Stops collection and writes the JSON file. No-op Ok() when not tracing.
Status StopTracing();

// Writes the buffered events to `path` without stopping collection
// (obs_flags' atexit hook uses StopTracing; tests use this to inspect).
Status WriteTrace(const std::string& path);

namespace internal {

// Appends one complete slice on the calling thread's track. `start_us` is
// the scope start in absolute steady_clock microseconds (converted to
// trace-relative internally); `dur_us` the duration. Called by
// ScopedTimer::Finish only while TracingActive().
void TraceComplete(const char* name, double start_us, double dur_us);

}  // namespace internal
}  // namespace obs
}  // namespace kt

#endif  // KT_OBS_TRACE_H_
