#include "obs/obs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <sstream>

#include "obs/trace.h"

namespace kt {
namespace obs {
namespace {

std::atomic<bool> g_enabled{false};

// Name -> metric registries. Lookup happens once per call site (cached in a
// function-local static), so a mutex-guarded map is plenty.
std::mutex& RegistryMutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, Counter*>& CounterRegistry() {
  static auto* m = new std::map<std::string, Counter*>();
  return *m;
}

std::map<std::string, Histogram*>& HistogramRegistry() {
  static auto* m = new std::map<std::string, Histogram*>();
  return *m;
}

// Bucket index for a value: 0 for v < 1 (and non-finite guards), else
// 1 + floor(log2(v)) clamped to the table.
size_t BucketIndex(double v) {
  if (!(v >= 1.0)) return 0;
  const int e = std::ilogb(v);
  const int idx = e + 1;
  return static_cast<size_t>(std::min(idx, 63));
}

struct SpinGuard {
  explicit SpinGuard(std::atomic_flag& f) : flag(f) {
    while (flag.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SpinGuard() { flag.clear(std::memory_order_release); }
  std::atomic_flag& flag;
};

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

namespace internal {

int ThreadSlot() {
  static std::atomic<int> next{0};
  thread_local int slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal

Counter* Counter::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& reg = CounterRegistry();
  auto it = reg.find(name);
  if (it == reg.end()) it = reg.emplace(name, new Counter(name)).first;
  return it->second;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

Histogram* Histogram::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& reg = HistogramRegistry();
  auto it = reg.find(name);
  if (it == reg.end()) it = reg.emplace(name, new Histogram(name)).first;
  return it->second;
}

void Histogram::Record(double value) {
  Shard& shard = shards_[static_cast<size_t>(internal::ThreadSlot() %
                                             internal::kShards)];
  SpinGuard guard(shard.lock);
  if (shard.count == 0) {
    shard.min = value;
    shard.max = value;
  } else {
    shard.min = std::min(shard.min, value);
    shard.max = std::max(shard.max, value);
  }
  ++shard.count;
  shard.sum += value;
  ++shard.buckets[BucketIndex(value)];
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const auto& shard : shards_) {
    SpinGuard guard(const_cast<Shard&>(shard).lock);
    if (shard.count == 0) continue;
    if (snap.count == 0) {
      snap.min = shard.min;
      snap.max = shard.max;
    } else {
      snap.min = std::min(snap.min, shard.min);
      snap.max = std::max(snap.max, shard.max);
    }
    snap.count += shard.count;
    snap.sum += shard.sum;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] += shard.buckets[i];
    }
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    SpinGuard guard(shard.lock);
    shard.count = 0;
    shard.sum = 0.0;
    shard.min = 0.0;
    shard.max = 0.0;
    shard.buckets.fill(0);
  }
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  const int64_t rank =
      std::min<int64_t>(count - 1,
                        static_cast<int64_t>(p * static_cast<double>(count)));
  int64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // Upper edge of bucket i; bucket 0 is [0, 1).
      return i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
    }
  }
  return max;
}

void ScopedTimer::Finish() {
  const auto end = std::chrono::steady_clock::now();
  const double us =
      std::chrono::duration<double, std::micro>(end - start_).count();
  // Cache the histogram per (call site x name): the name is a literal, so a
  // registry hit per Finish() is fine — Finish only runs when obs is on.
  Histogram::Get(name_)->Record(us);
  if (TracingActive()) {
    internal::TraceComplete(
        name_,
        std::chrono::duration<double, std::micro>(
            start_.time_since_epoch())
            .count(),
        us);
  }
}

std::vector<Counter*> AllCounters() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<Counter*> out;
  out.reserve(CounterRegistry().size());
  for (const auto& [name, counter] : CounterRegistry()) out.push_back(counter);
  return out;
}

std::vector<Histogram*> AllHistograms() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::vector<Histogram*> out;
  out.reserve(HistogramRegistry().size());
  for (const auto& [name, hist] : HistogramRegistry()) out.push_back(hist);
  return out;
}

std::string SummaryString() {
  std::ostringstream out;
  out << "kt::obs summary\n";
  for (Counter* counter : AllCounters()) {
    const int64_t value = counter->Value();
    if (value == 0) continue;
    out << "  counter " << counter->name() << " = " << value << "\n";
  }
  for (Histogram* hist : AllHistograms()) {
    const HistogramSnapshot snap = hist->Snapshot();
    if (snap.count == 0) continue;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  hist    %s: n=%lld mean=%.1fus p50<=%.0fus p99<=%.0fus "
                  "max=%.1fus",
                  hist->name().c_str(), static_cast<long long>(snap.count),
                  snap.Mean(), snap.Percentile(0.5), snap.Percentile(0.99),
                  snap.max);
    out << line << "\n";
  }
  return out.str();
}

void ResetAllMetrics() {
  for (Counter* counter : AllCounters()) counter->Reset();
  for (Histogram* hist : AllHistograms()) hist->Reset();
}

int64_t CurrentRssBytes() {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long long value = 0;
    if (std::sscanf(line, "VmRSS: %lld kB", &value) == 1) {
      kb = value;
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
#else
  return 0;
#endif
}

}  // namespace obs
}  // namespace kt
