// Per-epoch JSONL run log.
//
// When a path is set (--run-log), the training loops append one JSON object
// per epoch: loss, validation AUC/ACC, wall time, token throughput, GEMM
// FLOPs performed during the epoch (from the kernel-layer counters),
// checkpoint commit latency, and process RSS. The file is rewritten through
// AtomicWriteFile after every append, so a kill at any point leaves a
// complete, parseable log of every finished epoch — the same crash contract
// as kt::ckpt, which the log is designed to sit next to.
//
// Schema (one object per line; tools/obs_check.cc validates it):
//   {"run":str, "epoch":int, "train_loss":num, "val_auc":num,
//    "val_acc":num, "epoch_ms":num, "tokens":int, "tokens_per_sec":num,
//    "gemm_flops":int, "ckpt_ms":num, "rss_bytes":int}
// "ckpt_ms" is 0 on epochs without a checkpoint commit. Forward evolution
// adds keys; existing keys are never renamed or retyped.
#ifndef KT_OBS_RUNLOG_H_
#define KT_OBS_RUNLOG_H_

#include <cstdint>
#include <string>

namespace kt {
namespace obs {

// Arms the run log (empty path disarms). Truncates any previous in-memory
// lines; the file is created on the first Append. Also enables kt::obs
// recording (the log reads the GEMM FLOP counters).
void SetRunLogPath(const std::string& path);
const std::string& RunLogPath();
bool RunLogActive();

// One epoch record. The trainers fill this; fields they cannot know (e.g.
// rss) are stamped by AppendRunLogEntry.
struct RunLogEntry {
  std::string run;  // model / trainer tag
  int64_t epoch = 0;
  double train_loss = 0.0;
  double val_auc = 0.0;
  double val_acc = 0.0;
  double epoch_ms = 0.0;
  int64_t tokens = 0;        // interactions consumed by training this epoch
  int64_t gemm_flops = 0;    // kernel-layer FLOPs spent this epoch
  double ckpt_ms = 0.0;      // checkpoint commit latency (0 = no commit)
};

// Serializes `entry` (plus tokens_per_sec and rss_bytes) as one JSONL line
// and atomically rewrites the log file. No-op when no path is set.
void AppendRunLogEntry(const RunLogEntry& entry);

// One continual-trainer mini-epoch record (kt::continual). Lives in the
// same JSONL file as training epochs, distinguished by "run":"continual";
// the promotion gate's held-out online AUCs are logged here so the decision
// to swap (or not) is always auditable from the run log.
struct ContinualLogEntry {
  int64_t mini_epoch = 0;
  int64_t events = 0;        // stream events consumed since start
  int64_t reservoir_size = 0;
  int64_t samples = 0;       // training samples in this mini-epoch
  double train_loss = 0.0;
  double epoch_ms = 0.0;
  double candidate_auc = 0.0;   // held-out online AUC, candidate weights
  double incumbent_auc = 0.0;   // held-out online AUC, serving weights
  int64_t gate_samples = 0;
  bool promoted = false;
  int64_t weight_version = 0;   // after this mini-epoch
};
void AppendContinualLogEntry(const ContinualLogEntry& entry);

// Drops buffered lines and disarms (tests).
void ResetRunLog();

}  // namespace obs
}  // namespace kt

#endif  // KT_OBS_RUNLOG_H_
