#include "obs/runlog.h"

#include <cstdio>
#include <mutex>

#include "core/fileio.h"
#include "core/logging.h"
#include "obs/obs.h"

namespace kt {
namespace obs {
namespace {

// Run-log state: path + every line appended so far (the file is rewritten
// whole on each append so the on-disk artifact is always complete).
std::mutex& Mutex() {
  static std::mutex mu;
  return mu;
}

std::string& PathStorage() {
  static auto* s = new std::string();
  return *s;
}

std::string& Lines() {
  static auto* s = new std::string();
  return *s;
}

// Minimal JSON string escaping for run tags (quotes, backslashes, control
// bytes); tags are model names, so this rarely fires.
std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void SetRunLogPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(Mutex());
  PathStorage() = path;
  Lines().clear();
  if (!path.empty()) SetEnabled(true);
}

const std::string& RunLogPath() {
  std::lock_guard<std::mutex> lock(Mutex());
  return PathStorage();
}

bool RunLogActive() {
  std::lock_guard<std::mutex> lock(Mutex());
  return !PathStorage().empty();
}

void AppendRunLogEntry(const RunLogEntry& entry) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (PathStorage().empty()) return;
  const double seconds = entry.epoch_ms / 1000.0;
  const double tokens_per_sec =
      seconds > 0.0 ? static_cast<double>(entry.tokens) / seconds : 0.0;
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"run\":\"%s\",\"epoch\":%lld,\"train_loss\":%.9g,"
      "\"val_auc\":%.9g,\"val_acc\":%.9g,\"epoch_ms\":%.3f,"
      "\"tokens\":%lld,\"tokens_per_sec\":%.1f,\"gemm_flops\":%lld,"
      "\"ckpt_ms\":%.3f,\"rss_bytes\":%lld}\n",
      EscapeJson(entry.run).c_str(), static_cast<long long>(entry.epoch),
      entry.train_loss, entry.val_auc, entry.val_acc, entry.epoch_ms,
      static_cast<long long>(entry.tokens), tokens_per_sec,
      static_cast<long long>(entry.gemm_flops), entry.ckpt_ms,
      static_cast<long long>(CurrentRssBytes()));
  Lines() += line;
  const Status status = AtomicWriteFile(PathStorage(), Lines());
  if (!status.ok()) {
    // Telemetry must never kill a training run; warn and keep going.
    KT_LOG(WARNING) << "run log write to " << PathStorage()
                    << " failed: " << status.ToString();
  }
}

void AppendContinualLogEntry(const ContinualLogEntry& entry) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (PathStorage().empty()) return;
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"run\":\"continual\",\"mini_epoch\":%lld,\"events\":%lld,"
      "\"reservoir_size\":%lld,\"samples\":%lld,\"train_loss\":%.9g,"
      "\"epoch_ms\":%.3f,\"candidate_auc\":%.9g,\"incumbent_auc\":%.9g,"
      "\"gate_samples\":%lld,\"promoted\":%s,\"weight_version\":%lld}\n",
      static_cast<long long>(entry.mini_epoch),
      static_cast<long long>(entry.events),
      static_cast<long long>(entry.reservoir_size),
      static_cast<long long>(entry.samples), entry.train_loss, entry.epoch_ms,
      entry.candidate_auc, entry.incumbent_auc,
      static_cast<long long>(entry.gate_samples),
      entry.promoted ? "true" : "false",
      static_cast<long long>(entry.weight_version));
  Lines() += line;
  const Status status = AtomicWriteFile(PathStorage(), Lines());
  if (!status.ok()) {
    KT_LOG(WARNING) << "run log write to " << PathStorage()
                    << " failed: " << status.ToString();
  }
}

void ResetRunLog() {
  std::lock_guard<std::mutex> lock(Mutex());
  PathStorage().clear();
  Lines().clear();
}

}  // namespace obs
}  // namespace kt
