#include "obs/obs_flags.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "core/logging.h"
#include "obs/obs.h"
#include "obs/runlog.h"
#include "obs/trace.h"

namespace kt {
namespace obs {
namespace {

std::atomic<bool> g_print_summary{false};
std::atomic<bool> g_flushed{false};

void AtExitHook() { FlushObservability(); }

}  // namespace

void ApplyCommonObsFlags(const CommonFlagValues& values) {
  const bool any = values.obs_enabled || !values.trace_path.empty() ||
                   !values.run_log_path.empty();
  if (values.obs_enabled) {
    SetEnabled(true);
    g_print_summary.store(true, std::memory_order_relaxed);
  }
  if (!values.run_log_path.empty()) SetRunLogPath(values.run_log_path);
  if (!values.trace_path.empty()) StartTracing(values.trace_path);
  if (any) {
    static bool registered = [] {
      std::atexit(AtExitHook);
      return true;
    }();
    (void)registered;
    g_flushed.store(false, std::memory_order_relaxed);
  }
}

void FlushObservability() {
  if (g_flushed.exchange(true, std::memory_order_relaxed)) return;
  const Status status = StopTracing();
  if (!status.ok()) {
    KT_LOG(WARNING) << "trace flush failed: " << status.ToString();
  }
  if (g_print_summary.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "%s", SummaryString().c_str());
  }
}

}  // namespace obs
}  // namespace kt
