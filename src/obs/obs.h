// kt::obs — zero-dependency observability: counters, histograms, timers.
//
// Design goals, in priority order:
//   1. Bit-identity: nothing here touches model state or floating-point
//      compute, so enabling or disabling observability can never change a
//      loss, a score, or a checkpoint byte. The A/B contract is asserted by
//      tests/obs_test.cc at 1, 2, and 8 threads.
//   2. Near-zero cost when off: every hot-path call site guards on
//      Enabled(), a single relaxed atomic load. With observability off the
//      instrumented binaries execute the same arithmetic as before the
//      instrumentation existed.
//   3. Exact counts under kt::parallel: counters are sharded across
//      cache-line-padded atomics (one shard per thread slot, chosen by a
//      thread-local hash), so concurrent Add() calls from pool workers
//      neither contend on one line nor lose increments. Value() sums the
//      shards; after a parallel region joins, the sum is exact.
//
// Metric objects live in a process-wide registry keyed by name and are
// never freed; Get() returns a stable pointer that call sites cache in a
// function-local static. Recording is thread-safe; Reset() (tests, epoch
// deltas) must not race with concurrent recording.
//
// Tracing (Chrome trace-event JSON) lives in obs/trace.h; the per-epoch
// JSONL run log lives in obs/runlog.h; flag wiring for binaries lives in
// obs/obs_flags.h.
#ifndef KT_OBS_OBS_H_
#define KT_OBS_OBS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace kt {
namespace obs {

// Master switch for counter/histogram/timer recording. Off by default;
// enabled by --obs on (or implicitly by --trace-out / --run-log, which need
// the metrics feeding them). Hot paths guard on this before touching any
// metric object.
bool Enabled();
void SetEnabled(bool on);

namespace internal {

// One cache line per shard so concurrent Add() calls from different pool
// workers do not false-share.
struct alignas(64) CounterShard {
  std::atomic<int64_t> value{0};
};

inline constexpr int kShards = 16;

// Stable per-thread shard slot: the main thread gets slot 0, each new
// thread the next slot (mod kShards). Also the trace track id source.
int ThreadSlot();

}  // namespace internal

// Named monotonic counter. Add() is lock-free (one relaxed fetch_add on the
// calling thread's shard); Value() sums the shards.
class Counter {
 public:
  // Returns the counter registered under `name`, creating it on first use.
  // The pointer is valid for the process lifetime.
  static Counter* Get(const std::string& name);

  void Add(int64_t n) {
    shards_[static_cast<size_t>(internal::ThreadSlot() %
                                internal::kShards)]
        .value.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::array<internal::CounterShard, internal::kShards> shards_;
};

// Merged view of a histogram at one instant.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  // bucket[i] counts values v with 2^(i-1) <= v < 2^i (bucket 0: v < 1).
  std::array<int64_t, 64> buckets{};

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  // Bucket-resolution percentile (upper bound of the bucket holding the
  // p-th value), p in [0, 1]. Exact min/max are tracked separately.
  double Percentile(double p) const;
};

// Named value/latency histogram with power-of-two buckets. Record() takes a
// per-shard spinlock (uncontended in practice: shards are per-thread-slot),
// keeping count/sum/min/max exact.
class Histogram {
 public:
  static Histogram* Get(const std::string& name);

  void Record(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<int64_t, 64> buckets{};
  };

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::array<Shard, internal::kShards> shards_;
};

// RAII timer: when observability is enabled, records the scope's wall time
// in microseconds into Histogram::Get(name) and, when tracing is active
// (obs/trace.h), emits a complete ("ph":"X") trace slice on the calling
// thread's track. `name` must be a string literal (stored by pointer).
// When disabled, construction is one relaxed atomic load and no clock call.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) : name_(name), active_(Enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (active_) Finish();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  void Finish();
  const char* name_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

#define KT_OBS_CONCAT_INNER(a, b) a##b
#define KT_OBS_CONCAT(a, b) KT_OBS_CONCAT_INNER(a, b)
// Times the enclosing scope under `name` (a string literal).
#define KT_OBS_SCOPE(name) \
  ::kt::obs::ScopedTimer KT_OBS_CONCAT(kt_obs_scope_, __LINE__)(name)

// Registry iteration for reports: name-sorted snapshots of everything
// registered so far.
std::vector<Counter*> AllCounters();
std::vector<Histogram*> AllHistograms();

// Human-readable dump of all non-empty counters and histograms (one line
// each), used for the --obs exit summary.
std::string SummaryString();

// Zeroes every registered counter and histogram (registry entries survive).
// Test/report helper; must not race with concurrent recording.
void ResetAllMetrics();

// Resident set size of this process in bytes (Linux /proc/self/status;
// 0 where unsupported). Observability only — never feeds computation.
int64_t CurrentRssBytes();

}  // namespace obs
}  // namespace kt

#endif  // KT_OBS_OBS_H_
