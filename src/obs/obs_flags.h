// Wires the shared observability flags (--obs, --trace-out, --run-log,
// parsed by kt::ApplyCommonFlags) into the kt::obs runtime.
//
// Binaries call ApplyCommonObsFlags(values) once, right after
// ApplyCommonFlags. It enables metric recording, starts tracing, arms the
// run log, and registers an atexit hook that flushes the trace file and —
// when --obs on was explicit — prints the counter/histogram summary to
// stderr. Lives outside kt_core so the flag parser itself stays free of an
// obs dependency (kt_obs links kt_core, not the other way around).
#ifndef KT_OBS_OBS_FLAGS_H_
#define KT_OBS_OBS_FLAGS_H_

#include "core/flags.h"

namespace kt {
namespace obs {

void ApplyCommonObsFlags(const CommonFlagValues& values);

// The atexit body: StopTracing() (writes --trace-out) and the optional
// summary print. Idempotent; exposed for tests and for binaries that want
// to flush before exit.
void FlushObservability();

}  // namespace obs
}  // namespace kt

#endif  // KT_OBS_OBS_FLAGS_H_
