#include "ckpt/training_state.h"

#include <cstring>

#include "ckpt/ckpt.h"
#include "core/binio.h"
#include "nn/serialize.h"
#include "obs/obs.h"

namespace kt {
namespace ckpt {
namespace {

// Tensor lists (Adam moments, best-epoch snapshot) are stored without names:
// their order and shapes are pinned to the module's parameter order, and the
// parse validates each tensor against the expected shape before allocating.
void AppendTensorList(const std::vector<Tensor>& tensors, std::string* out) {
  AppendPod(out, static_cast<uint64_t>(tensors.size()));
  for (const Tensor& t : tensors) {
    AppendPod(out, static_cast<uint32_t>(t.dim()));
    for (int64_t d = 0; d < t.dim(); ++d) {
      AppendPod(out, static_cast<int64_t>(t.size(d)));
    }
    AppendBytes(out, t.data(), sizeof(float) * t.numel());
  }
}

Status ParseTensorList(BinCursor& cursor, const std::vector<Shape>& expected,
                       bool allow_empty, const std::string& what,
                       std::vector<Tensor>* out) {
  uint64_t count = 0;
  if (!cursor.Read(&count)) {
    return Status::IoError("truncated " + what + " tensor count");
  }
  if (count == 0 && allow_empty) {
    out->clear();
    return Status::Ok();
  }
  if (count != expected.size()) {
    return Status::InvalidArgument(
        what + " tensor count mismatch: file has " + std::to_string(count) +
        ", module has " + std::to_string(expected.size()) + " parameters");
  }
  out->clear();
  out->reserve(expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    uint32_t rank = 0;
    if (!cursor.Read(&rank)) {
      return Status::IoError("truncated " + what + " rank");
    }
    if (rank != expected[i].size()) {
      return Status::InvalidArgument(
          what + " rank mismatch at tensor " + std::to_string(i) + ": file " +
          std::to_string(rank) + " vs module " +
          std::to_string(expected[i].size()));
    }
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!cursor.Read(&shape[d])) {
        return Status::IoError("truncated " + what + " shape");
      }
    }
    if (shape != expected[i]) {
      return Status::InvalidArgument(
          what + " shape mismatch at tensor " + std::to_string(i) + ": file " +
          ShapeToString(shape) + " vs module " + ShapeToString(expected[i]));
    }
    Tensor value(shape);
    if (!cursor.ReadBytes(value.data(), sizeof(float) * value.numel())) {
      return Status::IoError("truncated " + what + " data");
    }
    out->push_back(std::move(value));
  }
  return Status::Ok();
}

std::vector<Shape> ParameterShapes(const nn::Module& module) {
  std::vector<Shape> shapes;
  for (const auto& p : module.Parameters()) shapes.push_back(p.value().shape());
  return shapes;
}

}  // namespace

void AppendAdamState(const nn::Adam& adam, std::string* out) {
  AppendPod(out, static_cast<int64_t>(adam.step_count()));
  AppendTensorList(adam.moment1(), out);
  AppendTensorList(adam.moment2(), out);
}

Status ParseAdamState(const char* data, size_t size,
                      const std::vector<Shape>& expected, nn::Adam* adam) {
  BinCursor cursor(data, size);
  int64_t step = 0;
  if (!cursor.Read(&step) || step < 0) {
    return Status::InvalidArgument("corrupt adam step counter");
  }
  std::vector<Tensor> m, v;
  if (Status status = ParseTensorList(cursor, expected, false, "adam m", &m);
      !status.ok()) {
    return status;
  }
  if (Status status = ParseTensorList(cursor, expected, false, "adam v", &v);
      !status.ok()) {
    return status;
  }
  if (!cursor.done()) {
    return Status::InvalidArgument("trailing bytes in adam state");
  }
  adam->SetState(m, v, step);
  return Status::Ok();
}

Status SaveTrainingState(const TrainingState& state, const std::string& path) {
  KT_OBS_SCOPE("ckpt/save");
  if (obs::Enabled()) {
    static obs::Counter* const saves = obs::Counter::Get("ckpt.saves");
    saves->Add(1);
  }
  KT_CHECK(state.module != nullptr);
  KT_CHECK(state.progress != nullptr);

  CheckpointWriter writer;

  std::string& meta = writer.Section("meta");
  AppendPod(&meta, static_cast<uint32_t>(state.tag.size()));
  AppendBytes(&meta, state.tag.data(), state.tag.size());

  nn::AppendModuleState(*state.module, &writer.Section("module"));

  if (state.optimizer != nullptr) {
    AppendAdamState(*state.optimizer, &writer.Section("adam"));
  }

  std::string& rng = writer.Section("rng");
  AppendPod(&rng, static_cast<uint32_t>(state.rngs.size()));
  for (const auto& [name, stream] : state.rngs) {
    KT_CHECK(stream != nullptr);
    AppendPod(&rng, static_cast<uint32_t>(name.size()));
    AppendBytes(&rng, name.data(), name.size());
    const Rng::State s = stream->GetState();
    for (uint64_t word : s.s) AppendPod(&rng, word);
    AppendPod(&rng, static_cast<uint8_t>(s.has_cached_gaussian ? 1 : 0));
    AppendPod(&rng, s.cached_gaussian);
  }

  const TrainerProgress& p = *state.progress;
  std::string& progress = writer.Section("progress");
  AppendPod(&progress, p.next_epoch);
  AppendPod(&progress, p.epochs_run);
  AppendPod(&progress, p.best_val_auc);
  AppendPod(&progress, p.best_epoch);
  AppendPod(&progress, p.epochs_since_best);
  AppendPod(&progress, static_cast<uint64_t>(p.val_auc_history.size()));
  for (double v : p.val_auc_history) AppendPod(&progress, v);
  AppendPod(&progress, static_cast<uint64_t>(p.train_loss_history.size()));
  for (double v : p.train_loss_history) AppendPod(&progress, v);

  if (state.best_state != nullptr) {
    AppendTensorList(*state.best_state, &writer.Section("best"));
  }

  return writer.Commit(path);
}

Status LoadTrainingState(const TrainingState& state, const std::string& path) {
  KT_OBS_SCOPE("ckpt/load");
  if (obs::Enabled()) {
    static obs::Counter* const loads = obs::Counter::Get("ckpt.loads");
    loads->Add(1);
  }
  KT_CHECK(state.module != nullptr);
  KT_CHECK(state.progress != nullptr);

  CheckpointReader reader;
  if (Status status = reader.Open(path); !status.ok()) return status;

  // Parse and validate every section into temporaries first; live state is
  // only touched in the commit block at the bottom.
  std::string_view section;

  if (Status status = reader.Find("meta", &section); !status.ok()) {
    return status;
  }
  {
    BinCursor cursor(section.data(), section.size());
    uint32_t tag_len = 0;
    if (!cursor.Read(&tag_len) || tag_len != state.tag.size()) {
      return Status::InvalidArgument("checkpoint tag mismatch in " + path +
                                     " (expected '" + state.tag + "')");
    }
    std::string tag;
    if (!cursor.ReadString(&tag, tag_len) || tag != state.tag) {
      return Status::InvalidArgument("checkpoint tag mismatch in " + path +
                                     ": file '" + tag + "' vs expected '" +
                                     state.tag + "'");
    }
  }

  const std::vector<Shape> shapes = ParameterShapes(*state.module);

  int64_t adam_step = 0;
  std::vector<Tensor> adam_m, adam_v;
  if (state.optimizer != nullptr) {
    if (Status status = reader.Find("adam", &section); !status.ok()) {
      return status;
    }
    BinCursor cursor(section.data(), section.size());
    if (!cursor.Read(&adam_step) || adam_step < 0) {
      return Status::InvalidArgument("corrupt adam step counter in " + path);
    }
    if (Status status =
            ParseTensorList(cursor, shapes, false, "adam m", &adam_m);
        !status.ok()) {
      return status;
    }
    if (Status status =
            ParseTensorList(cursor, shapes, false, "adam v", &adam_v);
        !status.ok()) {
      return status;
    }
    if (!cursor.done()) {
      return Status::InvalidArgument("trailing bytes in adam section of " +
                                     path);
    }
  }

  std::vector<Rng::State> rng_states(state.rngs.size());
  if (!state.rngs.empty()) {
    if (Status status = reader.Find("rng", &section); !status.ok()) {
      return status;
    }
    BinCursor cursor(section.data(), section.size());
    uint32_t count = 0;
    if (!cursor.Read(&count)) {
      return Status::IoError("truncated rng count in " + path);
    }
    std::vector<bool> restored(state.rngs.size(), false);
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t name_len = 0;
      if (!cursor.Read(&name_len) || cursor.remaining() < name_len) {
        return Status::IoError("truncated rng name in " + path);
      }
      std::string name;
      cursor.ReadString(&name, name_len);
      Rng::State s;
      for (uint64_t& word : s.s) {
        if (!cursor.Read(&word)) {
          return Status::IoError("truncated rng state in " + path);
        }
      }
      uint8_t has_cached = 0;
      if (!cursor.Read(&has_cached) || !cursor.Read(&s.cached_gaussian)) {
        return Status::IoError("truncated rng state in " + path);
      }
      s.has_cached_gaussian = has_cached != 0;
      for (size_t j = 0; j < state.rngs.size(); ++j) {
        if (state.rngs[j].first == name) {
          rng_states[j] = s;
          restored[j] = true;
        }
      }
    }
    for (size_t j = 0; j < state.rngs.size(); ++j) {
      if (!restored[j]) {
        return Status::InvalidArgument("checkpoint " + path +
                                       " has no state for rng stream '" +
                                       state.rngs[j].first + "'");
      }
    }
  }

  TrainerProgress progress;
  if (Status status = reader.Find("progress", &section); !status.ok()) {
    return status;
  }
  {
    BinCursor cursor(section.data(), section.size());
    uint64_t val_len = 0, loss_len = 0;
    if (!cursor.Read(&progress.next_epoch) ||
        !cursor.Read(&progress.epochs_run) ||
        !cursor.Read(&progress.best_val_auc) ||
        !cursor.Read(&progress.best_epoch) ||
        !cursor.Read(&progress.epochs_since_best) || !cursor.Read(&val_len) ||
        cursor.remaining() < val_len * sizeof(double)) {
      return Status::IoError("truncated progress section in " + path);
    }
    progress.val_auc_history.resize(val_len);
    for (double& v : progress.val_auc_history) cursor.Read(&v);
    if (!cursor.Read(&loss_len) ||
        cursor.remaining() < loss_len * sizeof(double)) {
      return Status::IoError("truncated progress section in " + path);
    }
    progress.train_loss_history.resize(loss_len);
    for (double& v : progress.train_loss_history) cursor.Read(&v);
    if (!cursor.done()) {
      return Status::InvalidArgument("trailing bytes in progress section of " +
                                     path);
    }
  }

  std::vector<Tensor> best;
  if (state.best_state != nullptr) {
    if (Status status = reader.Find("best", &section); !status.ok()) {
      return status;
    }
    BinCursor cursor(section.data(), section.size());
    if (Status status =
            ParseTensorList(cursor, shapes, true, "best state", &best);
        !status.ok()) {
      return status;
    }
    if (!cursor.done()) {
      return Status::InvalidArgument("trailing bytes in best section of " +
                                     path);
    }
  }

  // Module parameters last: ParseModuleState stages internally, so this is
  // the first point anything can be mutated — and it either fully succeeds
  // or leaves the module untouched.
  if (Status status = reader.Find("module", &section); !status.ok()) {
    return status;
  }
  if (Status status = nn::ParseModuleState(section.data(), section.size(),
                                           *state.module);
      !status.ok()) {
    return status;
  }

  // Commit phase: everything below is validated and cannot fail.
  if (state.optimizer != nullptr) {
    state.optimizer->SetState(adam_m, adam_v, adam_step);
  }
  for (size_t j = 0; j < state.rngs.size(); ++j) {
    state.rngs[j].second->SetState(rng_states[j]);
  }
  *state.progress = std::move(progress);
  if (state.best_state != nullptr) *state.best_state = std::move(best);
  return Status::Ok();
}

}  // namespace ckpt
}  // namespace kt
