#include "ckpt/ckpt.h"

#include <cstring>

#include "core/binio.h"
#include "core/crc32.h"
#include "core/fileio.h"
#include "obs/obs.h"

namespace kt {
namespace ckpt {
namespace {

constexpr char kMagic[4] = {'K', 'T', 'C', '1'};

// Keeps a corrupt `name_len` from driving a huge allocation; real section
// names are a handful of characters.
constexpr uint32_t kMaxSectionNameLen = 256;

}  // namespace

std::string& CheckpointWriter::Section(const std::string& name) {
  for (auto& [existing, bytes] : sections_) {
    if (existing == name) return bytes;
  }
  sections_.emplace_back(name, std::string());
  return sections_.back().second;
}

Status CheckpointWriter::Commit(const std::string& path) const {
  std::string payload;
  AppendPod(&payload, static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, bytes] : sections_) {
    AppendPod(&payload, static_cast<uint32_t>(name.size()));
    AppendBytes(&payload, name.data(), name.size());
    AppendPod(&payload, static_cast<uint64_t>(bytes.size()));
    AppendBytes(&payload, bytes.data(), bytes.size());
  }

  std::string file(kMagic, sizeof(kMagic));
  AppendPod(&file, kFormatVersion);
  AppendPod(&file, Crc32(payload.data(), payload.size()));
  AppendPod(&file, static_cast<uint64_t>(payload.size()));
  file += payload;
  if (obs::Enabled()) {
    static obs::Counter* const commits = obs::Counter::Get("ckpt.commits");
    static obs::Counter* const bytes = obs::Counter::Get("ckpt.bytes_written");
    commits->Add(1);
    bytes->Add(static_cast<int64_t>(file.size()));
  }
  return AtomicWriteFile(path, file);
}

Status CheckpointReader::Open(const std::string& path) {
  sections_.clear();
  if (Status status = ReadFileToString(path, &file_); !status.ok()) {
    return status;
  }

  BinCursor header(file_.data(), file_.size());
  char magic[4];
  if (!header.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a kt::ckpt file: " + path);
  }
  uint32_t version = 0;
  if (!header.Read(&version)) {
    return Status::InvalidArgument("truncated version in " + path);
  }
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version " + std::to_string(version) +
        " in " + path + " (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  }
  uint32_t expected_crc = 0;
  uint64_t payload_size = 0;
  if (!header.Read(&expected_crc) || !header.Read(&payload_size)) {
    return Status::InvalidArgument("truncated header in " + path);
  }
  if (payload_size != header.remaining()) {
    return Status::InvalidArgument(
        "payload size mismatch in " + path + ": header declares " +
        std::to_string(payload_size) + " bytes, file holds " +
        std::to_string(header.remaining()));
  }
  const char* payload = header.ptr();
  if (Crc32(payload, payload_size) != expected_crc) {
    return Status::InvalidArgument("checksum mismatch in " + path +
                                   " (file is corrupt)");
  }

  BinCursor cursor(payload, payload_size);
  uint32_t section_count = 0;
  if (!cursor.Read(&section_count)) {
    return Status::InvalidArgument("truncated section count in " + path);
  }
  for (uint32_t i = 0; i < section_count; ++i) {
    uint32_t name_len = 0;
    if (!cursor.Read(&name_len) || name_len > kMaxSectionNameLen ||
        cursor.remaining() < name_len) {
      return Status::InvalidArgument("corrupt section name in " + path);
    }
    std::string name;
    cursor.ReadString(&name, name_len);
    uint64_t size = 0;
    if (!cursor.Read(&size) || cursor.remaining() < size) {
      return Status::InvalidArgument("corrupt section '" + name + "' in " +
                                     path);
    }
    sections_.emplace_back(std::move(name),
                           std::string_view(cursor.ptr(), size));
    cursor.Skip(size);
  }
  if (!cursor.done()) {
    return Status::InvalidArgument(
        std::to_string(cursor.remaining()) +
        " trailing payload bytes after the last section in " + path);
  }
  return Status::Ok();
}

bool CheckpointReader::Has(const std::string& name) const {
  for (const auto& [existing, view] : sections_) {
    if (existing == name) return true;
  }
  return false;
}

Status CheckpointReader::Find(const std::string& name,
                              std::string_view* out) const {
  for (const auto& [existing, view] : sections_) {
    if (existing == name) {
      *out = view;
      return Status::Ok();
    }
  }
  return Status::NotFound("checkpoint has no section '" + name + "'");
}

}  // namespace ckpt
}  // namespace kt
