// Full-training-state checkpointing on top of the kt::ckpt container.
//
// A training checkpoint captures everything a resumed run needs to be
// bit-identical to an uninterrupted one:
//   * module parameters (section "module", the nn/serialize encoding),
//   * Adam first/second moments and step counter (section "adam"),
//   * every named core::Rng stream the trainer consumes (section "rng"),
//   * trainer progress — epoch, best validation metric, early-stop counter,
//     loss/AUC history (section "progress"),
//   * the best-epoch parameter snapshot kept for early stopping
//     (section "best"),
//   * a caller-chosen tag, typically the model name, verified on load so a
//     checkpoint cannot be resumed into a different architecture
//     (section "meta").
//
// LoadTrainingState is all-or-nothing: every section is parsed and
// validated (names, shapes, counts) before the first byte of live state is
// touched, so a corrupt file leaves the model, optimizer, and RNGs exactly
// as they were.
#ifndef KT_CKPT_TRAINING_STATE_H_
#define KT_CKPT_TRAINING_STATE_H_

#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "nn/adam.h"
#include "nn/module.h"

namespace kt {
namespace ckpt {

// Where a training loop stands; the checkpoint freezes this alongside the
// parameters so a resume continues exactly where the run was killed.
struct TrainerProgress {
  int64_t next_epoch = 0;  // first epoch the resumed loop should run
  int64_t epochs_run = 0;
  double best_val_auc = 0.0;
  int64_t best_epoch = -1;
  int64_t epochs_since_best = 0;  // early-stopping counter
  std::vector<double> val_auc_history;
  std::vector<double> train_loss_history;
};

// Live references covered by one checkpoint. `module` and `progress` are
// required; `optimizer`, `rngs`, and `best_state` are included when
// non-null/non-empty. The same struct drives save and load.
struct TrainingState {
  std::string tag;  // verified on load (typically the model name)
  nn::Module* module = nullptr;
  nn::Adam* optimizer = nullptr;
  std::vector<std::pair<std::string, Rng*>> rngs;
  TrainerProgress* progress = nullptr;
  std::vector<Tensor>* best_state = nullptr;  // empty vector = no best yet
};

// Atomically writes the checkpoint (crash at any offset leaves the previous
// file intact).
Status SaveTrainingState(const TrainingState& state, const std::string& path);

// Restores all referenced state from `path`. On any error (corruption,
// tag/shape mismatch, missing section) nothing is modified.
Status LoadTrainingState(const TrainingState& state, const std::string& path);

// Buffer-level Adam-state encoding (the "adam" section layout: step counter,
// then the moment-1 and moment-2 tensor lists in parameter order), exposed
// so other checkpoint producers — the continual trainer — embed optimizer
// state in their own kt::ckpt containers with the same validation story.
void AppendAdamState(const nn::Adam& adam, std::string* out);
// Parses a buffer written by AppendAdamState against `expected` (the
// module's parameter shapes); mutates `adam` only after the whole buffer
// validates.
Status ParseAdamState(const char* data, size_t size,
                      const std::vector<Shape>& expected, nn::Adam* adam);

}  // namespace ckpt
}  // namespace kt

#endif  // KT_CKPT_TRAINING_STATE_H_
