// kt::ckpt — versioned, CRC32-checksummed, crash-safe checkpoint container.
//
// File layout (little-endian):
//   magic "KTC1" | uint32 format_version | uint32 crc32(payload) |
//   uint64 payload_size | payload
// Payload:
//   uint32 section_count |
//   per section: uint32 name_len | name bytes | uint64 size | size bytes
//
// Sections are opaque byte blobs keyed by name; higher layers (see
// training_state.h) define what goes in each. Readers verify the magic,
// the format version, the declared payload size, and the checksum before
// any section is exposed, so truncation, bit flips, and torn writes all
// surface as a descriptive Status instead of garbage state.
//
// Commit() writes through core::AtomicWriteFile (tmp + fsync + rename), so
// a crash at any byte offset leaves either the previous checkpoint or the
// new one on disk — never a partial file under the final name.
//
// Compatibility rule: the format version is bumped only for layout changes
// of this container; readers reject versions they do not know. Section
// payload evolution is handled by the section owners (add new sections or
// new trailing fields; never reinterpret existing bytes).
#ifndef KT_CKPT_CKPT_H_
#define KT_CKPT_CKPT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/status.h"

namespace kt {
namespace ckpt {

inline constexpr uint32_t kFormatVersion = 1;

// Accumulates named sections in memory, then commits them atomically.
class CheckpointWriter {
 public:
  // Returns the mutable byte buffer for section `name`, creating it on
  // first use. Append with kt::AppendPod / AppendBytes (core/binio.h).
  std::string& Section(const std::string& name);

  // Assembles the container, checksums the payload, and atomically
  // replaces `path`.
  Status Commit(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

// Reads and fully verifies a checkpoint file, then serves section views.
class CheckpointReader {
 public:
  // Loads `path` into memory and verifies magic/version/size/checksum.
  Status Open(const std::string& path);

  bool Has(const std::string& name) const;
  // Points `*out` at the section's bytes (valid while the reader lives).
  Status Find(const std::string& name, std::string_view* out) const;

 private:
  std::string file_;
  std::vector<std::pair<std::string, std::string_view>> sections_;
};

}  // namespace ckpt
}  // namespace kt

#endif  // KT_CKPT_CKPT_H_
