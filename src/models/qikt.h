// QIKT (Chen et al., 2023): question-centric interpretable knowledge
// tracing with an IRT prediction layer.
//
// An LSTM encodes the interaction history into knowledge states; three
// interpretable question-centric quantities are then produced:
//   * mastery   alpha_t = MLP([h_{t-1} (+) e_t])      (knowledge mastery)
//   * difficulty beta_q = MLP(e_t)                    (question difficulty)
//   * discrimination a_q = softplus(MLP(e_t))         (question sharpness)
// and the prediction layer is classic IRT: logit = a_q (alpha_t - beta_q).
// The scalars are exposed so downstream tools can inspect the decision.
#ifndef KT_MODELS_QIKT_H_
#define KT_MODELS_QIKT_H_

#include <memory>

#include "models/embedder.h"
#include "models/neural_base.h"
#include "nn/linear.h"
#include "nn/lstm.h"

namespace kt {
namespace models {

class QIKT : public NeuralKTModel {
 public:
  QIKT(int64_t num_questions, int64_t num_concepts, NeuralConfig config);

  // Interpretable quantities from the most recent PredictBatch call, each
  // [B, T]: mastery alpha, difficulty beta, discrimination a.
  struct IrtTerms {
    Tensor mastery;
    Tensor difficulty;
    Tensor discrimination;
  };
  const IrtTerms& last_terms() const { return last_terms_; }

  // Every forward pass records last_terms_.
  bool ParallelEvalSafe() const override { return false; }

 protected:
  ag::Variable ForwardLogits(const data::Batch& batch,
                             const nn::Context& ctx) override;

 private:
  InteractionEmbedder embedder_;
  std::unique_ptr<nn::LSTM> lstm_;
  nn::Linear mastery_hidden_;
  nn::Linear mastery_out_;
  nn::Linear difficulty_out_;
  nn::Linear discrimination_out_;
  IrtTerms last_terms_;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_QIKT_H_
