#include "models/neural_base.h"

#include "nn/losses.h"
#include "tensor/tensor_ops.h"

namespace kt {
namespace models {

NeuralKTModel::NeuralKTModel(std::string name, NeuralConfig config)
    : config_(config), rng_(config.seed * 33 + 5), name_(std::move(name)) {}

void NeuralKTModel::FinishInit() {
  nn::AdamOptions options;
  options.lr = config_.lr;
  options.weight_decay = config_.weight_decay;
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), options);
}

Tensor NeuralKTModel::PredictBatch(const data::Batch& batch) {
  ag::NoGradGuard no_grad;
  nn::Context ctx;  // inference: no dropout
  ag::Variable logits = ForwardLogits(batch, ctx);
  return kt::Sigmoid(logits.value());
}

float NeuralKTModel::TrainBatch(const data::Batch& batch) {
  KT_CHECK(optimizer_ != nullptr) << "FinishInit() not called";
  nn::Context ctx{/*train=*/true, &rng_};
  ag::Variable logits = ForwardLogits(batch, ctx);
  ag::Variable loss = nn::BinaryCrossEntropyWithLogits(
      logits, batch.targets, EvalMask(batch));
  optimizer_->ZeroGrad();
  loss.Backward();
  optimizer_->Step();
  return loss.value().item();
}

}  // namespace models
}  // namespace kt
