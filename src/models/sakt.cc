#include "models/sakt.h"

#include "tensor/tensor_ops.h"

namespace kt {
namespace models {

SAKT::SAKT(int64_t num_questions, int64_t num_concepts, NeuralConfig config)
    : NeuralKTModel("SAKT", config),
      embedder_(num_questions, num_concepts, config.dim, rng_),
      hidden_(2 * config.dim, config.dim, rng_),
      out_(config.dim, 1, rng_) {
  RegisterChild("embedder", &embedder_);
  for (int64_t l = 0; l < config.num_layers; ++l) {
    blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        config.dim, config.num_heads, config.dropout, /*monotonic=*/false,
        rng_));
    RegisterChild("block" + std::to_string(l), blocks_.back().get());
  }
  RegisterChild("hidden", &hidden_);
  RegisterChild("out", &out_);
  FinishInit();
}

ag::Variable SAKT::ForwardLogits(const data::Batch& batch,
                                 const nn::Context& ctx) {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;

  ag::Variable e = embedder_.QuestionEmbed(batch);
  ag::Variable a = embedder_.InteractionEmbed(
      batch, InteractionEmbedder::FactualCategories(batch));

  const Tensor mask =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kCausalStrict);

  // First block: target question embeddings query the interaction history.
  std::vector<Tensor> attention;
  std::vector<Tensor>* attention_ptr =
      capture_attention_ ? &attention : nullptr;
  ag::Variable context = blocks_[0]->ForwardCross(e, a, mask, ctx,
                                                  attention_ptr);
  for (size_t l = 1; l < blocks_.size(); ++l) {
    context = blocks_[l]->Forward(context, mask, ctx);
  }

  if (capture_attention_ && !attention.empty()) {
    // Mean over heads -> [B, T, T].
    Tensor mean = attention[0].Clone();
    for (size_t h = 1; h < attention.size(); ++h) mean.AddInPlace(attention[h]);
    mean.MulInPlace(1.0f / static_cast<float>(attention.size()));
    last_attention_ = mean;
  }

  ag::Variable x = ag::Concat({context, e}, 2);
  ag::Variable mid = ag::Relu(hidden_.Forward(x));
  if (ctx.train) mid = ag::Dropout(mid, config_.dropout, *ctx.rng, true);
  return ag::Reshape(out_.Forward(mid), Shape{b, t});
}

}  // namespace models
}  // namespace kt
