// Empirical question-difficulty estimation shared by DIMKT, QIKT analysis,
// and IKT features: per-question correct rates from training data, bucketed
// into discrete levels with Laplace smoothing toward the global rate.
#ifndef KT_MODELS_DIFFICULTY_H_
#define KT_MODELS_DIFFICULTY_H_

#include <vector>

#include "data/dataset.h"

namespace kt {
namespace models {

struct DifficultyTable {
  // Smoothed probability of a correct answer per question id.
  std::vector<double> correct_rate;
  // Discretized difficulty level per question in [0, num_levels); level 0 is
  // hardest (lowest correct rate).
  std::vector<int> level;
  int num_levels = 0;
  double global_rate = 0.5;
};

// `smoothing` is the Laplace pseudo-count pulling sparse questions toward
// the global correct rate.
DifficultyTable ComputeDifficulty(const data::Dataset& train,
                                  int64_t num_questions, int num_levels = 10,
                                  double smoothing = 5.0);

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_DIFFICULTY_H_
