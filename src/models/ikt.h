// IKT (Minn et al., 2022): interpretable knowledge tracing with a
// Tree-Augmented Naive Bayes (TAN) classifier — no neural network.
//
// Three interpretable features are extracted for each prediction point t:
//   * skill mastery  — smoothed per-concept correct rate over the student's
//     history within the window,
//   * ability profile — correct rate over the most recent responses,
//   * problem difficulty — the question's training-set correct rate.
// Features are discretized into equal-width bins; a TAN structure (the
// maximum spanning tree over class-conditional mutual information, rooted
// at the mastery feature) augments Naive Bayes with one feature-to-feature
// dependency per node. All probabilities come from Laplace-smoothed counts.
#ifndef KT_MODELS_IKT_H_
#define KT_MODELS_IKT_H_

#include <array>
#include <vector>

#include "models/difficulty.h"
#include "models/kt_model.h"

namespace kt {
namespace models {

struct IktConfig {
  int num_bins = 8;
  // Recent-window size for the ability profile feature.
  int ability_window = 10;
  // Laplace smoothing pseudo-count for probability tables.
  double smoothing = 1.0;
};

class IKT : public KTModel {
 public:
  static constexpr int kNumFeatures = 3;

  IKT(int64_t num_questions, IktConfig config);

  std::string name() const override { return "IKT"; }
  bool SupportsBatchTraining() const override { return false; }
  void Fit(const data::Dataset& train) override;
  Tensor PredictBatch(const data::Batch& batch) override;
  float TrainBatch(const data::Batch& batch) override;
  int64_t NumParameters() const override;

  // Learned TAN parent of each feature (-1 = class only). Exposed for tests.
  const std::array<int, kNumFeatures>& parents() const { return parents_; }

 private:
  // Discretized features for position t of a sequence prefix.
  std::array<int, kNumFeatures> ExtractFeatures(
      const std::vector<int64_t>& questions,
      const std::vector<std::vector<int64_t>>& concepts,
      const std::vector<int>& responses, int64_t t) const;
  int Discretize(double value01) const;
  double PredictOne(const std::array<int, kNumFeatures>& features) const;

  int64_t num_questions_;
  IktConfig config_;
  DifficultyTable difficulty_;
  bool fitted_ = false;

  // TAN parameters.
  std::array<int, kNumFeatures> parents_;
  std::array<double, 2> class_prior_;
  // counts[f][y][parent_bin][bin]; parent_bin 0 when parent is -1.
  std::vector<std::vector<std::vector<std::vector<double>>>> tables_;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_IKT_H_
