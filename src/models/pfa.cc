#include "models/pfa.h"

#include <cmath>

#include "core/check.h"

namespace kt {
namespace models {
namespace {

double SigmoidD(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// One training instance: the question's concepts plus the pre-response
// success/failure counts on each of them.
struct Instance {
  std::vector<int64_t> concepts;
  std::vector<double> successes;  // parallel to concepts
  std::vector<double> failures;
  int label = 0;
};

}  // namespace

PFA::PFA(int64_t num_concepts, PfaConfig config)
    : num_concepts_(num_concepts),
      config_(config),
      weights_(static_cast<size_t>(num_concepts)) {}

const PFA::ConceptWeights& PFA::weights(int64_t concept_id) const {
  KT_CHECK(concept_id >= 0 && concept_id < num_concepts_);
  return weights_[static_cast<size_t>(concept_id)];
}

double PFA::CompressCount(double n) const {
  return config_.log_counts ? std::log1p(n) : n;
}

double PFA::Logit(const std::vector<int64_t>& concepts,
                  const std::vector<double>& successes,
                  const std::vector<double>& failures) const {
  double logit = bias_;
  for (size_t j = 0; j < concepts.size(); ++j) {
    const ConceptWeights& w = weights_[static_cast<size_t>(concepts[j])];
    logit += w.beta + w.gamma * successes[j] + w.rho * failures[j];
  }
  return logit;
}

void PFA::Fit(const data::Dataset& train) {
  // Materialize instances once; counts are cheap to recompute per window.
  std::vector<Instance> instances;
  std::vector<double> s(static_cast<size_t>(num_concepts_));
  std::vector<double> f(static_cast<size_t>(num_concepts_));
  for (const auto& seq : train.sequences) {
    std::fill(s.begin(), s.end(), 0.0);
    std::fill(f.begin(), f.end(), 0.0);
    for (const auto& it : seq.interactions) {
      Instance instance;
      instance.concepts = it.concepts;
      for (int64_t k : it.concepts) {
        KT_CHECK_LT(k, num_concepts_);
        instance.successes.push_back(
            CompressCount(s[static_cast<size_t>(k)]));
        instance.failures.push_back(CompressCount(f[static_cast<size_t>(k)]));
      }
      instance.label = it.response;
      instances.push_back(std::move(instance));
      for (int64_t k : it.concepts) {
        (it.response ? s : f)[static_cast<size_t>(k)] += 1.0;
      }
    }
  }
  KT_CHECK(!instances.empty());

  // Full-batch gradient descent on the logistic loss (convex).
  const double inv_n = 1.0 / static_cast<double>(instances.size());
  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    double grad_bias = 0.0;
    std::vector<ConceptWeights> grads(static_cast<size_t>(num_concepts_));
    for (const Instance& instance : instances) {
      const double p =
          SigmoidD(Logit(instance.concepts, instance.successes,
                         instance.failures));
      const double err = p - instance.label;  // d loss / d logit
      grad_bias += err;
      for (size_t j = 0; j < instance.concepts.size(); ++j) {
        ConceptWeights& g =
            grads[static_cast<size_t>(instance.concepts[j])];
        g.beta += err;
        g.gamma += err * instance.successes[j];
        g.rho += err * instance.failures[j];
      }
    }
    bias_ -= config_.lr * grad_bias * inv_n;
    for (int64_t k = 0; k < num_concepts_; ++k) {
      ConceptWeights& w = weights_[static_cast<size_t>(k)];
      const ConceptWeights& g = grads[static_cast<size_t>(k)];
      w.beta -= config_.lr * (g.beta * inv_n + config_.l2 * w.beta);
      w.gamma -= config_.lr * (g.gamma * inv_n + config_.l2 * w.gamma);
      w.rho -= config_.lr * (g.rho * inv_n + config_.l2 * w.rho);
    }
  }
  fitted_ = true;
}

Tensor PFA::PredictBatch(const data::Batch& batch) {
  KT_CHECK(fitted_) << "PFA::Fit must run before prediction";
  Tensor out(Shape{batch.batch_size, batch.max_len});
  std::vector<double> s(static_cast<size_t>(num_concepts_));
  std::vector<double> f(static_cast<size_t>(num_concepts_));
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    std::fill(s.begin(), s.end(), 0.0);
    std::fill(f.begin(), f.end(), 0.0);
    const int64_t len = batch.lengths[static_cast<size_t>(b)];
    for (int64_t t = 0; t < len; ++t) {
      const int64_t i = batch.FlatIndex(b, t);
      const auto& concepts = batch.concept_bags[static_cast<size_t>(i)];
      std::vector<double> successes, failures;
      for (int64_t k : concepts) {
        successes.push_back(CompressCount(s[static_cast<size_t>(k)]));
        failures.push_back(CompressCount(f[static_cast<size_t>(k)]));
      }
      out.flat(i) =
          static_cast<float>(SigmoidD(Logit(concepts, successes, failures)));
      const int r = batch.responses[static_cast<size_t>(i)];
      for (int64_t k : concepts) {
        (r ? s : f)[static_cast<size_t>(k)] += 1.0;
      }
    }
  }
  return out;
}

}  // namespace models
}  // namespace kt
