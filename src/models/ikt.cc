#include "models/ikt.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/check.h"

namespace kt {
namespace models {
namespace {

// Per-position raw (undiscretized) features plus the label, collected over a
// dataset for structure learning and counting.
struct Example {
  std::array<int, IKT::kNumFeatures> bins;
  int label;
};

}  // namespace

IKT::IKT(int64_t num_questions, IktConfig config)
    : num_questions_(num_questions), config_(config) {
  parents_.fill(-1);
  class_prior_ = {0.5, 0.5};
}

int IKT::Discretize(double value01) const {
  const int bin = static_cast<int>(value01 * config_.num_bins);
  return std::clamp(bin, 0, config_.num_bins - 1);
}

std::array<int, IKT::kNumFeatures> IKT::ExtractFeatures(
    const std::vector<int64_t>& questions,
    const std::vector<std::vector<int64_t>>& concepts,
    const std::vector<int>& responses, int64_t t) const {
  // Skill mastery: smoothed correct rate over prior attempts sharing a
  // concept with question t.
  double mastery_correct = 0.0, mastery_total = 0.0;
  const auto& target_concepts = concepts[static_cast<size_t>(t)];
  for (int64_t i = 0; i < t; ++i) {
    bool shares = false;
    for (int64_t k : concepts[static_cast<size_t>(i)]) {
      if (std::find(target_concepts.begin(), target_concepts.end(), k) !=
          target_concepts.end()) {
        shares = true;
        break;
      }
    }
    if (shares) {
      mastery_correct += responses[static_cast<size_t>(i)];
      mastery_total += 1.0;
    }
  }
  const double mastery =
      (mastery_correct + 1.0) / (mastery_total + 2.0);  // Laplace

  // Ability profile: recent-window correct rate.
  const int64_t window_start =
      std::max<int64_t>(0, t - config_.ability_window);
  double recent_correct = 0.0, recent_total = 0.0;
  for (int64_t i = window_start; i < t; ++i) {
    recent_correct += responses[static_cast<size_t>(i)];
    recent_total += 1.0;
  }
  const double ability = (recent_correct + 1.0) / (recent_total + 2.0);

  // Problem difficulty from the fitted table (as a correct rate, so higher
  // means easier).
  const double difficulty =
      fitted_ ? difficulty_.correct_rate[static_cast<size_t>(
                    questions[static_cast<size_t>(t)])]
              : 0.5;

  return {Discretize(mastery), Discretize(ability), Discretize(difficulty)};
}

void IKT::Fit(const data::Dataset& train) {
  difficulty_ = ComputeDifficulty(train, num_questions_, config_.num_bins);
  fitted_ = true;

  // Collect discretized examples at every predictable position (t >= 1).
  std::vector<Example> examples;
  for (const auto& seq : train.sequences) {
    std::vector<int64_t> questions;
    std::vector<std::vector<int64_t>> concepts;
    std::vector<int> responses;
    for (const auto& it : seq.interactions) {
      questions.push_back(it.question);
      concepts.push_back(it.concepts);
      responses.push_back(it.response);
    }
    for (int64_t t = 1; t < seq.length(); ++t) {
      Example ex;
      ex.bins = ExtractFeatures(questions, concepts, responses, t);
      ex.label = responses[static_cast<size_t>(t)];
      examples.push_back(ex);
    }
  }
  KT_CHECK(!examples.empty());

  // Class prior.
  double positives = 0.0;
  for (const auto& ex : examples) positives += ex.label;
  class_prior_[1] = (positives + config_.smoothing) /
                    (static_cast<double>(examples.size()) + 2 * config_.smoothing);
  class_prior_[0] = 1.0 - class_prior_[1];

  // TAN structure: conditional mutual information I(Xi; Xj | Y) for each
  // feature pair, maximum spanning tree rooted at feature 0.
  const int bins = config_.num_bins;
  auto cmi = [&](int fi, int fj) {
    // joint[y][bi][bj]
    std::vector<std::vector<std::vector<double>>> joint(
        2, std::vector<std::vector<double>>(
               static_cast<size_t>(bins),
               std::vector<double>(static_cast<size_t>(bins), 1e-4)));
    for (const auto& ex : examples) {
      joint[static_cast<size_t>(ex.label)]
           [static_cast<size_t>(ex.bins[static_cast<size_t>(fi)])]
           [static_cast<size_t>(ex.bins[static_cast<size_t>(fj)])] += 1.0;
    }
    double total = 0.0;
    for (const auto& per_y : joint)
      for (const auto& row : per_y)
        for (double v : row) total += v;

    double mi = 0.0;
    for (int y = 0; y < 2; ++y) {
      double py = 0.0;
      std::vector<double> pi(static_cast<size_t>(bins), 0.0);
      std::vector<double> pj(static_cast<size_t>(bins), 0.0);
      for (int a = 0; a < bins; ++a)
        for (int b = 0; b < bins; ++b) {
          const double v = joint[static_cast<size_t>(y)][static_cast<size_t>(a)]
                                [static_cast<size_t>(b)];
          py += v;
          pi[static_cast<size_t>(a)] += v;
          pj[static_cast<size_t>(b)] += v;
        }
      for (int a = 0; a < bins; ++a) {
        for (int b = 0; b < bins; ++b) {
          const double pxy = joint[static_cast<size_t>(y)]
                                  [static_cast<size_t>(a)]
                                  [static_cast<size_t>(b)] /
                             total;
          const double denom = (pi[static_cast<size_t>(a)] / total) *
                               (pj[static_cast<size_t>(b)] / total) /
                               (py / total);
          mi += pxy * std::log(pxy / denom);
        }
      }
    }
    return mi;
  };

  // With kNumFeatures features, Prim's algorithm from feature 0.
  parents_.fill(-1);
  std::array<bool, kNumFeatures> in_tree{};
  in_tree[0] = true;
  for (int added = 1; added < kNumFeatures; ++added) {
    double best = -1.0;
    int best_node = -1, best_parent = -1;
    for (int u = 0; u < kNumFeatures; ++u) {
      if (!in_tree[static_cast<size_t>(u)]) continue;
      for (int v = 0; v < kNumFeatures; ++v) {
        if (in_tree[static_cast<size_t>(v)]) continue;
        const double w = cmi(u, v);
        if (w > best) {
          best = w;
          best_node = v;
          best_parent = u;
        }
      }
    }
    KT_CHECK_GE(best_node, 0);
    parents_[static_cast<size_t>(best_node)] = best_parent;
    in_tree[static_cast<size_t>(best_node)] = true;
  }

  // Conditional probability tables: P(x_f | parent_bin, y).
  tables_.assign(
      kNumFeatures,
      std::vector<std::vector<std::vector<double>>>(
          2, std::vector<std::vector<double>>(
                 static_cast<size_t>(bins),
                 std::vector<double>(static_cast<size_t>(bins),
                                     config_.smoothing))));
  for (const auto& ex : examples) {
    for (int f = 0; f < kNumFeatures; ++f) {
      const int parent = parents_[static_cast<size_t>(f)];
      const int pb = parent < 0 ? 0 : ex.bins[static_cast<size_t>(parent)];
      tables_[static_cast<size_t>(f)][static_cast<size_t>(ex.label)]
             [static_cast<size_t>(pb)]
             [static_cast<size_t>(ex.bins[static_cast<size_t>(f)])] += 1.0;
    }
  }
  // Normalize per (y, parent_bin).
  for (int f = 0; f < kNumFeatures; ++f) {
    for (int y = 0; y < 2; ++y) {
      const int parent_bins = parents_[static_cast<size_t>(f)] < 0 ? 1 : bins;
      for (int pb = 0; pb < parent_bins; ++pb) {
        auto& row = tables_[static_cast<size_t>(f)][static_cast<size_t>(y)]
                           [static_cast<size_t>(pb)];
        double total = 0.0;
        for (double v : row) total += v;
        for (double& v : row) v /= total;
      }
    }
  }
}

double IKT::PredictOne(const std::array<int, kNumFeatures>& features) const {
  double log_odds[2];
  for (int y = 0; y < 2; ++y) {
    double lp = std::log(class_prior_[static_cast<size_t>(y)]);
    for (int f = 0; f < kNumFeatures; ++f) {
      const int parent = parents_[static_cast<size_t>(f)];
      const int pb =
          parent < 0 ? 0 : features[static_cast<size_t>(parent)];
      lp += std::log(tables_[static_cast<size_t>(f)][static_cast<size_t>(y)]
                            [static_cast<size_t>(pb)]
                            [static_cast<size_t>(
                                features[static_cast<size_t>(f)])]);
    }
    log_odds[y] = lp;
  }
  // p(y=1 | x) via the log-sum-exp of two terms.
  const double m = std::max(log_odds[0], log_odds[1]);
  const double z =
      std::exp(log_odds[0] - m) + std::exp(log_odds[1] - m);
  return std::exp(log_odds[1] - m) / z;
}

Tensor IKT::PredictBatch(const data::Batch& batch) {
  KT_CHECK(fitted_) << "IKT::Fit must run before prediction";
  Tensor out(Shape{batch.batch_size, batch.max_len});
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    std::vector<int64_t> questions;
    std::vector<std::vector<int64_t>> concepts;
    std::vector<int> responses;
    const int64_t len = batch.lengths[static_cast<size_t>(b)];
    for (int64_t t = 0; t < len; ++t) {
      const int64_t i = batch.FlatIndex(b, t);
      questions.push_back(batch.questions[static_cast<size_t>(i)]);
      concepts.push_back(batch.concept_bags[static_cast<size_t>(i)]);
      responses.push_back(batch.responses[static_cast<size_t>(i)]);
    }
    for (int64_t t = 0; t < len; ++t) {
      const double p =
          t == 0 ? class_prior_[1]
                 : PredictOne(ExtractFeatures(questions, concepts, responses, t));
      out.flat(batch.FlatIndex(b, t)) = static_cast<float>(p);
    }
  }
  return out;
}

float IKT::TrainBatch(const data::Batch& batch) {
  // Closed-form model: per-batch gradient steps do not apply.
  return 0.0f;
}

int64_t IKT::NumParameters() const {
  int64_t total = 2;  // class prior
  for (int f = 0; f < kNumFeatures; ++f) {
    const int parent_bins = parents_[static_cast<size_t>(f)] < 0
                                ? 1
                                : config_.num_bins;
    total += 2 * parent_bins * config_.num_bins;
  }
  return total;
}

}  // namespace models
}  // namespace kt
