#include "models/akt.h"

#include "autograd/ops.h"
#include "models/embedder.h"

namespace kt {
namespace models {

AKT::AKT(int64_t num_questions, int64_t num_concepts, NeuralConfig config)
    : NeuralKTModel("AKT", config),
      concept_emb_(num_concepts, config.dim, rng_),
      variation_emb_(num_concepts, config.dim, rng_),
      response_emb_(3, config.dim, rng_),
      hidden_(2 * config.dim, config.dim, rng_),
      out_(config.dim, 1, rng_) {
  RegisterChild("concept_emb", &concept_emb_);
  RegisterChild("variation_emb", &variation_emb_);
  RegisterChild("response_emb", &response_emb_);
  // Rasch difficulty scalars start at zero so e_q begins as the pure
  // concept embedding.
  difficulty_ =
      RegisterParameter("difficulty", Tensor::Zeros(Shape{num_questions, 1}));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    knowledge_blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        config.dim, config.num_heads, config.dropout, /*monotonic=*/true,
        rng_));
    RegisterChild("knowledge" + std::to_string(l),
                  knowledge_blocks_.back().get());
  }
  retriever_ = std::make_unique<nn::TransformerBlock>(
      config.dim, config.num_heads, config.dropout, /*monotonic=*/true, rng_);
  RegisterChild("retriever", retriever_.get());
  RegisterChild("hidden", &hidden_);
  RegisterChild("out", &out_);
  FinishInit();
}

ag::Variable AKT::RaschQuestionEmbed(const data::Batch& batch) const {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;
  const int64_t d = config_.dim;
  ag::Variable c =
      ag::EmbeddingBagMean(concept_emb_.table(), batch.concept_bags);
  ag::Variable v =
      ag::EmbeddingBagMean(variation_emb_.table(), batch.concept_bags);
  ag::Variable mu = ag::EmbeddingLookup(difficulty_, batch.questions);
  // e = c + mu * v, with mu broadcasting over the feature dimension.
  ag::Variable e = ag::Add(c, ag::Mul(mu, v));
  return ag::Reshape(e, Shape{b, t, d});
}

ag::Variable AKT::RaschInteractionEmbed(const data::Batch& batch,
                                        const ag::Variable& e) const {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;
  const int64_t d = config_.dim;
  std::vector<int64_t> r_idx(batch.responses.begin(), batch.responses.end());
  ag::Variable r =
      ag::Reshape(response_emb_.Forward(r_idx), Shape{b, t, d});
  return ag::Add(e, r);
}

ag::Variable AKT::ForwardLogits(const data::Batch& batch,
                                const nn::Context& ctx) {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;

  ag::Variable e = RaschQuestionEmbed(batch);
  ag::Variable a = RaschInteractionEmbed(batch, e);

  const Tensor strict =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kCausalStrict);

  // Knowledge encoder: causal self-attention over interactions.
  ag::Variable knowledge = a;
  for (const auto& block : knowledge_blocks_) {
    knowledge = block->Forward(knowledge, strict, ctx);
  }
  // Knowledge retriever: target questions attend over knowledge states.
  ag::Variable context = retriever_->ForwardCross(e, knowledge, strict, ctx);

  ag::Variable x = ag::Concat({context, e}, 2);
  ag::Variable mid = ag::Relu(hidden_.Forward(x));
  if (ctx.train) mid = ag::Dropout(mid, config_.dropout, *ctx.rng, true);
  return ag::Reshape(out_.Forward(mid), Shape{b, t});
}

}  // namespace models
}  // namespace kt
