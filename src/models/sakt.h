// SAKT (Pandey & Karypis, 2019): self-attentive knowledge tracing.
//
// The embedding of the target question attends over past interaction
// embeddings with a strict causal mask; stacked transformer blocks refine
// the context, and an MLP on [context (+) e_t] emits the logit.
//
// The `plus_question_ids` flag reproduces the paper's SAKT+ variant used in
// the Fig. 6 case study (question ID embeddings added to the inputs); the
// base SAKT configuration already includes them through the shared
// embedder, so the flag additionally exposes per-head attention maps.
#ifndef KT_MODELS_SAKT_H_
#define KT_MODELS_SAKT_H_

#include <memory>
#include <vector>

#include "models/embedder.h"
#include "models/neural_base.h"
#include "nn/attention.h"
#include "nn/linear.h"

namespace kt {
namespace models {

class SAKT : public NeuralKTModel {
 public:
  SAKT(int64_t num_questions, int64_t num_concepts, NeuralConfig config);

  // Average per-head attention of the first block from the most recent
  // PredictBatch call, [B, T, T] (queries = positions, keys = history).
  // Empty until PredictBatch runs with capture enabled.
  void set_capture_attention(bool capture) { capture_attention_ = capture; }
  const Tensor& last_attention() const { return last_attention_; }

  // Attention capture writes last_attention_ per call.
  bool ParallelEvalSafe() const override { return !capture_attention_; }

 protected:
  ag::Variable ForwardLogits(const data::Batch& batch,
                             const nn::Context& ctx) override;

 private:
  InteractionEmbedder embedder_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> blocks_;
  nn::Linear hidden_;
  nn::Linear out_;
  bool capture_attention_ = false;
  Tensor last_attention_;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_SAKT_H_
