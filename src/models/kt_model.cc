#include "models/kt_model.h"

namespace kt {
namespace models {

Tensor EvalMask(const data::Batch& batch) {
  Tensor mask = batch.valid.Clone();
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    mask.flat(batch.FlatIndex(b, 0)) = 0.0f;
  }
  return mask;
}

}  // namespace models
}  // namespace kt
