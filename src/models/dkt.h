// DKT (Piech et al., 2015): recurrent knowledge tracing.
//
// Interaction embeddings feed a (possibly stacked) LSTM; the hidden state
// after interactions 0..t-1 combines with the embedding of question t in an
// MLP to produce the correctness logit for position t.
#ifndef KT_MODELS_DKT_H_
#define KT_MODELS_DKT_H_

#include <memory>
#include <vector>

#include "models/embedder.h"
#include "models/neural_base.h"
#include "nn/linear.h"
#include "nn/lstm.h"

namespace kt {
namespace models {

class DKT : public NeuralKTModel {
 public:
  DKT(int64_t num_questions, int64_t num_concepts, NeuralConfig config);

 protected:
  ag::Variable ForwardLogits(const data::Batch& batch,
                             const nn::Context& ctx) override;

 private:
  InteractionEmbedder embedder_;
  std::vector<std::unique_ptr<nn::LSTM>> layers_;
  nn::Linear hidden_;
  nn::Linear out_;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_DKT_H_
