#include "models/bkt.h"

#include <algorithm>
#include <array>
#include <map>

#include "core/check.h"

namespace kt {
namespace models {
namespace {

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

BKT::BKT(int64_t num_concepts, BktConfig config)
    : num_concepts_(num_concepts),
      config_(config),
      params_(static_cast<size_t>(num_concepts)) {}

const BKT::ConceptParams& BKT::params(int64_t concept_id) const {
  KT_CHECK(concept_id >= 0 && concept_id < num_concepts_);
  return params_[static_cast<size_t>(concept_id)];
}

double BKT::CorrectProbability(const ConceptParams& p, double mastery) {
  return mastery * (1.0 - p.p_slip) + (1.0 - mastery) * p.p_guess;
}

BKT::ConceptParams BKT::EmStep(
    const ConceptParams& current,
    const std::vector<std::vector<int>>& sequences) const {
  // Two-state HMM, state 0 = unmastered, state 1 = mastered (absorbing).
  const double pi[2] = {1.0 - current.p_init, current.p_init};
  const double trans[2][2] = {
      {1.0 - current.p_learn, current.p_learn},
      {0.0, 1.0},
  };
  auto emission = [&](int state, int obs) {
    if (state == 0) return obs ? current.p_guess : 1.0 - current.p_guess;
    return obs ? 1.0 - current.p_slip : current.p_slip;
  };

  double init_mastered = 0.0, init_total = 0.0;
  double learn_num = 0.0, learn_den = 0.0;
  double guess_num = 0.0, guess_den = 0.0;
  double slip_num = 0.0, slip_den = 0.0;

  for (const auto& obs : sequences) {
    const size_t n = obs.size();
    if (n == 0) continue;
    // Scaled forward-backward.
    std::vector<std::array<double, 2>> alpha(n), beta(n);
    std::vector<double> scale(n);
    alpha[0] = {pi[0] * emission(0, obs[0]), pi[1] * emission(1, obs[0])};
    scale[0] = alpha[0][0] + alpha[0][1];
    alpha[0][0] /= scale[0];
    alpha[0][1] /= scale[0];
    for (size_t t = 1; t < n; ++t) {
      for (int s = 0; s < 2; ++s) {
        alpha[t][static_cast<size_t>(s)] =
            (alpha[t - 1][0] * trans[0][s] + alpha[t - 1][1] * trans[1][s]) *
            emission(s, obs[t]);
      }
      scale[t] = alpha[t][0] + alpha[t][1];
      if (scale[t] <= 0) scale[t] = 1e-300;
      alpha[t][0] /= scale[t];
      alpha[t][1] /= scale[t];
    }
    beta[n - 1] = {1.0, 1.0};
    for (size_t t = n - 1; t > 0; --t) {
      for (int s = 0; s < 2; ++s) {
        beta[t - 1][static_cast<size_t>(s)] =
            (trans[s][0] * emission(0, obs[t]) * beta[t][0] +
             trans[s][1] * emission(1, obs[t]) * beta[t][1]) /
            scale[t];
      }
    }

    // Posterior state marginals gamma and transition posteriors xi.
    for (size_t t = 0; t < n; ++t) {
      double gamma0 = alpha[t][0] * beta[t][0];
      double gamma1 = alpha[t][1] * beta[t][1];
      const double z = gamma0 + gamma1;
      if (z <= 0) continue;
      gamma0 /= z;
      gamma1 /= z;

      if (t == 0) {
        init_mastered += gamma1;
        init_total += 1.0;
      }
      if (obs[t]) {
        guess_num += gamma0;
        slip_den += gamma1;
      } else {
        slip_num += gamma1;
      }
      guess_den += gamma0;

      if (t + 1 < n) {
        // xi_t(0 -> 1) and gamma_t(0) for the learn-rate update.
        const double xi01 = alpha[t][0] * trans[0][1] *
                            emission(1, obs[t + 1]) * beta[t + 1][1] /
                            scale[t + 1];
        learn_num += xi01;
        learn_den += gamma0;
      }
    }
  }

  ConceptParams next = current;
  if (init_total > 0) next.p_init = Clamp(init_mastered / init_total, 1e-4, 0.999);
  if (learn_den > 0) {
    next.p_learn =
        Clamp(learn_num / learn_den, config_.min_learn, 0.5);
  }
  if (guess_den > 0) {
    next.p_guess = Clamp(guess_num / guess_den, 1e-3, config_.max_guess);
  }
  if (slip_den > 0) {
    next.p_slip = Clamp(slip_num / slip_den, 1e-3, config_.max_slip);
  }
  return next;
}

void BKT::Fit(const data::Dataset& train) {
  // Gather per-concept observation sequences (one per window that touches
  // the concept).
  std::vector<std::vector<std::vector<int>>> observations(
      static_cast<size_t>(num_concepts_));
  for (const auto& seq : train.sequences) {
    std::map<int64_t, std::vector<int>> per_concept;
    for (const auto& it : seq.interactions) {
      for (int64_t k : it.concepts) {
        KT_CHECK_LT(k, num_concepts_);
        per_concept[k].push_back(it.response);
      }
    }
    for (auto& [k, obs] : per_concept) {
      observations[static_cast<size_t>(k)].push_back(std::move(obs));
    }
  }

  for (int64_t k = 0; k < num_concepts_; ++k) {
    ConceptParams p;  // default start
    const auto& sequences = observations[static_cast<size_t>(k)];
    if (!sequences.empty()) {
      for (int iteration = 0; iteration < config_.em_iterations; ++iteration) {
        p = EmStep(p, sequences);
      }
    }
    params_[static_cast<size_t>(k)] = p;
  }
  fitted_ = true;
}

Tensor BKT::PredictBatch(const data::Batch& batch) {
  KT_CHECK(fitted_) << "BKT::Fit must run before prediction";
  Tensor out(Shape{batch.batch_size, batch.max_len});
  std::vector<double> mastery(static_cast<size_t>(num_concepts_));
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    for (int64_t k = 0; k < num_concepts_; ++k) {
      mastery[static_cast<size_t>(k)] = params_[static_cast<size_t>(k)].p_init;
    }
    const int64_t len = batch.lengths[static_cast<size_t>(b)];
    for (int64_t t = 0; t < len; ++t) {
      const int64_t i = batch.FlatIndex(b, t);
      const auto& concepts = batch.concept_bags[static_cast<size_t>(i)];
      // Predict: mean over tagged concepts.
      double p_correct = 0.0;
      for (int64_t k : concepts) {
        p_correct += CorrectProbability(params_[static_cast<size_t>(k)],
                                        mastery[static_cast<size_t>(k)]);
      }
      p_correct /= std::max<size_t>(concepts.size(), 1);
      out.flat(i) = static_cast<float>(p_correct);

      // Observe and update each tagged concept: Bayes posterior on the
      // response, then the learning transition.
      const int r = batch.responses[static_cast<size_t>(i)];
      for (int64_t k : concepts) {
        const ConceptParams& p = params_[static_cast<size_t>(k)];
        double& m = mastery[static_cast<size_t>(k)];
        double posterior;
        if (r == 1) {
          const double z = m * (1.0 - p.p_slip) + (1.0 - m) * p.p_guess;
          posterior = z > 0 ? m * (1.0 - p.p_slip) / z : m;
        } else {
          const double z = m * p.p_slip + (1.0 - m) * (1.0 - p.p_guess);
          posterior = z > 0 ? m * p.p_slip / z : m;
        }
        m = posterior + (1.0 - posterior) * p.p_learn;
      }
    }
  }
  return out;
}

}  // namespace models
}  // namespace kt
