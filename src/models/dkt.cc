#include "models/dkt.h"

namespace kt {
namespace models {

DKT::DKT(int64_t num_questions, int64_t num_concepts, NeuralConfig config)
    : NeuralKTModel("DKT", config),
      embedder_(num_questions, num_concepts, config.dim, rng_),
      hidden_(2 * config.dim, config.dim, rng_),
      out_(config.dim, 1, rng_) {
  RegisterChild("embedder", &embedder_);
  for (int64_t l = 0; l < config.num_layers; ++l) {
    layers_.push_back(std::make_unique<nn::LSTM>(config.dim, config.dim, rng_));
    RegisterChild("lstm" + std::to_string(l), layers_.back().get());
  }
  RegisterChild("hidden", &hidden_);
  RegisterChild("out", &out_);
  FinishInit();
}

ag::Variable DKT::ForwardLogits(const data::Batch& batch,
                                const nn::Context& ctx) {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;
  const int64_t d = config_.dim;

  ag::Variable e = embedder_.QuestionEmbed(batch);
  ag::Variable a = embedder_.InteractionEmbed(
      batch, InteractionEmbedder::FactualCategories(batch));

  ag::Variable h = a;
  for (const auto& layer : layers_) {
    h = layer->Forward(h);
    if (ctx.train) h = ag::Dropout(h, config_.dropout, *ctx.rng, true);
  }

  // Shift hidden states right: prediction for position t sees h_{t-1};
  // position 0 sees zeros.
  ag::Variable zeros = ag::Constant(Tensor::Zeros(Shape{b, 1, d}));
  ag::Variable h_shifted =
      ag::Concat({zeros, ag::Slice(h, 1, 0, t - 1)}, 1);

  ag::Variable x = ag::Concat({h_shifted, e}, 2);  // [B, T, 2d]
  ag::Variable mid = ag::Relu(hidden_.Forward(x));
  if (ctx.train) mid = ag::Dropout(mid, config_.dropout, *ctx.rng, true);
  ag::Variable logits = out_.Forward(mid);  // [B, T, 1]
  return ag::Reshape(logits, Shape{b, t});
}

}  // namespace models
}  // namespace kt
