#include "models/dimkt.h"

namespace kt {
namespace models {

DIMKT::DIMKT(int64_t num_questions, int64_t num_concepts,
             DifficultyTable difficulty, NeuralConfig config)
    : NeuralKTModel("DIMKT", config),
      difficulty_(std::move(difficulty)),
      embedder_(num_questions, num_concepts, config.dim, rng_),
      level_emb_(difficulty_.num_levels, config.dim, rng_),
      hidden_(3 * config.dim, config.dim, rng_),
      out_(config.dim, 1, rng_) {
  RegisterChild("embedder", &embedder_);
  RegisterChild("level_emb", &level_emb_);
  lstm_ = std::make_unique<nn::LSTM>(config.dim, config.dim, rng_);
  RegisterChild("lstm", lstm_.get());
  RegisterChild("hidden", &hidden_);
  RegisterChild("out", &out_);
  FinishInit();
}

ag::Variable DIMKT::DifficultyEmbed(const data::Batch& batch) const {
  std::vector<int64_t> levels(batch.questions.size());
  for (size_t i = 0; i < batch.questions.size(); ++i) {
    levels[i] = difficulty_.level[static_cast<size_t>(batch.questions[i])];
  }
  return ag::Reshape(level_emb_.Forward(levels),
                     Shape{batch.batch_size, batch.max_len, config_.dim});
}

ag::Variable DIMKT::ForwardLogits(const data::Batch& batch,
                                  const nn::Context& ctx) {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;
  const int64_t d = config_.dim;

  ag::Variable diff = DifficultyEmbed(batch);
  ag::Variable e = ag::Add(embedder_.QuestionEmbed(batch), diff);
  ag::Variable a = ag::Add(
      embedder_.InteractionEmbed(batch,
                                 InteractionEmbedder::FactualCategories(batch)),
      diff);

  ag::Variable h = lstm_->Forward(a);
  if (ctx.train) h = ag::Dropout(h, config_.dropout, *ctx.rng, true);
  ag::Variable zeros = ag::Constant(Tensor::Zeros(Shape{b, 1, d}));
  ag::Variable h_shifted = ag::Concat({zeros, ag::Slice(h, 1, 0, t - 1)}, 1);

  ag::Variable x = ag::Concat({h_shifted, e, diff}, 2);  // [B, T, 3d]
  ag::Variable mid = ag::Relu(hidden_.Forward(x));
  if (ctx.train) mid = ag::Dropout(mid, config_.dropout, *ctx.rng, true);
  return ag::Reshape(out_.Forward(mid), Shape{b, t});
}

}  // namespace models
}  // namespace kt
