// Question/concept/response embedding shared by the neural models.
//
// Implements the paper's Eq. 23-24:
//   e_i = q_emb[q_i] + mean_{k in K_i} k_emb[k]
//   a_i = e_i + r_emb[r~_i],   r~_i in {0 incorrect, 1 correct, 2 masked}
// The three-way response category is what lets RCKT feed counterfactually
// masked sequences through the same embedder the baselines use.
#ifndef KT_MODELS_EMBEDDER_H_
#define KT_MODELS_EMBEDDER_H_

#include <vector>

#include "data/batch.h"
#include "nn/embedding.h"
#include "nn/module.h"

namespace kt {
namespace models {

// Response categories for r~.
inline constexpr int kResponseIncorrect = 0;
inline constexpr int kResponseCorrect = 1;
inline constexpr int kResponseMasked = 2;

class InteractionEmbedder : public nn::Module {
 public:
  InteractionEmbedder(int64_t num_questions, int64_t num_concepts,
                      int64_t dim, Rng& rng);

  // e_i for every position: [B, T, dim].
  ag::Variable QuestionEmbed(const data::Batch& batch) const;

  // Row-wise variant for online serving (kt::serve): e rows for bare
  // (question, concept bag) pairs outside any Batch, shape [n, dim]. Uses
  // the same op chain as QuestionEmbed, so each row is bitwise equal to the
  // corresponding row of the batched pass.
  ag::Variable QuestionEmbedRows(
      const std::vector<int64_t>& questions,
      const std::vector<std::vector<int64_t>>& concept_bags) const;

  // a_i = e_i + r_emb[categories[i]]; `categories` is flattened [B*T] with
  // values in {0, 1, 2}. Pass batch.responses (widened) for factual input.
  ag::Variable InteractionEmbed(const data::Batch& batch,
                                const std::vector<int>& categories) const;

  // Convenience: factual categories from the batch's recorded responses.
  static std::vector<int> FactualCategories(const data::Batch& batch);

  // Concept-proficiency probe embedding (paper Eq. 30): the mean ID
  // embedding of `questions` plus the embedding of concept `k`, shape
  // [1, dim]. Used when tracing proficiency on a concept rather than
  // answering a concrete question.
  ag::Variable ConceptProbeEmbed(const std::vector<int64_t>& questions,
                                 int64_t concept_id) const;

  const nn::Embedding& question_embedding() const { return q_emb_; }
  const nn::Embedding& concept_embedding() const { return k_emb_; }
  // Response-category table [3, dim] (for callers composing a_i manually).
  const ag::Variable& response_table() const { return r_emb_.table(); }
  int64_t dim() const { return dim_; }

 private:
  int64_t dim_;
  nn::Embedding q_emb_;
  nn::Embedding k_emb_;
  nn::Embedding r_emb_;  // 3 categories
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_EMBEDDER_H_
