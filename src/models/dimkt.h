// DIMKT (Shen et al., 2022): difficulty-aware knowledge tracing.
//
// The difficulty effect is injected at three places, following the paper's
// central idea that question difficulty moderates both the encounter and
// the acquisition of knowledge:
//   * difficulty-level embeddings (from empirical training-set correct
//     rates) are added to the question embedding,
//   * the interaction sequence the recurrent core consumes includes the
//     difficulty embedding,
//   * the prediction MLP additionally conditions on the target question's
//     difficulty embedding.
#ifndef KT_MODELS_DIMKT_H_
#define KT_MODELS_DIMKT_H_

#include <memory>

#include "models/difficulty.h"
#include "models/embedder.h"
#include "models/neural_base.h"
#include "nn/linear.h"
#include "nn/lstm.h"

namespace kt {
namespace models {

class DIMKT : public NeuralKTModel {
 public:
  // `difficulty` must be computed from the training split only.
  DIMKT(int64_t num_questions, int64_t num_concepts, DifficultyTable difficulty,
        NeuralConfig config);

 protected:
  ag::Variable ForwardLogits(const data::Batch& batch,
                             const nn::Context& ctx) override;

 private:
  // Per-position difficulty-level embedding, [B, T, d].
  ag::Variable DifficultyEmbed(const data::Batch& batch) const;

  DifficultyTable difficulty_;
  InteractionEmbedder embedder_;
  nn::Embedding level_emb_;
  std::unique_ptr<nn::LSTM> lstm_;
  nn::Linear hidden_;
  nn::Linear out_;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_DIMKT_H_
