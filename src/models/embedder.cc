#include "models/embedder.h"

#include "autograd/ops.h"

namespace kt {
namespace models {

InteractionEmbedder::InteractionEmbedder(int64_t num_questions,
                                         int64_t num_concepts, int64_t dim,
                                         Rng& rng)
    : dim_(dim),
      q_emb_(num_questions, dim, rng),
      k_emb_(num_concepts, dim, rng),
      r_emb_(3, dim, rng) {
  RegisterChild("q_emb", &q_emb_);
  RegisterChild("k_emb", &k_emb_);
  RegisterChild("r_emb", &r_emb_);
}

ag::Variable InteractionEmbedder::QuestionEmbed(
    const data::Batch& batch) const {
  ag::Variable q = q_emb_.Forward(batch.questions);  // [B*T, d]
  ag::Variable k = ag::EmbeddingBagMean(k_emb_.table(), batch.concept_bags);
  return ag::Reshape(ag::Add(q, k),
                     Shape{batch.batch_size, batch.max_len, dim_});
}

ag::Variable InteractionEmbedder::QuestionEmbedRows(
    const std::vector<int64_t>& questions,
    const std::vector<std::vector<int64_t>>& concept_bags) const {
  KT_CHECK_EQ(questions.size(), concept_bags.size());
  ag::Variable q = q_emb_.Forward(questions);  // [n, d]
  ag::Variable k = ag::EmbeddingBagMean(k_emb_.table(), concept_bags);
  return ag::Add(q, k);
}

ag::Variable InteractionEmbedder::InteractionEmbed(
    const data::Batch& batch, const std::vector<int>& categories) const {
  KT_CHECK_EQ(categories.size(), batch.questions.size());
  std::vector<int64_t> r_idx(categories.size());
  for (size_t i = 0; i < categories.size(); ++i) {
    KT_DCHECK(categories[i] >= 0 && categories[i] <= 2);
    r_idx[i] = categories[i];
  }
  ag::Variable e = QuestionEmbed(batch);
  ag::Variable r = ag::Reshape(r_emb_.Forward(r_idx),
                               Shape{batch.batch_size, batch.max_len, dim_});
  return ag::Add(e, r);
}

std::vector<int> InteractionEmbedder::FactualCategories(
    const data::Batch& batch) {
  return std::vector<int>(batch.responses.begin(), batch.responses.end());
}

ag::Variable InteractionEmbedder::ConceptProbeEmbed(
    const std::vector<int64_t>& questions, int64_t concept_id) const {
  KT_CHECK(!questions.empty());
  std::vector<std::vector<int64_t>> bag = {questions};
  ag::Variable q_mean = ag::EmbeddingBagMean(q_emb_.table(), bag);  // [1, d]
  ag::Variable k = k_emb_.Forward({concept_id});                       // [1, d]
  return ag::Add(q_mean, k);
}

}  // namespace models
}  // namespace kt
