// AKT (Ghosh et al., 2020): context-aware attentive knowledge tracing.
//
// Two AKT signatures are reproduced:
//   * monotonic attention — attention scores decay exponentially with
//     position distance at a learned per-head rate (nn::MultiHeadAttention
//     with monotonic=true),
//   * Rasch embeddings — the question embedding is its concept embedding
//     plus a scalar question-difficulty parameter times a concept variation
//     vector: e_q = c_{k(q)} + mu_q * d_{k(q)}.
// The encoder stack is: self-attention over interactions (knowledge
// encoder) followed by cross-attention of target-question embeddings over
// the knowledge states (knowledge retriever), both causal.
#ifndef KT_MODELS_AKT_H_
#define KT_MODELS_AKT_H_

#include <memory>
#include <vector>

#include "models/neural_base.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace kt {
namespace models {

class AKT : public NeuralKTModel {
 public:
  AKT(int64_t num_questions, int64_t num_concepts, NeuralConfig config);

 protected:
  ag::Variable ForwardLogits(const data::Batch& batch,
                             const nn::Context& ctx) override;

 private:
  // Rasch question embedding e and interaction embedding a, both [B, T, d].
  ag::Variable RaschQuestionEmbed(const data::Batch& batch) const;
  ag::Variable RaschInteractionEmbed(const data::Batch& batch,
                                     const ag::Variable& e) const;

  nn::Embedding concept_emb_;
  nn::Embedding variation_emb_;
  nn::Embedding response_emb_;   // 3 categories (shared convention)
  ag::Variable difficulty_;      // [num_questions, 1] scalar mu_q
  std::vector<std::unique_ptr<nn::TransformerBlock>> knowledge_blocks_;
  std::unique_ptr<nn::TransformerBlock> retriever_;
  nn::Linear hidden_;
  nn::Linear out_;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_AKT_H_
