// Shared training/inference plumbing for the neural baselines.
//
// Subclasses implement ForwardLogits(); this base supplies masked-BCE
// training with Adam, sigmoid inference under NoGradGuard, and the common
// hyper-parameter surface.
#ifndef KT_MODELS_NEURAL_BASE_H_
#define KT_MODELS_NEURAL_BASE_H_

#include <memory>
#include <string>

#include "models/kt_model.h"
#include "nn/adam.h"
#include "nn/module.h"

namespace kt {
namespace models {

struct NeuralConfig {
  int64_t dim = 32;
  int64_t num_layers = 1;
  int64_t num_heads = 2;
  float dropout = 0.1f;
  float lr = 1e-3f;
  float weight_decay = 1e-5f;
  uint64_t seed = 1;
};

class NeuralKTModel : public KTModel, public nn::Module {
 public:
  NeuralKTModel(std::string name, NeuralConfig config);

  std::string name() const final { return name_; }
  Tensor PredictBatch(const data::Batch& batch) final;
  float TrainBatch(const data::Batch& batch) final;
  int64_t NumParameters() const final { return nn::Module::NumParameters(); }
  // Inference runs under NoGradGuard against read-only parameters;
  // subclasses whose ForwardLogits records per-call artifacts re-override.
  bool ParallelEvalSafe() const override { return true; }

  const NeuralConfig& config() const { return config_; }

  // Checkpointing access (kt::ckpt): the optimizer state and the dropout
  // RNG stream both have to survive a kill/resume for the resumed run to be
  // bit-identical to an uninterrupted one.
  nn::Adam* optimizer() { return optimizer_.get(); }
  Rng* dropout_rng() { return &rng_; }

 protected:
  // Next-step correctness logits, [B, T].
  virtual ag::Variable ForwardLogits(const data::Batch& batch,
                                     const nn::Context& ctx) = 0;

  // Must be called at the end of the subclass constructor, after all
  // parameters are registered, to create the optimizer.
  void FinishInit();

  NeuralConfig config_;
  Rng rng_;  // dropout stream

 private:
  std::string name_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_NEURAL_BASE_H_
