#include "models/ktm.h"

#include <cmath>

#include "core/check.h"

namespace kt {
namespace models {
namespace {

double SigmoidD(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

KTM::KTM(int64_t num_questions, int64_t num_concepts, KtmConfig config)
    : num_questions_(num_questions),
      num_concepts_(num_concepts),
      config_(config) {
  Rng rng(config.seed * 131 + 7);
  w_.assign(static_cast<size_t>(num_features()), 0.0);
  v_.resize(static_cast<size_t>(num_features() * config_.factor_dim));
  for (auto& value : v_) value = rng.Gaussian(0.0, 0.05);
}

int64_t KTM::NumParameters() const {
  return 1 + num_features() * (1 + config_.factor_dim);
}

KTM::Features KTM::BuildFeatures(int64_t question,
                                 const std::vector<int64_t>& concepts,
                                 const std::vector<double>& wins,
                                 const std::vector<double>& fails) const {
  Features features;
  features.emplace_back(QuestionFeature(question), 1.0);
  for (size_t j = 0; j < concepts.size(); ++j) {
    const int64_t k = concepts[j];
    features.emplace_back(ConceptFeature(k), 1.0);
    if (wins[j] > 0) features.emplace_back(WinFeature(k), std::log1p(wins[j]));
    if (fails[j] > 0)
      features.emplace_back(FailFeature(k), std::log1p(fails[j]));
  }
  return features;
}

double KTM::Predict(const Features& features,
                    std::vector<double>* cache_sum) const {
  const int64_t d = config_.factor_dim;
  double y = w0_;
  for (const auto& [i, x] : features) y += w_[static_cast<size_t>(i)] * x;

  // Pairwise term via 0.5 * sum_f [ (sum_i v_if x_i)^2 - sum_i v_if^2 x_i^2 ].
  if (cache_sum) cache_sum->assign(static_cast<size_t>(d), 0.0);
  for (int64_t f = 0; f < d; ++f) {
    double sum = 0.0, sum_sq = 0.0;
    for (const auto& [i, x] : features) {
      const double vx = v_[static_cast<size_t>(i * d + f)] * x;
      sum += vx;
      sum_sq += vx * vx;
    }
    y += 0.5 * (sum * sum - sum_sq);
    if (cache_sum) (*cache_sum)[static_cast<size_t>(f)] = sum;
  }
  return y;
}

void KTM::SgdUpdate(const Features& features, int label) {
  std::vector<double> sum_cache;
  const double p = SigmoidD(Predict(features, &sum_cache));
  const double err = p - label;  // d loss / d y
  const int64_t d = config_.factor_dim;

  w0_ -= config_.lr * err;
  for (const auto& [i, x] : features) {
    double& w = w_[static_cast<size_t>(i)];
    w -= config_.lr * (err * x + config_.l2 * w);
    for (int64_t f = 0; f < d; ++f) {
      double& vif = v_[static_cast<size_t>(i * d + f)];
      const double grad =
          err * x * (sum_cache[static_cast<size_t>(f)] - vif * x);
      vif -= config_.lr * (grad + config_.l2 * vif);
    }
  }
}

void KTM::Fit(const data::Dataset& train) {
  // Materialize per-position features once.
  struct Instance {
    Features features;
    int label;
  };
  std::vector<Instance> instances;
  std::vector<double> wins(static_cast<size_t>(num_concepts_));
  std::vector<double> fails(static_cast<size_t>(num_concepts_));
  for (const auto& seq : train.sequences) {
    std::fill(wins.begin(), wins.end(), 0.0);
    std::fill(fails.begin(), fails.end(), 0.0);
    for (const auto& it : seq.interactions) {
      KT_CHECK_LT(it.question, num_questions_);
      std::vector<double> w_counts, f_counts;
      for (int64_t k : it.concepts) {
        KT_CHECK_LT(k, num_concepts_);
        w_counts.push_back(wins[static_cast<size_t>(k)]);
        f_counts.push_back(fails[static_cast<size_t>(k)]);
      }
      instances.push_back(
          {BuildFeatures(it.question, it.concepts, w_counts, f_counts),
           it.response});
      for (int64_t k : it.concepts) {
        (it.response ? wins : fails)[static_cast<size_t>(k)] += 1.0;
      }
    }
  }
  KT_CHECK(!instances.empty());

  Rng shuffle_rng(config_.seed * 977 + 5);
  std::vector<size_t> order(instances.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffle_rng.Shuffle(order);
    for (size_t i : order) {
      SgdUpdate(instances[i].features, instances[i].label);
    }
  }
  fitted_ = true;
}

Tensor KTM::PredictBatch(const data::Batch& batch) {
  KT_CHECK(fitted_) << "KTM::Fit must run before prediction";
  Tensor out(Shape{batch.batch_size, batch.max_len});
  std::vector<double> wins(static_cast<size_t>(num_concepts_));
  std::vector<double> fails(static_cast<size_t>(num_concepts_));
  for (int64_t b = 0; b < batch.batch_size; ++b) {
    std::fill(wins.begin(), wins.end(), 0.0);
    std::fill(fails.begin(), fails.end(), 0.0);
    const int64_t len = batch.lengths[static_cast<size_t>(b)];
    for (int64_t t = 0; t < len; ++t) {
      const int64_t i = batch.FlatIndex(b, t);
      const auto& concepts = batch.concept_bags[static_cast<size_t>(i)];
      std::vector<double> w_counts, f_counts;
      for (int64_t k : concepts) {
        w_counts.push_back(wins[static_cast<size_t>(k)]);
        f_counts.push_back(fails[static_cast<size_t>(k)]);
      }
      const Features features =
          BuildFeatures(batch.questions[static_cast<size_t>(i)], concepts,
                        w_counts, f_counts);
      out.flat(i) = static_cast<float>(SigmoidD(Predict(features, nullptr)));
      const int r = batch.responses[static_cast<size_t>(i)];
      for (int64_t k : concepts) {
        (r ? wins : fails)[static_cast<size_t>(k)] += 1.0;
      }
    }
  }
  return out;
}

}  // namespace models
}  // namespace kt
