#include "models/qikt.h"

namespace kt {
namespace models {

QIKT::QIKT(int64_t num_questions, int64_t num_concepts, NeuralConfig config)
    : NeuralKTModel("QIKT", config),
      embedder_(num_questions, num_concepts, config.dim, rng_),
      mastery_hidden_(2 * config.dim, config.dim, rng_),
      mastery_out_(config.dim, 1, rng_),
      difficulty_out_(config.dim, 1, rng_),
      discrimination_out_(config.dim, 1, rng_) {
  RegisterChild("embedder", &embedder_);
  lstm_ = std::make_unique<nn::LSTM>(config.dim, config.dim, rng_);
  RegisterChild("lstm", lstm_.get());
  RegisterChild("mastery_hidden", &mastery_hidden_);
  RegisterChild("mastery_out", &mastery_out_);
  RegisterChild("difficulty_out", &difficulty_out_);
  RegisterChild("discrimination_out", &discrimination_out_);
  FinishInit();
}

ag::Variable QIKT::ForwardLogits(const data::Batch& batch,
                                 const nn::Context& ctx) {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;
  const int64_t d = config_.dim;

  ag::Variable e = embedder_.QuestionEmbed(batch);
  ag::Variable a = embedder_.InteractionEmbed(
      batch, InteractionEmbedder::FactualCategories(batch));

  ag::Variable h = lstm_->Forward(a);
  if (ctx.train) h = ag::Dropout(h, config_.dropout, *ctx.rng, true);
  ag::Variable zeros = ag::Constant(Tensor::Zeros(Shape{b, 1, d}));
  ag::Variable h_shifted = ag::Concat({zeros, ag::Slice(h, 1, 0, t - 1)}, 1);

  // IRT terms.
  ag::Variable mastery_in = ag::Concat({h_shifted, e}, 2);
  ag::Variable mastery = ag::Reshape(
      mastery_out_.Forward(ag::Relu(mastery_hidden_.Forward(mastery_in))),
      Shape{b, t});
  ag::Variable difficulty =
      ag::Reshape(difficulty_out_.Forward(e), Shape{b, t});
  // softplus keeps discrimination positive.
  ag::Variable discrimination = ag::Log(ag::AddScalar(
      ag::Exp(ag::Reshape(discrimination_out_.Forward(e), Shape{b, t})),
      1.0f));

  if (!ctx.train) {
    last_terms_.mastery = mastery.value().Clone();
    last_terms_.difficulty = difficulty.value().Clone();
    last_terms_.discrimination = discrimination.value().Clone();
  }
  return ag::Mul(discrimination, ag::Sub(mastery, difficulty));
}

}  // namespace models
}  // namespace kt
