// PFA (Pavlik, Cen & Koedinger, 2009): Performance Factors Analysis.
//
// Logistic regression over per-concept practice counts: for a question
// tagged with concepts K,
//   logit = sum_{k in K} (beta_k + gamma_k * s_k + rho_k * f_k)
// where s_k / f_k count the student's prior successes / failures on
// concept k within the window. Three interpretable parameters per concept,
// fit by gradient descent on the (convex) logistic loss with L2 shrinkage.
// Referenced by the paper's background as a classic machine-learning KT
// method ([30]).
#ifndef KT_MODELS_PFA_H_
#define KT_MODELS_PFA_H_

#include <vector>

#include "models/kt_model.h"

namespace kt {
namespace models {

struct PfaConfig {
  int iterations = 400;
  double lr = 0.5;
  double l2 = 1e-4;
  // Counts are log-compressed (log(1+n)) as in common PFA practice, keeping
  // long windows from saturating the logit.
  bool log_counts = true;
};

class PFA : public KTModel {
 public:
  PFA(int64_t num_concepts, PfaConfig config);

  std::string name() const override { return "PFA"; }
  bool SupportsBatchTraining() const override { return false; }
  void Fit(const data::Dataset& train) override;
  Tensor PredictBatch(const data::Batch& batch) override;
  float TrainBatch(const data::Batch& batch) override { return 0.0f; }
  int64_t NumParameters() const override { return 3 * num_concepts_ + 1; }

  // Interpretable per-concept parameters: {easiness beta, success weight
  // gamma, failure weight rho}.
  struct ConceptWeights {
    double beta = 0.0;
    double gamma = 0.0;
    double rho = 0.0;
  };
  const ConceptWeights& weights(int64_t concept_id) const;

 private:
  double CompressCount(double n) const;
  // Logit for one interaction given per-concept success/failure counts.
  double Logit(const std::vector<int64_t>& concepts,
               const std::vector<double>& successes,
               const std::vector<double>& failures) const;

  int64_t num_concepts_;
  PfaConfig config_;
  double bias_ = 0.0;
  std::vector<ConceptWeights> weights_;
  bool fitted_ = false;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_PFA_H_
