// BKT (Corbett & Anderson, 1994): Bayesian Knowledge Tracing.
//
// The classic per-concept two-state Hidden Markov Model that the paper's
// introduction positions as the interpretable ancestor DKT displaced. Each
// knowledge concept has four parameters:
//   p_init  — probability the concept starts mastered  (L0)
//   p_learn — probability of transitioning to mastered after a practice (T)
//   p_guess — probability of answering correctly while unmastered       (G)
//   p_slip  — probability of answering incorrectly while mastered       (S)
// Parameters are fit per concept with expectation-maximization (Baum-Welch
// specialized to the 2-state chain), and prediction runs the standard
// forward update. Questions tagged with several concepts average their
// concepts' predictions.
#ifndef KT_MODELS_BKT_H_
#define KT_MODELS_BKT_H_

#include <vector>

#include "models/kt_model.h"

namespace kt {
namespace models {

struct BktConfig {
  int em_iterations = 20;
  // Parameter clamps keeping the model identifiable (standard practice:
  // guess <= 0.3, slip <= 0.1 in Corbett & Anderson; we allow slightly
  // looser bounds).
  double max_guess = 0.4;
  double max_slip = 0.3;
  double min_learn = 1e-3;
};

class BKT : public KTModel {
 public:
  struct ConceptParams {
    double p_init = 0.3;
    double p_learn = 0.15;
    double p_guess = 0.2;
    double p_slip = 0.1;
  };

  BKT(int64_t num_concepts, BktConfig config);

  std::string name() const override { return "BKT"; }
  bool SupportsBatchTraining() const override { return false; }
  void Fit(const data::Dataset& train) override;
  Tensor PredictBatch(const data::Batch& batch) override;
  float TrainBatch(const data::Batch& batch) override { return 0.0f; }
  int64_t NumParameters() const override { return 4 * num_concepts_; }

  const ConceptParams& params(int64_t concept_id) const;

  // p(correct | mastery probability m) = m (1 - slip) + (1 - m) guess.
  static double CorrectProbability(const ConceptParams& p, double mastery);

 private:
  // Splits a window's responses into per-concept observation sequences.
  // Multi-concept questions contribute their response to every tagged
  // concept.
  static std::vector<std::vector<std::pair<int64_t, int>>> PerConcept(
      const data::Dataset& dataset, int64_t num_concepts);

  // One EM pass over the observation sequences of one concept; returns the
  // updated parameters.
  ConceptParams EmStep(const ConceptParams& current,
                       const std::vector<std::vector<int>>& sequences) const;

  int64_t num_concepts_;
  BktConfig config_;
  std::vector<ConceptParams> params_;
  bool fitted_ = false;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_BKT_H_
