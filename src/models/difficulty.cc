#include "models/difficulty.h"

#include <algorithm>

#include "core/check.h"

namespace kt {
namespace models {

DifficultyTable ComputeDifficulty(const data::Dataset& train,
                                  int64_t num_questions, int num_levels,
                                  double smoothing) {
  KT_CHECK_GT(num_levels, 1);
  std::vector<double> correct(static_cast<size_t>(num_questions), 0.0);
  std::vector<double> total(static_cast<size_t>(num_questions), 0.0);
  int64_t global_correct = 0, global_total = 0;
  for (const auto& seq : train.sequences) {
    for (const auto& it : seq.interactions) {
      KT_CHECK_LT(it.question, num_questions);
      correct[static_cast<size_t>(it.question)] += it.response;
      total[static_cast<size_t>(it.question)] += 1.0;
      global_correct += it.response;
      ++global_total;
    }
  }

  DifficultyTable table;
  table.num_levels = num_levels;
  table.global_rate = global_total == 0
                          ? 0.5
                          : static_cast<double>(global_correct) / global_total;
  table.correct_rate.resize(static_cast<size_t>(num_questions));
  table.level.resize(static_cast<size_t>(num_questions));
  for (int64_t q = 0; q < num_questions; ++q) {
    const double rate =
        (correct[static_cast<size_t>(q)] + smoothing * table.global_rate) /
        (total[static_cast<size_t>(q)] + smoothing);
    table.correct_rate[static_cast<size_t>(q)] = rate;
    int level = static_cast<int>(rate * num_levels);
    table.level[static_cast<size_t>(q)] =
        std::clamp(level, 0, num_levels - 1);
  }
  return table;
}

}  // namespace models
}  // namespace kt
