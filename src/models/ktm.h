// KTM (Vie & Kashima, 2019): Knowledge Tracing Machines.
//
// A degree-2 factorization machine over sparse interaction features
// (paper background ref. [12]):
//   y = w0 + sum_i w_i x_i + sum_{i<j} <v_i, v_j> x_i x_j
// with the standard O(k d) pairwise trick. Features per prediction point:
//   * question one-hot,
//   * concept one-hots,
//   * per-concept win counts (log-compressed, continuous),
//   * per-concept fail counts.
// Student one-hots are omitted: test students are unseen under the CV
// protocol, so they would train weights that never fire at test time.
// Trained with SGD on logistic loss.
#ifndef KT_MODELS_KTM_H_
#define KT_MODELS_KTM_H_

#include <vector>

#include "core/rng.h"
#include "models/kt_model.h"

namespace kt {
namespace models {

struct KtmConfig {
  int64_t factor_dim = 8;
  int epochs = 12;
  double lr = 0.05;
  double l2 = 1e-4;
  uint64_t seed = 1;
};

class KTM : public KTModel {
 public:
  KTM(int64_t num_questions, int64_t num_concepts, KtmConfig config);

  std::string name() const override { return "KTM"; }
  bool SupportsBatchTraining() const override { return false; }
  void Fit(const data::Dataset& train) override;
  Tensor PredictBatch(const data::Batch& batch) override;
  float TrainBatch(const data::Batch& batch) override { return 0.0f; }
  int64_t NumParameters() const override;

 private:
  // Sparse feature vector: (feature index, value).
  using Features = std::vector<std::pair<int64_t, double>>;

  // Feature index layout: [questions | concepts | concept wins |
  // concept fails].
  int64_t QuestionFeature(int64_t q) const { return q; }
  int64_t ConceptFeature(int64_t k) const { return num_questions_ + k; }
  int64_t WinFeature(int64_t k) const {
    return num_questions_ + num_concepts_ + k;
  }
  int64_t FailFeature(int64_t k) const {
    return num_questions_ + 2 * num_concepts_ + k;
  }
  int64_t num_features() const { return num_questions_ + 3 * num_concepts_; }

  Features BuildFeatures(int64_t question,
                         const std::vector<int64_t>& concepts,
                         const std::vector<double>& wins,
                         const std::vector<double>& fails) const;
  double Predict(const Features& features,
                 std::vector<double>* cache_sum) const;
  void SgdUpdate(const Features& features, int label);

  int64_t num_questions_;
  int64_t num_concepts_;
  KtmConfig config_;
  double w0_ = 0.0;
  std::vector<double> w_;  // [num_features]
  std::vector<double> v_;  // [num_features * factor_dim], row-major
  bool fitted_ = false;
};

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_KTM_H_
