// Common interface for knowledge-tracing models.
//
// Protocol (shared by all baselines and RCKT so comparisons are fair):
// for every position t in a window, the model predicts the probability that
// interaction t is answered correctly given interactions 0..t-1 (and, for
// bidirectional RCKT inference, the assumed target outcome — see kt_rckt).
// Position 0 has no history and is excluded from losses and metrics via
// EvalMask().
#ifndef KT_MODELS_KT_MODEL_H_
#define KT_MODELS_KT_MODEL_H_

#include <string>

#include "data/batch.h"
#include "tensor/tensor.h"

namespace kt {
namespace models {

class KTModel {
 public:
  virtual ~KTModel() = default;

  virtual std::string name() const = 0;

  // Probability of a correct response at every position, [B, T]. Entries at
  // invalid (padding) or position-0 slots are unspecified.
  virtual Tensor PredictBatch(const data::Batch& batch) = 0;

  // One optimization step on `batch`; returns the training loss. Models own
  // their optimizer and training randomness.
  virtual float TrainBatch(const data::Batch& batch) = 0;

  virtual int64_t NumParameters() const = 0;

  // Gradient-trained models return true and learn through TrainBatch over
  // epochs; closed-form models (IKT) return false and learn through Fit.
  virtual bool SupportsBatchTraining() const { return true; }

  // True when PredictBatch touches no mutable model state, so the evaluator
  // may call it concurrently from the kt::parallel pool. Models that record
  // per-call artifacts (QIKT IRT terms, SAKT attention capture) or walk
  // mutable per-student state serially must return false.
  virtual bool ParallelEvalSafe() const { return false; }
  // One-shot fit on the full training split (only for models with
  // SupportsBatchTraining() == false).
  virtual void Fit(const data::Dataset& train) {}
};

// Mask of positions that participate in loss/metrics: valid AND t >= 1.
Tensor EvalMask(const data::Batch& batch);

}  // namespace models
}  // namespace kt

#endif  // KT_MODELS_KT_MODEL_H_
