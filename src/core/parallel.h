// Deterministic fixed-size thread pool (kt::parallel).
//
// Design goals, in priority order:
//   1. Determinism: every parallel primitive here produces bit-identical
//      results regardless of the thread count (including KT_NUM_THREADS=1)
//      and across repeated runs. ParallelFor achieves this by requiring
//      callers to write disjoint outputs per index; ParallelReduce achieves
//      it by fixing chunk boundaries from (begin, end, grain) alone — never
//      from the thread count — and combining partials in ascending chunk
//      order on the calling thread.
//   2. Zero cost when serial: with one thread (the default on a 1-core
//      machine), or below the caller's size threshold, everything runs
//      inline with no pool, no locks, and no allocation.
//   3. Nested-call safety: a ParallelFor issued from inside a pool task runs
//      inline on that worker, so parallel callers (e.g. cross-validation
//      folds) can freely call parallel leaves (e.g. GEMM) without deadlock
//      or thread explosion.
//
// The pool is lazily created on the first parallel region that needs more
// than one thread. The thread count comes from, in priority order:
// SetNumThreads(), the KT_NUM_THREADS environment variable, and
// std::thread::hardware_concurrency().
//
// Exceptions thrown by loop bodies are captured (first one wins), the
// region runs to completion, and the exception is rethrown on the calling
// thread.
#ifndef KT_CORE_PARALLEL_H_
#define KT_CORE_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace kt {

// Current thread budget for parallel regions (>= 1). Lazily initialized
// from KT_NUM_THREADS, falling back to hardware_concurrency().
int GetNumThreads();

// Overrides the thread budget for subsequent parallel regions. Values < 1
// are clamped to 1. Growing the budget spawns workers lazily; shrinking it
// simply leaves the extra workers idle. Not intended to be called
// concurrently with in-flight parallel regions.
void SetNumThreads(int n);

// True while the calling thread is executing inside a parallel region
// (pool worker or participating caller). Nested regions run inline.
bool InParallelRegion();

namespace internal {

// Runs chunk_fn(c) for c in [0, num_chunks) across the pool. The calling
// thread participates. Chunks are claimed dynamically (work-stealing via an
// atomic counter), so chunk_fn must be safe to run in any order and from
// any thread; determinism is the caller's contract (disjoint writes, or
// per-chunk outputs combined in chunk order afterwards).
void ParallelRunChunks(int64_t num_chunks,
                       const std::function<void(int64_t)>& chunk_fn);

inline int64_t NumChunks(int64_t range, int64_t grain) {
  return (range + grain - 1) / grain;
}

}  // namespace internal

// Runs fn(i) for every i in [begin, end). The range is split into chunks of
// `grain` indices (the last may be short); chunk boundaries depend only on
// (begin, end, grain). fn must write disjoint state per index.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& fn);

// Range form: fn(chunk_begin, chunk_end) per chunk. Preferred for kernels
// that want a tight inner loop (e.g. row-blocked GEMM).
void ParallelForRange(int64_t begin, int64_t end, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& fn);

// Deterministic reduction: partials[c] = map(chunk_begin, chunk_end) for the
// fixed chunking of [begin, end) by `grain`; the result folds `combine` over
// partials in ascending chunk order starting from `init`. Bit-identical for
// any thread count because neither the chunk boundaries nor the combine
// order ever depend on scheduling.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
                 const MapFn& map, const CombineFn& combine) {
  if (begin >= end) return init;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = internal::NumChunks(end - begin, grain);
  std::vector<T> partials(static_cast<size_t>(num_chunks));
  internal::ParallelRunChunks(num_chunks, [&](int64_t c) {
    const int64_t lo = begin + c * grain;
    const int64_t hi = lo + grain < end ? lo + grain : end;
    partials[static_cast<size_t>(c)] = map(lo, hi);
  });
  T acc = std::move(init);
  for (T& partial : partials) acc = combine(std::move(acc), partial);
  return acc;
}

}  // namespace kt

#endif  // KT_CORE_PARALLEL_H_
