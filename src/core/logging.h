// Minimal leveled logging to stderr.
//
// Usage: KT_LOG(INFO) << "epoch " << e << " auc=" << auc;
// The global threshold defaults to INFO and can be raised to silence
// training chatter in tests (see SetLogLevel).
#ifndef KT_CORE_LOGGING_H_
#define KT_CORE_LOGGING_H_

#include <iostream>
#include <sstream>

namespace kt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the minimum level that is emitted. Thread-compatible (set once at
// startup).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Buffers one log line and flushes it (with level/file/line prefix) on
// destruction at the end of the full expression.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Spelling aliases so KT_LOG(INFO) expands to a valid enumerator.
inline constexpr LogLevel kLogDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLogINFO = LogLevel::kInfo;
inline constexpr LogLevel kLogWARNING = LogLevel::kWarning;
inline constexpr LogLevel kLogERROR = LogLevel::kError;

}  // namespace internal
}  // namespace kt

#define KT_LOG(severity)                                              \
  if (::kt::internal::kLog##severity >= ::kt::GetLogLevel())          \
  ::kt::internal::LogMessage(::kt::internal::kLog##severity,          \
                             __FILE__, __LINE__)                      \
      .stream()

#endif  // KT_CORE_LOGGING_H_
