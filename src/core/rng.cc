#include "core/rng.h"

#include <cmath>

#include "core/check.h"

namespace kt {
namespace {

// SplitMix64: used only to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  KT_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

Rng::State Rng::GetState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace kt
