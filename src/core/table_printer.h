// Renders aligned ASCII tables; used by the bench harness to print the same
// rows the paper's tables report.
#ifndef KT_CORE_TABLE_PRINTER_H_
#define KT_CORE_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace kt {

class TablePrinter {
 public:
  // `header` defines the number of columns; every AddRow must match it.
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  // Inserts a horizontal separator before the next row.
  void AddSeparator();

  // Renders with column alignment and outer borders.
  void Print(std::ostream& os) const;
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  // Separator rows are encoded as empty vectors.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kt

#endif  // KT_CORE_TABLE_PRINTER_H_
