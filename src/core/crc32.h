// CRC32 (IEEE 802.3, polynomial 0xEDB88320) used to checksum serialized
// payloads: cheap enough to run on every save/load and catches the torn
// writes and bit flips that a magic-number check alone misses.
#ifndef KT_CORE_CRC32_H_
#define KT_CORE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace kt {

// Checksum of `size` bytes at `data`.
uint32_t Crc32(const void* data, size_t size);

// Streaming form: feed chunks through repeated calls, starting from
// `Crc32Init()` and finishing with `Crc32Final()`.
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, const void* data, size_t size);
uint32_t Crc32Final(uint32_t state);

}  // namespace kt

#endif  // KT_CORE_CRC32_H_
