// Assertion macros for programmer errors.
//
// Per the project's error-handling policy (see DESIGN.md), exceptions are not
// used. KT_CHECK* macros abort with a readable message on violated
// invariants; they stay enabled in release builds because the cost of a
// branch is negligible next to the numeric kernels they guard.
#ifndef KT_CORE_CHECK_H_
#define KT_CORE_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace kt {
namespace internal {

// Accumulates a failure message and aborts when destroyed. Used only by the
// KT_CHECK macros below.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "KT_CHECK failed at " << file << ":" << line << ": "
            << condition;
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace kt

// Aborts with a message when `condition` is false. Additional context can be
// streamed: KT_CHECK(n > 0) << "n=" << n;
#define KT_CHECK(condition)                                              \
  if (!(condition))                                                      \
  ::kt::internal::CheckFailure(__FILE__, __LINE__, #condition).stream()  \
      << " "

#define KT_CHECK_EQ(a, b) KT_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define KT_CHECK_NE(a, b) KT_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define KT_CHECK_LT(a, b) KT_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define KT_CHECK_LE(a, b) KT_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define KT_CHECK_GT(a, b) KT_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define KT_CHECK_GE(a, b) KT_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

// Debug-only check for hot paths (indexing in inner loops).
#ifdef NDEBUG
#define KT_DCHECK(condition) KT_CHECK(true)
#else
#define KT_DCHECK(condition) KT_CHECK(condition)
#endif

#endif  // KT_CORE_CHECK_H_
