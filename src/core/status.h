// Lightweight Status / Result<T> types for recoverable errors (file I/O,
// config parsing). Programmer errors use KT_CHECK instead.
#ifndef KT_CORE_STATUS_H_
#define KT_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "core/check.h"

namespace kt {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kInternal,
  kIoError,
};

// Returns a short human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// Value-semantic error descriptor. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "Code: message" string.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Mirrors
// absl::StatusOr<T> at a fraction of the size.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    KT_CHECK(!std::get<Status>(data_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }
  // Requires ok(); aborts otherwise.
  const T& value() const& {
    KT_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    KT_CHECK(ok()) << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    KT_CHECK(ok()) << status().ToString();
    return std::move(std::get<T>(data_));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace kt

#endif  // KT_CORE_STATUS_H_
