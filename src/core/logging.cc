#include "core/logging.h"

#include <cstring>

namespace kt {
namespace {

LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << std::endl; }

}  // namespace internal
}  // namespace kt
