#include "core/table_printer.h"

#include <algorithm>
#include <sstream>

#include "core/check.h"

namespace kt {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  KT_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  KT_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  auto render_separator = [&]() {
    std::string line = "+";
    for (size_t c = 0; c < width.size(); ++c) {
      line += std::string(width[c] + 2, '-');
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = row[c];
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };

  std::ostringstream out;
  out << render_separator() << render_row(header_) << render_separator();
  for (const auto& row : rows_) {
    if (row.empty()) {
      out << render_separator();
    } else {
      out << render_row(row);
    }
  }
  out << render_separator();
  return out.str();
}

}  // namespace kt
