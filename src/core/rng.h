// Deterministic random number generation.
//
// All randomness in the library (simulator, parameter init, dropout, data
// shuffling) flows through Rng so that every experiment is reproducible from
// a single seed. The generator is xoshiro256** seeded via SplitMix64 — fast,
// high-quality, and identical across platforms (unlike std::mt19937
// distributions, whose outputs vary by standard library).
#ifndef KT_CORE_RNG_H_
#define KT_CORE_RNG_H_

#include <cstdint>
#include <vector>

namespace kt {

class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double Uniform();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);
  // Standard normal via Box-Muller (cached second value).
  double Gaussian();
  double Gaussian(double mean, double stddev);
  // Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  // Derives an independent child generator; used to give each component its
  // own stream so adding randomness in one place never perturbs another.
  Rng Fork();

  // Full generator state (xoshiro words + Box-Muller cache) so a checkpoint
  // can freeze a stream mid-run and a resumed run replays the exact same
  // draw sequence.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State GetState() const;
  void SetState(const State& state);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace kt

#endif  // KT_CORE_RNG_H_
