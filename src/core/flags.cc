#include "core/flags.h"

#include <cerrno>
#include <cstdlib>

#include "core/parallel.h"

namespace kt {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    if (key.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      values_[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    // "--key value" form; a flag at end-of-line or followed by another flag
    // is treated as boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[key] = argv[++i];
    } else {
      values_[key] = "true";
    }
  }
  return Status::Ok();
}

bool FlagParser::Has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t FlagParser::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const char* start = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(start, &end, 10);
  // `end != start` rejects the empty value ("--key="): strtoll consumes
  // nothing and leaves *end == '\0' at the start pointer, which the
  // terminator check alone would accept as 0.
  KT_CHECK(end != start && *end == '\0')
      << "flag --" << key << " expects an integer, got '" << it->second << "'";
  KT_CHECK(errno != ERANGE)
      << "flag --" << key << " value '" << it->second
      << "' is out of range for a 64-bit integer";
  return value;
}

double FlagParser::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const char* start = it->second.c_str();
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(start, &end);
  KT_CHECK(end != start && *end == '\0')
      << "flag --" << key << " expects a number, got '" << it->second << "'";
  KT_CHECK(errno != ERANGE)
      << "flag --" << key << " value '" << it->second
      << "' is out of range for a double";
  return value;
}

bool FlagParser::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  KT_CHECK(false) << "flag --" << key << " expects true/false, got '"
                  << it->second << "'";
  return fallback;
}

CommonFlagValues ApplyCommonFlags(const FlagParser& flags) {
  if (flags.Has("threads")) {
    const int64_t threads = flags.GetInt("threads", 0);
    KT_CHECK_GE(threads, 1) << "--threads must be >= 1";
    SetNumThreads(static_cast<int>(threads));
  }
  CommonFlagValues values;
  const int64_t every = flags.GetInt("checkpoint-every", 0);
  KT_CHECK_GE(every, 0) << "--checkpoint-every must be >= 0";
  values.checkpoint_every = static_cast<int>(every);
  values.resume_path = flags.GetString("resume", "");
  values.checkpoint_path = flags.GetString("checkpoint", values.resume_path);
  if (flags.Has("obs")) {
    // "--obs" with no value parses as "true" (bare-flag form).
    const std::string value = flags.GetString("obs", "on");
    if (value == "on" || value == "true" || value == "1") {
      values.obs_enabled = true;
    } else {
      KT_CHECK(value == "off" || value == "false" || value == "0")
          << "flag --obs expects on/off, got '" << value << "'";
    }
  }
  values.trace_path = flags.GetString("trace-out", "");
  values.run_log_path = flags.GetString("run-log", "");
  return values;
}

}  // namespace kt
