// Bounds-checked little-endian binary buffer helpers shared by the
// serialization layers (nn/serialize, ckpt). Writers append PODs to a
// std::string; readers walk a BinCursor whose every Read reports
// truncation instead of reading past the end.
#ifndef KT_CORE_BINIO_H_
#define KT_CORE_BINIO_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>

namespace kt {

template <typename T>
void AppendPod(std::string* out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

inline void AppendBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

// Read-only view over a byte buffer. All reads are bounds-checked; a failed
// read leaves the cursor untouched and returns false.
class BinCursor {
 public:
  BinCursor(const char* data, size_t size) : ptr_(data), end_(data + size) {}

  size_t remaining() const { return static_cast<size_t>(end_ - ptr_); }
  bool done() const { return ptr_ == end_; }
  const char* ptr() const { return ptr_; }

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(value, sizeof(T));
  }

  bool ReadBytes(void* dst, size_t size) {
    if (remaining() < size) return false;
    std::memcpy(dst, ptr_, size);
    ptr_ += size;
    return true;
  }

  bool ReadString(std::string* out, size_t size) {
    if (remaining() < size) return false;
    out->assign(ptr_, size);
    ptr_ += size;
    return true;
  }

  bool Skip(size_t size) {
    if (remaining() < size) return false;
    ptr_ += size;
    return true;
  }

 private:
  const char* ptr_;
  const char* end_;
};

}  // namespace kt

#endif  // KT_CORE_BINIO_H_
