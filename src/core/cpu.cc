#include "core/cpu.h"

namespace kt {
namespace cpu {
namespace {

Features Probe() {
  Features f;
#if defined(__x86_64__) || defined(_M_X64)
  f.avx2 = __builtin_cpu_supports("avx2");
  f.fma = __builtin_cpu_supports("fma");
  // GCC only grew the "avx512bf16" probe string recently; guard so older
  // toolchains still build. The bf16 GEMM does not require it either way.
#if defined(__GNUC__) && __GNUC__ >= 11
  f.bf16_cvt = __builtin_cpu_supports("avx512bf16");
#endif
#endif
  return f;
}

const Features* g_override = nullptr;

}  // namespace

const Features& Get() {
  static const Features probed = Probe();
  return g_override != nullptr ? *g_override : probed;
}

std::string IdString() {
  const Features& f = Get();
  std::string id;
  if (f.avx2) id += "avx2";
  if (f.fma) id += id.empty() ? "fma" : "+fma";
  if (f.bf16_cvt) id += id.empty() ? "bf16" : "+bf16";
  if (id.empty()) id = "scalar";
  return id;
}

void SetForTest(const Features* features) { g_override = features; }

}  // namespace cpu
}  // namespace kt
