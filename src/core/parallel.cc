#include "core/parallel.h"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "core/logging.h"

namespace kt {
namespace {

// Upper bound on a believable pool size; anything above this in
// KT_NUM_THREADS is a typo (e.g. a stray digit), not a real machine.
constexpr long kMaxThreads = 1024;

// Set while a thread is executing chunks of some region; nested parallel
// calls from such a thread run inline (see ParallelRunChunks).
thread_local bool t_in_region = false;

// 0 means "not yet initialized"; resolved on first use.
std::atomic<int> g_num_threads{0};

int ResolveDefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw >= 1 ? static_cast<int>(hw) : 1;
  if (const char* env = std::getenv("KT_NUM_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || value < 1 ||
        value > kMaxThreads) {
      KT_LOG(WARNING) << "ignoring invalid KT_NUM_THREADS='" << env
                      << "' (want an integer in [1, " << kMaxThreads
                      << "]); using " << fallback << " threads";
      return fallback;
    }
    return static_cast<int>(value);
  }
  return fallback;
}

// One process-wide pool. Workers sleep until a region is published; the
// publishing (caller) thread participates in its own region. Only one
// region runs on the pool at a time (region_mu); a second concurrent
// top-level caller simply runs its loop inline, which is always correct
// because inline execution is the semantic baseline.
class Pool {
 public:
  static Pool& Get() {
    static Pool pool;
    return pool;
  }

  // Runs chunk_fn over [0, num_chunks) with up to `threads` participants
  // (caller + workers). Rethrows the first captured exception.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& chunk_fn,
           int threads) {
    std::unique_lock<std::mutex> region(region_mu_, std::try_to_lock);
    if (!region.owns_lock()) {
      RunInline(num_chunks, chunk_fn);
      return;
    }
    EnsureWorkers(threads - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      chunk_fn_ = &chunk_fn;
      num_chunks_ = num_chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      completed_.store(0, std::memory_order_relaxed);
      error_ = nullptr;
      workers_admitted_ = threads - 1;
      ++generation_;
      cv_work_.notify_all();
    }

    t_in_region = true;
    DrainChunks(num_chunks, chunk_fn);
    t_in_region = false;

    // Wait for every chunk AND for all admitted workers to leave the
    // region. The second condition prevents a late-scheduled worker from
    // touching the claim counters after they are reset for the next region.
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] {
      return completed_.load(std::memory_order_acquire) == num_chunks_ &&
             active_workers_ == 0;
    });
    chunk_fn_ = nullptr;
    std::exception_ptr error = error_;
    lock.unlock();
    region.unlock();
    if (error) std::rethrow_exception(error);
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      cv_work_.notify_all();
    }
    for (std::thread& worker : workers_) worker.join();
  }

  static void RunInline(int64_t num_chunks,
                        const std::function<void(int64_t)>& chunk_fn) {
    for (int64_t c = 0; c < num_chunks; ++c) chunk_fn(c);
  }

  // Claims and executes chunks until the region is exhausted; used by both
  // the caller and the workers. All chunks run even after an error so the
  // completion count stays exact; the first exception is kept.
  void DrainChunks(int64_t num_chunks,
                   const std::function<void(int64_t)>& chunk_fn) {
    for (;;) {
      const int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      try {
        chunk_fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_) error_ = std::current_exception();
      }
      if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(mu_);
        cv_done_.notify_all();
      }
    }
  }

  void EnsureWorkers(int want) {
    std::lock_guard<std::mutex> lock(mu_);
    while (static_cast<int>(workers_.size()) < want) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_work_.wait(lock, [&] {
        return shutdown_ ||
               (chunk_fn_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      // Respect the region's thread budget: workers beyond it sit this
      // region out (the pool never shrinks, but SetNumThreads may lower
      // the budget after workers were spawned).
      if (workers_admitted_ <= 0) continue;
      --workers_admitted_;
      ++active_workers_;
      const std::function<void(int64_t)>* fn = chunk_fn_;
      const int64_t num_chunks = num_chunks_;
      lock.unlock();
      t_in_region = true;
      DrainChunks(num_chunks, *fn);
      t_in_region = false;
      lock.lock();
      if (--active_workers_ == 0) cv_done_.notify_all();
    }
  }

  // Serializes top-level regions; held for a region's full duration.
  std::mutex region_mu_;

  // Guards everything below.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  const std::function<void(int64_t)>* chunk_fn_ = nullptr;
  int64_t num_chunks_ = 0;
  int workers_admitted_ = 0;
  int active_workers_ = 0;
  uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::exception_ptr error_;

  // Chunk claim / completion counters for the active region.
  std::atomic<int64_t> next_chunk_{0};
  std::atomic<int64_t> completed_{0};
};

}  // namespace

int GetNumThreads() {
  int threads = g_num_threads.load(std::memory_order_acquire);
  if (threads == 0) {
    threads = ResolveDefaultThreads();
    int expected = 0;
    if (!g_num_threads.compare_exchange_strong(expected, threads)) {
      threads = expected;
    }
  }
  return threads;
}

void SetNumThreads(int n) {
  g_num_threads.store(n < 1 ? 1 : n, std::memory_order_release);
}

bool InParallelRegion() { return t_in_region; }

namespace internal {

void ParallelRunChunks(int64_t num_chunks,
                       const std::function<void(int64_t)>& chunk_fn) {
  if (num_chunks <= 0) return;
  const int threads = GetNumThreads();
  if (num_chunks == 1 || threads <= 1 || t_in_region) {
    for (int64_t c = 0; c < num_chunks; ++c) chunk_fn(c);
    return;
  }
  Pool::Get().Run(num_chunks, chunk_fn, threads);
}

}  // namespace internal

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  internal::ParallelRunChunks(
      internal::NumChunks(end - begin, grain), [&](int64_t c) {
        const int64_t lo = begin + c * grain;
        const int64_t hi = lo + grain < end ? lo + grain : end;
        for (int64_t i = lo; i < hi; ++i) fn(i);
      });
}

void ParallelForRange(int64_t begin, int64_t end, int64_t grain,
                      const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  internal::ParallelRunChunks(
      internal::NumChunks(end - begin, grain), [&](int64_t c) {
        const int64_t lo = begin + c * grain;
        const int64_t hi = lo + grain < end ? lo + grain : end;
        fn(lo, hi);
      });
}

}  // namespace kt
