#include "core/fileio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace kt {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

// Writes all of `contents` to `fd`, retrying short writes.
bool WriteAll(int fd, const std::string& contents) {
  const char* data = contents.data();
  size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  return true;
}

// fsync the directory containing `path` so the rename itself is durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);  // best-effort; some filesystems refuse directory fsync
    ::close(fd);
  }
}

}  // namespace

Status ReadFileToString(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::NotFound(ErrnoMessage("cannot open", path));
  out->clear();
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IoError(ErrnoMessage("read failed", path));
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out->append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot create", tmp));
  if (!WriteAll(fd, contents)) {
    const Status status = Status::IoError(ErrnoMessage("write failed", tmp));
    ::close(fd);
    std::remove(tmp.c_str());
    return status;
  }
  if (::fsync(fd) != 0) {
    const Status status = Status::IoError(ErrnoMessage("fsync failed", tmp));
    ::close(fd);
    std::remove(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) {
    const Status status = Status::IoError(ErrnoMessage("close failed", tmp));
    std::remove(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Status::IoError(ErrnoMessage("rename failed", tmp));
    std::remove(tmp.c_str());
    return status;
  }
  SyncParentDir(path);
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace kt
