// One cached CPU feature probe for the whole process.
//
// Kernel TUs used to scatter `__builtin_cpu_supports` calls behind their
// own function-local statics; every new ISA variant re-invented the probe.
// This header is now the single source of truth: `cpu::Get()` probes once
// (thread-safe static init) and every dispatch site, the GEMM backend
// registry, and the autotuner cache key read the same struct.
//
// The probe itself never changes results: which micro-kernel runs is
// unobservable for the bit-exact kernel families, and the low-precision
// families document their own error bounds (tensor/quant.h).
#ifndef KT_CORE_CPU_H_
#define KT_CORE_CPU_H_

#include <string>

namespace kt {
namespace cpu {

struct Features {
  bool avx2 = false;     // 256-bit integer + float SIMD
  bool fma = false;      // fused multiply-add (vfmadd*)
  bool bf16_cvt = false; // AVX512-BF16 native conversions (informational;
                         // the bf16 kernels use shift-based conversion and
                         // run anywhere AVX2+FMA does)
};

// The process-wide probe, evaluated once on first use.
const Features& Get();

// Stable short string of the detected features ("avx2+fma", "scalar", ...).
// Part of the autotuner cache key: a cache written on one machine is
// ignored on a machine with different capabilities.
std::string IdString();

// Test hook: overrides the probe result (pass nullptr to restore the real
// probe). Not thread-safe; call only from single-threaded test setup.
void SetForTest(const Features* features);

}  // namespace cpu
}  // namespace kt

#endif  // KT_CORE_CPU_H_
