// Whole-file I/O with a crash-safe atomic write path.
//
// AtomicWriteFile is the single write primitive behind checkpoints and
// model files: content lands in "<path>.tmp", is fsync'd, and is then
// rename(2)'d over the destination, so a crash at any byte offset leaves
// either the complete previous file or the complete new one — never a torn
// mix. The containing directory is fsync'd after the rename so the new
// directory entry itself survives a power loss.
#ifndef KT_CORE_FILEIO_H_
#define KT_CORE_FILEIO_H_

#include <string>

#include "core/status.h"

namespace kt {

// Reads the entire file into `*out`. NotFound if the file cannot be opened.
Status ReadFileToString(const std::string& path, std::string* out);

// Atomically replaces `path` with `contents` (tmp file + fsync + rename).
Status AtomicWriteFile(const std::string& path, const std::string& contents);

// True if `path` exists and is a regular file.
bool FileExists(const std::string& path);

}  // namespace kt

#endif  // KT_CORE_FILEIO_H_
