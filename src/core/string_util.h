// Small string helpers shared across modules (gcc 12 lacks std::format).
#ifndef KT_CORE_STRING_UTIL_H_
#define KT_CORE_STRING_UTIL_H_

#include <string>
#include <vector>

namespace kt {

// printf-style formatting into a std::string.
std::string StrPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

// Formats a double with `digits` places after the decimal point, e.g.
// FormatFloat(0.79468, 4) == "0.7947".
std::string FormatFloat(double value, int digits);

}  // namespace kt

#endif  // KT_CORE_STRING_UTIL_H_
