// Wall-clock timer used by the efficiency experiments (Table VI).
#ifndef KT_CORE_TIMER_H_
#define KT_CORE_TIMER_H_

#include <chrono>

namespace kt {

class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart(), in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kt

#endif  // KT_CORE_TIMER_H_
