#include "core/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace kt {

std::string StrPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    // +1 for the terminating NUL vsnprintf writes.
    std::vsnprintf(out.data(), static_cast<size_t>(size) + 1, format,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in(s);
  while (std::getline(in, field, delim)) out.push_back(field);
  if (!s.empty() && s.back() == delim) out.push_back("");
  return out;
}

std::string FormatFloat(double value, int digits) {
  return StrPrintf("%.*f", digits, value);
}

}  // namespace kt
