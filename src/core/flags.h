// Minimal command-line flag parsing for the CLI tool.
//
// Accepts "--key value" and "--key=value" forms; everything else is a
// positional argument. Typed getters validate and report errors with the
// offending flag name.
#ifndef KT_CORE_FLAGS_H_
#define KT_CORE_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "core/status.h"

namespace kt {

class FlagParser {
 public:
  // Parses argv[1..argc); malformed input ("--" with no key) yields an
  // error status from Parse.
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  // Typed getters return `fallback` when the flag is absent and abort the
  // program (with a clear message) when the value does not parse — CLI
  // misuse is a user error we surface immediately.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

// Values of the shared flags that cannot be applied globally and must be
// threaded into per-run options by the caller.
struct CommonFlagValues {
  // --checkpoint-every N: commit a crash-safe kt::ckpt checkpoint every N
  // epochs (0 = off).
  int checkpoint_every = 0;
  // --checkpoint <path>: where checkpoints are written. Defaults to the
  // --resume path so a resumed run keeps checkpointing to the same file.
  std::string checkpoint_path;
  // --resume <path>: restore training state from this checkpoint if it
  // exists and continue bit-identically to an uninterrupted run.
  std::string resume_path;
  // --obs on|off: kt::obs counter/histogram recording plus an exit summary
  // on stderr. Off by default; --trace-out / --run-log enable recording
  // implicitly. Metrics, losses, and checkpoints are bit-identical either
  // way (observability never touches compute).
  bool obs_enabled = false;
  // --trace-out <path>: write a Chrome trace-event JSON file (one track per
  // kt::parallel worker) at exit; load it in chrome://tracing or Perfetto.
  std::string trace_path;
  // --run-log <path>: per-epoch JSONL telemetry (loss, AUC/ACC, tokens/sec,
  // GEMM FLOPs, checkpoint latency, RSS), rewritten atomically per epoch.
  std::string run_log_path;
};

// Applies the flags every binary shares — --threads N (overrides the
// KT_NUM_THREADS environment variable for the kt::parallel pool) takes
// effect immediately — and returns the checkpoint/resume and observability
// values for the caller to wire into its trainer options. The observability
// values only take effect once passed to obs::ApplyCommonObsFlags
// (src/obs/obs_flags.h); kt_core itself has no kt_obs dependency.
CommonFlagValues ApplyCommonFlags(const FlagParser& flags);

}  // namespace kt

#endif  // KT_CORE_FLAGS_H_
