#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.h"
#include "obs/obs.h"

namespace kt {
namespace eval {
namespace {

// A NaN score would break the strict-weak-ordering contract of the sort
// comparator below (UB, silently corrupted rankings); an Inf score means
// the model diverged. Both are caught at the door — counted for telemetry,
// then aborted with the offending index so the diverged run is debuggable
// instead of producing a garbage AUC.
void CheckScoreFinite(float score, size_t index) {
  if (std::isfinite(score)) return;
  static obs::Counter* const nonfinite =
      obs::Counter::Get("metrics.nonfinite_scores");
  nonfinite->Add(1);
  KT_CHECK(false) << "non-finite prediction score " << score << " at index "
                  << index
                  << " (diverged model?); AUC/ACC over NaN/Inf scores would "
                     "be meaningless";
}

}  // namespace

double ComputeAuc(const std::vector<float>& scores,
                  const std::vector<int>& labels) {
  KT_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  for (size_t i = 0; i < n; ++i) CheckScoreFinite(scores[i], i);
  int64_t positives = 0;
  for (int y : labels) positives += y;
  const int64_t negatives = static_cast<int64_t>(n) - positives;
  if (positives == 0 || negatives == 0) return 0.5;

  // Rank-sum (Mann-Whitney U) with midranks for ties.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  double rank_sum_positive = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    // Midrank of the tie group [i, j] (1-based ranks).
    const double midrank = 0.5 * (static_cast<double>(i + 1) +
                                  static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] == 1) rank_sum_positive += midrank;
    }
    i = j + 1;
  }
  const double u = rank_sum_positive -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

double ComputeAcc(const std::vector<float>& scores,
                  const std::vector<int>& labels, double threshold) {
  KT_CHECK_EQ(scores.size(), labels.size());
  if (scores.empty()) return 0.0;
  int64_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const int predicted = scores[i] >= threshold ? 1 : 0;
    if (predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

void MetricAccumulator::Add(const Tensor& probs, const Tensor& targets,
                            const Tensor& mask) {
  KT_CHECK(probs.SameShape(targets));
  KT_CHECK(probs.SameShape(mask));
  for (int64_t i = 0; i < probs.numel(); ++i) {
    if (mask.flat(i) != 0.0f) {
      AddOne(probs.flat(i), targets.flat(i) >= 0.5f ? 1 : 0);
    }
  }
}

void MetricAccumulator::AddOne(float score, int label) {
  CheckScoreFinite(score, scores_.size());
  scores_.push_back(score);
  labels_.push_back(label);
}

}  // namespace eval
}  // namespace kt
