// Training loop with validation-based early stopping, evaluation, and the
// k-fold cross-validation driver used by every experiment bench.
#ifndef KT_EVAL_TRAINER_H_
#define KT_EVAL_TRAINER_H_

#include <functional>
#include <memory>

#include "data/dataset.h"
#include "models/kt_model.h"

namespace kt {
namespace eval {

struct TrainOptions {
  int max_epochs = 25;
  // Early stopping: stop after this many epochs without validation-AUC
  // improvement (paper: 10).
  int patience = 10;
  int64_t batch_size = 64;
  uint64_t seed = 3;
  bool verbose = false;
  // Crash-safe checkpointing (kt::ckpt). Every `checkpoint_every` epochs the
  // full training state — parameters, Adam moments, RNG streams, best-epoch
  // snapshot, progress — is committed atomically to `checkpoint_path`
  // (0 disables). If `resume_path` names an existing checkpoint, state is
  // restored from it before training and the loop continues at the next
  // epoch; the resumed run is bit-identical to an uninterrupted one. Under
  // cross-validation both paths get a ".fold<k>" suffix per fold.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  std::string resume_path;
};

struct EvalResult {
  double auc = 0.0;
  double acc = 0.0;
  int64_t num_predictions = 0;
};

struct TrainResult {
  EvalResult test;
  double best_val_auc = 0.0;
  int best_epoch = -1;
  int epochs_run = 0;
  std::vector<double> val_auc_history;
  // Mean training loss per epoch, parallel to val_auc_history; lets tests
  // assert that a resumed run logs the same losses as a straight-through
  // run.
  std::vector<double> train_loss_history;
};

// Masked evaluation of `model` over `dataset` (positions t >= 1 of every
// window).
EvalResult Evaluate(models::KTModel& model, const data::Dataset& dataset,
                    int64_t batch_size = 64);

// Trains with early stopping on split.validation, restores the best-epoch
// weights (neural models), then evaluates on split.test. Closed-form models
// (SupportsBatchTraining() == false) are Fit once on split.train.
TrainResult TrainAndEvaluate(models::KTModel& model,
                             const data::FoldSplit& split,
                             const TrainOptions& options);

// Copy of `options` with per-fold checkpoint/resume paths ("<path>.fold<f>");
// used by the cross-validation drivers so a killed k-fold run restarts at
// the interrupted fold.
TrainOptions FoldOptions(const TrainOptions& options, int fold);

// Builds a model for one fold; receives the fold's training split so models
// that need training-set statistics (DIMKT difficulty, IKT) can use them.
// Folds may run concurrently on the kt::parallel pool, so the factory must
// be callable from any thread (stateless or internally synchronized —
// the usual "construct a fresh model from a config" factories qualify).
using ModelFactory = std::function<std::unique_ptr<models::KTModel>(
    const data::Dataset& train)>;

struct CrossValidationResult {
  std::vector<double> fold_auc;
  std::vector<double> fold_acc;
  double auc_mean = 0.0;
  double acc_mean = 0.0;
  double auc_std = 0.0;
};

// k-fold cross validation over `windows` (already windowed sequences);
// carves `validation_fraction` of each fold's training data for validation
// (paper protocol: 10%; small smoke datasets use more for a stable early
// stopping signal). Folds run in parallel across the kt::parallel pool;
// each fold's RNG streams derive from (seed, fold) alone, so results are
// bit-identical for every KT_NUM_THREADS value.
CrossValidationResult RunCrossValidation(const data::Dataset& windows, int k,
                                         const ModelFactory& factory,
                                         const TrainOptions& options,
                                         uint64_t seed = 11,
                                         double validation_fraction = 0.1);

}  // namespace eval
}  // namespace kt

#endif  // KT_EVAL_TRAINER_H_
