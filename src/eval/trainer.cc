#include "eval/trainer.h"

#include <cmath>

#include "ckpt/training_state.h"
#include "core/fileio.h"
#include "core/logging.h"
#include "core/parallel.h"
#include "core/timer.h"
#include "data/batch.h"
#include "eval/metrics.h"
#include "models/neural_base.h"
#include "nn/module.h"
#include "obs/obs.h"
#include "obs/runlog.h"

namespace kt {
namespace eval {

EvalResult Evaluate(models::KTModel& model, const data::Dataset& dataset,
                    int64_t batch_size) {
  KT_OBS_SCOPE("eval/evaluate");
  MetricAccumulator accumulator;
  Rng rng(1);  // unused: evaluation never shuffles
  data::BatchIterator it(dataset, batch_size, rng, /*shuffle=*/false);
  if (model.ParallelEvalSafe()) {
    // Batch-level parallelism: predictions fan out across the pool, then
    // metrics accumulate in batch order on this thread — the accumulation
    // order (and so the AUC/ACC bits) never depends on the thread count.
    std::vector<data::Batch> batches;
    data::Batch next;
    while (it.Next(&next)) batches.push_back(next);
    std::vector<Tensor> probs(batches.size());
    ParallelFor(0, static_cast<int64_t>(batches.size()), /*grain=*/1,
                [&](int64_t i) {
                  probs[static_cast<size_t>(i)] =
                      model.PredictBatch(batches[static_cast<size_t>(i)]);
                });
    for (size_t i = 0; i < batches.size(); ++i) {
      accumulator.Add(probs[i], batches[i].targets,
                      models::EvalMask(batches[i]));
    }
  } else {
    data::Batch batch;
    while (it.Next(&batch)) {
      Tensor probs = model.PredictBatch(batch);
      accumulator.Add(probs, batch.targets, models::EvalMask(batch));
    }
  }
  EvalResult result;
  result.auc = accumulator.Auc();
  result.acc = accumulator.Acc();
  result.num_predictions = accumulator.count();
  return result;
}

TrainResult TrainAndEvaluate(models::KTModel& model,
                             const data::FoldSplit& split,
                             const TrainOptions& options) {
  TrainResult result;

  if (!model.SupportsBatchTraining()) {
    model.Fit(split.train);
    result.test = Evaluate(model, split.test, options.batch_size);
    result.epochs_run = 1;
    result.best_epoch = 0;
    return result;
  }

  auto* module = dynamic_cast<nn::Module*>(&model);
  auto* neural = dynamic_cast<models::NeuralKTModel*>(&model);
  std::vector<Tensor> best_state;
  Rng shuffle_rng(options.seed * 977 + 3);
  ckpt::TrainerProgress progress;

  // Checkpointing covers every piece of state the loop consumes: the
  // parameters, the Adam moments, the shuffle and dropout RNG streams, the
  // best-epoch snapshot, and the progress counters. Restoring all of them
  // at an epoch boundary makes the resumed run bit-identical to one that
  // was never killed.
  const bool want_ckpt =
      options.checkpoint_every > 0 && !options.checkpoint_path.empty();
  const bool want_resume = !options.resume_path.empty();
  ckpt::TrainingState snapshot;
  bool ckpt_active = false;
  if ((want_ckpt || want_resume) && module == nullptr) {
    KT_LOG(WARNING) << model.name()
                    << " is not an nn::Module; checkpointing disabled";
  } else if (want_ckpt || want_resume) {
    ckpt_active = true;
    snapshot.tag = model.name();
    snapshot.module = module;
    snapshot.optimizer = neural ? neural->optimizer() : nullptr;
    snapshot.rngs.emplace_back("shuffle", &shuffle_rng);
    if (neural) snapshot.rngs.emplace_back("dropout", neural->dropout_rng());
    snapshot.progress = &progress;
    snapshot.best_state = &best_state;
  }
  if (ckpt_active && want_resume && FileExists(options.resume_path)) {
    const Status status =
        ckpt::LoadTrainingState(snapshot, options.resume_path);
    KT_CHECK(status.ok()) << "cannot resume from " << options.resume_path
                          << ": " << status.ToString();
    if (options.verbose) {
      KT_LOG(INFO) << model.name() << " resumed from " << options.resume_path
                   << " at epoch " << progress.next_epoch;
    }
  }

  for (int epoch = static_cast<int>(progress.next_epoch);
       epoch < options.max_epochs; ++epoch) {
    // Also covers resuming a run that had already early-stopped: the
    // restored counter makes the loop exit before training further.
    if (progress.epochs_since_best > 0 &&
        progress.epochs_since_best >= options.patience) {
      break;
    }
    WallTimer epoch_timer;
    const int64_t flops_before =
        obs::Enabled() ? obs::Counter::Get("gemm.flops")->Value() : 0;
    data::BatchIterator it(split.train, options.batch_size, shuffle_rng,
                           /*shuffle=*/true);
    data::Batch batch;
    double loss_sum = 0.0;
    int64_t batches = 0;
    int64_t tokens = 0;
    while (it.Next(&batch)) {
      loss_sum += model.TrainBatch(batch);
      tokens += batch.batch_size * batch.max_len;
      ++batches;
    }
    ++progress.epochs_run;

    const EvalResult val = Evaluate(model, split.validation, options.batch_size);
    progress.val_auc_history.push_back(val.auc);
    progress.train_loss_history.push_back(loss_sum /
                                          std::max<int64_t>(batches, 1));
    if (options.verbose) {
      KT_LOG(INFO) << model.name() << " epoch " << epoch << " loss "
                   << loss_sum / std::max<int64_t>(batches, 1) << " val auc "
                   << val.auc;
    }
    if (val.auc > progress.best_val_auc) {
      progress.best_val_auc = val.auc;
      progress.best_epoch = epoch;
      progress.epochs_since_best = 0;
      if (module) best_state = module->StateClone();
    } else {
      ++progress.epochs_since_best;
    }
    progress.next_epoch = epoch + 1;
    double ckpt_ms = 0.0;
    if (ckpt_active && want_ckpt &&
        (epoch + 1) % options.checkpoint_every == 0) {
      WallTimer ckpt_timer;
      const Status status =
          ckpt::SaveTrainingState(snapshot, options.checkpoint_path);
      KT_CHECK(status.ok()) << "checkpoint to " << options.checkpoint_path
                            << " failed: " << status.ToString();
      ckpt_ms = ckpt_timer.ElapsedMs();
    }
    if (obs::RunLogActive()) {
      obs::RunLogEntry entry;
      entry.run = model.name();
      entry.epoch = epoch;
      entry.train_loss = loss_sum / std::max<int64_t>(batches, 1);
      entry.val_auc = val.auc;
      entry.val_acc = val.acc;
      entry.epoch_ms = epoch_timer.ElapsedMs();
      entry.tokens = tokens;
      entry.gemm_flops =
          obs::Counter::Get("gemm.flops")->Value() - flops_before;
      entry.ckpt_ms = ckpt_ms;
      obs::AppendRunLogEntry(entry);
    }
  }

  result.best_val_auc = progress.best_val_auc;
  result.best_epoch = static_cast<int>(progress.best_epoch);
  result.epochs_run = static_cast<int>(progress.epochs_run);
  result.val_auc_history = progress.val_auc_history;
  result.train_loss_history = progress.train_loss_history;
  if (module && !best_state.empty()) module->SetState(best_state);
  result.test = Evaluate(model, split.test, options.batch_size);
  return result;
}

// Gives fold `fold` its own checkpoint/resume files ("<path>.fold<f>") so a
// killed k-fold run restarts at the interrupted fold: completed folds
// fast-resume (restore + final test evaluation, no retraining) and the
// interrupted fold continues from its last epoch boundary.
TrainOptions FoldOptions(const TrainOptions& options, int fold) {
  TrainOptions fold_options = options;
  const std::string suffix = ".fold" + std::to_string(fold);
  if (!options.checkpoint_path.empty()) {
    fold_options.checkpoint_path = options.checkpoint_path + suffix;
  }
  if (!options.resume_path.empty()) {
    fold_options.resume_path = options.resume_path + suffix;
  }
  return fold_options;
}

CrossValidationResult RunCrossValidation(const data::Dataset& windows, int k,
                                         const ModelFactory& factory,
                                         const TrainOptions& options,
                                         uint64_t seed,
                                         double validation_fraction) {
  CrossValidationResult result;
  Rng fold_rng(seed);
  const std::vector<int> folds =
      data::KFoldAssignment(static_cast<int64_t>(windows.sequences.size()), k,
                            fold_rng);
  // Fold-level parallelism: every fold derives its own RNG stream from the
  // seed and fold index alone and owns a private model, so per-fold results
  // are independent of scheduling and land in fold-indexed slots. (Nested
  // parallel leaves — GEMM, counterfactual fan-out — run inline inside a
  // fold task.)
  result.fold_auc.resize(static_cast<size_t>(k));
  result.fold_acc.resize(static_cast<size_t>(k));
  ParallelFor(0, k, /*grain=*/1, [&](int64_t fold) {
    Rng split_rng(seed * 131 + static_cast<uint64_t>(fold));
    data::FoldSplit split = data::MakeFold(
        windows, folds, static_cast<int>(fold), validation_fraction,
        split_rng);
    std::unique_ptr<models::KTModel> model = factory(split.train);
    TrainResult fold_result = TrainAndEvaluate(
        *model, split, FoldOptions(options, static_cast<int>(fold)));
    result.fold_auc[static_cast<size_t>(fold)] = fold_result.test.auc;
    result.fold_acc[static_cast<size_t>(fold)] = fold_result.test.acc;
    if (options.verbose) {
      KT_LOG(INFO) << "fold " << fold << " auc " << fold_result.test.auc
                   << " acc " << fold_result.test.acc;
    }
  });

  double auc_sum = 0.0, acc_sum = 0.0;
  for (size_t i = 0; i < result.fold_auc.size(); ++i) {
    auc_sum += result.fold_auc[i];
    acc_sum += result.fold_acc[i];
  }
  const double n = static_cast<double>(result.fold_auc.size());
  result.auc_mean = auc_sum / n;
  result.acc_mean = acc_sum / n;
  double var = 0.0;
  for (double v : result.fold_auc)
    var += (v - result.auc_mean) * (v - result.auc_mean);
  result.auc_std = n > 1 ? std::sqrt(var / (n - 1)) : 0.0;
  return result;
}

}  // namespace eval
}  // namespace kt
