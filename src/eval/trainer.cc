#include "eval/trainer.h"

#include <cmath>

#include "core/logging.h"
#include "data/batch.h"
#include "eval/metrics.h"
#include "nn/module.h"

namespace kt {
namespace eval {

EvalResult Evaluate(models::KTModel& model, const data::Dataset& dataset,
                    int64_t batch_size) {
  MetricAccumulator accumulator;
  Rng rng(1);  // unused: evaluation never shuffles
  data::BatchIterator it(dataset, batch_size, rng, /*shuffle=*/false);
  data::Batch batch;
  while (it.Next(&batch)) {
    Tensor probs = model.PredictBatch(batch);
    accumulator.Add(probs, batch.targets, models::EvalMask(batch));
  }
  EvalResult result;
  result.auc = accumulator.Auc();
  result.acc = accumulator.Acc();
  result.num_predictions = accumulator.count();
  return result;
}

TrainResult TrainAndEvaluate(models::KTModel& model,
                             const data::FoldSplit& split,
                             const TrainOptions& options) {
  TrainResult result;

  if (!model.SupportsBatchTraining()) {
    model.Fit(split.train);
    result.test = Evaluate(model, split.test, options.batch_size);
    result.epochs_run = 1;
    result.best_epoch = 0;
    return result;
  }

  auto* module = dynamic_cast<nn::Module*>(&model);
  std::vector<Tensor> best_state;
  Rng shuffle_rng(options.seed * 977 + 3);

  int epochs_since_best = 0;
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    data::BatchIterator it(split.train, options.batch_size, shuffle_rng,
                           /*shuffle=*/true);
    data::Batch batch;
    double loss_sum = 0.0;
    int64_t batches = 0;
    while (it.Next(&batch)) {
      loss_sum += model.TrainBatch(batch);
      ++batches;
    }
    ++result.epochs_run;

    const EvalResult val = Evaluate(model, split.validation, options.batch_size);
    result.val_auc_history.push_back(val.auc);
    if (options.verbose) {
      KT_LOG(INFO) << model.name() << " epoch " << epoch << " loss "
                   << loss_sum / std::max<int64_t>(batches, 1) << " val auc "
                   << val.auc;
    }
    if (val.auc > result.best_val_auc) {
      result.best_val_auc = val.auc;
      result.best_epoch = epoch;
      epochs_since_best = 0;
      if (module) best_state = module->StateClone();
    } else {
      ++epochs_since_best;
      if (epochs_since_best >= options.patience) break;
    }
  }

  if (module && !best_state.empty()) module->SetState(best_state);
  result.test = Evaluate(model, split.test, options.batch_size);
  return result;
}

CrossValidationResult RunCrossValidation(const data::Dataset& windows, int k,
                                         const ModelFactory& factory,
                                         const TrainOptions& options,
                                         uint64_t seed,
                                         double validation_fraction) {
  CrossValidationResult result;
  Rng fold_rng(seed);
  const std::vector<int> folds =
      data::KFoldAssignment(static_cast<int64_t>(windows.sequences.size()), k,
                            fold_rng);
  for (int fold = 0; fold < k; ++fold) {
    Rng split_rng(seed * 131 + static_cast<uint64_t>(fold));
    data::FoldSplit split =
        data::MakeFold(windows, folds, fold, validation_fraction, split_rng);
    std::unique_ptr<models::KTModel> model = factory(split.train);
    TrainResult fold_result = TrainAndEvaluate(*model, split, options);
    result.fold_auc.push_back(fold_result.test.auc);
    result.fold_acc.push_back(fold_result.test.acc);
    if (options.verbose) {
      KT_LOG(INFO) << "fold " << fold << " auc " << fold_result.test.auc
                   << " acc " << fold_result.test.acc;
    }
  }

  double auc_sum = 0.0, acc_sum = 0.0;
  for (size_t i = 0; i < result.fold_auc.size(); ++i) {
    auc_sum += result.fold_auc[i];
    acc_sum += result.fold_acc[i];
  }
  const double n = static_cast<double>(result.fold_auc.size());
  result.auc_mean = auc_sum / n;
  result.acc_mean = acc_sum / n;
  double var = 0.0;
  for (double v : result.fold_auc)
    var += (v - result.auc_mean) * (v - result.auc_mean);
  result.auc_std = n > 1 ? std::sqrt(var / (n - 1)) : 0.0;
  return result;
}

}  // namespace eval
}  // namespace kt
