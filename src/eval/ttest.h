// Welch's t-test, used for the significance markers in Table IV.
#ifndef KT_EVAL_TTEST_H_
#define KT_EVAL_TTEST_H_

#include <vector>

namespace kt {
namespace eval {

struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  // Two-sided p-value.
  double p_value = 1.0;
};

// Welch's unequal-variance t-test between two samples (e.g. per-fold AUCs
// of two models). Requires at least two observations per sample.
TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b);

// Regularized incomplete beta function I_x(a, b) by continued fraction;
// exposed for testing.
double IncompleteBeta(double a, double b, double x);

}  // namespace eval
}  // namespace kt

#endif  // KT_EVAL_TTEST_H_
