#include "eval/ttest.h"

#include <cmath>

#include "core/check.h"

namespace kt {
namespace eval {
namespace {

double LogGamma(double x) { return std::lgamma(x); }

// Continued-fraction evaluation for the incomplete beta function
// (Numerical Recipes "betacf" scheme).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 200;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double IncompleteBeta(double a, double b, double x) {
  KT_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

TTestResult WelchTTest(const std::vector<double>& a,
                       const std::vector<double>& b) {
  KT_CHECK_GE(a.size(), 2u);
  KT_CHECK_GE(b.size(), 2u);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  double mean_a = 0.0, mean_b = 0.0;
  for (double v : a) mean_a += v;
  for (double v : b) mean_b += v;
  mean_a /= na;
  mean_b /= nb;

  double var_a = 0.0, var_b = 0.0;
  for (double v : a) var_a += (v - mean_a) * (v - mean_a);
  for (double v : b) var_b += (v - mean_b) * (v - mean_b);
  var_a /= (na - 1.0);
  var_b /= (nb - 1.0);

  const double se2 = var_a / na + var_b / nb;
  TTestResult result;
  if (se2 <= 0.0) {
    // Identical constant samples: no evidence either way.
    result.t_statistic = 0.0;
    result.degrees_of_freedom = na + nb - 2.0;
    result.p_value = mean_a == mean_b ? 1.0 : 0.0;
    return result;
  }
  result.t_statistic = (mean_a - mean_b) / std::sqrt(se2);
  const double df_num = se2 * se2;
  const double df_den = (var_a / na) * (var_a / na) / (na - 1.0) +
                        (var_b / nb) * (var_b / nb) / (nb - 1.0);
  result.degrees_of_freedom = df_num / df_den;

  // Two-sided p-value from the Student-t CDF:
  // p = I_{df/(df+t^2)}(df/2, 1/2).
  const double t2 = result.t_statistic * result.t_statistic;
  const double x = result.degrees_of_freedom / (result.degrees_of_freedom + t2);
  result.p_value = IncompleteBeta(result.degrees_of_freedom / 2.0, 0.5, x);
  return result;
}

}  // namespace eval
}  // namespace kt
