// Binary-classification metrics used throughout the paper: AUC and ACC.
#ifndef KT_EVAL_METRICS_H_
#define KT_EVAL_METRICS_H_

#include <vector>

#include "tensor/tensor.h"

namespace kt {
namespace eval {

// Area under the ROC curve via the rank statistic (ties share ranks).
// Returns 0.5 when either class is absent. Aborts with a diagnostic (and
// bumps the "metrics.nonfinite_scores" kt::obs counter) on NaN/Inf scores:
// a NaN would void the sort comparator's strict weak ordering and silently
// corrupt the ranking.
double ComputeAuc(const std::vector<float>& scores,
                  const std::vector<int>& labels);

// Accuracy at `threshold`.
double ComputeAcc(const std::vector<float>& scores,
                  const std::vector<int>& labels, double threshold = 0.5);

// Streams masked batch predictions into flat score/label arrays.
class MetricAccumulator {
 public:
  // `probs`, `targets`, `mask` share one shape; entries with mask != 0 are
  // recorded. Non-finite scores abort with a diagnostic (see ComputeAuc).
  void Add(const Tensor& probs, const Tensor& targets, const Tensor& mask);
  void AddOne(float score, int label);

  double Auc() const { return ComputeAuc(scores_, labels_); }
  double Acc(double threshold = 0.5) const {
    return ComputeAcc(scores_, labels_, threshold);
  }
  int64_t count() const { return static_cast<int64_t>(scores_.size()); }

  const std::vector<float>& scores() const { return scores_; }
  const std::vector<int>& labels() const { return labels_; }

 private:
  std::vector<float> scores_;
  std::vector<int> labels_;
};

}  // namespace eval
}  // namespace kt

#endif  // KT_EVAL_METRICS_H_
