// Adam optimizer with decoupled L2 regularization and gradient clipping.
#ifndef KT_NN_ADAM_H_
#define KT_NN_ADAM_H_

#include <vector>

#include "autograd/variable.h"

namespace kt {
namespace nn {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  // L2 penalty added to gradients (the paper's l2-normalization term).
  float weight_decay = 0.0f;
  // Global gradient-norm clip; <= 0 disables.
  float clip_norm = 5.0f;
};

class Adam {
 public:
  Adam(std::vector<ag::Variable> params, AdamOptions options);

  // Applies one update using the gradients currently accumulated on the
  // parameters, then leaves gradients untouched (call ZeroGrad before the
  // next backward).
  void Step();
  void ZeroGrad();

  // Global L2 norm of all parameter gradients.
  float GradNorm() const;

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }
  int64_t step_count() const { return step_; }

  // Checkpointing access: first/second moments parallel to the constructor's
  // parameter order, and the bias-correction step counter.
  const std::vector<Tensor>& moment1() const { return m_; }
  const std::vector<Tensor>& moment2() const { return v_; }
  // Restores a snapshot taken via moment1()/moment2()/step_count(); tensor
  // counts and shapes must match the optimizer's parameters.
  void SetState(const std::vector<Tensor>& m, const std::vector<Tensor>& v,
                int64_t step);

 private:
  std::vector<ag::Variable> params_;
  AdamOptions options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t step_ = 0;
};

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_ADAM_H_
