// Binary (de)serialization of module parameters.
//
// File format (little-endian):
//   magic "KTW2" | uint32 crc32(payload) | payload
// where payload is an optional metadata chunk followed by the
// AppendModuleState encoding:
//   uint64 param_count |
//   per param: uint32 name_len | name bytes | uint32 rank |
//              int64 dims[rank] | float data[numel]
// The metadata chunk (written by SaveModuleWithMeta) is:
//   uint64 0xFFFFFFFFFFFFFFFF | uint32 version | uint32 body_len | body
// The sentinel can never be a real param_count, which is how a loader tells
// the two payload layouts apart; body_len lets older readers skip bodies
// from newer versions. Version-1 body:
//   int32 encoder_kind | int64 dim | int64 num_layers | int64 num_heads |
//   int64 num_questions | int64 num_concepts
// Version-2 body appends the model-identity fields the continual-learning
// publish path stamps (weights_fnv64 is FingerprintModule of the saved
// parameters; weight_version counts promotions, 0 for offline-trained):
//   ... v1 fields ... | uint64 weights_fnv64 | int64 weight_version
// Version-1 files still load with both identity fields zero.
// Legacy "KTW1" files (same payload, no checksum, never any metadata)
// still load.
//
// Loading verifies the checksum and then every name and shape against the
// module, so a corrupt or truncated file — or a checkpoint for a different
// architecture — is rejected without touching the module. Saves are atomic
// (tmp file + fsync + rename): an interrupted save never destroys the
// previous file.
#ifndef KT_NN_SERIALIZE_H_
#define KT_NN_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "nn/module.h"

namespace kt {
namespace nn {

// Self-describing model metadata stored alongside the weights so loaders
// (ktcli serve / evaluate) need no redundant architecture flags. The
// encoder kind is stored as a raw int to keep this layer independent of
// kt::rckt (which owns the enum).
struct ModelMeta {
  int32_t encoder_kind = -1;
  int64_t dim = 0;
  int64_t num_layers = 0;
  int64_t num_heads = 0;
  int64_t num_questions = 0;
  int64_t num_concepts = 0;
  // Model identity (meta v2): FNV-1a 64 over all parameter bytes at save
  // time, and the continual weight-publish generation. Both 0 for files
  // written before v2 or saved outside the publish path.
  uint64_t weights_fnv64 = 0;
  int64_t weight_version = 0;
};

// FNV-1a 64 over every parameter: name bytes then raw float data, in
// Parameters() order. Two modules of the same architecture share a
// fingerprint iff their weights are bit-identical — the identity key for
// weight swaps, cold-tier snapshots, and the serve `stats` model section.
uint64_t FingerprintModule(const Module& module);

// Writes all parameters of `module` to `path` (atomically).
Status SaveModule(const Module& module, const std::string& path);

// Like SaveModule, but prefixes the payload with a metadata chunk (see
// header comment). LoadModule on such a file skips the chunk.
Status SaveModuleWithMeta(const Module& module, const ModelMeta& meta,
                          const std::string& path);

// Reads just the metadata chunk of `path`. Sets *present=false (and returns
// Ok) for well-formed files without one — legacy KTW1 and plain-SaveModule
// KTW2 files.
Status ReadModuleMeta(const std::string& path, bool* present, ModelMeta* meta);

// Restores parameters from `path` into `module`. Fails (without partial
// modification) on checksum/magic/name/shape mismatch, truncation, or
// trailing bytes.
Status LoadModule(Module& module, const std::string& path);

// Buffer-level halves of the above, reused by kt::ckpt to embed parameter
// state inside a larger checkpoint payload.
//
// Appends the parameter encoding (see header comment) to `*out`.
void AppendModuleState(const Module& module, std::string* out);
// Parses a buffer written by AppendModuleState, validating names and shapes
// against `module` and requiring the buffer be consumed exactly. The module
// is only mutated after the whole buffer parses (staged load).
Status ParseModuleState(const char* data, size_t size, Module& module);

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_SERIALIZE_H_
