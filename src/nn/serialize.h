// Binary (de)serialization of module parameters.
//
// File format (little-endian):
//   magic "KTW2" | uint32 crc32(payload) | payload
// where payload is the AppendModuleState encoding:
//   uint64 param_count |
//   per param: uint32 name_len | name bytes | uint32 rank |
//              int64 dims[rank] | float data[numel]
// Legacy "KTW1" files (same payload, no checksum) still load.
//
// Loading verifies the checksum and then every name and shape against the
// module, so a corrupt or truncated file — or a checkpoint for a different
// architecture — is rejected without touching the module. Saves are atomic
// (tmp file + fsync + rename): an interrupted save never destroys the
// previous file.
#ifndef KT_NN_SERIALIZE_H_
#define KT_NN_SERIALIZE_H_

#include <string>

#include "core/status.h"
#include "nn/module.h"

namespace kt {
namespace nn {

// Writes all parameters of `module` to `path` (atomically).
Status SaveModule(const Module& module, const std::string& path);

// Restores parameters from `path` into `module`. Fails (without partial
// modification) on checksum/magic/name/shape mismatch, truncation, or
// trailing bytes.
Status LoadModule(Module& module, const std::string& path);

// Buffer-level halves of the above, reused by kt::ckpt to embed parameter
// state inside a larger checkpoint payload.
//
// Appends the parameter encoding (see header comment) to `*out`.
void AppendModuleState(const Module& module, std::string* out);
// Parses a buffer written by AppendModuleState, validating names and shapes
// against `module` and requiring the buffer be consumed exactly. The module
// is only mutated after the whole buffer parses (staged load).
Status ParseModuleState(const char* data, size_t size, Module& module);

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_SERIALIZE_H_
