// Binary (de)serialization of module parameters.
//
// Format (little-endian):
//   magic "KTW1" | uint64 param_count |
//   per param: uint32 name_len | name bytes | uint32 rank |
//              int64 dims[rank] | float data[numel]
// Loading verifies parameter names and shapes against the module, so a
// checkpoint cannot be silently applied to a different architecture.
#ifndef KT_NN_SERIALIZE_H_
#define KT_NN_SERIALIZE_H_

#include <string>

#include "core/status.h"
#include "nn/module.h"

namespace kt {
namespace nn {

// Writes all parameters of `module` to `path`.
Status SaveModule(const Module& module, const std::string& path);

// Restores parameters from `path` into `module`. Fails (without partial
// modification) on magic/name/shape mismatch.
Status LoadModule(Module& module, const std::string& path);

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_SERIALIZE_H_
