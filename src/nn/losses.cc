#include "nn/losses.h"

#include "tensor/tensor_ops.h"

namespace kt {
namespace nn {
namespace {

float MaskSum(const Tensor& mask) {
  float total = SumAll(mask).item();
  KT_CHECK_GT(total, 0.0f) << "loss mask is empty";
  return total;
}

}  // namespace

ag::Variable BinaryCrossEntropyWithLogits(const ag::Variable& logits,
                                          const Tensor& targets,
                                          const Tensor& mask) {
  KT_CHECK(logits.value().SameShape(targets));
  KT_CHECK(logits.value().SameShape(mask));

  ag::Variable zero = ag::Constant(Tensor::Zeros(logits.shape()));
  ag::Variable y = ag::Constant(targets);
  // |x| = max(x, -x)
  ag::Variable abs_x = ag::Maximum(logits, ag::Neg(logits));
  ag::Variable elem = ag::Add(
      ag::Sub(ag::Maximum(logits, zero), ag::Mul(logits, y)),
      ag::Log(ag::AddScalar(ag::Exp(ag::Neg(abs_x)), 1.0f)));
  ag::Variable masked = ag::Mul(elem, ag::Constant(mask));
  return ag::MulScalar(ag::SumAll(masked), 1.0f / MaskSum(mask));
}

ag::Variable BinaryCrossEntropyFromProbs(const ag::Variable& probs,
                                         const Tensor& targets,
                                         const Tensor& mask, float eps) {
  KT_CHECK(probs.value().SameShape(targets));
  KT_CHECK(probs.value().SameShape(mask));

  ag::Variable y = ag::Constant(targets);
  ag::Variable one_minus_y = ag::Constant(Map(targets, [](float v) {
    return 1.0f - v;
  }));
  ag::Variable log_p = ag::Log(ag::AddScalar(probs, eps));
  ag::Variable log_q =
      ag::Log(ag::AddScalar(ag::Sub(ag::Constant(Tensor::Ones(probs.shape())),
                                    probs),
                            eps));
  ag::Variable elem =
      ag::Neg(ag::Add(ag::Mul(y, log_p), ag::Mul(one_minus_y, log_q)));
  ag::Variable masked = ag::Mul(elem, ag::Constant(mask));
  return ag::MulScalar(ag::SumAll(masked), 1.0f / MaskSum(mask));
}

}  // namespace nn
}  // namespace kt
