#include "nn/embedding.h"

#include "nn/init.h"

namespace kt {
namespace nn {

Embedding::Embedding(int64_t num_embeddings, int64_t dim, Rng& rng)
    : num_embeddings_(num_embeddings), dim_(dim) {
  table_ = RegisterParameter("table",
                             EmbeddingNormal(num_embeddings, dim, rng));
}

ag::Variable Embedding::Forward(const std::vector<int64_t>& indices) const {
  return ag::EmbeddingLookup(table_, indices);
}

}  // namespace nn
}  // namespace kt
