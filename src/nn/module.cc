#include "nn/module.h"

#include <atomic>

namespace kt {
namespace nn {

namespace {
std::atomic<bool> g_fused_ops{true};
}  // namespace

bool FusedOpsEnabled() { return g_fused_ops.load(std::memory_order_relaxed); }

void SetFusedOpsEnabled(bool enabled) {
  g_fused_ops.store(enabled, std::memory_order_relaxed);
}

std::vector<ag::Variable> Module::Parameters() const {
  std::vector<ag::Variable> out;
  for (const auto& [name, param] : params_) out.push_back(param);
  for (const auto& [name, child] : children_) {
    for (const auto& p : child->Parameters()) out.push_back(p);
  }
  return out;
}

std::vector<std::string> Module::ParameterNames() const {
  std::vector<std::string> out;
  for (const auto& [name, param] : params_) out.push_back(name);
  for (const auto& [name, child] : children_) {
    for (const auto& n : child->ParameterNames()) out.push_back(name + "." + n);
  }
  return out;
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.numel();
  return total;
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

std::vector<Tensor> Module::StateClone() const {
  std::vector<Tensor> state;
  for (const auto& p : Parameters()) state.push_back(p.value().Clone());
  return state;
}

void Module::SetState(const std::vector<Tensor>& state) {
  auto params = Parameters();
  KT_CHECK_EQ(params.size(), state.size());
  for (size_t i = 0; i < params.size(); ++i) {
    KT_CHECK(params[i].value().SameShape(state[i]));
    params[i].mutable_value() = state[i].Clone();
  }
}

ag::Variable Module::RegisterParameter(std::string name, Tensor init) {
  ag::Variable param = ag::Variable::Leaf(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), param);
  return param;
}

void Module::RegisterChild(std::string name, Module* child) {
  KT_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

}  // namespace nn
}  // namespace kt
