// Layer normalization over the last dimension.
#ifndef KT_NN_LAYER_NORM_H_
#define KT_NN_LAYER_NORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace kt {
namespace nn {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  // `x` is [*, dim]; normalizes the last dimension, then applies the learned
  // gain and bias.
  ag::Variable Forward(const ag::Variable& x) const;

 private:
  int64_t dim_;
  float eps_;
  ag::Variable gamma_;  // [dim]
  ag::Variable beta_;   // [dim]
};

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_LAYER_NORM_H_
