#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/binio.h"
#include "core/crc32.h"
#include "core/fileio.h"

namespace kt {
namespace nn {
namespace {

constexpr char kMagicV2[4] = {'K', 'T', 'W', '2'};  // CRC-checksummed
constexpr char kMagicV1[4] = {'K', 'T', 'W', '1'};  // legacy, no checksum

// No module in this codebase goes near this depth; an on-disk rank beyond
// it means corruption, and bounding it keeps a hostile `rank` field from
// driving a multi-GB Shape allocation.
constexpr uint32_t kMaxRank = 16;

// Marks a metadata chunk at the start of the payload; can never collide
// with a real param_count.
constexpr uint64_t kMetaSentinel = 0xFFFFFFFFFFFFFFFFull;
constexpr uint32_t kMetaVersion = 2;
// A version-2 body is 60 bytes; anything near this bound is corruption.
constexpr uint32_t kMaxMetaBody = 4096;

void AppendMetaChunk(const ModelMeta& meta, std::string* out) {
  std::string body;
  AppendPod(&body, meta.encoder_kind);
  AppendPod(&body, meta.dim);
  AppendPod(&body, meta.num_layers);
  AppendPod(&body, meta.num_heads);
  AppendPod(&body, meta.num_questions);
  AppendPod(&body, meta.num_concepts);
  AppendPod(&body, meta.weights_fnv64);
  AppendPod(&body, meta.weight_version);
  AppendPod(out, kMetaSentinel);
  AppendPod(out, kMetaVersion);
  AppendPod(out, static_cast<uint32_t>(body.size()));
  *out += body;
}

// Detects and parses a metadata chunk at the head of `data`. On success
// `*consumed` is the chunk size to skip before the module state (0 when
// there is no chunk) and `*present` says whether `*meta` was filled — an
// unknown future version is skipped with *present=false.
Status ParseMetaChunk(const char* data, size_t size, bool* present,
                      ModelMeta* meta, size_t* consumed) {
  *present = false;
  *consumed = 0;
  BinCursor cursor(data, size);
  uint64_t sentinel = 0;
  if (size < sizeof(sentinel)) return Status::Ok();
  if (!cursor.Read(&sentinel) || sentinel != kMetaSentinel) {
    return Status::Ok();  // plain module-state payload
  }
  uint32_t version = 0;
  uint32_t body_len = 0;
  if (!cursor.Read(&version)) {
    return Status::IoError("truncated metadata version");
  }
  if (!cursor.Read(&body_len)) {
    return Status::IoError("truncated metadata length");
  }
  if (body_len > kMaxMetaBody) {
    return Status::InvalidArgument("implausible metadata length " +
                                   std::to_string(body_len));
  }
  if (cursor.remaining() < body_len) {
    return Status::IoError("truncated metadata body");
  }
  if (version == 1 || version == kMetaVersion) {
    BinCursor body(cursor.ptr(), body_len);
    if (!body.Read(&meta->encoder_kind) || !body.Read(&meta->dim) ||
        !body.Read(&meta->num_layers) || !body.Read(&meta->num_heads) ||
        !body.Read(&meta->num_questions) || !body.Read(&meta->num_concepts)) {
      return Status::InvalidArgument("malformed metadata body");
    }
    if (version >= 2 && (!body.Read(&meta->weights_fnv64) ||
                         !body.Read(&meta->weight_version))) {
      return Status::InvalidArgument("malformed v2 metadata body");
    }
    *present = true;
  }
  *consumed = sizeof(kMetaSentinel) + 2 * sizeof(uint32_t) + body_len;
  return Status::Ok();
}

}  // namespace

uint64_t FingerprintModule(const Module& module) {
  const auto params = module.Parameters();
  const auto names = module.ParameterNames();
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const char* data, size_t size) {
    for (size_t i = 0; i < size; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 1099511628211ull;
    }
  };
  for (size_t i = 0; i < params.size(); ++i) {
    mix(names[i].data(), names[i].size());
    const Tensor& value = params[i].value();
    mix(reinterpret_cast<const char*>(value.data()),
        sizeof(float) * static_cast<size_t>(value.numel()));
  }
  return h;
}

void AppendModuleState(const Module& module, std::string* out) {
  const auto params = module.Parameters();
  const auto names = module.ParameterNames();
  KT_CHECK_EQ(params.size(), names.size());

  AppendPod(out, static_cast<uint64_t>(params.size()));
  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor& value = params[i].value();
    AppendPod(out, static_cast<uint32_t>(names[i].size()));
    AppendBytes(out, names[i].data(), names[i].size());
    AppendPod(out, static_cast<uint32_t>(value.dim()));
    for (int64_t d = 0; d < value.dim(); ++d) {
      AppendPod(out, static_cast<int64_t>(value.size(d)));
    }
    AppendBytes(out, value.data(), sizeof(float) * value.numel());
  }
}

Status ParseModuleState(const char* data, size_t size, Module& module) {
  auto params = module.Parameters();
  const auto names = module.ParameterNames();
  BinCursor cursor(data, size);

  uint64_t count = 0;
  if (!cursor.Read(&count)) return Status::IoError("truncated header");
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", module has " + std::to_string(params.size()));
  }

  // Stage everything first so a mid-buffer error leaves the module untouched.
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    uint32_t name_len = 0;
    if (!cursor.Read(&name_len)) return Status::IoError("truncated name len");
    // Validate against the expected name before allocating anything: a
    // corrupt length field must not drive a huge allocation.
    if (name_len != names[i].size()) {
      return Status::InvalidArgument(
          "parameter name length mismatch at index " + std::to_string(i) +
          ": file says " + std::to_string(name_len) + ", module expects " +
          std::to_string(names[i].size()) + " ('" + names[i] + "')");
    }
    std::string name;
    if (!cursor.ReadString(&name, name_len)) {
      return Status::IoError("truncated name");
    }
    if (name != names[i]) {
      return Status::InvalidArgument("parameter name mismatch at index " +
                                     std::to_string(i) + ": file '" + name +
                                     "' vs module '" + names[i] + "'");
    }
    uint32_t rank = 0;
    if (!cursor.Read(&rank)) return Status::IoError("truncated rank");
    if (rank > kMaxRank) {
      return Status::InvalidArgument(
          "implausible rank " + std::to_string(rank) + " for '" + name +
          "' (max " + std::to_string(kMaxRank) + ")");
    }
    const Shape& expected = params[i].value().shape();
    if (rank != expected.size()) {
      return Status::InvalidArgument(
          "rank mismatch for '" + name + "': file " + std::to_string(rank) +
          " vs module " + std::to_string(expected.size()));
    }
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!cursor.Read(&shape[d])) return Status::IoError("truncated shape");
    }
    if (shape != expected) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': file " + ShapeToString(shape) +
          " vs module " + ShapeToString(expected));
    }
    // Shape equals the module's, so the allocation size is trusted.
    Tensor value(shape);
    if (!cursor.ReadBytes(value.data(), sizeof(float) * value.numel())) {
      return Status::IoError("truncated data for '" + name + "'");
    }
    staged.push_back(std::move(value));
  }

  if (!cursor.done()) {
    return Status::InvalidArgument(
        std::to_string(cursor.remaining()) +
        " trailing bytes after the last parameter");
  }

  module.SetState(staged);
  return Status::Ok();
}

Status SaveModule(const Module& module, const std::string& path) {
  std::string file(kMagicV2, sizeof(kMagicV2));
  std::string payload;
  AppendModuleState(module, &payload);
  AppendPod(&file, Crc32(payload.data(), payload.size()));
  file += payload;
  return AtomicWriteFile(path, file);
}

Status SaveModuleWithMeta(const Module& module, const ModelMeta& meta,
                          const std::string& path) {
  std::string file(kMagicV2, sizeof(kMagicV2));
  std::string payload;
  AppendMetaChunk(meta, &payload);
  AppendModuleState(module, &payload);
  AppendPod(&file, Crc32(payload.data(), payload.size()));
  file += payload;
  return AtomicWriteFile(path, file);
}

namespace {

// Shared front half of LoadModule / ReadModuleMeta: validates magic (and
// the CRC for KTW2), then points *payload at the checksummed body.
Status OpenPayload(const std::string& file, const std::string& path,
                   const char** payload, size_t* payload_size) {
  if (file.size() < sizeof(kMagicV2)) {
    return Status::InvalidArgument("file too short for magic in " + path);
  }
  if (std::memcmp(file.data(), kMagicV2, sizeof(kMagicV2)) == 0) {
    constexpr size_t kHeader = sizeof(kMagicV2) + sizeof(uint32_t);
    if (file.size() < kHeader) {
      return Status::InvalidArgument("truncated checksum in " + path);
    }
    uint32_t expected_crc = 0;
    std::memcpy(&expected_crc, file.data() + sizeof(kMagicV2),
                sizeof(expected_crc));
    const uint32_t actual_crc =
        Crc32(file.data() + kHeader, file.size() - kHeader);
    if (actual_crc != expected_crc) {
      return Status::InvalidArgument("checksum mismatch in " + path +
                                     " (file is corrupt)");
    }
    *payload = file.data() + kHeader;
    *payload_size = file.size() - kHeader;
    return Status::Ok();
  }
  if (std::memcmp(file.data(), kMagicV1, sizeof(kMagicV1)) == 0) {
    *payload = file.data() + sizeof(kMagicV1);
    *payload_size = file.size() - sizeof(kMagicV1);
    return Status::Ok();
  }
  return Status::InvalidArgument("bad magic in " + path);
}

}  // namespace

Status LoadModule(Module& module, const std::string& path) {
  std::string file;
  if (Status status = ReadFileToString(path, &file); !status.ok()) {
    return status;
  }
  const char* payload = nullptr;
  size_t payload_size = 0;
  if (Status status = OpenPayload(file, path, &payload, &payload_size);
      !status.ok()) {
    return status;
  }
  // KTW1 never carries metadata, but probing is harmless there: a legacy
  // payload starts with a plausible param count, not the sentinel.
  bool meta_present = false;
  ModelMeta meta;
  size_t meta_bytes = 0;
  if (Status status = ParseMetaChunk(payload, payload_size, &meta_present,
                                     &meta, &meta_bytes);
      !status.ok()) {
    return status;
  }
  return ParseModuleState(payload + meta_bytes, payload_size - meta_bytes,
                          module);
}

Status ReadModuleMeta(const std::string& path, bool* present,
                      ModelMeta* meta) {
  *present = false;
  std::string file;
  if (Status status = ReadFileToString(path, &file); !status.ok()) {
    return status;
  }
  const char* payload = nullptr;
  size_t payload_size = 0;
  if (Status status = OpenPayload(file, path, &payload, &payload_size);
      !status.ok()) {
    return status;
  }
  size_t meta_bytes = 0;
  return ParseMetaChunk(payload, payload_size, present, meta, &meta_bytes);
}

}  // namespace nn
}  // namespace kt
