#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <cstdio>
#include <fstream>
#include <vector>

namespace kt {
namespace nn {
namespace {

constexpr char kMagic[4] = {'K', 'T', 'W', '1'};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveModule(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);

  const auto params = module.Parameters();
  const auto names = module.ParameterNames();
  KT_CHECK_EQ(params.size(), names.size());

  out.write(kMagic, sizeof(kMagic));
  WritePod(out, static_cast<uint64_t>(params.size()));
  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor& value = params[i].value();
    WritePod(out, static_cast<uint32_t>(names[i].size()));
    out.write(names[i].data(),
              static_cast<std::streamsize>(names[i].size()));
    WritePod(out, static_cast<uint32_t>(value.dim()));
    for (int64_t d = 0; d < value.dim(); ++d) {
      WritePod(out, static_cast<int64_t>(value.size(d)));
    }
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(sizeof(float) * value.numel()));
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadModule(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }

  auto params = module.Parameters();
  const auto names = module.ParameterNames();

  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated header");
  if (count != params.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", module has " + std::to_string(params.size()));
  }

  // Stage everything first so a mid-file error leaves the module untouched.
  std::vector<Tensor> staged;
  staged.reserve(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len)) return Status::IoError("truncated name len");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in) return Status::IoError("truncated name");
    if (name != names[i]) {
      return Status::InvalidArgument("parameter name mismatch at index " +
                                     std::to_string(i) + ": file '" + name +
                                     "' vs module '" + names[i] + "'");
    }
    uint32_t rank = 0;
    if (!ReadPod(in, &rank)) return Status::IoError("truncated rank");
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(in, &shape[d])) return Status::IoError("truncated shape");
    }
    if (shape != params[i].value().shape()) {
      return Status::InvalidArgument(
          "shape mismatch for '" + name + "': file " + ShapeToString(shape) +
          " vs module " + ShapeToString(params[i].value().shape()));
    }
    Tensor value(shape);
    in.read(reinterpret_cast<char*>(value.data()),
            static_cast<std::streamsize>(sizeof(float) * value.numel()));
    if (!in) return Status::IoError("truncated data for '" + name + "'");
    staged.push_back(std::move(value));
  }

  module.SetState(staged);
  return Status::Ok();
}

}  // namespace nn
}  // namespace kt
