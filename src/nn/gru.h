// GRU cell and layer (Cho et al., 2014), mirroring the LSTM interface.
//
// Not used by any paper baseline; exists to demonstrate the "adaptive"
// claim of RCKT's knowledge-state encoder (Sec. IV-D1: the encoder "can be
// adapted to multiple KT sequence encoders") with a fourth sequential core
// (RCKT-GRU, see rckt/encoders.h).
#ifndef KT_NN_GRU_H_
#define KT_NN_GRU_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace kt {
namespace nn {

class GRUCell : public Module {
 public:
  GRUCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  // One step; x is [B, input], h is [B, hidden]. Gate order in the fused
  // weights is r (reset), z (update), n (candidate).
  ag::Variable Forward(const ag::Variable& x, const ag::Variable& h) const;

  ag::Variable InitialState(int64_t batch) const;
  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  ag::Variable w_x_;   // [input, 3*hidden]
  ag::Variable w_h_;   // [hidden, 3*hidden]
  ag::Variable bias_;  // [3*hidden]
};

class GRU : public Module {
 public:
  GRU(int64_t input_size, int64_t hidden_size, Rng& rng);

  // x is [B, T, input]; returns all hidden states [B, T, hidden]. With
  // `reverse`, processes right-to-left (output at t summarizes x_{t..T-1}).
  //
  // `initial` seeds the recurrence at the first consumed step; nullptr
  // means the zero state. `final_state` receives the hidden state after the
  // last consumed step, making chunked processing bit-identical to a single
  // pass (see LSTM::Forward).
  ag::Variable Forward(const ag::Variable& x, bool reverse = false,
                       const ag::Variable* initial = nullptr,
                       ag::Variable* final_state = nullptr) const;

  int64_t hidden_size() const { return cell_.hidden_size(); }
  // The shared step cell (for single-step incremental decode).
  const GRUCell& cell() const { return cell_; }

 private:
  GRUCell cell_;
};

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_GRU_H_
