#include "nn/layer_norm.h"

namespace kt {
namespace nn {

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones(Shape{dim}));
  beta_ = RegisterParameter("beta", Tensor::Zeros(Shape{dim}));
}

ag::Variable LayerNorm::Forward(const ag::Variable& x) const {
  KT_CHECK_EQ(x.shape().back(), dim_);
  ag::Variable mu = ag::Mean(x, -1, /*keepdim=*/true);
  ag::Variable centered = ag::Sub(x, mu);
  ag::Variable var =
      ag::Mean(ag::Mul(centered, centered), -1, /*keepdim=*/true);
  ag::Variable inv_std = ag::Sqrt(ag::AddScalar(var, eps_));
  ag::Variable normalized = ag::Div(centered, inv_std);
  return ag::Add(ag::Mul(normalized, gamma_), beta_);
}

}  // namespace nn
}  // namespace kt
