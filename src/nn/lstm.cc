#include "nn/lstm.h"

#include "nn/init.h"

namespace kt {
namespace nn {

LSTMCell::LSTMCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_x_ = RegisterParameter(
      "w_x", LstmUniform(Shape{input_size, 4 * hidden_size}, hidden_size, rng));
  w_h_ = RegisterParameter(
      "w_h",
      LstmUniform(Shape{hidden_size, 4 * hidden_size}, hidden_size, rng));
  // Forget-gate bias starts at 1 to ease gradient flow early in training.
  Tensor b = Tensor::Zeros(Shape{4 * hidden_size});
  for (int64_t i = hidden_size; i < 2 * hidden_size; ++i) b.flat(i) = 1.0f;
  bias_ = RegisterParameter("bias", std::move(b));
}

LSTMCell::State LSTMCell::Forward(const ag::Variable& x,
                                  const State& state) const {
  KT_CHECK_EQ(x.shape().back(), input_size_);
  if (FusedOpsEnabled()) {
    // Fused per-step path: 3 tape nodes instead of ~18, no gate slices or
    // intermediate gate tensors; bit-identical to the composed chain below.
    ag::Variable z = ag::DualLinearBias(x, w_x_, state.h, w_h_, bias_);
    ag::Variable c_next = ag::LstmCellState(z, state.c);
    ag::Variable h_next = ag::LstmCellOutput(z, c_next);
    return {h_next, c_next};
  }
  ag::Variable z = ag::Add(
      ag::Add(ag::MatMul(x, w_x_), ag::MatMul(state.h, w_h_)), bias_);
  const int64_t h = hidden_size_;
  ag::Variable i_gate = ag::Sigmoid(ag::Slice(z, 1, 0, h));
  ag::Variable f_gate = ag::Sigmoid(ag::Slice(z, 1, h, 2 * h));
  ag::Variable g_gate = ag::Tanh(ag::Slice(z, 1, 2 * h, 3 * h));
  ag::Variable o_gate = ag::Sigmoid(ag::Slice(z, 1, 3 * h, 4 * h));

  ag::Variable c_next =
      ag::Add(ag::Mul(f_gate, state.c), ag::Mul(i_gate, g_gate));
  ag::Variable h_next = ag::Mul(o_gate, ag::Tanh(c_next));
  return {h_next, c_next};
}

LSTMCell::State LSTMCell::InitialState(int64_t b) const {
  return {ag::Constant(Tensor::Zeros(Shape{b, hidden_size_})),
          ag::Constant(Tensor::Zeros(Shape{b, hidden_size_}))};
}

LSTM::LSTM(int64_t input_size, int64_t hidden_size, Rng& rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterChild("cell", &cell_);
}

ag::Variable LSTM::Forward(const ag::Variable& x, bool reverse,
                           const LSTMCell::State* initial,
                           LSTMCell::State* final_state) const {
  KT_CHECK_EQ(x.shape().size(), 3u);
  const int64_t batch = x.size(0);
  const int64_t steps = x.size(1);

  LSTMCell::State state = initial ? *initial : cell_.InitialState(batch);
  std::vector<ag::Variable> outputs(static_cast<size_t>(steps));
  for (int64_t s = 0; s < steps; ++s) {
    const int64_t t = reverse ? steps - 1 - s : s;
    ag::Variable x_t = ag::Reshape(ag::Slice(x, 1, t, t + 1),
                                   Shape{batch, x.size(2)});
    state = cell_.Forward(x_t, state);
    outputs[static_cast<size_t>(t)] =
        ag::Reshape(state.h, Shape{batch, 1, cell_.hidden_size()});
  }
  if (final_state != nullptr) *final_state = state;
  return ag::Concat(outputs, 1);
}

}  // namespace nn
}  // namespace kt
