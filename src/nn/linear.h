// Affine layer y = x W + b.
#ifndef KT_NN_LINEAR_H_
#define KT_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace kt {
namespace nn {

class Linear : public Module {
 public:
  // Xavier-initialized weight [in, out]; zero bias unless disabled.
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool use_bias = true);

  // `x` may be [*, in]; leading dimensions are preserved.
  ag::Variable Forward(const ag::Variable& x) const;

  // act(x W + b) with the bias add and activation fused into the GEMM node
  // when FusedOpsEnabled(); otherwise the composed Forward + activation
  // chain. Both paths produce identical bits.
  ag::Variable ForwardAct(const ag::Variable& x, ag::Act act) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  // Raw parameter handles, for code that re-packs the weights into another
  // storage format (e.g. the serve low-precision head). bias() is
  // undefined (.defined() == false) when the layer was built without one.
  const ag::Variable& weight() const { return weight_; }
  const ag::Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  ag::Variable weight_;  // [in, out]
  ag::Variable bias_;    // [out], undefined when use_bias == false
};

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_LINEAR_H_
