#include "nn/init.h"

#include <cmath>

namespace kt {
namespace nn {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::Uniform(Shape{fan_in, fan_out}, -bound, bound, rng);
}

Tensor LstmUniform(Shape shape, int64_t hidden, Rng& rng) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden));
  return Tensor::Uniform(std::move(shape), -bound, bound, rng);
}

Tensor EmbeddingNormal(int64_t rows, int64_t cols, Rng& rng, float scale) {
  return Tensor::Randn(Shape{rows, cols}, 0.0f, scale, rng);
}

}  // namespace nn
}  // namespace kt
