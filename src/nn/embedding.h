// Trainable embedding table with index lookup.
#ifndef KT_NN_EMBEDDING_H_
#define KT_NN_EMBEDDING_H_

#include <vector>

#include "autograd/ops.h"
#include "nn/module.h"

namespace kt {
namespace nn {

class Embedding : public Module {
 public:
  Embedding(int64_t num_embeddings, int64_t dim, Rng& rng);

  // Returns [indices.size(), dim]. Each index must be in
  // [0, num_embeddings).
  ag::Variable Forward(const std::vector<int64_t>& indices) const;

  // Direct access to the table variable (e.g. for averaging question
  // embeddings in concept-proficiency tracing, paper Eq. 30).
  const ag::Variable& table() const { return table_; }

  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  ag::Variable table_;  // [num_embeddings, dim]
};

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_EMBEDDING_H_
