// Loss functions shared by the baselines and RCKT's joint-training terms.
#ifndef KT_NN_LOSSES_H_
#define KT_NN_LOSSES_H_

#include "autograd/ops.h"

namespace kt {
namespace nn {

// Numerically stable binary cross entropy from raw logits:
//   mean over mask of [ max(x,0) - x*y + log(1 + exp(-|x|)) ].
// `logits`, `targets` (0/1) and `mask` (0/1) share one shape. Positions with
// mask == 0 contribute nothing; the mean is over the mask sum (which must be
// positive).
ag::Variable BinaryCrossEntropyWithLogits(const ag::Variable& logits,
                                          const Tensor& targets,
                                          const Tensor& mask);

// BCE from probabilities in (0, 1), with an epsilon clamp inside the logs.
// Used where the model's interface hands out probabilities rather than
// logits (RCKT's probability generator).
ag::Variable BinaryCrossEntropyFromProbs(const ag::Variable& probs,
                                         const Tensor& targets,
                                         const Tensor& mask,
                                         float eps = 1e-6f);

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_LOSSES_H_
