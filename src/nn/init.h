// Parameter initialization schemes.
#ifndef KT_NN_INIT_H_
#define KT_NN_INIT_H_

#include "core/rng.h"
#include "tensor/tensor.h"

namespace kt {
namespace nn {

// Xavier/Glorot uniform for a [fan_in, fan_out] weight matrix.
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng);

// Uniform(-1/sqrt(fan_in), 1/sqrt(fan_in)) for recurrent weights (PyTorch
// LSTM default).
Tensor LstmUniform(Shape shape, int64_t hidden, Rng& rng);

// N(0, scale) embedding initialization.
Tensor EmbeddingNormal(int64_t rows, int64_t cols, Rng& rng,
                       float scale = 0.05f);

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_INIT_H_
