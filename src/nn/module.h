// Base class for neural network modules.
//
// A Module owns named parameters (ag::Variable leaves with requires_grad)
// and child modules; Parameters() flattens the tree for the optimizer.
// Modules are stateless with respect to training mode: forward methods take
// a Context carrying the train flag and the RNG used for dropout, so the
// same module can serve training and inference without mode toggles.
#ifndef KT_NN_MODULE_H_
#define KT_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "core/rng.h"

namespace kt {
namespace nn {

// Per-call context: training mode and RNG (dropout). `rng` may be null when
// train is false.
struct Context {
  bool train = false;
  Rng* rng = nullptr;
};

// Process-wide toggle for the fused forward paths (ag::LinearBiasAct and
// the fused LSTM/GRU cell ops). Fused and composed graphs are bit-identical
// by contract; the toggle exists for A/B equivalence tests and the
// before/after benchmarks. Default on.
bool FusedOpsEnabled();
void SetFusedOpsEnabled(bool enabled);

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and its children, in registration order.
  std::vector<ag::Variable> Parameters() const;
  // Parameter names parallel to Parameters(), child names dotted-prefixed.
  std::vector<std::string> ParameterNames() const;
  // Total scalar parameter count.
  int64_t NumParameters() const;

  // Zeroes gradients of every parameter.
  void ZeroGrad();

  // Deep copies of all parameter values in Parameters() order; used for
  // best-epoch checkpointing during early stopping.
  std::vector<Tensor> StateClone() const;
  // Restores values captured by StateClone (shapes must match).
  void SetState(const std::vector<Tensor>& state);

 protected:
  // Registers a trainable parameter; returns the shared handle.
  ag::Variable RegisterParameter(std::string name, Tensor init);
  // Registers a child whose parameters are exposed through this module.
  // The child must outlive this module (typically a member).
  void RegisterChild(std::string name, Module* child);

 private:
  std::vector<std::pair<std::string, ag::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_MODULE_H_
