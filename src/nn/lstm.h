// LSTM cell and (optionally reversed) single-layer LSTM.
//
// DKT's sequential encoder and RCKT's bidirectional encoder are built from
// these. The layer unrolls the cell over time inside the autograd graph, so
// backpropagation-through-time comes for free.
#ifndef KT_NN_LSTM_H_
#define KT_NN_LSTM_H_

#include <utility>

#include "autograd/ops.h"
#include "nn/module.h"

namespace kt {
namespace nn {

class LSTMCell : public Module {
 public:
  LSTMCell(int64_t input_size, int64_t hidden_size, Rng& rng);

  struct State {
    ag::Variable h;  // [B, hidden]
    ag::Variable c;  // [B, hidden]
  };

  // One step: x is [B, input]. Gate order in the fused weight is i, f, g, o.
  State Forward(const ag::Variable& x, const State& state) const;

  // Zero-filled initial state for batch size `b`.
  State InitialState(int64_t b) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  ag::Variable w_x_;   // [input, 4*hidden]
  ag::Variable w_h_;   // [hidden, 4*hidden]
  ag::Variable bias_;  // [4*hidden]
};

class LSTM : public Module {
 public:
  LSTM(int64_t input_size, int64_t hidden_size, Rng& rng);

  // x is [B, T, input]; returns all hidden states [B, T, hidden].
  // When `reverse` is true the sequence is processed from t = T-1 to 0 and
  // the output at position t is the state after consuming x_t from the
  // right (as needed by bidirectional encoders).
  //
  // `initial` seeds the recurrence at the first consumed step (t = 0, or
  // t = T-1 under `reverse`); nullptr means the zero state. `final_state`,
  // when non-null, receives the state after the last consumed step, so a
  // sequence can be processed in chunks: Forward on x[:, :k] capturing the
  // final state, then Forward on x[:, k:] seeded with it, is bit-identical
  // to one Forward over the whole sequence (incremental decode relies on
  // this; see kt::serve).
  ag::Variable Forward(const ag::Variable& x, bool reverse = false,
                       const LSTMCell::State* initial = nullptr,
                       LSTMCell::State* final_state = nullptr) const;

  int64_t hidden_size() const { return cell_.hidden_size(); }
  // The shared step cell (for single-step incremental decode).
  const LSTMCell& cell() const { return cell_; }

 private:
  LSTMCell cell_;
};

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_LSTM_H_
