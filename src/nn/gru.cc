#include "nn/gru.h"

#include "nn/init.h"

namespace kt {
namespace nn {

GRUCell::GRUCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_x_ = RegisterParameter(
      "w_x", LstmUniform(Shape{input_size, 3 * hidden_size}, hidden_size, rng));
  w_h_ = RegisterParameter(
      "w_h",
      LstmUniform(Shape{hidden_size, 3 * hidden_size}, hidden_size, rng));
  bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{3 * hidden_size}));
}

ag::Variable GRUCell::Forward(const ag::Variable& x,
                              const ag::Variable& h) const {
  KT_CHECK_EQ(x.shape().back(), input_size_);
  const int64_t n = hidden_size_;
  if (FusedOpsEnabled()) {
    // Fused per-step path: the gate math below collapses into one node;
    // bit-identical to the composed chain.
    ag::Variable zx =
        ag::LinearBiasAct(x, w_x_, bias_, ag::Act::kIdentity);  // [B, 3h]
    ag::Variable zh = ag::MatMul(h, w_h_);                      // [B, 3h]
    return ag::GruCellCombine(zx, zh, h);
  }
  ag::Variable zx = ag::Add(ag::MatMul(x, w_x_), bias_);  // [B, 3h]
  ag::Variable zh = ag::MatMul(h, w_h_);                  // [B, 3h]

  ag::Variable r = ag::Sigmoid(
      ag::Add(ag::Slice(zx, 1, 0, n), ag::Slice(zh, 1, 0, n)));
  ag::Variable z = ag::Sigmoid(
      ag::Add(ag::Slice(zx, 1, n, 2 * n), ag::Slice(zh, 1, n, 2 * n)));
  ag::Variable candidate = ag::Tanh(ag::Add(
      ag::Slice(zx, 1, 2 * n, 3 * n),
      ag::Mul(r, ag::Slice(zh, 1, 2 * n, 3 * n))));

  // h' = (1 - z) * candidate + z * h
  ag::Variable one_minus_z =
      ag::Sub(ag::Constant(Tensor::Ones(z.shape())), z);
  return ag::Add(ag::Mul(one_minus_z, candidate), ag::Mul(z, h));
}

ag::Variable GRUCell::InitialState(int64_t batch) const {
  return ag::Constant(Tensor::Zeros(Shape{batch, hidden_size_}));
}

GRU::GRU(int64_t input_size, int64_t hidden_size, Rng& rng)
    : cell_(input_size, hidden_size, rng) {
  RegisterChild("cell", &cell_);
}

ag::Variable GRU::Forward(const ag::Variable& x, bool reverse,
                          const ag::Variable* initial,
                          ag::Variable* final_state) const {
  KT_CHECK_EQ(x.shape().size(), 3u);
  const int64_t batch = x.size(0);
  const int64_t steps = x.size(1);

  ag::Variable h = initial ? *initial : cell_.InitialState(batch);
  std::vector<ag::Variable> outputs(static_cast<size_t>(steps));
  for (int64_t s = 0; s < steps; ++s) {
    const int64_t t = reverse ? steps - 1 - s : s;
    ag::Variable x_t =
        ag::Reshape(ag::Slice(x, 1, t, t + 1), Shape{batch, x.size(2)});
    h = cell_.Forward(x_t, h);
    outputs[static_cast<size_t>(t)] =
        ag::Reshape(h, Shape{batch, 1, cell_.hidden_size()});
  }
  if (final_state != nullptr) *final_state = h;
  return ag::Concat(outputs, 1);
}

}  // namespace nn
}  // namespace kt
