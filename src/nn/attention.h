// Multi-head scaled dot-product attention and a transformer block.
//
// Heads are realized by chunking the feature dimension (dim / num_heads per
// head) rather than by a 4-D permute; with the small dimensions used in this
// library the two are equivalent and chunking keeps the tensor rank at 3.
//
// Two score variants are supported:
//   * standard dot-product (SAKT),
//   * monotonic distance decay (AKT): score_ij - softplus(theta_h) * |i-j|
//     before softmax, a learned-per-head exponential decay with position
//     distance. Because it depends on |i-j|, the same mechanism works in
//     both causal and bidirectional settings ("duality of distance",
//     paper Sec. V-A4).
#ifndef KT_NN_ATTENTION_H_
#define KT_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "nn/linear.h"
#include "nn/layer_norm.h"
#include "nn/module.h"

namespace kt {
namespace nn {

// Builds a [t, t] mask where entry (i, j) is 1 if position i may attend to
// position j.
//   kCausalStrict:          j <  i (SAKT-style, no self)
//   kCausalInclusive:       j <= i (forward stream of a bidirectional
//                                   encoder; outputs are shifted afterwards)
//   kAntiCausalInclusive:   j >= i (backward stream)
//   kBidirectionalNoSelf:   j != i
//   kFull:                  all ones
enum class AttentionMaskKind {
  kCausalStrict,
  kCausalInclusive,
  kAntiCausalInclusive,
  kBidirectionalNoSelf,
  kFull,
};
Tensor MakeAttentionMask(int64_t t, AttentionMaskKind kind);

// Append-only key/value cache for incremental causal decoding of ONE
// sequence (one batch row) through one attention module. Holds the
// post-projection key and value rows of every position seen so far, so a
// new position attends over its history without re-projecting it. The rows
// are bitwise the same values the full-sequence Forward computes, which is
// what makes incremental decode bit-identical to the offline pass
// (see kt::serve and DESIGN.md §11).
struct AttentionKVCache {
  int64_t len = 0;      // positions appended so far
  std::vector<float> k;  // [len * dim], row-major post-k_proj rows
  std::vector<float> v;  // [len * dim], row-major post-v_proj rows
};

class MultiHeadAttention : public Module {
 public:
  // `monotonic` enables the AKT-style distance decay.
  MultiHeadAttention(int64_t dim, int64_t num_heads, float dropout_p,
                     bool monotonic, Rng& rng);

  // q, k, v: [B, T, dim]; `mask` is [Tq, Tk] (1 = attend). If
  // `attention_out` is non-null it receives one [B, Tq, Tk] probability
  // tensor per head (detached; for interpretability analyses). If
  // `cache_out` is non-null (requires B == 1 and k == v), the Tk
  // post-projection key/value rows are appended to it — the bulk
  // (replay) way to build the cache StepCausal extends row by row.
  ag::Variable Forward(const ag::Variable& q, const ag::Variable& k,
                       const ag::Variable& v, const Tensor& mask,
                       const Context& ctx,
                       std::vector<Tensor>* attention_out = nullptr,
                       AttentionKVCache* cache_out = nullptr) const;

  // One causal-inclusive decode step: `x_row` is [1, 1, dim], the new
  // position's (already normed) input. Appends this position's key/value
  // projections to `cache` and returns the attended output row [1, 1, dim].
  // Bitwise equal to row `cache.len` (pre-call) of Forward(x, x, x, m, ...)
  // over the full sequence with m = kCausalInclusive — masked-softmax tail
  // entries of the full pass are exact zeros, so the prefix computation
  // reproduces the same bits (inference only: no dropout is applied).
  ag::Variable StepCausal(const ag::Variable& x_row,
                          AttentionKVCache& cache) const;

  // Bulk causal-inclusive decode: `x_rows` is [1, S, dim], S new positions
  // appended to `cache` in one pass. Row i of the result is bitwise the
  // StepCausal output at global position len+i (pre-call len): projections,
  // norms and the weighted sum are all row-independent, and the blocked
  // future entries of each row's masked softmax carry exact-zero
  // probability mass, the same argument that makes StepCausal equal the
  // full pass (inference only).
  ag::Variable StepCausalRun(const ag::Variable& x_rows,
                             AttentionKVCache& cache) const;

  int64_t num_heads() const { return num_heads_; }

 private:
  // Shared head loop: scores, decay, mask, softmax, weighted sum, merge,
  // out-projection. Both Forward and StepCausal run through this single
  // code path, so the incremental step replays exactly the op chain of the
  // full pass. `distance` is undefined when the decay is off.
  ag::Variable AttendHeads(const ag::Variable& qp, const ag::Variable& kp,
                           const ag::Variable& vp,
                           const ag::Variable& additive_mask,
                           const ag::Variable& row_any_mask,
                           const ag::Variable& distance, const Context& ctx,
                           std::vector<Tensor>* attention_out) const;

  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  float dropout_p_;
  bool monotonic_;
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
  Linear out_proj_;
  ag::Variable decay_;  // [num_heads] raw decay params (monotonic only)
};

// Pre-LN transformer block: x + Attn(LN(x)) then x + FFN(LN(x)).
class TransformerBlock : public Module {
 public:
  TransformerBlock(int64_t dim, int64_t num_heads, float dropout_p,
                   bool monotonic, Rng& rng);

  // Self-attention over x with the given mask. `cache_out` forwards to
  // MultiHeadAttention::Forward (bulk KV-cache build during replay).
  ag::Variable Forward(const ag::Variable& x, const Tensor& mask,
                       const Context& ctx,
                       std::vector<Tensor>* attention_out = nullptr,
                       AttentionKVCache* cache_out = nullptr) const;

  // Cross-attention: queries from `q`, keys/values from `kv`.
  ag::Variable ForwardCross(const ag::Variable& q, const ag::Variable& kv,
                            const Tensor& mask, const Context& ctx,
                            std::vector<Tensor>* attention_out = nullptr) const;

  // One causal-inclusive decode step through the whole block (pre-LN
  // attention + feed-forward), appending to `cache`. `x_row` is [1, 1, dim];
  // bitwise equal to row `cache.len` (pre-call) of Forward(x, causal
  // inclusive mask) over the full sequence, inference mode (no dropout).
  ag::Variable StepCausal(const ag::Variable& x_row,
                          AttentionKVCache& cache) const;

  // Bulk decode through the whole block: `x_rows` is [1, S, dim]; row i is
  // bitwise the StepCausal output of the i-th successive single-row call.
  ag::Variable StepCausalRun(const ag::Variable& x_rows,
                             AttentionKVCache& cache) const;

 private:
  ag::Variable FeedForward(const ag::Variable& x, const Context& ctx) const;

  MultiHeadAttention attention_;
  LayerNorm norm1_;
  LayerNorm norm2_;
  Linear ff1_;
  Linear ff2_;
  float dropout_p_;
};

}  // namespace nn
}  // namespace kt

#endif  // KT_NN_ATTENTION_H_
