#include "nn/attention.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace kt {
namespace nn {

Tensor MakeAttentionMask(int64_t t, AttentionMaskKind kind) {
  Tensor mask(Shape{t, t});
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = 0; j < t; ++j) {
      bool allowed = false;
      switch (kind) {
        case AttentionMaskKind::kCausalStrict:
          allowed = j < i;
          break;
        case AttentionMaskKind::kCausalInclusive:
          allowed = j <= i;
          break;
        case AttentionMaskKind::kAntiCausalInclusive:
          allowed = j >= i;
          break;
        case AttentionMaskKind::kBidirectionalNoSelf:
          allowed = j != i;
          break;
        case AttentionMaskKind::kFull:
          allowed = true;
          break;
      }
      mask.at({i, j}) = allowed ? 1.0f : 0.0f;
    }
  }
  return mask;
}

MultiHeadAttention::MultiHeadAttention(int64_t dim, int64_t num_heads,
                                       float dropout_p, bool monotonic,
                                       Rng& rng)
    : dim_(dim),
      num_heads_(num_heads),
      head_dim_(dim / num_heads),
      dropout_p_(dropout_p),
      monotonic_(monotonic),
      q_proj_(dim, dim, rng, /*use_bias=*/false),
      k_proj_(dim, dim, rng, /*use_bias=*/false),
      v_proj_(dim, dim, rng, /*use_bias=*/false),
      out_proj_(dim, dim, rng) {
  KT_CHECK_EQ(dim % num_heads, 0)
      << "dim " << dim << " not divisible by heads " << num_heads;
  RegisterChild("q_proj", &q_proj_);
  RegisterChild("k_proj", &k_proj_);
  RegisterChild("v_proj", &v_proj_);
  RegisterChild("out_proj", &out_proj_);
  if (monotonic_) {
    // softplus(0) ~ 0.69 decay per unit distance initially.
    decay_ = RegisterParameter("decay", Tensor::Zeros(Shape{num_heads}));
  }
}

ag::Variable MultiHeadAttention::AttendHeads(
    const ag::Variable& qp, const ag::Variable& kp, const ag::Variable& vp,
    const ag::Variable& additive_mask, const ag::Variable& row_any_mask,
    const ag::Variable& distance, const Context& ctx,
    std::vector<Tensor>* attention_out) const {
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<ag::Variable> head_outputs;
  head_outputs.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    const int64_t lo = h * head_dim_;
    const int64_t hi = lo + head_dim_;
    ag::Variable qh = ag::Slice(qp, 2, lo, hi);  // [B, Tq, dh]
    ag::Variable kh = ag::Slice(kp, 2, lo, hi);  // [B, Tk, dh]
    ag::Variable vh = ag::Slice(vp, 2, lo, hi);  // [B, Tk, dh]

    ag::Variable scores = ag::MulScalar(
        ag::BatchMatMul(qh, ag::TransposeLast2(kh)), scale);  // [B, Tq, Tk]
    if (monotonic_) {
      // softplus keeps the decay positive; larger distance -> lower score.
      ag::Variable theta = ag::Slice(decay_, 0, h, h + 1);        // [1]
      ag::Variable softplus =
          ag::Log(ag::AddScalar(ag::Exp(theta), 1.0f));           // [1]
      ag::Variable penalty =
          ag::Mul(ag::Reshape(softplus, Shape{1, 1, 1}), distance);
      scores = ag::Sub(scores, penalty);
    }
    scores = ag::Add(scores, additive_mask);
    ag::Variable probs = ag::SoftmaxLastDim(scores);
    // Rows that can attend nowhere become exact zeros instead of uniform.
    probs = ag::Mul(probs, row_any_mask);
    if (attention_out) attention_out->push_back(probs.value().Clone());
    if (ctx.train && dropout_p_ > 0.0f) {
      KT_CHECK(ctx.rng != nullptr);
      probs = ag::Dropout(probs, dropout_p_, *ctx.rng, ctx.train);
    }
    head_outputs.push_back(ag::BatchMatMul(probs, vh));  // [B, Tq, dh]
  }

  ag::Variable merged = num_heads_ == 1 ? head_outputs[0]
                                        : ag::Concat(head_outputs, 2);
  return out_proj_.Forward(merged);
}

ag::Variable MultiHeadAttention::Forward(
    const ag::Variable& q, const ag::Variable& k, const ag::Variable& v,
    const Tensor& mask, const Context& ctx,
    std::vector<Tensor>* attention_out, AttentionKVCache* cache_out) const {
  const int64_t tq = q.size(1);
  const int64_t tk = k.size(1);
  KT_CHECK_EQ(mask.size(0), tq);
  KT_CHECK_EQ(mask.size(1), tk);

  ag::Variable qp = q_proj_.Forward(q);
  ag::Variable kp = k_proj_.Forward(k);
  ag::Variable vp = v_proj_.Forward(v);

  if (cache_out != nullptr) {
    // Bulk cache build (replay): the projected rows are exactly what
    // StepCausal would have appended position by position.
    KT_CHECK_EQ(q.size(0), 1) << "KV cache capture is single-sequence";
    const Tensor& kt = kp.value();
    const Tensor& vt = vp.value();
    cache_out->k.insert(cache_out->k.end(), kt.data(), kt.data() + kt.numel());
    cache_out->v.insert(cache_out->v.end(), vt.data(), vt.data() + vt.numel());
    cache_out->len += tk;
  }

  // Additive mask: 0 where allowed, -1e9 where blocked, shaped [1, Tq, Tk]
  // to broadcast over the batch.
  Tensor additive = Map(mask, [](float m) { return (m - 1.0f) * 1e9f; })
                        .Reshape(Shape{1, tq, tk});
  ag::Variable additive_mask = ag::Constant(additive);
  // Zero-out factor for rows with no attendable positions, [1, Tq, 1].
  Tensor row_any(Shape{1, tq, 1});
  for (int64_t i = 0; i < tq; ++i) {
    float any = 0.0f;
    for (int64_t j = 0; j < tk; ++j) any = std::max(any, mask.at({i, j}));
    row_any.flat(i) = any;
  }
  ag::Variable row_any_mask = ag::Constant(row_any);

  // Distance matrix for monotonic decay, [1, Tq, Tk].
  ag::Variable distance;
  if (monotonic_) {
    Tensor dist(Shape{1, tq, tk});
    for (int64_t i = 0; i < tq; ++i)
      for (int64_t j = 0; j < tk; ++j)
        dist.flat(i * tk + j) =
            static_cast<float>(std::abs(i - j));
    distance = ag::Constant(dist);
  }

  return AttendHeads(qp, kp, vp, additive_mask, row_any_mask, distance, ctx,
                     attention_out);
}

ag::Variable MultiHeadAttention::StepCausal(const ag::Variable& x_row,
                                            AttentionKVCache& cache) const {
  KT_CHECK_EQ(x_row.size(0), 1);
  KT_CHECK_EQ(x_row.size(1), 1);
  KT_CHECK_EQ(x_row.size(2), dim_);

  ag::Variable qp = q_proj_.Forward(x_row);  // [1, 1, dim]
  ag::Variable kp = k_proj_.Forward(x_row);
  ag::Variable vp = v_proj_.Forward(x_row);
  const Tensor& kt = kp.value();
  const Tensor& vt = vp.value();
  cache.k.insert(cache.k.end(), kt.data(), kt.data() + dim_);
  cache.v.insert(cache.v.end(), vt.data(), vt.data() + dim_);
  cache.len += 1;

  // The query is row i = len-1 of the causal-inclusive full pass; every
  // cached position j <= i is allowed, so the additive mask row is exactly
  // the +0.0f the full pass adds at allowed entries, and row_any is 1. The
  // full pass's blocked tail (j > i) contributes exact zero probability
  // mass, so truncating to the prefix preserves every bit.
  const int64_t tk = cache.len;
  ag::Variable kc =
      ag::Constant(Tensor(Shape{1, tk, dim_}, cache.k));
  ag::Variable vc =
      ag::Constant(Tensor(Shape{1, tk, dim_}, cache.v));
  ag::Variable additive_mask = ag::Constant(Tensor::Zeros(Shape{1, 1, tk}));
  ag::Variable row_any_mask = ag::Constant(Tensor::Ones(Shape{1, 1, 1}));
  ag::Variable distance;
  if (monotonic_) {
    Tensor dist(Shape{1, 1, tk});
    for (int64_t j = 0; j < tk; ++j)
      dist.flat(j) = static_cast<float>(tk - 1 - j);  // |i - j| at i = tk-1
    distance = ag::Constant(dist);
  }
  const Context inference;  // no dropout on the decode path
  return AttendHeads(qp, kc, vc, additive_mask, row_any_mask, distance,
                     inference, nullptr);
}

ag::Variable MultiHeadAttention::StepCausalRun(const ag::Variable& x_rows,
                                               AttentionKVCache& cache) const {
  KT_CHECK_EQ(x_rows.size(0), 1);
  KT_CHECK_EQ(x_rows.size(2), dim_);
  const int64_t s = x_rows.size(1);
  const int64_t offset = cache.len;  // global position of the first new row

  ag::Variable qp = q_proj_.Forward(x_rows);  // [1, S, dim]
  ag::Variable kp = k_proj_.Forward(x_rows);
  ag::Variable vp = v_proj_.Forward(x_rows);
  const Tensor& kt = kp.value();
  const Tensor& vt = vp.value();
  cache.k.insert(cache.k.end(), kt.data(), kt.data() + kt.numel());
  cache.v.insert(cache.v.end(), vt.data(), vt.data() + vt.numel());
  cache.len += s;

  const int64_t tk = cache.len;
  ag::Variable kc = ag::Constant(Tensor(Shape{1, tk, dim_}, cache.k));
  ag::Variable vc = ag::Constant(Tensor(Shape{1, tk, dim_}, cache.v));
  // Row i queries global position offset+i: allowed entries (j <= offset+i)
  // add the exact +0.0f of the full pass, blocked ones the same -1e9, so
  // their post-softmax mass is exactly zero and each row reproduces the
  // single-step bits.
  Tensor additive = Tensor::Zeros(Shape{1, s, tk});
  for (int64_t i = 0; i < s; ++i) {
    for (int64_t j = offset + i + 1; j < tk; ++j) {
      additive.flat(i * tk + j) = -1e9f;
    }
  }
  ag::Variable additive_mask = ag::Constant(additive);
  // Every row can at least attend to itself.
  ag::Variable row_any_mask = ag::Constant(Tensor::Ones(Shape{1, s, 1}));
  ag::Variable distance;
  if (monotonic_) {
    Tensor dist(Shape{1, s, tk});
    for (int64_t i = 0; i < s; ++i) {
      for (int64_t j = 0; j < tk; ++j) {
        dist.flat(i * tk + j) =
            static_cast<float>(std::abs(offset + i - j));
      }
    }
    distance = ag::Constant(dist);
  }
  const Context inference;  // no dropout on the decode path
  return AttendHeads(qp, kc, vc, additive_mask, row_any_mask, distance,
                     inference, nullptr);
}

TransformerBlock::TransformerBlock(int64_t dim, int64_t num_heads,
                                   float dropout_p, bool monotonic, Rng& rng)
    : attention_(dim, num_heads, dropout_p, monotonic, rng),
      norm1_(dim),
      norm2_(dim),
      ff1_(dim, 2 * dim, rng),
      ff2_(2 * dim, dim, rng),
      dropout_p_(dropout_p) {
  RegisterChild("attention", &attention_);
  RegisterChild("norm1", &norm1_);
  RegisterChild("norm2", &norm2_);
  RegisterChild("ff1", &ff1_);
  RegisterChild("ff2", &ff2_);
}

ag::Variable TransformerBlock::FeedForward(const ag::Variable& x,
                                           const Context& ctx) const {
  ag::Variable hidden = ff1_.ForwardAct(x, ag::Act::kRelu);
  if (ctx.train && dropout_p_ > 0.0f) {
    hidden = ag::Dropout(hidden, dropout_p_, *ctx.rng, ctx.train);
  }
  return ff2_.ForwardAct(hidden, ag::Act::kIdentity);
}

ag::Variable TransformerBlock::Forward(const ag::Variable& x,
                                       const Tensor& mask, const Context& ctx,
                                       std::vector<Tensor>* attention_out,
                                       AttentionKVCache* cache_out) const {
  ag::Variable normed = norm1_.Forward(x);
  ag::Variable attended = attention_.Forward(normed, normed, normed, mask,
                                             ctx, attention_out, cache_out);
  ag::Variable mid = ag::Add(x, attended);
  return ag::Add(mid, FeedForward(norm2_.Forward(mid), ctx));
}

ag::Variable TransformerBlock::StepCausal(const ag::Variable& x_row,
                                          AttentionKVCache& cache) const {
  ag::Variable normed = norm1_.Forward(x_row);
  ag::Variable attended = attention_.StepCausal(normed, cache);
  ag::Variable mid = ag::Add(x_row, attended);
  const Context inference;
  return ag::Add(mid, FeedForward(norm2_.Forward(mid), inference));
}

ag::Variable TransformerBlock::StepCausalRun(const ag::Variable& x_rows,
                                             AttentionKVCache& cache) const {
  ag::Variable normed = norm1_.Forward(x_rows);
  ag::Variable attended = attention_.StepCausalRun(normed, cache);
  ag::Variable mid = ag::Add(x_rows, attended);
  const Context inference;
  return ag::Add(mid, FeedForward(norm2_.Forward(mid), inference));
}

ag::Variable TransformerBlock::ForwardCross(
    const ag::Variable& q, const ag::Variable& kv, const Tensor& mask,
    const Context& ctx, std::vector<Tensor>* attention_out) const {
  ag::Variable qn = norm1_.Forward(q);
  ag::Variable attended =
      attention_.Forward(qn, kv, kv, mask, ctx, attention_out);
  ag::Variable mid = ag::Add(q, attended);
  return ag::Add(mid, FeedForward(norm2_.Forward(mid), ctx));
}

}  // namespace nn
}  // namespace kt
