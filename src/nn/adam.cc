#include "nn/adam.h"

#include <cmath>

namespace kt {
namespace nn {

Adam::Adam(std::vector<ag::Variable> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::Zeros(p.shape()));
    v_.push_back(Tensor::Zeros(p.shape()));
  }
}

float Adam::GradNorm() const {
  double total = 0.0;
  for (const auto& p : params_) {
    Tensor g = p.grad();
    for (int64_t i = 0; i < g.numel(); ++i) {
      total += static_cast<double>(g.flat(i)) * g.flat(i);
    }
  }
  return static_cast<float>(std::sqrt(total));
}

void Adam::Step() {
  ++step_;
  const float bias1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));

  float clip_scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    const float norm = GradNorm();
    if (norm > options_.clip_norm) clip_scale = options_.clip_norm / norm;
  }

  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& value = params_[i].mutable_value();
    Tensor grad = params_[i].grad();
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < value.numel(); ++j) {
      float g = grad.flat(j) * clip_scale;
      if (options_.weight_decay > 0.0f) {
        g += options_.weight_decay * value.flat(j);
      }
      m.flat(j) = options_.beta1 * m.flat(j) + (1.0f - options_.beta1) * g;
      v.flat(j) = options_.beta2 * v.flat(j) + (1.0f - options_.beta2) * g * g;
      const float m_hat = m.flat(j) / bias1;
      const float v_hat = v.flat(j) / bias2;
      value.flat(j) -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

void Adam::SetState(const std::vector<Tensor>& m, const std::vector<Tensor>& v,
                    int64_t step) {
  KT_CHECK_EQ(m.size(), params_.size());
  KT_CHECK_EQ(v.size(), params_.size());
  KT_CHECK_GE(step, 0);
  for (size_t i = 0; i < params_.size(); ++i) {
    KT_CHECK(m[i].SameShape(m_[i]));
    KT_CHECK(v[i].SameShape(v_[i]));
    m_[i] = m[i].Clone();
    v_[i] = v[i].Clone();
  }
  step_ = step;
}

void Adam::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

}  // namespace nn
}  // namespace kt
