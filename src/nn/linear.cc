#include "nn/linear.h"

#include "nn/init.h"

namespace kt {
namespace nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool use_bias)
    : in_features_(in_features), out_features_(out_features) {
  weight_ =
      RegisterParameter("weight", XavierUniform(in_features, out_features, rng));
  if (use_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros(Shape{out_features}));
  }
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  const Shape& in_shape = x.shape();
  KT_CHECK_GE(in_shape.size(), 1u);
  KT_CHECK_EQ(in_shape.back(), in_features_);

  // Flatten leading dims, 2-D matmul, restore shape.
  ag::Variable flat = ag::Reshape(x, Shape{-1, in_features_});
  ag::Variable out = ag::MatMul(flat, weight_);
  if (bias_.defined()) out = ag::Add(out, bias_);

  Shape out_shape(in_shape.begin(), in_shape.end() - 1);
  out_shape.push_back(out_features_);
  return ag::Reshape(out, std::move(out_shape));
}

ag::Variable Linear::ForwardAct(const ag::Variable& x, ag::Act act) const {
  const Shape& in_shape = x.shape();
  KT_CHECK_GE(in_shape.size(), 1u);
  KT_CHECK_EQ(in_shape.back(), in_features_);

  Shape out_shape(in_shape.begin(), in_shape.end() - 1);
  out_shape.push_back(out_features_);

  if (FusedOpsEnabled()) {
    ag::Variable flat = ag::Reshape(x, Shape{-1, in_features_});
    return ag::Reshape(ag::LinearBiasAct(flat, weight_, bias_, act),
                       std::move(out_shape));
  }
  ag::Variable out = Forward(x);
  switch (act) {
    case ag::Act::kIdentity:
      return out;
    case ag::Act::kRelu:
      return ag::Relu(out);
    case ag::Act::kSigmoid:
      return ag::Sigmoid(out);
    case ag::Act::kTanh:
      return ag::Tanh(out);
  }
  return out;
}

}  // namespace nn
}  // namespace kt
