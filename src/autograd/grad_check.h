// Finite-difference gradient verification, used by the test suite to pin the
// correctness of every differentiable op and module.
#ifndef KT_AUTOGRAD_GRAD_CHECK_H_
#define KT_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <vector>

#include "autograd/variable.h"

namespace kt {
namespace ag {

struct GradCheckResult {
  bool ok = true;
  // Largest |analytic - numeric| over all checked coordinates.
  float max_abs_error = 0.0f;
  // Largest relative error (scaled by max(1, |numeric|)).
  float max_rel_error = 0.0f;
};

// Checks analytic gradients of `fn` against central finite differences.
//
// `fn` must rebuild the computation from the given leaf variables and return
// a scalar loss; it is invoked repeatedly with perturbed leaf values.
// `params` are the leaves whose gradients are verified (each must have
// requires_grad). Tolerance is absolute-or-relative: a coordinate passes if
// |a - n| <= tol * max(1, |n|).
GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable>& params, float epsilon = 1e-3f, float tol = 2e-2f);

}  // namespace ag
}  // namespace kt

#endif  // KT_AUTOGRAD_GRAD_CHECK_H_
