#include "autograd/grad_check.h"

#include <cmath>

namespace kt {
namespace ag {

GradCheckResult CheckGradients(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable>& params, float epsilon, float tol) {
  GradCheckResult result;

  // Analytic gradients.
  for (Variable& p : params) p.ZeroGrad();
  Variable loss = fn(params);
  loss.Backward();
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const Variable& p : params) analytic.push_back(p.grad());

  // Numeric gradients by central differences, one coordinate at a time.
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& value = params[pi].mutable_value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      const float saved = value.flat(i);

      value.flat(i) = saved + epsilon;
      const float up = fn(params).value().item();
      value.flat(i) = saved - epsilon;
      const float down = fn(params).value().item();
      value.flat(i) = saved;

      const float numeric = (up - down) / (2.0f * epsilon);
      const float a = analytic[pi].flat(i);
      const float abs_err = std::fabs(a - numeric);
      const float rel_err = abs_err / std::max(1.0f, std::fabs(numeric));
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (abs_err > tol * std::max(1.0f, std::fabs(numeric))) {
        result.ok = false;
      }
    }
  }
  return result;
}

}  // namespace ag
}  // namespace kt
