#include "autograd/variable.h"

#include <unordered_set>

#include "tensor/tensor_ops.h"

namespace kt {
namespace ag {
namespace {

thread_local bool g_grad_enabled = true;

}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}
NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool GradModeEnabled() { return g_grad_enabled; }

namespace internal {

void Node::EnsureGrad() {
  if (!has_grad) {
    grad = Tensor::Zeros(value.shape());
    has_grad = true;
  }
}

void Node::AccumulateGrad(const Tensor& g) {
  EnsureGrad();
  if (g.SameShape(grad)) {
    grad.AddInPlace(g);
  } else {
    // Reverse of broadcasting in the forward pass.
    grad.AddInPlace(ReduceToShape(g, grad.shape()));
  }
}

}  // namespace internal

Variable Variable::Leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return FromNode(std::move(node));
}

const Tensor& Variable::value() const {
  KT_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  KT_CHECK(defined());
  return node_->value;
}

Tensor Variable::grad() const {
  KT_CHECK(defined());
  if (!node_->has_grad) return Tensor::Zeros(node_->value.shape());
  return node_->grad;
}

bool Variable::requires_grad() const {
  KT_CHECK(defined());
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  KT_CHECK(defined());
  node_->has_grad = false;
  node_->grad = Tensor();
}

void Variable::Backward() const {
  KT_CHECK(defined());
  KT_CHECK_EQ(node_->value.numel(), 1)
      << "Backward() requires a scalar loss, got "
      << ShapeToString(node_->value.shape());

  // Iterative post-order DFS to get a topological order (inputs before
  // outputs), then run backward closures in reverse.
  std::vector<internal::Node*> topo;
  std::unordered_set<internal::Node*> visited;
  struct Frame {
    internal::Node* node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({node_.get(), 0});
  visited.insert(node_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child < frame.node->inputs.size()) {
      internal::Node* child = frame.node->inputs[frame.next_child++].get();
      if (visited.insert(child).second) stack.push_back({child, 0});
    } else {
      topo.push_back(frame.node);
      stack.pop_back();
    }
  }

  node_->EnsureGrad();
  node_->grad.Fill(1.0f);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    internal::Node* n = *it;
    if (n->backward_fn && n->has_grad) n->backward_fn();
  }
}

Variable Variable::FromNode(std::shared_ptr<internal::Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable MakeOpNode(Tensor value, const std::vector<Variable>& inputs,
                    std::function<void(internal::Node&)> backward_fn) {
  auto node = std::make_shared<internal::Node>();
  node->value = std::move(value);

  bool needs_grad = false;
  if (GradModeEnabled()) {
    for (const Variable& v : inputs) {
      KT_CHECK(v.defined());
      if (v.requires_grad()) {
        needs_grad = true;
        break;
      }
    }
  }
  node->requires_grad = needs_grad;
  if (needs_grad) {
    for (const Variable& v : inputs) node->inputs.push_back(v.node());
    // Bind the closure to the node with a raw pointer: the node owns the
    // closure, so the pointer is valid whenever the closure runs.
    internal::Node* raw = node.get();
    node->backward_fn = [raw, fn = std::move(backward_fn)]() { fn(*raw); };
  }
  return Variable::FromNode(std::move(node));
}

}  // namespace ag
}  // namespace kt
