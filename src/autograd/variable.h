// Tape-based reverse-mode automatic differentiation.
//
// A Variable wraps a Tensor value plus a node in a dynamically built
// computation graph. Each op (see autograd/ops.h) records a closure that
// propagates the output gradient to its inputs; Backward() runs those
// closures in reverse topological order.
//
// Conventions:
//   * Variables are cheap shared handles; copying shares the node.
//   * Gradients accumulate (+=) into `grad`, which is lazily allocated.
//   * An op output requires grad iff any input does AND grad mode is on;
//     otherwise no tape entry is recorded, making inference allocation-light.
#ifndef KT_AUTOGRAD_VARIABLE_H_
#define KT_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace kt {
namespace ag {

// RAII guard disabling gradient recording (inference mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// True when ops should record tape entries.
bool GradModeEnabled();

namespace internal {

struct Node {
  Tensor value;
  Tensor grad;                 // allocated on first accumulation
  bool has_grad = false;
  bool requires_grad = false;
  // Parents in the computation graph (kept alive for backward).
  std::vector<std::shared_ptr<Node>> inputs;
  // Propagates `grad` (of this node) into inputs. Null for leaves.
  std::function<void()> backward_fn;

  void EnsureGrad();
  // grad += g, where g broadcasts-to/equals value.shape().
  void AccumulateGrad(const Tensor& g);
};

}  // namespace internal

class Variable {
 public:
  // Default: empty handle; only valid after assignment.
  Variable() = default;

  // A leaf holding `value`. Parameters pass requires_grad = true;
  // data/constants pass false.
  static Variable Leaf(Tensor value, bool requires_grad);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  Tensor& mutable_value();
  // Gradient tensor; zeros if backward has not reached this node.
  Tensor grad() const;
  bool requires_grad() const;

  // Drops any accumulated gradient (used between optimizer steps).
  void ZeroGrad();

  // Shape conveniences.
  const Shape& shape() const { return value().shape(); }
  int64_t size(int64_t d) const { return value().size(d); }
  int64_t numel() const { return value().numel(); }

  // Runs backpropagation from this variable, which must be a scalar
  // (numel() == 1). Seeds its gradient with 1.
  void Backward() const;

  // Internal: used by ops to build graph nodes.
  static Variable FromNode(std::shared_ptr<internal::Node> node);
  const std::shared_ptr<internal::Node>& node() const { return node_; }

 private:
  std::shared_ptr<internal::Node> node_;
};

// Builds an op output node. `inputs` are the parent variables, `value` the
// forward result, and `backward_fn` the gradient closure (invoked with the
// node's grad already populated; it should call AccumulateGrad on inputs).
// If grad mode is off or no input requires grad, the tape entry is elided.
Variable MakeOpNode(Tensor value, const std::vector<Variable>& inputs,
                    std::function<void(internal::Node&)> backward_fn);

}  // namespace ag
}  // namespace kt

#endif  // KT_AUTOGRAD_VARIABLE_H_
