#include "autograd/ops.h"

#include <cmath>
#include <cstring>

#include "obs/obs.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"

namespace kt {
namespace ag {
namespace {

using internal::Node;

// Expands `g` (shape of a reduced tensor) back over dimension `d` of
// `full_shape` by repetition; the adjoint of Sum(dim).
Tensor ExpandAlongDim(const Tensor& g, const Shape& full_shape, int64_t d,
                      bool keepdim) {
  Tensor out(full_shape);
  const int64_t dim_size = full_shape[static_cast<size_t>(d)];
  int64_t outer = 1;
  for (int64_t i = 0; i < d; ++i) outer *= full_shape[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (size_t i = static_cast<size_t>(d) + 1; i < full_shape.size(); ++i)
    inner *= full_shape[i];
  (void)keepdim;  // g's layout is [outer, inner] either way.
  const float* src = g.data();
  float* dst = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < dim_size; ++j) {
      std::memcpy(dst + (o * dim_size + j) * inner, src + o * inner,
                  sizeof(float) * static_cast<size_t>(inner));
    }
  }
  return out;
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::Add(a.value(), b.value()), {a, b}, [](Node& self) {
    if (self.inputs[0]->requires_grad) self.inputs[0]->AccumulateGrad(self.grad);
    if (self.inputs[1]->requires_grad) self.inputs[1]->AccumulateGrad(self.grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::Sub(a.value(), b.value()), {a, b}, [](Node& self) {
    if (self.inputs[0]->requires_grad) self.inputs[0]->AccumulateGrad(self.grad);
    if (self.inputs[1]->requires_grad)
      self.inputs[1]->AccumulateGrad(kt::Neg(self.grad));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::Mul(a.value(), b.value()), {a, b}, [](Node& self) {
    if (self.inputs[0]->requires_grad)
      self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, self.inputs[1]->value));
    if (self.inputs[1]->requires_grad)
      self.inputs[1]->AccumulateGrad(kt::Mul(self.grad, self.inputs[0]->value));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::Div(a.value(), b.value()), {a, b}, [](Node& self) {
    const Tensor& bv = self.inputs[1]->value;
    if (self.inputs[0]->requires_grad)
      self.inputs[0]->AccumulateGrad(kt::Div(self.grad, bv));
    if (self.inputs[1]->requires_grad) {
      // d(a/b)/db = -a / b^2
      Tensor t = kt::Div(kt::Mul(self.grad, self.inputs[0]->value),
                         kt::Mul(bv, bv));
      self.inputs[1]->AccumulateGrad(kt::Neg(t));
    }
  });
}

Variable Maximum(const Variable& a, const Variable& b) {
  return MakeOpNode(
      kt::Maximum(a.value(), b.value()), {a, b}, [](Node& self) {
        const Tensor& av = self.inputs[0]->value;
        const Tensor& bv = self.inputs[1]->value;
        // Indicator masks: gradient goes to the winner; ties favor a.
        Tensor mask_a = kt::GreaterEqualMask(av, bv);
        if (self.inputs[0]->requires_grad)
          self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, mask_a));
        if (self.inputs[1]->requires_grad) {
          Tensor mask_b = kt::Map(mask_a, [](float m) { return 1.0f - m; });
          self.inputs[1]->AccumulateGrad(kt::Mul(self.grad, mask_b));
        }
      });
}

Variable AddScalar(const Variable& a, float s) {
  return MakeOpNode(kt::AddScalar(a.value(), s), {a}, [](Node& self) {
    self.inputs[0]->AccumulateGrad(self.grad);
  });
}

Variable MulScalar(const Variable& a, float s) {
  return MakeOpNode(kt::MulScalar(a.value(), s), {a}, [s](Node& self) {
    self.inputs[0]->AccumulateGrad(kt::MulScalar(self.grad, s));
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable MatMul(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::MatMul(a.value(), b.value()), {a, b}, [](Node& self) {
    // Both gradients go straight through the transposed GEMM accumulators
    // into the grad buffers: no transpose copies, no temporaries.
    Node* an = self.inputs[0].get();
    Node* bn = self.inputs[1].get();
    const Tensor& av = an->value;
    const Tensor& bv = bn->value;
    const int64_t m = av.size(0), k = av.size(1), n = bv.size(1);
    const float* g = self.grad.data();
    if (an->requires_grad) {
      an->EnsureGrad();
      // dA += dC B^T; B is [k, n], exactly the TransB operand layout.
      GemmTransBAccumulate(g, bv.data(), an->grad.data(), m, n, k);
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      // dB += A^T dC; A is [m, k], exactly the TransA operand layout.
      GemmTransAAccumulate(av.data(), g, bn->grad.data(), k, m, n);
    }
  });
}

Variable BatchMatMul(const Variable& a, const Variable& b) {
  return MakeOpNode(
      kt::BatchMatMul(a.value(), b.value()), {a, b}, [](Node& self) {
        const Tensor& av = self.inputs[0]->value;
        const Tensor& bv = self.inputs[1]->value;
        if (self.inputs[0]->requires_grad)
          self.inputs[0]->AccumulateGrad(
              kt::BatchMatMul(self.grad, bv.TransposeLast2()));
        if (self.inputs[1]->requires_grad)
          self.inputs[1]->AccumulateGrad(
              kt::BatchMatMul(av.TransposeLast2(), self.grad));
      });
}

Variable Sigmoid(const Variable& a) {
  Tensor y = kt::Sigmoid(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    // dy/dx = y (1 - y)
    Tensor d = kt::Map(y, [](float v) { return v * (1.0f - v); });
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, d));
  });
}

Variable Tanh(const Variable& a) {
  Tensor y = kt::Tanh(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    Tensor d = kt::Map(y, [](float v) { return 1.0f - v * v; });
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, d));
  });
}

Variable Relu(const Variable& a) {
  return MakeOpNode(kt::Relu(a.value()), {a}, [](Node& self) {
    const Tensor& x = self.inputs[0]->value;
    Tensor d = kt::Map(x, [](float v) { return v > 0.0f ? 1.0f : 0.0f; });
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, d));
  });
}

Variable Exp(const Variable& a) {
  Tensor y = kt::Exp(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, y));
  });
}

Variable Log(const Variable& a) {
  return MakeOpNode(kt::Log(a.value()), {a}, [](Node& self) {
    self.inputs[0]->AccumulateGrad(kt::Div(self.grad, self.inputs[0]->value));
  });
}

Variable Sqrt(const Variable& a) {
  Tensor y = kt::Sqrt(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    Tensor d = kt::Map(y, [](float v) { return 0.5f / v; });
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, d));
  });
}

Variable SoftmaxLastDim(const Variable& a) {
  Tensor y = kt::SoftmaxLastDim(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    // dx = y * (g - sum(g * y, last))
    Tensor gy = kt::Mul(self.grad, y);
    Tensor s = kt::Sum(gy, -1, /*keepdim=*/true);
    Tensor dx = kt::Mul(y, kt::Sub(self.grad, s));
    self.inputs[0]->AccumulateGrad(dx);
  });
}

Variable Reshape(const Variable& a, Shape shape) {
  Tensor out = a.value().Reshape(std::move(shape));
  Shape in_shape = a.value().shape();
  return MakeOpNode(out, {a}, [in_shape](Node& self) {
    self.inputs[0]->AccumulateGrad(self.grad.Reshape(in_shape));
  });
}

Variable TransposeLast2(const Variable& a) {
  return MakeOpNode(a.value().TransposeLast2(), {a}, [](Node& self) {
    self.inputs[0]->AccumulateGrad(self.grad.TransposeLast2());
  });
}

Variable Slice(const Variable& a, int64_t d, int64_t start, int64_t end) {
  if (d < 0) d += a.value().dim();
  Tensor out = a.value().Slice(d, start, end);
  return MakeOpNode(out, {a}, [d, start, end](Node& self) {
    const Shape& in_shape = self.inputs[0]->value.shape();
    // Scatter grad back into a zero tensor of the input shape.
    Tensor full = Tensor::Zeros(in_shape);
    const int64_t dim_size = in_shape[static_cast<size_t>(d)];
    int64_t outer = 1;
    for (int64_t i = 0; i < d; ++i) outer *= in_shape[static_cast<size_t>(i)];
    int64_t inner = 1;
    for (size_t i = static_cast<size_t>(d) + 1; i < in_shape.size(); ++i)
      inner *= in_shape[i];
    const int64_t span = (end - start) * inner;
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(full.data() + (o * dim_size + start) * inner,
                  self.grad.data() + o * span,
                  sizeof(float) * static_cast<size_t>(span));
    }
    self.inputs[0]->AccumulateGrad(full);
  });
}

Variable Concat(const std::vector<Variable>& inputs, int64_t d) {
  KT_CHECK(!inputs.empty());
  std::vector<Tensor> values;
  values.reserve(inputs.size());
  for (const Variable& v : inputs) values.push_back(v.value());
  Tensor out = Tensor::Concat(values, d);
  int64_t axis = d < 0 ? d + out.dim() : d;
  return MakeOpNode(out, inputs, [axis](Node& self) {
    int64_t offset = 0;
    for (auto& input : self.inputs) {
      const int64_t extent = input->value.size(axis);
      if (input->requires_grad) {
        input->AccumulateGrad(self.grad.Slice(axis, offset, offset + extent));
      }
      offset += extent;
    }
  });
}

Variable SumAll(const Variable& a) {
  return MakeOpNode(kt::SumAll(a.value()), {a}, [](Node& self) {
    self.inputs[0]->AccumulateGrad(
        Tensor::Full(self.inputs[0]->value.shape(), self.grad.item()));
  });
}

Variable MeanAll(const Variable& a) {
  const float inv_n = 1.0f / static_cast<float>(a.numel());
  return MakeOpNode(kt::MeanAll(a.value()), {a}, [inv_n](Node& self) {
    self.inputs[0]->AccumulateGrad(Tensor::Full(
        self.inputs[0]->value.shape(), self.grad.item() * inv_n));
  });
}

Variable Sum(const Variable& a, int64_t d, bool keepdim) {
  if (d < 0) d += a.value().dim();
  Tensor out = kt::Sum(a.value(), d, keepdim);
  return MakeOpNode(out, {a}, [d, keepdim](Node& self) {
    self.inputs[0]->AccumulateGrad(ExpandAlongDim(
        self.grad, self.inputs[0]->value.shape(), d, keepdim));
  });
}

Variable Mean(const Variable& a, int64_t d, bool keepdim) {
  if (d < 0) d += a.value().dim();
  const float inv = 1.0f / static_cast<float>(a.value().size(d));
  return MulScalar(Sum(a, d, keepdim), inv);
}

Variable EmbeddingLookup(const Variable& table,
                         const std::vector<int64_t>& indices) {
  Tensor out = Tensor::IndexSelectRows(table.value(), indices);
  return MakeOpNode(out, {table}, [indices](Node& self) {
    Node* table_node = self.inputs[0].get();
    if (!table_node->requires_grad) return;
    table_node->EnsureGrad();
    const int64_t cols = table_node->value.size(1);
    for (size_t i = 0; i < indices.size(); ++i) {
      const float* src = self.grad.data() + static_cast<int64_t>(i) * cols;
      float* dst = table_node->grad.data() + indices[i] * cols;
      for (int64_t c = 0; c < cols; ++c) dst[c] += src[c];
    }
  });
}

Variable EmbeddingBagMean(const Variable& table,
                          const std::vector<std::vector<int64_t>>& bags) {
  KT_CHECK_EQ(table.value().dim(), 2);
  const int64_t rows = table.value().size(0);
  const int64_t cols = table.value().size(1);
  Tensor out(Shape{static_cast<int64_t>(bags.size()), cols});
  for (size_t i = 0; i < bags.size(); ++i) {
    if (bags[i].empty()) continue;
    float* dst = out.data() + static_cast<int64_t>(i) * cols;
    for (int64_t r : bags[i]) {
      KT_CHECK(r >= 0 && r < rows) << "bag index " << r << " out of " << rows;
      const float* src = table.value().data() + r * cols;
      for (int64_t c = 0; c < cols; ++c) dst[c] += src[c];
    }
    const float inv = 1.0f / static_cast<float>(bags[i].size());
    for (int64_t c = 0; c < cols; ++c) dst[c] *= inv;
  }
  return MakeOpNode(out, {table}, [bags](Node& self) {
    Node* table_node = self.inputs[0].get();
    if (!table_node->requires_grad) return;
    table_node->EnsureGrad();
    const int64_t cols = table_node->value.size(1);
    for (size_t i = 0; i < bags.size(); ++i) {
      if (bags[i].empty()) continue;
      const float inv = 1.0f / static_cast<float>(bags[i].size());
      const float* src = self.grad.data() + static_cast<int64_t>(i) * cols;
      for (int64_t r : bags[i]) {
        float* dst = table_node->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) dst[c] += src[c] * inv;
      }
    }
  });
}

Variable Dropout(const Variable& a, float p, Rng& rng, bool train) {
  if (!train || p <= 0.0f) return a;
  KT_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  Tensor mask(a.value().shape());
  for (int64_t i = 0; i < mask.numel(); ++i)
    mask.flat(i) = rng.Bernoulli(p) ? 0.0f : scale;
  Tensor out = kt::Mul(a.value(), mask);
  return MakeOpNode(out, {a}, [mask](Node& self) {
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, mask));
  });
}

Variable Constant(Tensor t) { return Variable::Leaf(std::move(t), false); }

// ---- Fused ops ----
//
// The forward epilogues below reuse the exact per-element expressions of
// the primitive ops they replace (see kt::Sigmoid/Tanh/Relu and the
// broadcast Add), in the same order, so fused and composed paths agree
// bit-for-bit. This file compiles with -ffp-contract=off (see
// src/autograd/CMakeLists.txt) so sum-of-products epilogues cannot be
// FMA-contracted into something the composed op-per-node path never
// computes.

namespace {

inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

inline float ApplyAct(Act act, float x) {
  switch (act) {
    case Act::kIdentity:
      return x;
    case Act::kRelu:
      return x > 0.0f ? x : 0.0f;
    case Act::kSigmoid:
      return SigmoidF(x);
    case Act::kTanh:
      return std::tanh(x);
  }
  return x;
}

// Accumulates column sums of g [m, n] into bias_grad [n], rows ascending —
// the same order AccumulateGrad's broadcast reduction uses.
inline void AccumulateBiasGrad(const float* g, int64_t m, int64_t n,
                               float* bias_grad) {
  for (int64_t i = 0; i < m; ++i) {
    const float* row = g + i * n;
    for (int64_t j = 0; j < n; ++j) bias_grad[j] += row[j];
  }
}

}  // namespace

Variable LinearBiasAct(const Variable& x, const Variable& w,
                       const Variable& b, Act act) {
  KT_OBS_SCOPE("fused/linear_bias_act");
  const Tensor& xv = x.value();
  const Tensor& wv = w.value();
  KT_CHECK_EQ(xv.shape().size(), 2u);
  KT_CHECK_EQ(wv.shape().size(), 2u);
  KT_CHECK_EQ(xv.size(1), wv.size(0));
  const int64_t m = xv.size(0), in = xv.size(1), out = wv.size(1);
  const bool has_bias = b.defined();
  if (has_bias) KT_CHECK_EQ(b.numel(), out);

  Tensor y(Shape{m, out});
  Gemm(xv.data(), wv.data(), y.data(), m, in, out);
  const float* bias = has_bias ? b.value().data() : nullptr;
  float* yd = y.data();
  for (int64_t i = 0; i < m; ++i) {
    float* row = yd + i * out;
    for (int64_t j = 0; j < out; ++j) {
      row[j] = ApplyAct(act, bias ? row[j] + bias[j] : row[j]);
    }
  }

  std::vector<Variable> inputs{x, w};
  if (has_bias) inputs.push_back(b);
  return MakeOpNode(y, inputs, [y, act, has_bias](Node& self) {
    KT_OBS_SCOPE("fused/linear_bias_act_bwd");
    Node* xn = self.inputs[0].get();
    Node* wn = self.inputs[1].get();
    Node* bn = has_bias ? self.inputs[2].get() : nullptr;
    const int64_t m = y.size(0), out = y.size(1), in = xn->value.size(1);
    // d_pre = g ⊙ act'(pre), with act' expressed from the saved output y
    // exactly as the composed activation backward does.
    Tensor d_pre_buf;
    const float* dp;
    if (act == Act::kIdentity) {
      dp = self.grad.data();
    } else {
      d_pre_buf = Tensor(self.grad.shape());
      const float* gd = self.grad.data();
      const float* yv = y.data();
      float* o = d_pre_buf.data();
      const int64_t total = m * out;
      switch (act) {
        case Act::kRelu:
          for (int64_t i = 0; i < total; ++i)
            o[i] = gd[i] * (yv[i] > 0.0f ? 1.0f : 0.0f);
          break;
        case Act::kSigmoid:
          for (int64_t i = 0; i < total; ++i)
            o[i] = gd[i] * (yv[i] * (1.0f - yv[i]));
          break;
        case Act::kTanh:
          for (int64_t i = 0; i < total; ++i)
            o[i] = gd[i] * (1.0f - yv[i] * yv[i]);
          break;
        case Act::kIdentity:
          break;
      }
      dp = d_pre_buf.data();
    }
    if (xn->requires_grad) {
      xn->EnsureGrad();
      GemmTransBAccumulate(dp, wn->value.data(), xn->grad.data(), m, out, in);
    }
    if (wn->requires_grad) {
      wn->EnsureGrad();
      GemmTransAAccumulate(xn->value.data(), dp, wn->grad.data(), in, m, out);
    }
    if (bn != nullptr && bn->requires_grad) {
      bn->EnsureGrad();
      AccumulateBiasGrad(dp, m, out, bn->grad.data());
    }
  });
}

Variable DualLinearBias(const Variable& x, const Variable& wx,
                        const Variable& h, const Variable& wh,
                        const Variable& b) {
  KT_OBS_SCOPE("fused/dual_linear_bias");
  const Tensor& xv = x.value();
  const Tensor& hv = h.value();
  const int64_t m = xv.size(0), kx = xv.size(1), kh = hv.size(1);
  const int64_t n = wx.value().size(1);
  KT_CHECK_EQ(hv.size(0), m);
  KT_CHECK_EQ(wx.value().size(0), kx);
  KT_CHECK_EQ(wh.value().size(0), kh);
  KT_CHECK_EQ(wh.value().size(1), n);
  KT_CHECK_EQ(b.numel(), n);

  Tensor z(Shape{m, n});
  Gemm(xv.data(), wx.value().data(), z.data(), m, kx, n);
  Tensor t(Shape{m, n});
  Gemm(hv.data(), wh.value().data(), t.data(), m, kh, n);
  // fl(fl(xwx + hwh) + bias): the composed Add(Add(..), bias) order.
  const float* td = t.data();
  const float* bias = b.value().data();
  float* zd = z.data();
  for (int64_t i = 0; i < m; ++i) {
    float* row = zd + i * n;
    const float* trow = td + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] = (row[j] + trow[j]) + bias[j];
  }

  return MakeOpNode(z, {x, wx, h, wh, b}, [](Node& self) {
    KT_OBS_SCOPE("fused/dual_linear_bias_bwd");
    Node* xn = self.inputs[0].get();
    Node* wxn = self.inputs[1].get();
    Node* hn = self.inputs[2].get();
    Node* whn = self.inputs[3].get();
    Node* bn = self.inputs[4].get();
    const int64_t m = self.grad.size(0), n = self.grad.size(1);
    const int64_t kx = xn->value.size(1), kh = hn->value.size(1);
    const float* g = self.grad.data();
    if (xn->requires_grad) {
      xn->EnsureGrad();
      GemmTransBAccumulate(g, wxn->value.data(), xn->grad.data(), m, n, kx);
    }
    if (wxn->requires_grad) {
      wxn->EnsureGrad();
      GemmTransAAccumulate(xn->value.data(), g, wxn->grad.data(), kx, m, n);
    }
    if (hn->requires_grad) {
      hn->EnsureGrad();
      GemmTransBAccumulate(g, whn->value.data(), hn->grad.data(), m, n, kh);
    }
    if (whn->requires_grad) {
      whn->EnsureGrad();
      GemmTransAAccumulate(hn->value.data(), g, whn->grad.data(), kh, m, n);
    }
    if (bn->requires_grad) {
      bn->EnsureGrad();
      AccumulateBiasGrad(g, m, n, bn->grad.data());
    }
  });
}

Variable LstmCellState(const Variable& z, const Variable& c_prev) {
  KT_OBS_SCOPE("fused/lstm_cell_state");
  const Tensor& zv = z.value();
  const Tensor& cv = c_prev.value();
  const int64_t b = cv.size(0), h = cv.size(1);
  KT_CHECK_EQ(zv.size(0), b);
  KT_CHECK_EQ(zv.size(1), 4 * h);

  Tensor c_next(Shape{b, h});
  // Saved gate activations [i|f|g] ([B, 3H]), reused by backward in place
  // of the composed path's intermediate tensors.
  Tensor gates(Shape{b, 3 * h});
  {
    const float* zd = zv.data();
    const float* cd = cv.data();
    float* od = c_next.data();
    float* gd = gates.data();
    for (int64_t r = 0; r < b; ++r) {
      const float* zr = zd + r * 4 * h;
      const float* cr = cd + r * h;
      float* orow = od + r * h;
      float* grow = gd + r * 3 * h;
      for (int64_t j = 0; j < h; ++j) {
        const float iv = SigmoidF(zr[j]);
        const float fv = SigmoidF(zr[h + j]);
        const float gv = std::tanh(zr[2 * h + j]);
        const float fc = fv * cr[j];
        const float ig = iv * gv;
        orow[j] = fc + ig;
        grow[j] = iv;
        grow[h + j] = fv;
        grow[2 * h + j] = gv;
      }
    }
  }

  return MakeOpNode(c_next, {z, c_prev}, [gates](Node& self) {
    KT_OBS_SCOPE("fused/lstm_cell_state_bwd");
    Node* zn = self.inputs[0].get();
    Node* cn = self.inputs[1].get();
    const int64_t b = self.grad.size(0), h = self.grad.size(1);
    const float* g = self.grad.data();
    const float* gt = gates.data();
    const float* cd = cn->value.data();
    if (zn->requires_grad) {
      zn->EnsureGrad();
      float* zg = zn->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        const float* grow = g + r * h;
        const float* gtr = gt + r * 3 * h;
        const float* cr = cd + r * h;
        float* zgr = zg + r * 4 * h;
        for (int64_t j = 0; j < h; ++j) {
          const float iv = gtr[j], fv = gtr[h + j], gv = gtr[2 * h + j];
          zgr[j] += grow[j] * gv * (iv * (1.0f - iv));
          zgr[h + j] += grow[j] * cr[j] * (fv * (1.0f - fv));
          zgr[2 * h + j] += grow[j] * iv * (1.0f - gv * gv);
          // o-block receives nothing from the cell state.
        }
      }
    }
    if (cn->requires_grad) {
      cn->EnsureGrad();
      float* cg = cn->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        const float* grow = g + r * h;
        const float* gtr = gt + r * 3 * h;
        float* cgr = cg + r * h;
        for (int64_t j = 0; j < h; ++j) cgr[j] += grow[j] * gtr[h + j];
      }
    }
  });
}

Variable LstmCellOutput(const Variable& z, const Variable& c_next) {
  KT_OBS_SCOPE("fused/lstm_cell_output");
  const Tensor& zv = z.value();
  const Tensor& cv = c_next.value();
  const int64_t b = cv.size(0), h = cv.size(1);
  KT_CHECK_EQ(zv.size(0), b);
  KT_CHECK_EQ(zv.size(1), 4 * h);

  Tensor h_next(Shape{b, h});
  Tensor saved(Shape{b, 2 * h});  // [o|tanh(c')]
  {
    const float* zd = zv.data();
    const float* cd = cv.data();
    float* od = h_next.data();
    float* sd = saved.data();
    for (int64_t r = 0; r < b; ++r) {
      const float* zr = zd + r * 4 * h;
      const float* cr = cd + r * h;
      float* orow = od + r * h;
      float* srow = sd + r * 2 * h;
      for (int64_t j = 0; j < h; ++j) {
        const float ov = SigmoidF(zr[3 * h + j]);
        const float tc = std::tanh(cr[j]);
        orow[j] = ov * tc;
        srow[j] = ov;
        srow[h + j] = tc;
      }
    }
  }

  return MakeOpNode(h_next, {z, c_next}, [saved](Node& self) {
    KT_OBS_SCOPE("fused/lstm_cell_output_bwd");
    Node* zn = self.inputs[0].get();
    Node* cn = self.inputs[1].get();
    const int64_t b = self.grad.size(0), h = self.grad.size(1);
    const float* g = self.grad.data();
    const float* sd = saved.data();
    if (zn->requires_grad) {
      zn->EnsureGrad();
      float* zg = zn->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        const float* grow = g + r * h;
        const float* srow = sd + r * 2 * h;
        float* zgr = zg + r * 4 * h;
        for (int64_t j = 0; j < h; ++j) {
          const float ov = srow[j], tc = srow[h + j];
          zgr[3 * h + j] += grow[j] * tc * (ov * (1.0f - ov));
        }
      }
    }
    if (cn->requires_grad) {
      cn->EnsureGrad();
      float* cg = cn->grad.data();
      for (int64_t r = 0; r < b; ++r) {
        const float* grow = g + r * h;
        const float* srow = sd + r * 2 * h;
        float* cgr = cg + r * h;
        for (int64_t j = 0; j < h; ++j) {
          const float ov = srow[j], tc = srow[h + j];
          cgr[j] += grow[j] * ov * (1.0f - tc * tc);
        }
      }
    }
  });
}

Variable GruCellCombine(const Variable& zx, const Variable& zh,
                        const Variable& h_prev) {
  KT_OBS_SCOPE("fused/gru_cell_combine");
  const Tensor& zxv = zx.value();
  const Tensor& zhv = zh.value();
  const Tensor& hv = h_prev.value();
  const int64_t b = hv.size(0), h = hv.size(1);
  KT_CHECK_EQ(zxv.size(0), b);
  KT_CHECK_EQ(zxv.size(1), 3 * h);
  KT_CHECK_EQ(zhv.size(0), b);
  KT_CHECK_EQ(zhv.size(1), 3 * h);

  Tensor h_next(Shape{b, h});
  Tensor saved(Shape{b, 3 * h});  // [r|u|n]
  {
    const float* zxd = zxv.data();
    const float* zhd = zhv.data();
    const float* hd = hv.data();
    float* od = h_next.data();
    float* sd = saved.data();
    for (int64_t r = 0; r < b; ++r) {
      const float* zxr = zxd + r * 3 * h;
      const float* zhr = zhd + r * 3 * h;
      const float* hr = hd + r * h;
      float* orow = od + r * h;
      float* srow = sd + r * 3 * h;
      for (int64_t j = 0; j < h; ++j) {
        const float rv = SigmoidF(zxr[j] + zhr[j]);
        const float uv = SigmoidF(zxr[h + j] + zhr[h + j]);
        const float rn = rv * zhr[2 * h + j];
        const float nv = std::tanh(zxr[2 * h + j] + rn);
        const float omu = 1.0f - uv;
        const float a = omu * nv;
        const float c = uv * hr[j];
        orow[j] = a + c;
        srow[j] = rv;
        srow[h + j] = uv;
        srow[2 * h + j] = nv;
      }
    }
  }

  return MakeOpNode(h_next, {zx, zh, h_prev}, [saved](Node& self) {
    KT_OBS_SCOPE("fused/gru_cell_combine_bwd");
    Node* zxn = self.inputs[0].get();
    Node* zhn = self.inputs[1].get();
    Node* hn = self.inputs[2].get();
    const int64_t b = self.grad.size(0), h = self.grad.size(1);
    const float* g = self.grad.data();
    const float* sd = saved.data();
    const float* hd = hn->value.data();
    const float* zhd = zhn->value.data();
    const bool need_zx = zxn->requires_grad;
    const bool need_zh = zhn->requires_grad;
    const bool need_h = hn->requires_grad;
    if (need_zx) zxn->EnsureGrad();
    if (need_zh) zhn->EnsureGrad();
    if (need_h) hn->EnsureGrad();
    float* zxg = need_zx ? zxn->grad.data() : nullptr;
    float* zhg = need_zh ? zhn->grad.data() : nullptr;
    float* hg = need_h ? hn->grad.data() : nullptr;
    for (int64_t r = 0; r < b; ++r) {
      const float* grow = g + r * h;
      const float* srow = sd + r * 3 * h;
      const float* hr = hd + r * h;
      const float* zhr = zhd + r * 3 * h;
      for (int64_t j = 0; j < h; ++j) {
        const float rv = srow[j], uv = srow[h + j], nv = srow[2 * h + j];
        const float gj = grow[j];
        // d pre-activation of u: g * (h - n) * u(1-u).
        const float du = gj * (hr[j] - nv) * (uv * (1.0f - uv));
        // d pre-activation of n: g * (1-u) * (1-n^2).
        const float dn = gj * (1.0f - uv) * (1.0f - nv * nv);
        // d pre-activation of r: dn * zh_n * r(1-r).
        const float dr = dn * zhr[2 * h + j] * (rv * (1.0f - rv));
        if (zxg != nullptr) {
          float* zr = zxg + r * 3 * h;
          zr[j] += dr;
          zr[h + j] += du;
          zr[2 * h + j] += dn;
        }
        if (zhg != nullptr) {
          float* zr = zhg + r * 3 * h;
          zr[j] += dr;
          zr[h + j] += du;
          zr[2 * h + j] += dn * rv;
        }
        if (hg != nullptr) hg[r * h + j] += gj * uv;
      }
    }
  });
}

}  // namespace ag
}  // namespace kt
