#include "autograd/ops.h"

#include <cmath>
#include <cstring>

#include "tensor/tensor_ops.h"

namespace kt {
namespace ag {
namespace {

using internal::Node;

// Expands `g` (shape of a reduced tensor) back over dimension `d` of
// `full_shape` by repetition; the adjoint of Sum(dim).
Tensor ExpandAlongDim(const Tensor& g, const Shape& full_shape, int64_t d,
                      bool keepdim) {
  Tensor out(full_shape);
  const int64_t dim_size = full_shape[static_cast<size_t>(d)];
  int64_t outer = 1;
  for (int64_t i = 0; i < d; ++i) outer *= full_shape[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (size_t i = static_cast<size_t>(d) + 1; i < full_shape.size(); ++i)
    inner *= full_shape[i];
  (void)keepdim;  // g's layout is [outer, inner] either way.
  const float* src = g.data();
  float* dst = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < dim_size; ++j) {
      std::memcpy(dst + (o * dim_size + j) * inner, src + o * inner,
                  sizeof(float) * static_cast<size_t>(inner));
    }
  }
  return out;
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::Add(a.value(), b.value()), {a, b}, [](Node& self) {
    if (self.inputs[0]->requires_grad) self.inputs[0]->AccumulateGrad(self.grad);
    if (self.inputs[1]->requires_grad) self.inputs[1]->AccumulateGrad(self.grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::Sub(a.value(), b.value()), {a, b}, [](Node& self) {
    if (self.inputs[0]->requires_grad) self.inputs[0]->AccumulateGrad(self.grad);
    if (self.inputs[1]->requires_grad)
      self.inputs[1]->AccumulateGrad(kt::Neg(self.grad));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::Mul(a.value(), b.value()), {a, b}, [](Node& self) {
    if (self.inputs[0]->requires_grad)
      self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, self.inputs[1]->value));
    if (self.inputs[1]->requires_grad)
      self.inputs[1]->AccumulateGrad(kt::Mul(self.grad, self.inputs[0]->value));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::Div(a.value(), b.value()), {a, b}, [](Node& self) {
    const Tensor& bv = self.inputs[1]->value;
    if (self.inputs[0]->requires_grad)
      self.inputs[0]->AccumulateGrad(kt::Div(self.grad, bv));
    if (self.inputs[1]->requires_grad) {
      // d(a/b)/db = -a / b^2
      Tensor t = kt::Div(kt::Mul(self.grad, self.inputs[0]->value),
                         kt::Mul(bv, bv));
      self.inputs[1]->AccumulateGrad(kt::Neg(t));
    }
  });
}

Variable Maximum(const Variable& a, const Variable& b) {
  return MakeOpNode(
      kt::Maximum(a.value(), b.value()), {a, b}, [](Node& self) {
        const Tensor& av = self.inputs[0]->value;
        const Tensor& bv = self.inputs[1]->value;
        // Indicator masks: gradient goes to the winner; ties favor a.
        Tensor mask_a = kt::GreaterEqualMask(av, bv);
        if (self.inputs[0]->requires_grad)
          self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, mask_a));
        if (self.inputs[1]->requires_grad) {
          Tensor mask_b = kt::Map(mask_a, [](float m) { return 1.0f - m; });
          self.inputs[1]->AccumulateGrad(kt::Mul(self.grad, mask_b));
        }
      });
}

Variable AddScalar(const Variable& a, float s) {
  return MakeOpNode(kt::AddScalar(a.value(), s), {a}, [](Node& self) {
    self.inputs[0]->AccumulateGrad(self.grad);
  });
}

Variable MulScalar(const Variable& a, float s) {
  return MakeOpNode(kt::MulScalar(a.value(), s), {a}, [s](Node& self) {
    self.inputs[0]->AccumulateGrad(kt::MulScalar(self.grad, s));
  });
}

Variable Neg(const Variable& a) { return MulScalar(a, -1.0f); }

Variable MatMul(const Variable& a, const Variable& b) {
  return MakeOpNode(kt::MatMul(a.value(), b.value()), {a, b}, [](Node& self) {
    const Tensor& av = self.inputs[0]->value;
    const Tensor& bv = self.inputs[1]->value;
    if (self.inputs[0]->requires_grad)
      self.inputs[0]->AccumulateGrad(kt::MatMul(self.grad, bv.TransposeLast2()));
    if (self.inputs[1]->requires_grad)
      self.inputs[1]->AccumulateGrad(kt::MatMul(av.TransposeLast2(), self.grad));
  });
}

Variable BatchMatMul(const Variable& a, const Variable& b) {
  return MakeOpNode(
      kt::BatchMatMul(a.value(), b.value()), {a, b}, [](Node& self) {
        const Tensor& av = self.inputs[0]->value;
        const Tensor& bv = self.inputs[1]->value;
        if (self.inputs[0]->requires_grad)
          self.inputs[0]->AccumulateGrad(
              kt::BatchMatMul(self.grad, bv.TransposeLast2()));
        if (self.inputs[1]->requires_grad)
          self.inputs[1]->AccumulateGrad(
              kt::BatchMatMul(av.TransposeLast2(), self.grad));
      });
}

Variable Sigmoid(const Variable& a) {
  Tensor y = kt::Sigmoid(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    // dy/dx = y (1 - y)
    Tensor d = kt::Map(y, [](float v) { return v * (1.0f - v); });
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, d));
  });
}

Variable Tanh(const Variable& a) {
  Tensor y = kt::Tanh(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    Tensor d = kt::Map(y, [](float v) { return 1.0f - v * v; });
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, d));
  });
}

Variable Relu(const Variable& a) {
  return MakeOpNode(kt::Relu(a.value()), {a}, [](Node& self) {
    const Tensor& x = self.inputs[0]->value;
    Tensor d = kt::Map(x, [](float v) { return v > 0.0f ? 1.0f : 0.0f; });
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, d));
  });
}

Variable Exp(const Variable& a) {
  Tensor y = kt::Exp(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, y));
  });
}

Variable Log(const Variable& a) {
  return MakeOpNode(kt::Log(a.value()), {a}, [](Node& self) {
    self.inputs[0]->AccumulateGrad(kt::Div(self.grad, self.inputs[0]->value));
  });
}

Variable Sqrt(const Variable& a) {
  Tensor y = kt::Sqrt(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    Tensor d = kt::Map(y, [](float v) { return 0.5f / v; });
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, d));
  });
}

Variable SoftmaxLastDim(const Variable& a) {
  Tensor y = kt::SoftmaxLastDim(a.value());
  return MakeOpNode(y, {a}, [y](Node& self) {
    // dx = y * (g - sum(g * y, last))
    Tensor gy = kt::Mul(self.grad, y);
    Tensor s = kt::Sum(gy, -1, /*keepdim=*/true);
    Tensor dx = kt::Mul(y, kt::Sub(self.grad, s));
    self.inputs[0]->AccumulateGrad(dx);
  });
}

Variable Reshape(const Variable& a, Shape shape) {
  Tensor out = a.value().Reshape(std::move(shape));
  Shape in_shape = a.value().shape();
  return MakeOpNode(out, {a}, [in_shape](Node& self) {
    self.inputs[0]->AccumulateGrad(self.grad.Reshape(in_shape));
  });
}

Variable TransposeLast2(const Variable& a) {
  return MakeOpNode(a.value().TransposeLast2(), {a}, [](Node& self) {
    self.inputs[0]->AccumulateGrad(self.grad.TransposeLast2());
  });
}

Variable Slice(const Variable& a, int64_t d, int64_t start, int64_t end) {
  if (d < 0) d += a.value().dim();
  Tensor out = a.value().Slice(d, start, end);
  return MakeOpNode(out, {a}, [d, start, end](Node& self) {
    const Shape& in_shape = self.inputs[0]->value.shape();
    // Scatter grad back into a zero tensor of the input shape.
    Tensor full = Tensor::Zeros(in_shape);
    const int64_t dim_size = in_shape[static_cast<size_t>(d)];
    int64_t outer = 1;
    for (int64_t i = 0; i < d; ++i) outer *= in_shape[static_cast<size_t>(i)];
    int64_t inner = 1;
    for (size_t i = static_cast<size_t>(d) + 1; i < in_shape.size(); ++i)
      inner *= in_shape[i];
    const int64_t span = (end - start) * inner;
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(full.data() + (o * dim_size + start) * inner,
                  self.grad.data() + o * span,
                  sizeof(float) * static_cast<size_t>(span));
    }
    self.inputs[0]->AccumulateGrad(full);
  });
}

Variable Concat(const std::vector<Variable>& inputs, int64_t d) {
  KT_CHECK(!inputs.empty());
  std::vector<Tensor> values;
  values.reserve(inputs.size());
  for (const Variable& v : inputs) values.push_back(v.value());
  Tensor out = Tensor::Concat(values, d);
  int64_t axis = d < 0 ? d + out.dim() : d;
  return MakeOpNode(out, inputs, [axis](Node& self) {
    int64_t offset = 0;
    for (auto& input : self.inputs) {
      const int64_t extent = input->value.size(axis);
      if (input->requires_grad) {
        input->AccumulateGrad(self.grad.Slice(axis, offset, offset + extent));
      }
      offset += extent;
    }
  });
}

Variable SumAll(const Variable& a) {
  return MakeOpNode(kt::SumAll(a.value()), {a}, [](Node& self) {
    self.inputs[0]->AccumulateGrad(
        Tensor::Full(self.inputs[0]->value.shape(), self.grad.item()));
  });
}

Variable MeanAll(const Variable& a) {
  const float inv_n = 1.0f / static_cast<float>(a.numel());
  return MakeOpNode(kt::MeanAll(a.value()), {a}, [inv_n](Node& self) {
    self.inputs[0]->AccumulateGrad(Tensor::Full(
        self.inputs[0]->value.shape(), self.grad.item() * inv_n));
  });
}

Variable Sum(const Variable& a, int64_t d, bool keepdim) {
  if (d < 0) d += a.value().dim();
  Tensor out = kt::Sum(a.value(), d, keepdim);
  return MakeOpNode(out, {a}, [d, keepdim](Node& self) {
    self.inputs[0]->AccumulateGrad(ExpandAlongDim(
        self.grad, self.inputs[0]->value.shape(), d, keepdim));
  });
}

Variable Mean(const Variable& a, int64_t d, bool keepdim) {
  if (d < 0) d += a.value().dim();
  const float inv = 1.0f / static_cast<float>(a.value().size(d));
  return MulScalar(Sum(a, d, keepdim), inv);
}

Variable EmbeddingLookup(const Variable& table,
                         const std::vector<int64_t>& indices) {
  Tensor out = Tensor::IndexSelectRows(table.value(), indices);
  return MakeOpNode(out, {table}, [indices](Node& self) {
    Node* table_node = self.inputs[0].get();
    if (!table_node->requires_grad) return;
    table_node->EnsureGrad();
    const int64_t cols = table_node->value.size(1);
    for (size_t i = 0; i < indices.size(); ++i) {
      const float* src = self.grad.data() + static_cast<int64_t>(i) * cols;
      float* dst = table_node->grad.data() + indices[i] * cols;
      for (int64_t c = 0; c < cols; ++c) dst[c] += src[c];
    }
  });
}

Variable EmbeddingBagMean(const Variable& table,
                          const std::vector<std::vector<int64_t>>& bags) {
  KT_CHECK_EQ(table.value().dim(), 2);
  const int64_t rows = table.value().size(0);
  const int64_t cols = table.value().size(1);
  Tensor out(Shape{static_cast<int64_t>(bags.size()), cols});
  for (size_t i = 0; i < bags.size(); ++i) {
    if (bags[i].empty()) continue;
    float* dst = out.data() + static_cast<int64_t>(i) * cols;
    for (int64_t r : bags[i]) {
      KT_CHECK(r >= 0 && r < rows) << "bag index " << r << " out of " << rows;
      const float* src = table.value().data() + r * cols;
      for (int64_t c = 0; c < cols; ++c) dst[c] += src[c];
    }
    const float inv = 1.0f / static_cast<float>(bags[i].size());
    for (int64_t c = 0; c < cols; ++c) dst[c] *= inv;
  }
  return MakeOpNode(out, {table}, [bags](Node& self) {
    Node* table_node = self.inputs[0].get();
    if (!table_node->requires_grad) return;
    table_node->EnsureGrad();
    const int64_t cols = table_node->value.size(1);
    for (size_t i = 0; i < bags.size(); ++i) {
      if (bags[i].empty()) continue;
      const float inv = 1.0f / static_cast<float>(bags[i].size());
      const float* src = self.grad.data() + static_cast<int64_t>(i) * cols;
      for (int64_t r : bags[i]) {
        float* dst = table_node->grad.data() + r * cols;
        for (int64_t c = 0; c < cols; ++c) dst[c] += src[c] * inv;
      }
    }
  });
}

Variable Dropout(const Variable& a, float p, Rng& rng, bool train) {
  if (!train || p <= 0.0f) return a;
  KT_CHECK_LT(p, 1.0f);
  const float scale = 1.0f / (1.0f - p);
  Tensor mask(a.value().shape());
  for (int64_t i = 0; i < mask.numel(); ++i)
    mask.flat(i) = rng.Bernoulli(p) ? 0.0f : scale;
  Tensor out = kt::Mul(a.value(), mask);
  return MakeOpNode(out, {a}, [mask](Node& self) {
    self.inputs[0]->AccumulateGrad(kt::Mul(self.grad, mask));
  });
}

Variable Constant(Tensor t) { return Variable::Leaf(std::move(t), false); }

}  // namespace ag
}  // namespace kt
