// Differentiable operations over ag::Variable.
//
// Every function computes the forward result with the kernels in
// tensor/tensor_ops.h and records a backward closure when gradients are
// required. Binary arithmetic broadcasts like NumPy; gradients of broadcast
// inputs are reduced back to the input shape.
#ifndef KT_AUTOGRAD_OPS_H_
#define KT_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "core/rng.h"

namespace kt {
namespace ag {

// ---- Arithmetic (broadcasting) ----
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);
// Elementwise max; gradient flows to the larger operand (ties favor `a`).
Variable Maximum(const Variable& a, const Variable& b);

Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);
Variable Neg(const Variable& a);

// ---- Matrix products ----
Variable MatMul(const Variable& a, const Variable& b);
Variable BatchMatMul(const Variable& a, const Variable& b);

// ---- Activations / pointwise ----
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
Variable Relu(const Variable& a);
Variable Exp(const Variable& a);
// Natural log; inputs must be positive (callers clamp or offset).
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable SoftmaxLastDim(const Variable& a);

// ---- Shape ----
Variable Reshape(const Variable& a, Shape shape);
Variable TransposeLast2(const Variable& a);
Variable Slice(const Variable& a, int64_t d, int64_t start, int64_t end);
Variable Concat(const std::vector<Variable>& inputs, int64_t d);

// ---- Reductions ----
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);
Variable Sum(const Variable& a, int64_t d, bool keepdim = false);
Variable Mean(const Variable& a, int64_t d, bool keepdim = false);

// ---- Lookup / regularization ----
// Rows of a 2-D `table` gathered by `indices`: result [indices.size(), dim].
// Backward scatter-adds into the table gradient.
Variable EmbeddingLookup(const Variable& table,
                         const std::vector<int64_t>& indices);
// Mean of table rows per bag: result[i, :] = mean_{j in bags[i]} table[j, :].
// An empty bag yields a zero row. Used for the paper's Eq. 23 (question
// embedding plus the mean of its concept embeddings).
Variable EmbeddingBagMean(const Variable& table,
                          const std::vector<std::vector<int64_t>>& bags);
// Inverted dropout: scales kept activations by 1/(1-p) during training; the
// identity when `train` is false or p == 0.
Variable Dropout(const Variable& a, float p, Rng& rng, bool train);

// ---- Fused ops (DESIGN.md §9) ----
//
// Each fused op computes what a chain of the primitive ops above would,
// with one tape node and no intermediate tensors, and is bit-identical to
// the composed chain (the epilogues replay the same per-element expressions
// in the same order; autograd/ops.cc builds with -ffp-contract=off so no
// FMA contraction can merge what the composed path rounds separately).

// Activation epilogue selector for LinearBiasAct.
enum class Act { kIdentity, kRelu, kSigmoid, kTanh };

// y = act(x W + b): fused GEMM + bias + activation. x is [m, in], w is
// [in, out], b is [out] or undefined (no bias). Backward feeds the three
// gradients straight into the input/parameter grad buffers through the
// transposed GEMM accumulators — zero temporaries besides act'.
Variable LinearBiasAct(const Variable& x, const Variable& w,
                       const Variable& b, Act act);

// z = x wx + h wh + b, the packed RNN pre-activation ([B, G*H]).
// Bit-identical to Add(Add(MatMul(x, wx), MatMul(h, wh)), b).
Variable DualLinearBias(const Variable& x, const Variable& wx,
                        const Variable& h, const Variable& wh,
                        const Variable& b);

// LSTM gate fusions over the packed pre-activation z = [i|f|g|o] ([B, 4H]):
//   c' = sigmoid(f) * c + sigmoid(i) * tanh(g)   (LstmCellState)
//   h' = sigmoid(o) * tanh(c')                   (LstmCellOutput)
Variable LstmCellState(const Variable& z, const Variable& c_prev);
Variable LstmCellOutput(const Variable& z, const Variable& c_next);

// GRU combine over zx = x Wx + b and zh = h Wh (both [B, 3H], blocks
// r|z|n): r = sigmoid(zx_r + zh_r), u = sigmoid(zx_z + zh_z),
// n = tanh(zx_n + r * zh_n), h' = (1 - u) * n + u * h_prev.
Variable GruCellCombine(const Variable& zx, const Variable& zh,
                        const Variable& h_prev);

// ---- Constants ----
// Wraps a tensor as a non-differentiable graph input.
Variable Constant(Tensor t);

}  // namespace ag
}  // namespace kt

#endif  // KT_AUTOGRAD_OPS_H_
