#include "rckt/interpretability.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "rckt/samples.h"

namespace kt {
namespace rckt {
namespace {

// Rebuilds a prefix sequence with the history positions in `drop` removed
// (the target stays last).
data::ResponseSequence DropPositions(const data::ResponseSequence& seq,
                                     int64_t target,
                                     const std::vector<int64_t>& drop) {
  data::ResponseSequence out;
  out.student = seq.student;
  for (int64_t t = 0; t <= target; ++t) {
    if (t != target &&
        std::find(drop.begin(), drop.end(), t) != drop.end()) {
      continue;
    }
    out.interactions.push_back(seq.interactions[static_cast<size_t>(t)]);
  }
  return out;
}

float ScoreOne(RCKT& model, const data::ResponseSequence& prefix) {
  data::ResponseSequence copy = prefix;  // MakePrefixBatch needs a target
  PrefixSample sample{&copy, copy.length() - 1};
  data::Batch batch = MakePrefixBatch({sample});
  return model.ScoreTargets(batch)[0];
}

}  // namespace

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  KT_CHECK_EQ(a.size(), b.size());
  const double n = static_cast<double>(a.size());
  if (n < 2) return 0.0;
  const double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  const double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

DeletionFidelityResult DeletionFidelity(RCKT& model,
                                        const data::Dataset& dataset,
                                        int64_t k, int64_t max_samples,
                                        Rng& rng) {
  KT_CHECK_GT(k, 0);
  DeletionFidelityResult result;
  double targeted_total = 0.0, random_total = 0.0;

  for (const auto& seq : dataset.sequences) {
    if (result.num_samples >= max_samples) break;
    const int64_t target = seq.length() - 1;
    if (target < k + 2) continue;

    PrefixSample sample{&seq, target};
    data::Batch batch = MakePrefixBatch({sample});
    const float base = model.ScoreTargets(batch)[0];
    const auto explanation = model.ExplainTargets(batch).front();

    // Top-k history positions by |influence|.
    std::vector<int64_t> order(static_cast<size_t>(target));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
      return std::fabs(explanation.influence[static_cast<size_t>(x)]) >
             std::fabs(explanation.influence[static_cast<size_t>(y)]);
    });
    std::vector<int64_t> top(order.begin(), order.begin() + k);
    const float targeted =
        ScoreOne(model, DropPositions(seq, target, top));

    // k uniformly random history positions.
    rng.Shuffle(order);
    std::vector<int64_t> random_pick(order.begin(), order.begin() + k);
    const float random_score =
        ScoreOne(model, DropPositions(seq, target, random_pick));

    targeted_total += std::fabs(targeted - base);
    random_total += std::fabs(random_score - base);
    ++result.num_samples;
  }

  if (result.num_samples > 0) {
    result.targeted_shift = targeted_total / result.num_samples;
    result.random_shift = random_total / result.num_samples;
    result.fidelity_ratio =
        result.random_shift > 1e-12
            ? result.targeted_shift / result.random_shift
            : 0.0;
  }
  return result;
}

ProficiencyFidelityResult ProficiencyFidelity(
    RCKT& model, const data::StudentSimulator& simulator,
    int64_t num_students, int64_t sequence_length) {
  // Concept -> question pool for the Eq. 30 probe.
  std::map<int64_t, std::vector<int64_t>> concept_questions;
  for (int64_t q = 0;
       q < static_cast<int64_t>(simulator.question_concepts().size()); ++q) {
    for (int64_t k : simulator.question_concepts()[static_cast<size_t>(q)]) {
      concept_questions[k].push_back(q);
    }
  }

  ProficiencyFidelityResult result;
  double correlation_total = 0.0;
  for (int64_t s = 0; s < num_students; ++s) {
    data::SimulationTrace trace;
    const data::ResponseSequence student = simulator.GenerateStudent(
        sequence_length, /*student_seed=*/700000 + static_cast<uint64_t>(s),
        &trace);

    // Most practiced primary concept.
    std::map<int64_t, int> counts;
    for (const auto& it : student.interactions) counts[it.concepts[0]]++;
    int64_t traced = student.interactions[0].concepts[0];
    for (const auto& [k, c] : counts) {
      if (c > counts[traced]) traced = k;
    }

    std::vector<double> predicted, truth;
    for (int64_t t = 1; t < sequence_length; ++t) {
      data::ResponseSequence prefix;
      prefix.student = student.student;
      prefix.interactions.assign(
          student.interactions.begin(),
          student.interactions.begin() + static_cast<size_t>(t + 1));
      prefix.interactions.push_back({0, 0, {0}});  // probe placeholder
      data::Batch batch = data::MakeBatch({&prefix});
      predicted.push_back(
          model.ScoreConceptProbe(batch, concept_questions[traced], traced)[0]);
      truth.push_back(trace.proficiency[static_cast<size_t>(t)]
                                       [static_cast<size_t>(traced)]);
    }
    correlation_total += PearsonCorrelation(predicted, truth);
    ++result.num_students;
  }
  if (result.num_students > 0) {
    result.mean_correlation = correlation_total / result.num_students;
  }
  return result;
}

}  // namespace rckt
}  // namespace kt
