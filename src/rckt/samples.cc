#include "rckt/samples.h"

#include <algorithm>
#include <map>

#include "core/check.h"

namespace kt {
namespace rckt {

std::vector<PrefixSample> MakePrefixSamples(const data::Dataset& dataset,
                                            int64_t stride,
                                            int64_t min_target) {
  KT_CHECK_GT(stride, 0);
  KT_CHECK_GE(min_target, 1);
  std::vector<PrefixSample> samples;
  for (const auto& seq : dataset.sequences) {
    const int64_t last = seq.length() - 1;
    if (last < min_target) continue;
    for (int64_t t = min_target; t < last; t += stride) {
      samples.push_back({&seq, t});
    }
    samples.push_back({&seq, last});
  }
  return samples;
}

data::Batch MakePrefixBatch(const std::vector<PrefixSample>& samples) {
  KT_CHECK(!samples.empty());
  const int64_t target = samples.front().target;
  // Prefix copies live for the duration of this function; MakeBatch copies
  // the data out, so returning the batch is safe.
  std::vector<data::ResponseSequence> prefixes;
  prefixes.reserve(samples.size());
  for (const PrefixSample& s : samples) {
    KT_CHECK_EQ(s.target, target) << "mixed-length prefix batch";
    KT_CHECK_LT(s.target, s.sequence->length());
    data::ResponseSequence prefix;
    prefix.student = s.sequence->student;
    prefix.interactions.assign(
        s.sequence->interactions.begin(),
        s.sequence->interactions.begin() + static_cast<size_t>(target + 1));
    prefixes.push_back(std::move(prefix));
  }
  std::vector<const data::ResponseSequence*> pointers;
  pointers.reserve(prefixes.size());
  for (const auto& p : prefixes) pointers.push_back(&p);
  return data::MakeBatch(pointers);
}

std::vector<std::vector<PrefixSample>> GroupIntoBatches(
    std::vector<PrefixSample> samples, int64_t batch_size, Rng* rng) {
  KT_CHECK_GT(batch_size, 0);
  std::map<int64_t, std::vector<PrefixSample>> buckets;
  for (const PrefixSample& s : samples) buckets[s.target].push_back(s);

  std::vector<std::vector<PrefixSample>> batches;
  for (auto& [target, bucket] : buckets) {
    if (rng) rng->Shuffle(bucket);
    for (size_t start = 0; start < bucket.size();
         start += static_cast<size_t>(batch_size)) {
      const size_t end =
          std::min(bucket.size(), start + static_cast<size_t>(batch_size));
      batches.emplace_back(bucket.begin() + static_cast<int64_t>(start),
                           bucket.begin() + static_cast<int64_t>(end));
    }
  }
  if (rng) rng->Shuffle(batches);
  return batches;
}

}  // namespace rckt
}  // namespace kt
