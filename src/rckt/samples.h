// Prefix-sample protocol shared by RCKT and the baselines in every
// experiment bench.
//
// The paper treats one (response window, target question) pair as one
// sample: the last position of a prefix is the target, everything before it
// is history (Sec. IV-D2: "this total loss is for one response sequence
// with one target question"). We enumerate targets along each window at a
// stride and group samples into EQUAL-LENGTH batches, which eliminates
// padding — important for bidirectional encoders, whose backward stream
// would otherwise consume pad tokens.
//
// Baselines are evaluated on exactly the same samples (prediction read at
// the target position of the same prefix batch), keeping Table IV
// apples-to-apples.
#ifndef KT_RCKT_SAMPLES_H_
#define KT_RCKT_SAMPLES_H_

#include <vector>

#include "data/batch.h"
#include "data/dataset.h"

namespace kt {
namespace rckt {

struct PrefixSample {
  const data::ResponseSequence* sequence = nullptr;
  // Target position within the sequence; history is [0, target).
  int64_t target = 0;
};

// Enumerates targets min_target, min_target + stride, ... plus always the
// final position of each window (so every window contributes its endpoint).
std::vector<PrefixSample> MakePrefixSamples(const data::Dataset& dataset,
                                            int64_t stride,
                                            int64_t min_target = 4);

// Materializes a batch of prefixes (positions 0..target inclusive). All
// samples must share the same target so rows have equal length.
data::Batch MakePrefixBatch(const std::vector<PrefixSample>& samples);

// Buckets samples by prefix length and chunks each bucket into batches of
// at most `batch_size`. If `rng` is non-null, samples are shuffled within
// buckets and batch order is shuffled (training); otherwise order is
// deterministic (evaluation).
std::vector<std::vector<PrefixSample>> GroupIntoBatches(
    std::vector<PrefixSample> samples, int64_t batch_size, Rng* rng);

}  // namespace rckt
}  // namespace kt

#endif  // KT_RCKT_SAMPLES_H_
