// Training / evaluation drivers over the prefix-sample protocol, for RCKT
// and (for fair comparison on identical samples) the baselines.
#ifndef KT_RCKT_RCKT_TRAINER_H_
#define KT_RCKT_RCKT_TRAINER_H_

#include <functional>
#include <memory>

#include "eval/trainer.h"
#include "rckt/rckt_model.h"
#include "rckt/samples.h"

namespace kt {
namespace rckt {

struct RcktTrainOptions {
  int max_epochs = 15;
  int patience = 5;
  int64_t batch_size = 32;
  // Target enumeration strides (see MakePrefixSamples).
  int64_t train_stride = 6;
  int64_t eval_stride = 6;
  int64_t min_target = 4;
  uint64_t seed = 3;
  bool verbose = false;
  // Use the exact forward influence computation (Table VI "Before").
  bool exact = false;
  // Crash-safe checkpointing (kt::ckpt); see eval::TrainOptions for the
  // exact semantics. Under cross-validation both paths get a ".fold<k>"
  // suffix per fold.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  std::string resume_path;
};

// Scores every prefix sample of `dataset` with RCKT and computes AUC/ACC
// against the target responses.
eval::EvalResult EvaluateRckt(RCKT& model, const data::Dataset& dataset,
                              const RcktTrainOptions& options);

// One scored prefix sample of the detailed evaluation (`ktcli evaluate
// --json`, serving parity checks). `sequence` indexes dataset.sequences;
// (sequence, target) identifies the sample. `generator_score` is the
// generator's direct masked-target probability — the quantity the online
// predict op reproduces bit-for-bit (scripts/check_serve.sh).
struct PredictionRecord {
  int64_t sequence = 0;
  int64_t target = 0;
  int64_t question = 0;
  int label = 0;
  float score = 0.0f;            // counterfactual score (Eq. 13)
  float generator_score = 0.0f;  // direct generator probability
};

struct DetailedEvalResult {
  eval::EvalResult metrics;
  // Deterministic order (GroupIntoBatches without shuffling).
  std::vector<PredictionRecord> predictions;
};

DetailedEvalResult EvaluateRcktDetailed(RCKT& model,
                                        const data::Dataset& dataset,
                                        const RcktTrainOptions& options);

// Same samples, scored by a baseline KTModel (prediction read at the target
// position of each prefix batch).
eval::EvalResult EvaluateModelOnSamples(models::KTModel& model,
                                        const data::Dataset& dataset,
                                        const RcktTrainOptions& options);

struct RcktTrainResult {
  eval::EvalResult test;
  double best_val_auc = 0.0;
  int best_epoch = -1;
  int epochs_run = 0;
  std::vector<double> val_auc_history;
  // Mean training loss per epoch; a resumed run must log the same values as
  // a straight-through run (asserted in tests/ckpt_test.cc).
  std::vector<double> train_loss_history;
};

// Counterfactual training with early stopping on validation AUC and
// best-epoch weight restore, then test evaluation.
RcktTrainResult TrainAndEvaluateRckt(RCKT& model,
                                     const data::FoldSplit& split,
                                     const RcktTrainOptions& options);

// Cross-validation driver mirroring eval::RunCrossValidation but on the
// prefix-sample protocol. The factory builds a fresh RCKT per fold.
using RcktFactory = std::function<std::unique_ptr<RCKT>(
    const data::Dataset& train)>;
// `folds_to_run` < 0 runs all k folds; smaller values evaluate only the
// first folds (smoke-mode shortcut: the split stays a k-fold split).
eval::CrossValidationResult RunRcktCrossValidation(
    const data::Dataset& windows, int k, const RcktFactory& factory,
    const RcktTrainOptions& options, uint64_t seed = 11,
    double validation_fraction = 0.1, int folds_to_run = -1);

// Baseline cross-validation where the TEST metric uses the prefix-sample
// protocol (training stays the model's own TrainBatch over full windows).
eval::CrossValidationResult RunBaselineCrossValidation(
    const data::Dataset& windows, int k, const eval::ModelFactory& factory,
    const eval::TrainOptions& train_options,
    const RcktTrainOptions& sample_options, uint64_t seed = 11,
    double validation_fraction = 0.1);

}  // namespace rckt
}  // namespace kt

#endif  // KT_RCKT_RCKT_TRAINER_H_
