#include "rckt/rckt_trainer.h"

#include <cmath>

#include "ckpt/training_state.h"
#include "core/fileio.h"
#include "core/logging.h"
#include "core/timer.h"
#include "eval/metrics.h"
#include "obs/obs.h"
#include "obs/runlog.h"

namespace kt {
namespace rckt {
namespace {

// Scores samples with `score_fn` (one batch of equal-length prefixes at a
// time) and accumulates AUC/ACC against the target correctness.
template <typename ScoreFn>
eval::EvalResult EvaluateSamples(const data::Dataset& dataset,
                                 const RcktTrainOptions& options,
                                 ScoreFn score_fn) {
  std::vector<PrefixSample> samples =
      MakePrefixSamples(dataset, options.eval_stride, options.min_target);
  eval::MetricAccumulator accumulator;
  for (const auto& group :
       GroupIntoBatches(std::move(samples), options.batch_size, nullptr)) {
    data::Batch batch = MakePrefixBatch(group);
    const std::vector<float> scores = score_fn(batch);
    KT_CHECK_EQ(static_cast<int64_t>(scores.size()), batch.batch_size);
    const int64_t target = batch.max_len - 1;
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      const int label = batch.responses[static_cast<size_t>(
          batch.FlatIndex(b, target))];
      accumulator.AddOne(scores[static_cast<size_t>(b)], label);
    }
  }
  eval::EvalResult result;
  result.auc = accumulator.Auc();
  result.acc = accumulator.Acc();
  result.num_predictions = accumulator.count();
  return result;
}

}  // namespace

eval::EvalResult EvaluateRckt(RCKT& model, const data::Dataset& dataset,
                              const RcktTrainOptions& options) {
  return EvaluateSamples(dataset, options, [&](const data::Batch& batch) {
    return options.exact ? model.ScoreTargetsExact(batch)
                         : model.ScoreTargets(batch);
  });
}

DetailedEvalResult EvaluateRcktDetailed(RCKT& model,
                                        const data::Dataset& dataset,
                                        const RcktTrainOptions& options) {
  std::vector<PrefixSample> samples =
      MakePrefixSamples(dataset, options.eval_stride, options.min_target);
  DetailedEvalResult result;
  eval::MetricAccumulator accumulator;
  for (const auto& group :
       GroupIntoBatches(std::move(samples), options.batch_size, nullptr)) {
    data::Batch batch = MakePrefixBatch(group);
    const std::vector<float> scores = options.exact
                                          ? model.ScoreTargetsExact(batch)
                                          : model.ScoreTargets(batch);
    const std::vector<float> generator = model.GeneratorScoreTargets(batch);
    const int64_t target = batch.max_len - 1;
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      const size_t flat =
          static_cast<size_t>(batch.FlatIndex(b, target));
      PredictionRecord record;
      record.sequence =
          group[static_cast<size_t>(b)].sequence - dataset.sequences.data();
      record.target = group[static_cast<size_t>(b)].target;
      record.question = batch.questions[flat];
      record.label = batch.responses[flat];
      record.score = scores[static_cast<size_t>(b)];
      record.generator_score = generator[static_cast<size_t>(b)];
      accumulator.AddOne(record.score, record.label);
      result.predictions.push_back(record);
    }
  }
  result.metrics.auc = accumulator.Auc();
  result.metrics.acc = accumulator.Acc();
  result.metrics.num_predictions = accumulator.count();
  return result;
}

eval::EvalResult EvaluateModelOnSamples(models::KTModel& model,
                                        const data::Dataset& dataset,
                                        const RcktTrainOptions& options) {
  return EvaluateSamples(dataset, options, [&](const data::Batch& batch) {
    Tensor probs = model.PredictBatch(batch);
    const int64_t target = batch.max_len - 1;
    std::vector<float> scores(static_cast<size_t>(batch.batch_size));
    for (int64_t b = 0; b < batch.batch_size; ++b) {
      scores[static_cast<size_t>(b)] =
          probs.flat(batch.FlatIndex(b, target));
    }
    return scores;
  });
}

RcktTrainResult TrainAndEvaluateRckt(RCKT& model,
                                     const data::FoldSplit& split,
                                     const RcktTrainOptions& options) {
  RcktTrainResult result;
  Rng shuffle_rng(options.seed * 31 + 7);
  std::vector<Tensor> best_state;
  ckpt::TrainerProgress progress;

  std::vector<PrefixSample> train_samples = MakePrefixSamples(
      split.train, options.train_stride, options.min_target);

  // The checkpoint freezes every mutable input of the loop — parameters,
  // Adam moments, the shuffle and dropout streams, the best-epoch snapshot,
  // and the progress counters — so a resumed run replays the remaining
  // epochs bit-identically. (train_samples is derived deterministically
  // from the split and need not be saved.)
  const bool want_ckpt =
      options.checkpoint_every > 0 && !options.checkpoint_path.empty();
  const bool want_resume = !options.resume_path.empty();
  ckpt::TrainingState snapshot;
  if (want_ckpt || want_resume) {
    snapshot.tag = model.name();
    snapshot.module = &model;
    snapshot.optimizer = model.optimizer();
    snapshot.rngs = {{"shuffle", &shuffle_rng},
                     {"dropout", model.dropout_rng()}};
    snapshot.progress = &progress;
    snapshot.best_state = &best_state;
  }
  if (want_resume && FileExists(options.resume_path)) {
    const Status status =
        ckpt::LoadTrainingState(snapshot, options.resume_path);
    KT_CHECK(status.ok()) << "cannot resume from " << options.resume_path
                          << ": " << status.ToString();
    if (options.verbose) {
      KT_LOG(INFO) << model.name() << " resumed from " << options.resume_path
                   << " at epoch " << progress.next_epoch;
    }
  }

  for (int epoch = static_cast<int>(progress.next_epoch);
       epoch < options.max_epochs; ++epoch) {
    // Also covers resuming a run that had already early-stopped.
    if (progress.epochs_since_best > 0 &&
        progress.epochs_since_best >= options.patience) {
      break;
    }
    WallTimer epoch_timer;
    const int64_t flops_before =
        obs::Enabled() ? obs::Counter::Get("gemm.flops")->Value() : 0;
    double loss_sum = 0.0;
    int64_t batches = 0;
    int64_t tokens = 0;
    for (const auto& group : GroupIntoBatches(
             train_samples, options.batch_size, &shuffle_rng)) {
      data::Batch batch = MakePrefixBatch(group);
      loss_sum += options.exact ? model.TrainStepExact(batch)
                                : model.TrainStep(batch);
      tokens += batch.batch_size * batch.max_len;
      ++batches;
    }
    ++progress.epochs_run;

    const eval::EvalResult val =
        EvaluateRckt(model, split.validation, options);
    progress.val_auc_history.push_back(val.auc);
    progress.train_loss_history.push_back(loss_sum /
                                          std::max<int64_t>(batches, 1));
    if (options.verbose) {
      KT_LOG(INFO) << model.name() << " epoch " << epoch << " loss "
                   << loss_sum / std::max<int64_t>(batches, 1) << " val auc "
                   << val.auc;
    }
    if (val.auc > progress.best_val_auc) {
      progress.best_val_auc = val.auc;
      progress.best_epoch = epoch;
      progress.epochs_since_best = 0;
      best_state = model.StateClone();
    } else {
      ++progress.epochs_since_best;
    }
    progress.next_epoch = epoch + 1;
    double ckpt_ms = 0.0;
    if (want_ckpt && (epoch + 1) % options.checkpoint_every == 0) {
      WallTimer ckpt_timer;
      const Status status =
          ckpt::SaveTrainingState(snapshot, options.checkpoint_path);
      KT_CHECK(status.ok()) << "checkpoint to " << options.checkpoint_path
                            << " failed: " << status.ToString();
      ckpt_ms = ckpt_timer.ElapsedMs();
    }
    if (obs::RunLogActive()) {
      obs::RunLogEntry entry;
      entry.run = model.name();
      entry.epoch = epoch;
      entry.train_loss = loss_sum / std::max<int64_t>(batches, 1);
      entry.val_auc = val.auc;
      entry.val_acc = val.acc;
      entry.epoch_ms = epoch_timer.ElapsedMs();
      entry.tokens = tokens;
      entry.gemm_flops =
          obs::Counter::Get("gemm.flops")->Value() - flops_before;
      entry.ckpt_ms = ckpt_ms;
      obs::AppendRunLogEntry(entry);
    }
  }

  result.best_val_auc = progress.best_val_auc;
  result.best_epoch = static_cast<int>(progress.best_epoch);
  result.epochs_run = static_cast<int>(progress.epochs_run);
  result.val_auc_history = progress.val_auc_history;
  result.train_loss_history = progress.train_loss_history;
  if (!best_state.empty()) model.SetState(best_state);
  result.test = EvaluateRckt(model, split.test, options);
  return result;
}

namespace {

// Mirrors eval::FoldOptions for the RCKT option type: fold f checkpoints to
// "<path>.fold<f>" so a killed k-fold run restarts at the interrupted fold.
RcktTrainOptions FoldOptions(const RcktTrainOptions& options, int fold) {
  RcktTrainOptions fold_options = options;
  const std::string suffix = ".fold" + std::to_string(fold);
  if (!options.checkpoint_path.empty()) {
    fold_options.checkpoint_path = options.checkpoint_path + suffix;
  }
  if (!options.resume_path.empty()) {
    fold_options.resume_path = options.resume_path + suffix;
  }
  return fold_options;
}

void Summarize(eval::CrossValidationResult& result) {
  double auc_sum = 0.0, acc_sum = 0.0;
  for (size_t i = 0; i < result.fold_auc.size(); ++i) {
    auc_sum += result.fold_auc[i];
    acc_sum += result.fold_acc[i];
  }
  const double n = static_cast<double>(result.fold_auc.size());
  result.auc_mean = auc_sum / n;
  result.acc_mean = acc_sum / n;
  double var = 0.0;
  for (double v : result.fold_auc)
    var += (v - result.auc_mean) * (v - result.auc_mean);
  result.auc_std = n > 1 ? std::sqrt(var / (n - 1)) : 0.0;
}

}  // namespace

eval::CrossValidationResult RunRcktCrossValidation(
    const data::Dataset& windows, int k, const RcktFactory& factory,
    const RcktTrainOptions& options, uint64_t seed,
    double validation_fraction, int folds_to_run) {
  eval::CrossValidationResult result;
  Rng fold_rng(seed);
  const std::vector<int> folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), k, fold_rng);
  const int run_count = folds_to_run < 0 ? k : std::min(k, folds_to_run);
  for (int fold = 0; fold < run_count; ++fold) {
    Rng split_rng(seed * 131 + static_cast<uint64_t>(fold));
    data::FoldSplit split =
        data::MakeFold(windows, folds, fold, validation_fraction, split_rng);
    std::unique_ptr<RCKT> model = factory(split.train);
    RcktTrainResult fold_result =
        TrainAndEvaluateRckt(*model, split, FoldOptions(options, fold));
    result.fold_auc.push_back(fold_result.test.auc);
    result.fold_acc.push_back(fold_result.test.acc);
    if (options.verbose) {
      KT_LOG(INFO) << model->name() << " fold " << fold << " auc "
                   << fold_result.test.auc;
    }
  }
  Summarize(result);
  return result;
}

eval::CrossValidationResult RunBaselineCrossValidation(
    const data::Dataset& windows, int k, const eval::ModelFactory& factory,
    const eval::TrainOptions& train_options,
    const RcktTrainOptions& sample_options, uint64_t seed,
    double validation_fraction) {
  eval::CrossValidationResult result;
  Rng fold_rng(seed);
  const std::vector<int> folds = data::KFoldAssignment(
      static_cast<int64_t>(windows.sequences.size()), k, fold_rng);
  for (int fold = 0; fold < k; ++fold) {
    Rng split_rng(seed * 131 + static_cast<uint64_t>(fold));
    data::FoldSplit split =
        data::MakeFold(windows, folds, fold, validation_fraction, split_rng);
    std::unique_ptr<models::KTModel> model = factory(split.train);
    // Train with the model's own scheme (window BCE / closed-form fit)...
    eval::TrainAndEvaluate(*model, split,
                           eval::FoldOptions(train_options, fold));
    // ...but report the test metric on the shared prefix-sample protocol.
    const eval::EvalResult test =
        EvaluateModelOnSamples(*model, split.test, sample_options);
    result.fold_auc.push_back(test.auc);
    result.fold_acc.push_back(test.acc);
    if (train_options.verbose) {
      KT_LOG(INFO) << model->name() << " fold " << fold << " sample auc "
                   << test.auc;
    }
  }
  Summarize(result);
  return result;
}

}  // namespace rckt
}  // namespace kt
