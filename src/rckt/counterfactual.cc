#include "rckt/counterfactual.h"

#include "core/check.h"
#include "models/embedder.h"

namespace kt {
namespace rckt {
namespace {

using models::kResponseMasked;

void CheckArgs(const std::vector<int>& responses, int64_t target) {
  KT_CHECK(!responses.empty());
  KT_CHECK(target >= 0 &&
           target < static_cast<int64_t>(responses.size()));
  for (int r : responses) KT_CHECK(r == 0 || r == 1);
}

}  // namespace

std::vector<int> AssumedFactualCategories(const std::vector<int>& responses,
                                          int64_t target,
                                          int assumed_correct) {
  CheckArgs(responses, target);
  KT_CHECK(assumed_correct == 0 || assumed_correct == 1);
  std::vector<int> categories = responses;
  categories[static_cast<size_t>(target)] = assumed_correct;
  return categories;
}

std::vector<int> BackwardCounterfactualCategories(
    const std::vector<int>& responses, int64_t target, int flipped_correct,
    bool apply_monotonicity) {
  CheckArgs(responses, target);
  KT_CHECK(flipped_correct == 0 || flipped_correct == 1);
  std::vector<int> categories = responses;
  categories[static_cast<size_t>(target)] = flipped_correct;
  if (!apply_monotonicity) return categories;

  // Monotonicity: flipping the target to `flipped_correct` moves inferred
  // proficiency in that direction, so responses of the SAME correctness
  // remain consistent (retained) while opposite ones become unreliable
  // (masked).
  for (int64_t i = 0; i < static_cast<int64_t>(responses.size()); ++i) {
    if (i == target) continue;
    if (responses[static_cast<size_t>(i)] != flipped_correct) {
      categories[static_cast<size_t>(i)] = kResponseMasked;
    }
  }
  return categories;
}

std::vector<int> ForwardCounterfactualCategories(
    const std::vector<int>& responses, int64_t target, int64_t flip_index,
    bool apply_monotonicity) {
  CheckArgs(responses, target);
  KT_CHECK(flip_index >= 0 &&
           flip_index < static_cast<int64_t>(responses.size()));
  KT_CHECK_NE(flip_index, target);

  const int flipped = 1 - responses[static_cast<size_t>(flip_index)];
  std::vector<int> categories = responses;
  categories[static_cast<size_t>(flip_index)] = flipped;
  categories[static_cast<size_t>(target)] = kResponseMasked;
  if (!apply_monotonicity) return categories;

  for (int64_t i = 0; i < static_cast<int64_t>(responses.size()); ++i) {
    if (i == flip_index || i == target) continue;
    if (responses[static_cast<size_t>(i)] != flipped) {
      categories[static_cast<size_t>(i)] = kResponseMasked;
    }
  }
  return categories;
}

std::vector<int> MaskedTargetCategories(const std::vector<int>& responses,
                                        int64_t target) {
  CheckArgs(responses, target);
  std::vector<int> categories = responses;
  categories[static_cast<size_t>(target)] = kResponseMasked;
  return categories;
}

std::vector<int> MaskByCorrectness(const std::vector<int>& responses,
                                   bool keep_correct) {
  std::vector<int> categories = responses;
  for (auto& c : categories) {
    KT_CHECK(c == 0 || c == 1);
    if ((c == 1) != keep_correct) c = kResponseMasked;
  }
  return categories;
}

}  // namespace rckt
}  // namespace kt
