// RCKT: Response influence-based Counterfactual Knowledge Tracing
// (the paper's primary contribution, Sec. IV).
//
// The model consists of:
//   * an adaptive probability generator (Sec. IV-D): the shared
//     question/concept/response embedder (Eq. 23-24), a bidirectional
//     knowledge-state encoder (Eq. 25, adapted from DKT/SAKT/AKT), and a
//     sigmoid MLP head (Eq. 26) producing p_i = p(r_i = 1 | everything but
//     position i);
//   * response-influence counterfactual reasoning with the backward
//     approximation (Sec. IV-C4): interventions are applied to the target
//     question, requiring only four generator passes per sample —
//       pA: target assumed correct, history factual        (F+)
//       pB: target flipped incorrect, mask/retain applied  (CF-)
//       pC: target assumed incorrect, history factual      (F-)
//       pD: target flipped correct, mask/retain applied    (CF+)
//     giving per-response influences
//       Delta+_i = pA_i - pB_i   at correct history positions,
//       Delta-_i = pD_i - pC_i   at incorrect history positions,
//     and the prediction rule  r^ = 1(sum Delta+ >= sum Delta-)  (Eq. 13);
//   * the counterfactual optimization (Eq. 16-17) with the non-negativity
//     constraint, jointly trained with the generator BCE terms L_F, L_M+,
//     L_M- (Eq. 27-29);
//   * the exact forward formulation (Eq. 4-9), retained for the Table VI
//     efficiency comparison, costing one generator pass per history
//     response.
//
// Batching contract: RCKT consumes batches of EQUAL-LENGTH prefix windows
// whose last position is the target question (see rckt/samples.h). This
// removes padding entirely, which matters because the bidirectional encoder
// would otherwise see pad tokens from the right.
#ifndef KT_RCKT_RCKT_MODEL_H_
#define KT_RCKT_RCKT_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/batch.h"
#include "models/embedder.h"
#include "nn/adam.h"
#include "nn/linear.h"
#include "rckt/encoders.h"

namespace kt {
namespace rckt {

struct RcktConfig {
  EncoderKind encoder = EncoderKind::kDKT;
  int64_t dim = 32;
  int64_t num_layers = 1;
  int64_t num_heads = 2;
  float dropout = 0.1f;
  float lr = 1e-3f;
  float weight_decay = 1e-5f;
  // Loss balancer lambda (Eq. 29) and constraint weight alpha (Eq. 16).
  float lambda = 0.1f;
  float alpha = 1.0f;
  // Ablation switches (paper Table V): -joint, -mono, -con.
  bool joint_training = true;
  bool use_monotonicity = true;
  bool use_constraint = true;
  // Fan-out execution (DESIGN.md §9). When true (default), the K generator
  // passes of a counterfactual fan-out run as one stacked K*B-row pass, so
  // the encoder amortizes GEMM and dispatch cost across all variants. The
  // encoder stack is row-wise, so stacked and per-pass results are
  // bit-identical; the per-pass path (false) is kept for A/B verification.
  // Stacking falls back to per-pass automatically when dropout is live,
  // because the per-pass pre-forked RNG streams are the determinism
  // contract there.
  bool stacked_fanout = true;
  // Exact mode stacks its O(t) counterfactual passes in chunks of this many
  // passes per stacked batch, bounding peak graph memory.
  int64_t exact_stack_chunk = 8;
  uint64_t seed = 1;
};

// Hyper-parameters from the paper's Table III, keyed by dataset and encoder:
// {lr, lambda, l2, dropout, layers}. Layer counts are capped at 2 in this
// CPU build.
RcktConfig RcktConfigFor(const std::string& dataset, EncoderKind encoder);

class RCKT : public nn::Module {
 public:
  RCKT(int64_t num_questions, int64_t num_concepts, RcktConfig config);

  std::string name() const;
  const RcktConfig& config() const { return config_; }

  // The id bounds this model was built for. The continual trainer uses
  // them to construct an architecture-identical candidate clone; serving
  // uses them as validation bounds when no dataset is on hand.
  int64_t num_questions() const { return num_questions_; }
  int64_t num_concepts() const { return num_concepts_; }

  // Checkpointing access (kt::ckpt): the optimizer state and the dropout
  // RNG stream both have to survive a kill/resume for the resumed run to be
  // bit-identical to an uninterrupted one.
  nn::Adam* optimizer() { return optimizer_.get(); }
  Rng* dropout_rng() { return &rng_; }

  // Component access for the online serving path (kt::serve), which
  // re-assembles the generator chain — embed, forward-stream encode, MLP
  // head — incrementally outside the batched Encode.
  const models::InteractionEmbedder& embedder() const { return embedder_; }
  const BiEncoder& bi_encoder() const { return *encoder_; }
  const nn::Linear& mlp_hidden() const { return mlp_hidden_; }
  const nn::Linear& mlp_out() const { return mlp_out_; }

  // ---- Training (approximate/backward mode, the default) ----
  // One Adam step on an equal-length prefix batch; returns the total loss
  // (Eq. 29) value.
  float TrainStep(const data::Batch& prefix_batch);

  // ---- Inference ----
  // Probability-like score sigmoid(Delta+ - Delta-) per row; >= 0.5 means
  // "predict correct" (equivalent to the paper's sign rule, Eq. 13).
  std::vector<float> ScoreTargets(const data::Batch& prefix_batch);

  // Per-position response influences for each row (interpretability API).
  struct Explanation {
    // influence[i] = Delta+_i at correct positions, Delta-_i at incorrect
    // ones, 0 at the target position.
    std::vector<float> influence;
    std::vector<int> responses;  // factual correctness per position
    float total_correct = 0.0f;
    float total_incorrect = 0.0f;
    float score = 0.0f;  // total_correct - total_incorrect
    bool predicted_correct = false;
  };
  std::vector<Explanation> ExplainTargets(const data::Batch& prefix_batch);

  // Influence breakdown when the target is a concept probe instead of a
  // concrete question (Fig. 5's per-concept influence groups): the target
  // position's question embedding is replaced as in ScoreConceptProbe.
  std::vector<Explanation> ExplainConceptProbe(
      const data::Batch& prefix_batch,
      const std::vector<int64_t>& concept_questions, int64_t concept_id);

  // Concept-proficiency probe (paper Eq. 30): scores the batch with the
  // target question embedding replaced by mean(q in concept_questions) +
  // k_emb[concept]. Result in (0,1) is the traced proficiency.
  std::vector<float> ScoreConceptProbe(
      const data::Batch& prefix_batch,
      const std::vector<int64_t>& concept_questions, int64_t concept_id);

  // Ablation scoring: the generator's own direct prediction at the target
  // (target category masked, no counterfactual reasoning). Used to isolate
  // how much of RCKT's accuracy comes from the probability generator vs the
  // influence aggregation (see bench_interpretability).
  std::vector<float> GeneratorScoreTargets(const data::Batch& prefix_batch);

  // Stacked multi-variant generator scoring: evaluates `response_variants`
  // alternative response assignments of the SAME prefix batch (each variant
  // is [B][T] responses; the target position is masked exactly as in
  // GeneratorScoreTargets) and returns [variant][row] probabilities at the
  // target. Variants run through the stacked fan-out in bounded chunks, so
  // a K-variant search costs one batched pass per chunk instead of K full
  // re-encodes — bitwise equal to K GeneratorScoreTargets calls by the
  // stacked == per-pass contract. Offline counterpart of the serve
  // recourse search (which scores variants online against the session's
  // cached forward stream instead; see DESIGN.md §15).
  std::vector<std::vector<float>> GeneratorScoreTargetsStacked(
      const data::Batch& prefix_batch,
      const std::vector<std::vector<std::vector<int>>>& response_variants);

  // ---- Exact forward mode (Table VI) ----
  // Influence computation without the backward approximation: one generator
  // pass per history response. Same decision rule.
  std::vector<float> ScoreTargetsExact(const data::Batch& prefix_batch);
  float TrainStepExact(const data::Batch& prefix_batch);

 private:
  struct InfluenceTensors {
    ag::Variable delta_plus_per_pos;   // [B, T]
    ag::Variable delta_minus_per_pos;  // [B, T]
    ag::Variable delta_plus;           // [B]
    ag::Variable delta_minus;          // [B]
    Tensor mask_correct;               // [B, T] history positions with r=1
    Tensor mask_incorrect;             // [B, T] history positions with r=0
  };

  // One generator pass: probabilities [B, T] for the given flattened
  // category assignment. If `probe` (shape [1, d]) is non-null it replaces
  // the question embedding at the target (last) position of every row.
  ag::Variable GenerateProbs(const data::Batch& batch,
                             const std::vector<int>& categories,
                             const nn::Context& ctx,
                             const ag::Variable* probe) const;

  // Runs K category assignments through the generator, returning K
  // probability tensors of [B, T] each. Default execution (stacked_fanout)
  // is one K*B-row stacked pass split back into K slices; the fallback is K
  // independent passes fanned out across the kt::parallel pool. Every op on
  // the generator path computes each output row from that row alone, so the
  // two strategies are bit-identical; with live dropout the per-pass path
  // is forced, with per-pass RNG streams pre-forked in pass order so masks
  // stay bit-identical for any KT_NUM_THREADS.
  std::vector<ag::Variable> GenerateProbsFanOut(
      const data::Batch& batch,
      const std::vector<const std::vector<int>*>& category_sets,
      const nn::Context& ctx, const ag::Variable* probe) const;

  // The stacked strategy: concatenates the K category sets over one
  // K*B-row replica batch, runs a single generator pass, and slices the
  // [K*B, T] result back into K tensors of [B, T].
  std::vector<ag::Variable> GenerateProbsStacked(
      const data::Batch& batch,
      const std::vector<const std::vector<int>*>& category_sets,
      const nn::Context& ctx, const ag::Variable* probe) const;

  InfluenceTensors ComputeInfluences(const data::Batch& batch,
                                     const nn::Context& ctx,
                                     const ag::Variable* probe) const;
  InfluenceTensors ComputeInfluencesExact(const data::Batch& batch,
                                          const nn::Context& ctx) const;

  // Shared loss assembly (Eq. 16-17 + joint terms) given influences.
  ag::Variable BuildLoss(const data::Batch& batch,
                         const InfluenceTensors& influences,
                         const nn::Context& ctx) const;

  float RunTrainStep(const data::Batch& prefix_batch, bool exact);
  std::vector<float> ScoreFromInfluences(const InfluenceTensors& influences,
                                         int64_t history_length) const;
  std::vector<Explanation> ExplanationsFromInfluences(
      const data::Batch& prefix_batch,
      const InfluenceTensors& influences) const;

  static void CheckEqualLength(const data::Batch& batch);

  RcktConfig config_;
  int64_t num_questions_ = 0;
  int64_t num_concepts_ = 0;
  Rng rng_;
  models::InteractionEmbedder embedder_;
  std::unique_ptr<BiEncoder> encoder_;
  nn::Linear mlp_hidden_;  // [2d -> d], Eq. 26 W1
  nn::Linear mlp_out_;     // [d -> 1],  Eq. 26 W2
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace rckt
}  // namespace kt

#endif  // KT_RCKT_RCKT_MODEL_H_
