// Bidirectional knowledge-state encoders (paper Eq. 25).
//
// h_i = FwdEnc(a_{0..i-1}) + BwdEnc(a_{i+1..T-1}):
// a forward stream summarizing everything strictly before i plus a backward
// stream summarizing everything strictly after i. The two streams never mix
// until the final shift-and-add, which guarantees the encoder output at
// position i carries NO information about a_i itself — essential, because
// a_i contains the response label the probability generator predicts, and
// any multi-layer bidirectional mixing (a BERT-style no-self mask) would
// leak it through two hops.
//
// Three flavors adapt the sequential encoders of DKT, SAKT and AKT
// (paper Sec. V-A4):
//   * BiLstmEncoder          — stacked LSTMs per direction (RCKT-DKT),
//   * BiAttentionEncoder     — stacked transformer blocks with causal /
//     anticausal inclusive masks; standard dot-product attention (RCKT-SAKT)
//     or monotonic distance-decay attention (RCKT-AKT).
#ifndef KT_RCKT_ENCODERS_H_
#define KT_RCKT_ENCODERS_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/lstm.h"
#include "nn/module.h"

namespace kt {
namespace rckt {

// kGRU is an extension beyond the paper's three variants, demonstrating
// the encoder adaptivity claim with a fourth sequential core.
enum class EncoderKind { kDKT, kSAKT, kAKT, kGRU };
const char* EncoderKindName(EncoderKind kind);

// Opaque incremental state of one student's FORWARD stream (kt::serve).
// Concrete encoders define what lives inside: recurrent cells keep O(1)
// hidden/cell rows, attention keeps append-only KV caches that grow with
// the history. Destroying the state frees everything.
struct ForwardStreamState {
  virtual ~ForwardStreamState() = default;
};

class BiEncoder : public nn::Module {
 public:
  ~BiEncoder() override = default;

  // `a` is [B, T, d]; the result [B, T, d] at position i depends only on
  // positions j != i (j < i through the forward stream, j > i backward).
  virtual ag::Variable Encode(const ag::Variable& a,
                              const nn::Context& ctx) = 0;

  // --- Incremental forward-stream API (online serving) ---------------------
  //
  // An online predict request targets the LAST position of a session, and
  // ShiftAndAdd gives h_target = fwd_{T-2} + 0: the backward stream's
  // contribution at the final position is the zero boundary row. Serving
  // therefore only ever advances the forward stream, one interaction at a
  // time, and each method below is bit-identical (at any thread count) to
  // the corresponding rows of an inference-mode Encode over the full
  // sequence. All methods run grad-free internally.

  // Fresh zero-history stream.
  virtual std::unique_ptr<ForwardStreamState> NewForwardStream() const = 0;

  // Advance one interaction: `a_row` is [1, d] (the embedded a_t); returns
  // the forward-stream output f_t, [1, d] — bitwise row t of the forward
  // stream inside Encode.
  virtual Tensor StepForward(ForwardStreamState& state,
                             const Tensor& a_row) const = 0;

  // Micro-batched advance: one independent stream per row, `a_rows[i]` is
  // [1, d]. Returns the per-stream outputs. The default runs per-row
  // StepForward on the thread pool; recurrent encoders override it to stack
  // the rows into one batched cell step (same bits either way — every GEMM
  // row is an independent ascending-k accumulator chain).
  virtual std::vector<Tensor> StepForwardMany(
      const std::vector<ForwardStreamState*>& states,
      const std::vector<Tensor>& a_rows) const;

  // Rebuild `state` from a full history in one pass: `a_seq` is [1, T, d].
  // Resets the state, then leaves it exactly as T StepForward calls would
  // (used when a session's neural state was evicted but its history kept).
  // Returns the whole forward stream [1, T, d].
  virtual Tensor ReplayForward(ForwardStreamState& state,
                               const Tensor& a_seq) const = 0;

  // Advance the stream over a RUN of S interactions in one bulk pass
  // (continuing from the current state, unlike ReplayForward): `a_run` is
  // [1, S, d]; returns the S forward rows [1, S, d], bitwise what S
  // successive StepForward calls would produce. The default loops
  // StepForward; concrete encoders override with a chunked layer pass
  // (recurrent) or a bulk multi-row causal decode (attention), so a short
  // suffix costs a handful of tensor ops instead of S step calls. Powers
  // the serve recourse suffix replay (DESIGN.md §15).
  virtual Tensor StepForwardRun(ForwardStreamState& state,
                                const Tensor& a_run) const;

  // Clone the stream as it stood after only its first `prefix_len` steps,
  // in O(bytes) with no encoder work. Only possible when the state keeps
  // per-position entries: attention KV caches are append-only, so the first
  // `prefix_len` rows ARE the prefix stream's state. Recurrent encoders
  // fold history into O(1) rows that cannot be rewound and return nullptr;
  // callers then rebuild the prefix by replaying it.
  virtual std::unique_ptr<ForwardStreamState> CloneStreamPrefix(
      const ForwardStreamState& state, int64_t prefix_len) const;

  // Bytes of neural state one stream holds after `history_len` steps (for
  // the session store's memory budget). O(1) for recurrent encoders,
  // O(history_len) for attention KV caches.
  virtual size_t StateBytes(int64_t history_len) const = 0;

  // --- Cold-tier stream (de)serialization (kt::serve) ----------------------
  //
  // Appends the stream state to `out` as raw little-endian float bytes, so
  // a deserialized stream is BIT-IDENTICAL to the serialized one — the
  // property the serve cold tier's "reload equals replay rebuild" contract
  // rests on. DeserializeStream returns nullptr on truncated or
  // shape-incompatible payloads (e.g. a snapshot written by a model with a
  // different layer count); callers then fall back to a replay rebuild.
  virtual void SerializeStream(const ForwardStreamState& state,
                               std::string* out) const = 0;
  virtual std::unique_ptr<ForwardStreamState> DeserializeStream(
      const char* data, size_t size) const = 0;
};

class BiLstmEncoder : public BiEncoder {
 public:
  BiLstmEncoder(int64_t dim, int64_t num_layers, float dropout_p, Rng& rng);
  ag::Variable Encode(const ag::Variable& a, const nn::Context& ctx) override;

  std::unique_ptr<ForwardStreamState> NewForwardStream() const override;
  Tensor StepForward(ForwardStreamState& state,
                     const Tensor& a_row) const override;
  std::vector<Tensor> StepForwardMany(
      const std::vector<ForwardStreamState*>& states,
      const std::vector<Tensor>& a_rows) const override;
  Tensor ReplayForward(ForwardStreamState& state,
                       const Tensor& a_seq) const override;
  Tensor StepForwardRun(ForwardStreamState& state,
                        const Tensor& a_run) const override;
  size_t StateBytes(int64_t history_len) const override;
  void SerializeStream(const ForwardStreamState& state,
                       std::string* out) const override;
  std::unique_ptr<ForwardStreamState> DeserializeStream(
      const char* data, size_t size) const override;

 private:
  float dropout_p_;
  std::vector<std::unique_ptr<nn::LSTM>> forward_layers_;
  std::vector<std::unique_ptr<nn::LSTM>> backward_layers_;
};

class BiGruEncoder : public BiEncoder {
 public:
  BiGruEncoder(int64_t dim, int64_t num_layers, float dropout_p, Rng& rng);
  ag::Variable Encode(const ag::Variable& a, const nn::Context& ctx) override;

  std::unique_ptr<ForwardStreamState> NewForwardStream() const override;
  Tensor StepForward(ForwardStreamState& state,
                     const Tensor& a_row) const override;
  std::vector<Tensor> StepForwardMany(
      const std::vector<ForwardStreamState*>& states,
      const std::vector<Tensor>& a_rows) const override;
  Tensor ReplayForward(ForwardStreamState& state,
                       const Tensor& a_seq) const override;
  Tensor StepForwardRun(ForwardStreamState& state,
                        const Tensor& a_run) const override;
  size_t StateBytes(int64_t history_len) const override;
  void SerializeStream(const ForwardStreamState& state,
                       std::string* out) const override;
  std::unique_ptr<ForwardStreamState> DeserializeStream(
      const char* data, size_t size) const override;

 private:
  float dropout_p_;
  std::vector<std::unique_ptr<nn::GRU>> forward_layers_;
  std::vector<std::unique_ptr<nn::GRU>> backward_layers_;
};

class BiAttentionEncoder : public BiEncoder {
 public:
  BiAttentionEncoder(int64_t dim, int64_t num_layers, int64_t num_heads,
                     float dropout_p, bool monotonic, Rng& rng);
  ag::Variable Encode(const ag::Variable& a, const nn::Context& ctx) override;

  std::unique_ptr<ForwardStreamState> NewForwardStream() const override;
  Tensor StepForward(ForwardStreamState& state,
                     const Tensor& a_row) const override;
  Tensor ReplayForward(ForwardStreamState& state,
                       const Tensor& a_seq) const override;
  Tensor StepForwardRun(ForwardStreamState& state,
                        const Tensor& a_run) const override;
  std::unique_ptr<ForwardStreamState> CloneStreamPrefix(
      const ForwardStreamState& state, int64_t prefix_len) const override;
  size_t StateBytes(int64_t history_len) const override;
  void SerializeStream(const ForwardStreamState& state,
                       std::string* out) const override;
  std::unique_ptr<ForwardStreamState> DeserializeStream(
      const char* data, size_t size) const override;

 private:
  int64_t dim_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> forward_blocks_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> backward_blocks_;
};

// Factory over the three paper variants.
std::unique_ptr<BiEncoder> MakeBiEncoder(EncoderKind kind, int64_t dim,
                                         int64_t num_layers,
                                         int64_t num_heads, float dropout_p,
                                         Rng& rng);

// Combines per-direction streams: out_i = fwd_{i-1} + bwd_{i+1} with zero
// boundaries (exposed for testing).
ag::Variable ShiftAndAdd(const ag::Variable& forward_stream,
                         const ag::Variable& backward_stream);

}  // namespace rckt
}  // namespace kt

#endif  // KT_RCKT_ENCODERS_H_
