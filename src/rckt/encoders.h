// Bidirectional knowledge-state encoders (paper Eq. 25).
//
// h_i = FwdEnc(a_{0..i-1}) + BwdEnc(a_{i+1..T-1}):
// a forward stream summarizing everything strictly before i plus a backward
// stream summarizing everything strictly after i. The two streams never mix
// until the final shift-and-add, which guarantees the encoder output at
// position i carries NO information about a_i itself — essential, because
// a_i contains the response label the probability generator predicts, and
// any multi-layer bidirectional mixing (a BERT-style no-self mask) would
// leak it through two hops.
//
// Three flavors adapt the sequential encoders of DKT, SAKT and AKT
// (paper Sec. V-A4):
//   * BiLstmEncoder          — stacked LSTMs per direction (RCKT-DKT),
//   * BiAttentionEncoder     — stacked transformer blocks with causal /
//     anticausal inclusive masks; standard dot-product attention (RCKT-SAKT)
//     or monotonic distance-decay attention (RCKT-AKT).
#ifndef KT_RCKT_ENCODERS_H_
#define KT_RCKT_ENCODERS_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/lstm.h"
#include "nn/module.h"

namespace kt {
namespace rckt {

// kGRU is an extension beyond the paper's three variants, demonstrating
// the encoder adaptivity claim with a fourth sequential core.
enum class EncoderKind { kDKT, kSAKT, kAKT, kGRU };
const char* EncoderKindName(EncoderKind kind);

class BiEncoder : public nn::Module {
 public:
  ~BiEncoder() override = default;

  // `a` is [B, T, d]; the result [B, T, d] at position i depends only on
  // positions j != i (j < i through the forward stream, j > i backward).
  virtual ag::Variable Encode(const ag::Variable& a,
                              const nn::Context& ctx) = 0;
};

class BiLstmEncoder : public BiEncoder {
 public:
  BiLstmEncoder(int64_t dim, int64_t num_layers, float dropout_p, Rng& rng);
  ag::Variable Encode(const ag::Variable& a, const nn::Context& ctx) override;

 private:
  float dropout_p_;
  std::vector<std::unique_ptr<nn::LSTM>> forward_layers_;
  std::vector<std::unique_ptr<nn::LSTM>> backward_layers_;
};

class BiGruEncoder : public BiEncoder {
 public:
  BiGruEncoder(int64_t dim, int64_t num_layers, float dropout_p, Rng& rng);
  ag::Variable Encode(const ag::Variable& a, const nn::Context& ctx) override;

 private:
  float dropout_p_;
  std::vector<std::unique_ptr<nn::GRU>> forward_layers_;
  std::vector<std::unique_ptr<nn::GRU>> backward_layers_;
};

class BiAttentionEncoder : public BiEncoder {
 public:
  BiAttentionEncoder(int64_t dim, int64_t num_layers, int64_t num_heads,
                     float dropout_p, bool monotonic, Rng& rng);
  ag::Variable Encode(const ag::Variable& a, const nn::Context& ctx) override;

 private:
  std::vector<std::unique_ptr<nn::TransformerBlock>> forward_blocks_;
  std::vector<std::unique_ptr<nn::TransformerBlock>> backward_blocks_;
};

// Factory over the three paper variants.
std::unique_ptr<BiEncoder> MakeBiEncoder(EncoderKind kind, int64_t dim,
                                         int64_t num_layers,
                                         int64_t num_heads, float dropout_p,
                                         Rng& rng);

// Combines per-direction streams: out_i = fwd_{i-1} + bwd_{i+1} with zero
// boundaries (exposed for testing).
ag::Variable ShiftAndAdd(const ag::Variable& forward_stream,
                         const ag::Variable& backward_stream);

}  // namespace rckt
}  // namespace kt

#endif  // KT_RCKT_ENCODERS_H_
