// Counterfactual sequence construction (paper Sec. IV-B).
//
// Pure functions over response-category vectors, independent of any model,
// so the mask/retain logic mandated by the monotonicity assumption is
// testable in isolation. Categories use the shared convention
// {0 incorrect, 1 correct, 2 masked} (models::kResponse*).
//
// Two directions exist:
//   * Backward (the response-influence approximation, Eq. 19): the
//     intervention is applied to the TARGET position; past responses that
//     agree with the flipped target outcome are retained, the rest masked.
//   * Forward (the original formulation, Eq. 4-5, kept for Table VI): the
//     intervention flips ONE PAST response; all other responses agreeing
//     with the flip direction are retained, the rest masked, and the target
//     is masked because it is what we predict.
#ifndef KT_RCKT_COUNTERFACTUAL_H_
#define KT_RCKT_COUNTERFACTUAL_H_

#include <cstdint>
#include <vector>

namespace kt {
namespace rckt {

// Factual categories with the target position set to an ASSUMED outcome.
// `responses` covers positions 0..n-1 of a prefix window whose last position
// `target` is the target question. Sets cat[target] = assumed_correct.
std::vector<int> AssumedFactualCategories(const std::vector<int>& responses,
                                          int64_t target, int assumed_correct);

// Backward counterfactual after flipping the assumed target outcome
// (Eq. 19). With the target flipped to incorrect (flipped_correct == 0),
// proficiency dropped: incorrect past responses are retained, correct ones
// masked. Vice versa for flipped_correct == 1.
// When `apply_monotonicity` is false (the -mono ablation), no mask/retain is
// performed: only the target category changes.
std::vector<int> BackwardCounterfactualCategories(
    const std::vector<int>& responses, int64_t target, int flipped_correct,
    bool apply_monotonicity = true);

// Forward counterfactual for flipping past response `flip_index` (Eq. 4-5).
// The flipped position takes the opposite of its factual value; responses
// elsewhere that match the flipped value are retained, others masked; the
// target position is masked (it is the prediction).
std::vector<int> ForwardCounterfactualCategories(
    const std::vector<int>& responses, int64_t target, int64_t flip_index,
    bool apply_monotonicity = true);

// Factual categories with the target masked — the forward-mode factual
// input for predicting the target.
std::vector<int> MaskedTargetCategories(const std::vector<int>& responses,
                                        int64_t target);

// Joint-training augmentations (Eq. 28): factual categories with every
// response of the given correctness masked. keep_correct == true masks the
// incorrect responses (yielding {(Q,R)+, (Q,M)-}), and vice versa.
std::vector<int> MaskByCorrectness(const std::vector<int>& responses,
                                   bool keep_correct);

}  // namespace rckt
}  // namespace kt

#endif  // KT_RCKT_COUNTERFACTUAL_H_
