#include "rckt/encoders.h"

#include "autograd/ops.h"

namespace kt {
namespace rckt {

const char* EncoderKindName(EncoderKind kind) {
  switch (kind) {
    case EncoderKind::kDKT:
      return "DKT";
    case EncoderKind::kSAKT:
      return "SAKT";
    case EncoderKind::kAKT:
      return "AKT";
    case EncoderKind::kGRU:
      return "GRU";
  }
  return "?";
}

ag::Variable ShiftAndAdd(const ag::Variable& forward_stream,
                         const ag::Variable& backward_stream) {
  const int64_t b = forward_stream.size(0);
  const int64_t t = forward_stream.size(1);
  const int64_t d = forward_stream.size(2);
  ag::Variable zeros = ag::Constant(Tensor::Zeros(Shape{b, 1, d}));
  // fwd_{i-1}: shift right; bwd_{i+1}: shift left.
  ag::Variable f_shift =
      ag::Concat({zeros, ag::Slice(forward_stream, 1, 0, t - 1)}, 1);
  ag::Variable b_shift =
      ag::Concat({ag::Slice(backward_stream, 1, 1, t), zeros}, 1);
  return ag::Add(f_shift, b_shift);
}

BiLstmEncoder::BiLstmEncoder(int64_t dim, int64_t num_layers, float dropout_p,
                             Rng& rng)
    : dropout_p_(dropout_p) {
  KT_CHECK_GT(num_layers, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    forward_layers_.push_back(std::make_unique<nn::LSTM>(dim, dim, rng));
    RegisterChild("fwd" + std::to_string(l), forward_layers_.back().get());
    backward_layers_.push_back(std::make_unique<nn::LSTM>(dim, dim, rng));
    RegisterChild("bwd" + std::to_string(l), backward_layers_.back().get());
  }
}

ag::Variable BiLstmEncoder::Encode(const ag::Variable& a,
                                   const nn::Context& ctx) {
  ag::Variable f = a;
  for (const auto& layer : forward_layers_) {
    f = layer->Forward(f, /*reverse=*/false);
    if (ctx.train && dropout_p_ > 0.0f)
      f = ag::Dropout(f, dropout_p_, *ctx.rng, true);
  }
  ag::Variable b = a;
  for (const auto& layer : backward_layers_) {
    b = layer->Forward(b, /*reverse=*/true);
    if (ctx.train && dropout_p_ > 0.0f)
      b = ag::Dropout(b, dropout_p_, *ctx.rng, true);
  }
  return ShiftAndAdd(f, b);
}

BiGruEncoder::BiGruEncoder(int64_t dim, int64_t num_layers, float dropout_p,
                           Rng& rng)
    : dropout_p_(dropout_p) {
  KT_CHECK_GT(num_layers, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    forward_layers_.push_back(std::make_unique<nn::GRU>(dim, dim, rng));
    RegisterChild("fwd" + std::to_string(l), forward_layers_.back().get());
    backward_layers_.push_back(std::make_unique<nn::GRU>(dim, dim, rng));
    RegisterChild("bwd" + std::to_string(l), backward_layers_.back().get());
  }
}

ag::Variable BiGruEncoder::Encode(const ag::Variable& a,
                                  const nn::Context& ctx) {
  ag::Variable f = a;
  for (const auto& layer : forward_layers_) {
    f = layer->Forward(f, /*reverse=*/false);
    if (ctx.train && dropout_p_ > 0.0f)
      f = ag::Dropout(f, dropout_p_, *ctx.rng, true);
  }
  ag::Variable b = a;
  for (const auto& layer : backward_layers_) {
    b = layer->Forward(b, /*reverse=*/true);
    if (ctx.train && dropout_p_ > 0.0f)
      b = ag::Dropout(b, dropout_p_, *ctx.rng, true);
  }
  return ShiftAndAdd(f, b);
}

BiAttentionEncoder::BiAttentionEncoder(int64_t dim, int64_t num_layers,
                                       int64_t num_heads, float dropout_p,
                                       bool monotonic, Rng& rng) {
  KT_CHECK_GT(num_layers, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    forward_blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        dim, num_heads, dropout_p, monotonic, rng));
    RegisterChild("fwd" + std::to_string(l), forward_blocks_.back().get());
    backward_blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        dim, num_heads, dropout_p, monotonic, rng));
    RegisterChild("bwd" + std::to_string(l), backward_blocks_.back().get());
  }
}

ag::Variable BiAttentionEncoder::Encode(const ag::Variable& a,
                                        const nn::Context& ctx) {
  const int64_t t = a.size(1);
  const Tensor causal =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kCausalInclusive);
  const Tensor anticausal =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kAntiCausalInclusive);

  ag::Variable f = a;
  for (const auto& block : forward_blocks_) {
    f = block->Forward(f, causal, ctx);
  }
  ag::Variable b = a;
  for (const auto& block : backward_blocks_) {
    b = block->Forward(b, anticausal, ctx);
  }
  return ShiftAndAdd(f, b);
}

std::unique_ptr<BiEncoder> MakeBiEncoder(EncoderKind kind, int64_t dim,
                                         int64_t num_layers,
                                         int64_t num_heads, float dropout_p,
                                         Rng& rng) {
  switch (kind) {
    case EncoderKind::kDKT:
      return std::make_unique<BiLstmEncoder>(dim, num_layers, dropout_p, rng);
    case EncoderKind::kSAKT:
      return std::make_unique<BiAttentionEncoder>(
          dim, num_layers, num_heads, dropout_p, /*monotonic=*/false, rng);
    case EncoderKind::kAKT:
      return std::make_unique<BiAttentionEncoder>(
          dim, num_layers, num_heads, dropout_p, /*monotonic=*/true, rng);
    case EncoderKind::kGRU:
      return std::make_unique<BiGruEncoder>(dim, num_layers, dropout_p, rng);
  }
  KT_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace rckt
}  // namespace kt
