#include "rckt/encoders.h"

#include <cstdint>
#include <cstring>
#include <utility>

#include "autograd/ops.h"
#include "core/binio.h"
#include "core/parallel.h"

namespace kt {
namespace rckt {

namespace {

// Concrete forward-stream states. Recurrent streams hold one [1, hidden]
// state per layer; the attention stream holds one KV cache per block.
struct LstmStreamState : ForwardStreamState {
  std::vector<nn::LSTMCell::State> layers;
};

struct GruStreamState : ForwardStreamState {
  std::vector<ag::Variable> layers;  // hidden rows, each [1, hidden]
};

struct AttentionStreamState : ForwardStreamState {
  std::vector<nn::AttentionKVCache> caches;
};

// Copies row `row` of a [k, d] tensor into a fresh [1, d] tensor.
Tensor CopyRow(const Tensor& t, int64_t row) {
  const int64_t d = t.size(1);
  Tensor out(Shape{1, d});
  std::memcpy(out.data(), t.data() + row * d,
              static_cast<size_t>(d) * sizeof(float));
  return out;
}

// Stacks k [1, d] rows into one [k, d] tensor.
Tensor StackRows(const std::vector<Tensor>& rows) {
  const int64_t k = static_cast<int64_t>(rows.size());
  const int64_t d = rows[0].size(1);
  Tensor out(Shape{k, d});
  for (int64_t i = 0; i < k; ++i) {
    KT_CHECK_EQ(rows[static_cast<size_t>(i)].numel(), d);
    std::memcpy(out.data() + i * d, rows[static_cast<size_t>(i)].data(),
                static_cast<size_t>(d) * sizeof(float));
  }
  return out;
}

// Stream serialization helpers: a [1, n] row is `u32 n` + n raw floats.
void AppendRow(std::string* out, const Tensor& row) {
  AppendPod<uint32_t>(out, static_cast<uint32_t>(row.numel()));
  AppendBytes(out, row.data(),
              static_cast<size_t>(row.numel()) * sizeof(float));
}

bool ReadRow(BinCursor* cursor, int64_t expect_numel, Tensor* out) {
  uint32_t numel = 0;
  if (!cursor->Read(&numel) ||
      static_cast<int64_t>(numel) != expect_numel) {
    return false;
  }
  Tensor row(Shape{1, expect_numel});
  if (!cursor->ReadBytes(row.data(),
                         static_cast<size_t>(expect_numel) * sizeof(float))) {
    return false;
  }
  *out = std::move(row);
  return true;
}

}  // namespace

const char* EncoderKindName(EncoderKind kind) {
  switch (kind) {
    case EncoderKind::kDKT:
      return "DKT";
    case EncoderKind::kSAKT:
      return "SAKT";
    case EncoderKind::kAKT:
      return "AKT";
    case EncoderKind::kGRU:
      return "GRU";
  }
  return "?";
}

ag::Variable ShiftAndAdd(const ag::Variable& forward_stream,
                         const ag::Variable& backward_stream) {
  const int64_t b = forward_stream.size(0);
  const int64_t t = forward_stream.size(1);
  const int64_t d = forward_stream.size(2);
  ag::Variable zeros = ag::Constant(Tensor::Zeros(Shape{b, 1, d}));
  // fwd_{i-1}: shift right; bwd_{i+1}: shift left.
  ag::Variable f_shift =
      ag::Concat({zeros, ag::Slice(forward_stream, 1, 0, t - 1)}, 1);
  ag::Variable b_shift =
      ag::Concat({ag::Slice(backward_stream, 1, 1, t), zeros}, 1);
  return ag::Add(f_shift, b_shift);
}

BiLstmEncoder::BiLstmEncoder(int64_t dim, int64_t num_layers, float dropout_p,
                             Rng& rng)
    : dropout_p_(dropout_p) {
  KT_CHECK_GT(num_layers, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    forward_layers_.push_back(std::make_unique<nn::LSTM>(dim, dim, rng));
    RegisterChild("fwd" + std::to_string(l), forward_layers_.back().get());
    backward_layers_.push_back(std::make_unique<nn::LSTM>(dim, dim, rng));
    RegisterChild("bwd" + std::to_string(l), backward_layers_.back().get());
  }
}

ag::Variable BiLstmEncoder::Encode(const ag::Variable& a,
                                   const nn::Context& ctx) {
  ag::Variable f = a;
  for (const auto& layer : forward_layers_) {
    f = layer->Forward(f, /*reverse=*/false);
    if (ctx.train && dropout_p_ > 0.0f)
      f = ag::Dropout(f, dropout_p_, *ctx.rng, true);
  }
  ag::Variable b = a;
  for (const auto& layer : backward_layers_) {
    b = layer->Forward(b, /*reverse=*/true);
    if (ctx.train && dropout_p_ > 0.0f)
      b = ag::Dropout(b, dropout_p_, *ctx.rng, true);
  }
  return ShiftAndAdd(f, b);
}

BiGruEncoder::BiGruEncoder(int64_t dim, int64_t num_layers, float dropout_p,
                           Rng& rng)
    : dropout_p_(dropout_p) {
  KT_CHECK_GT(num_layers, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    forward_layers_.push_back(std::make_unique<nn::GRU>(dim, dim, rng));
    RegisterChild("fwd" + std::to_string(l), forward_layers_.back().get());
    backward_layers_.push_back(std::make_unique<nn::GRU>(dim, dim, rng));
    RegisterChild("bwd" + std::to_string(l), backward_layers_.back().get());
  }
}

ag::Variable BiGruEncoder::Encode(const ag::Variable& a,
                                  const nn::Context& ctx) {
  ag::Variable f = a;
  for (const auto& layer : forward_layers_) {
    f = layer->Forward(f, /*reverse=*/false);
    if (ctx.train && dropout_p_ > 0.0f)
      f = ag::Dropout(f, dropout_p_, *ctx.rng, true);
  }
  ag::Variable b = a;
  for (const auto& layer : backward_layers_) {
    b = layer->Forward(b, /*reverse=*/true);
    if (ctx.train && dropout_p_ > 0.0f)
      b = ag::Dropout(b, dropout_p_, *ctx.rng, true);
  }
  return ShiftAndAdd(f, b);
}

BiAttentionEncoder::BiAttentionEncoder(int64_t dim, int64_t num_layers,
                                       int64_t num_heads, float dropout_p,
                                       bool monotonic, Rng& rng)
    : dim_(dim) {
  KT_CHECK_GT(num_layers, 0);
  for (int64_t l = 0; l < num_layers; ++l) {
    forward_blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        dim, num_heads, dropout_p, monotonic, rng));
    RegisterChild("fwd" + std::to_string(l), forward_blocks_.back().get());
    backward_blocks_.push_back(std::make_unique<nn::TransformerBlock>(
        dim, num_heads, dropout_p, monotonic, rng));
    RegisterChild("bwd" + std::to_string(l), backward_blocks_.back().get());
  }
}

ag::Variable BiAttentionEncoder::Encode(const ag::Variable& a,
                                        const nn::Context& ctx) {
  const int64_t t = a.size(1);
  const Tensor causal =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kCausalInclusive);
  const Tensor anticausal =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kAntiCausalInclusive);

  ag::Variable f = a;
  for (const auto& block : forward_blocks_) {
    f = block->Forward(f, causal, ctx);
  }
  ag::Variable b = a;
  for (const auto& block : backward_blocks_) {
    b = block->Forward(b, anticausal, ctx);
  }
  return ShiftAndAdd(f, b);
}

Tensor BiEncoder::StepForwardRun(ForwardStreamState& state,
                                 const Tensor& a_run) const {
  const int64_t s = a_run.size(1);
  const int64_t d = a_run.size(2);
  Tensor out(Shape{1, s, d});
  for (int64_t t = 0; t < s; ++t) {
    Tensor row(Shape{1, d});
    std::memcpy(row.data(), a_run.data() + t * d,
                static_cast<size_t>(d) * sizeof(float));
    const Tensor f = StepForward(state, row);
    KT_CHECK_EQ(f.numel(), d);
    std::memcpy(out.data() + t * d, f.data(),
                static_cast<size_t>(d) * sizeof(float));
  }
  return out;
}

std::unique_ptr<ForwardStreamState> BiEncoder::CloneStreamPrefix(
    const ForwardStreamState& /*state*/, int64_t /*prefix_len*/) const {
  return nullptr;
}

std::vector<Tensor> BiEncoder::StepForwardMany(
    const std::vector<ForwardStreamState*>& states,
    const std::vector<Tensor>& a_rows) const {
  KT_CHECK_EQ(states.size(), a_rows.size());
  std::vector<Tensor> out(states.size());
  // Streams are independent, so per-row steps can run on the pool; each
  // StepForward is internally grad-free and bit-deterministic.
  ParallelFor(0, static_cast<int64_t>(states.size()), /*grain=*/1,
              [&](int64_t i) {
                const size_t s = static_cast<size_t>(i);
                out[s] = StepForward(*states[s], a_rows[s]);
              });
  return out;
}

std::unique_ptr<ForwardStreamState> BiLstmEncoder::NewForwardStream() const {
  auto state = std::make_unique<LstmStreamState>();
  state->layers.reserve(forward_layers_.size());
  for (const auto& layer : forward_layers_) {
    state->layers.push_back(layer->cell().InitialState(1));
  }
  return state;
}

Tensor BiLstmEncoder::StepForward(ForwardStreamState& state,
                                  const Tensor& a_row) const {
  ag::NoGradGuard no_grad;
  auto& s = static_cast<LstmStreamState&>(state);
  KT_CHECK_EQ(s.layers.size(), forward_layers_.size());
  ag::Variable x = ag::Constant(a_row);  // [1, d]
  for (size_t l = 0; l < forward_layers_.size(); ++l) {
    s.layers[l] = forward_layers_[l]->cell().Forward(x, s.layers[l]);
    x = s.layers[l].h;
  }
  return x.value();
}

std::vector<Tensor> BiLstmEncoder::StepForwardMany(
    const std::vector<ForwardStreamState*>& states,
    const std::vector<Tensor>& a_rows) const {
  KT_CHECK_EQ(states.size(), a_rows.size());
  const int64_t k = static_cast<int64_t>(states.size());
  if (k == 1) return {StepForward(*states[0], a_rows[0])};
  ag::NoGradGuard no_grad;
  // Stack the k independent streams into one [k, d] cell step per layer;
  // every GEMM row is its own accumulator chain, so row i of the stacked
  // step is bitwise the single-stream step.
  ag::Variable x = ag::Constant(StackRows(a_rows));
  const int64_t hidden = forward_layers_[0]->hidden_size();
  for (size_t l = 0; l < forward_layers_.size(); ++l) {
    std::vector<Tensor> hs(static_cast<size_t>(k)), cs(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
      auto& s = static_cast<LstmStreamState&>(*states[static_cast<size_t>(i)]);
      KT_CHECK_EQ(s.layers.size(), forward_layers_.size());
      hs[static_cast<size_t>(i)] = s.layers[l].h.value();
      cs[static_cast<size_t>(i)] = s.layers[l].c.value();
    }
    nn::LSTMCell::State stacked{ag::Constant(StackRows(hs)),
                                ag::Constant(StackRows(cs))};
    stacked = forward_layers_[l]->cell().Forward(x, stacked);
    for (int64_t i = 0; i < k; ++i) {
      auto& s = static_cast<LstmStreamState&>(*states[static_cast<size_t>(i)]);
      s.layers[l].h = ag::Constant(CopyRow(stacked.h.value(), i));
      s.layers[l].c = ag::Constant(CopyRow(stacked.c.value(), i));
    }
    x = stacked.h;
  }
  std::vector<Tensor> out(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    out[static_cast<size_t>(i)] = CopyRow(x.value(), i);
  }
  return out;
}

Tensor BiLstmEncoder::ReplayForward(ForwardStreamState& state,
                                    const Tensor& a_seq) const {
  ag::NoGradGuard no_grad;
  auto& s = static_cast<LstmStreamState&>(state);
  s.layers.clear();
  ag::Variable f = ag::Constant(a_seq);  // [1, T, d]
  for (const auto& layer : forward_layers_) {
    nn::LSTMCell::State final_state;
    f = layer->Forward(f, /*reverse=*/false, nullptr, &final_state);
    s.layers.push_back(final_state);
  }
  return f.value();
}

Tensor BiLstmEncoder::StepForwardRun(ForwardStreamState& state,
                                     const Tensor& a_run) const {
  ag::NoGradGuard no_grad;
  auto& s = static_cast<LstmStreamState&>(state);
  KT_CHECK_EQ(s.layers.size(), forward_layers_.size());
  // Chunked layer pass seeded with the stream state: bit-identical to S
  // single StepForward calls by the LSTM::Forward chunking contract.
  ag::Variable f = ag::Constant(a_run);  // [1, S, d]
  for (size_t l = 0; l < forward_layers_.size(); ++l) {
    nn::LSTMCell::State final_state;
    f = forward_layers_[l]->Forward(f, /*reverse=*/false, &s.layers[l],
                                    &final_state);
    s.layers[l] = final_state;
  }
  return f.value();
}

size_t BiLstmEncoder::StateBytes(int64_t /*history_len*/) const {
  return forward_layers_.size() * 2 *
         static_cast<size_t>(forward_layers_[0]->hidden_size()) *
         sizeof(float);
}

void BiLstmEncoder::SerializeStream(const ForwardStreamState& state,
                                    std::string* out) const {
  const auto& s = static_cast<const LstmStreamState&>(state);
  AppendPod<uint32_t>(out, static_cast<uint32_t>(s.layers.size()));
  for (const auto& layer : s.layers) {
    AppendRow(out, layer.h.value());
    AppendRow(out, layer.c.value());
  }
}

std::unique_ptr<ForwardStreamState> BiLstmEncoder::DeserializeStream(
    const char* data, size_t size) const {
  BinCursor cursor(data, size);
  uint32_t layers = 0;
  if (!cursor.Read(&layers) || layers != forward_layers_.size())
    return nullptr;
  const int64_t hidden = forward_layers_[0]->hidden_size();
  auto state = std::make_unique<LstmStreamState>();
  state->layers.reserve(layers);
  for (uint32_t l = 0; l < layers; ++l) {
    Tensor h, c;
    if (!ReadRow(&cursor, hidden, &h) || !ReadRow(&cursor, hidden, &c))
      return nullptr;
    state->layers.push_back(
        nn::LSTMCell::State{ag::Constant(h), ag::Constant(c)});
  }
  if (!cursor.done()) return nullptr;
  return state;
}

std::unique_ptr<ForwardStreamState> BiGruEncoder::NewForwardStream() const {
  auto state = std::make_unique<GruStreamState>();
  state->layers.reserve(forward_layers_.size());
  for (const auto& layer : forward_layers_) {
    state->layers.push_back(layer->cell().InitialState(1));
  }
  return state;
}

Tensor BiGruEncoder::StepForward(ForwardStreamState& state,
                                 const Tensor& a_row) const {
  ag::NoGradGuard no_grad;
  auto& s = static_cast<GruStreamState&>(state);
  KT_CHECK_EQ(s.layers.size(), forward_layers_.size());
  ag::Variable x = ag::Constant(a_row);
  for (size_t l = 0; l < forward_layers_.size(); ++l) {
    s.layers[l] = forward_layers_[l]->cell().Forward(x, s.layers[l]);
    x = s.layers[l];
  }
  return x.value();
}

std::vector<Tensor> BiGruEncoder::StepForwardMany(
    const std::vector<ForwardStreamState*>& states,
    const std::vector<Tensor>& a_rows) const {
  KT_CHECK_EQ(states.size(), a_rows.size());
  const int64_t k = static_cast<int64_t>(states.size());
  if (k == 1) return {StepForward(*states[0], a_rows[0])};
  ag::NoGradGuard no_grad;
  ag::Variable x = ag::Constant(StackRows(a_rows));
  for (size_t l = 0; l < forward_layers_.size(); ++l) {
    std::vector<Tensor> hs(static_cast<size_t>(k));
    for (int64_t i = 0; i < k; ++i) {
      auto& s = static_cast<GruStreamState&>(*states[static_cast<size_t>(i)]);
      KT_CHECK_EQ(s.layers.size(), forward_layers_.size());
      hs[static_cast<size_t>(i)] = s.layers[l].value();
    }
    ag::Variable stacked = forward_layers_[l]->cell().Forward(
        x, ag::Constant(StackRows(hs)));
    for (int64_t i = 0; i < k; ++i) {
      auto& s = static_cast<GruStreamState&>(*states[static_cast<size_t>(i)]);
      s.layers[l] = ag::Constant(CopyRow(stacked.value(), i));
    }
    x = stacked;
  }
  std::vector<Tensor> out(static_cast<size_t>(k));
  for (int64_t i = 0; i < k; ++i) {
    out[static_cast<size_t>(i)] = CopyRow(x.value(), i);
  }
  return out;
}

Tensor BiGruEncoder::ReplayForward(ForwardStreamState& state,
                                   const Tensor& a_seq) const {
  ag::NoGradGuard no_grad;
  auto& s = static_cast<GruStreamState&>(state);
  s.layers.clear();
  ag::Variable f = ag::Constant(a_seq);
  for (const auto& layer : forward_layers_) {
    ag::Variable final_state;
    f = layer->Forward(f, /*reverse=*/false, nullptr, &final_state);
    s.layers.push_back(final_state);
  }
  return f.value();
}

Tensor BiGruEncoder::StepForwardRun(ForwardStreamState& state,
                                    const Tensor& a_run) const {
  ag::NoGradGuard no_grad;
  auto& s = static_cast<GruStreamState&>(state);
  KT_CHECK_EQ(s.layers.size(), forward_layers_.size());
  ag::Variable f = ag::Constant(a_run);  // [1, S, d]
  for (size_t l = 0; l < forward_layers_.size(); ++l) {
    ag::Variable final_state;
    f = forward_layers_[l]->Forward(f, /*reverse=*/false, &s.layers[l],
                                    &final_state);
    s.layers[l] = final_state;
  }
  return f.value();
}

void BiGruEncoder::SerializeStream(const ForwardStreamState& state,
                                   std::string* out) const {
  const auto& s = static_cast<const GruStreamState&>(state);
  AppendPod<uint32_t>(out, static_cast<uint32_t>(s.layers.size()));
  for (const auto& layer : s.layers) AppendRow(out, layer.value());
}

std::unique_ptr<ForwardStreamState> BiGruEncoder::DeserializeStream(
    const char* data, size_t size) const {
  BinCursor cursor(data, size);
  uint32_t layers = 0;
  if (!cursor.Read(&layers) || layers != forward_layers_.size())
    return nullptr;
  const int64_t hidden = forward_layers_[0]->hidden_size();
  auto state = std::make_unique<GruStreamState>();
  state->layers.reserve(layers);
  for (uint32_t l = 0; l < layers; ++l) {
    Tensor h;
    if (!ReadRow(&cursor, hidden, &h)) return nullptr;
    state->layers.push_back(ag::Constant(h));
  }
  if (!cursor.done()) return nullptr;
  return state;
}

size_t BiGruEncoder::StateBytes(int64_t /*history_len*/) const {
  return forward_layers_.size() *
         static_cast<size_t>(forward_layers_[0]->hidden_size()) *
         sizeof(float);
}

std::unique_ptr<ForwardStreamState> BiAttentionEncoder::NewForwardStream()
    const {
  auto state = std::make_unique<AttentionStreamState>();
  state->caches.resize(forward_blocks_.size());
  return state;
}

Tensor BiAttentionEncoder::StepForward(ForwardStreamState& state,
                                       const Tensor& a_row) const {
  ag::NoGradGuard no_grad;
  auto& s = static_cast<AttentionStreamState&>(state);
  KT_CHECK_EQ(s.caches.size(), forward_blocks_.size());
  ag::Variable x =
      ag::Constant(a_row.Reshape(Shape{1, 1, a_row.size(1)}));
  for (size_t l = 0; l < forward_blocks_.size(); ++l) {
    x = forward_blocks_[l]->StepCausal(x, s.caches[l]);
  }
  return x.value().Reshape(Shape{1, dim_});
}

Tensor BiAttentionEncoder::ReplayForward(ForwardStreamState& state,
                                         const Tensor& a_seq) const {
  ag::NoGradGuard no_grad;
  auto& s = static_cast<AttentionStreamState&>(state);
  s.caches.assign(forward_blocks_.size(), nn::AttentionKVCache{});
  const int64_t t = a_seq.size(1);
  const Tensor causal =
      nn::MakeAttentionMask(t, nn::AttentionMaskKind::kCausalInclusive);
  const nn::Context inference;
  ag::Variable f = ag::Constant(a_seq);
  for (size_t l = 0; l < forward_blocks_.size(); ++l) {
    f = forward_blocks_[l]->Forward(f, causal, inference, nullptr,
                                    &s.caches[l]);
  }
  return f.value();
}

Tensor BiAttentionEncoder::StepForwardRun(ForwardStreamState& state,
                                          const Tensor& a_run) const {
  ag::NoGradGuard no_grad;
  auto& s = static_cast<AttentionStreamState&>(state);
  KT_CHECK_EQ(s.caches.size(), forward_blocks_.size());
  ag::Variable x = ag::Constant(a_run);  // [1, S, d]
  for (size_t l = 0; l < forward_blocks_.size(); ++l) {
    x = forward_blocks_[l]->StepCausalRun(x, s.caches[l]);
  }
  return x.value();
}

std::unique_ptr<ForwardStreamState> BiAttentionEncoder::CloneStreamPrefix(
    const ForwardStreamState& state, int64_t prefix_len) const {
  const auto& s = static_cast<const AttentionStreamState&>(state);
  KT_CHECK_GE(prefix_len, 0);
  auto out = std::make_unique<AttentionStreamState>();
  out->caches.resize(s.caches.size());
  const size_t floats =
      static_cast<size_t>(prefix_len) * static_cast<size_t>(dim_);
  for (size_t l = 0; l < s.caches.size(); ++l) {
    const nn::AttentionKVCache& cache = s.caches[l];
    // A causal step never touches earlier cache rows, so the first
    // prefix_len rows ARE the state the prefix-only stream would hold.
    KT_CHECK_GE(cache.len, prefix_len);
    out->caches[l].len = prefix_len;
    out->caches[l].k.assign(cache.k.begin(),
                            cache.k.begin() + static_cast<int64_t>(floats));
    out->caches[l].v.assign(cache.v.begin(),
                            cache.v.begin() + static_cast<int64_t>(floats));
  }
  return out;
}

size_t BiAttentionEncoder::StateBytes(int64_t history_len) const {
  return forward_blocks_.size() * 2 * static_cast<size_t>(history_len) *
         static_cast<size_t>(dim_) * sizeof(float);
}

void BiAttentionEncoder::SerializeStream(const ForwardStreamState& state,
                                         std::string* out) const {
  const auto& s = static_cast<const AttentionStreamState&>(state);
  AppendPod<uint32_t>(out, static_cast<uint32_t>(s.caches.size()));
  for (const auto& cache : s.caches) {
    AppendPod<int64_t>(out, cache.len);
    AppendBytes(out, cache.k.data(), cache.k.size() * sizeof(float));
    AppendBytes(out, cache.v.data(), cache.v.size() * sizeof(float));
  }
}

std::unique_ptr<ForwardStreamState> BiAttentionEncoder::DeserializeStream(
    const char* data, size_t size) const {
  BinCursor cursor(data, size);
  uint32_t blocks = 0;
  if (!cursor.Read(&blocks) || blocks != forward_blocks_.size())
    return nullptr;
  auto state = std::make_unique<AttentionStreamState>();
  state->caches.resize(blocks);
  for (uint32_t l = 0; l < blocks; ++l) {
    nn::AttentionKVCache& cache = state->caches[l];
    if (!cursor.Read(&cache.len) || cache.len < 0) return nullptr;
    const size_t floats =
        static_cast<size_t>(cache.len) * static_cast<size_t>(dim_);
    if (cursor.remaining() < 2 * floats * sizeof(float)) return nullptr;
    cache.k.resize(floats);
    cache.v.resize(floats);
    if (!cursor.ReadBytes(cache.k.data(), floats * sizeof(float)) ||
        !cursor.ReadBytes(cache.v.data(), floats * sizeof(float))) {
      return nullptr;
    }
  }
  if (!cursor.done()) return nullptr;
  return state;
}

std::unique_ptr<BiEncoder> MakeBiEncoder(EncoderKind kind, int64_t dim,
                                         int64_t num_layers,
                                         int64_t num_heads, float dropout_p,
                                         Rng& rng) {
  switch (kind) {
    case EncoderKind::kDKT:
      return std::make_unique<BiLstmEncoder>(dim, num_layers, dropout_p, rng);
    case EncoderKind::kSAKT:
      return std::make_unique<BiAttentionEncoder>(
          dim, num_layers, num_heads, dropout_p, /*monotonic=*/false, rng);
    case EncoderKind::kAKT:
      return std::make_unique<BiAttentionEncoder>(
          dim, num_layers, num_heads, dropout_p, /*monotonic=*/true, rng);
    case EncoderKind::kGRU:
      return std::make_unique<BiGruEncoder>(dim, num_layers, dropout_p, rng);
  }
  KT_CHECK(false) << "unreachable";
  return nullptr;
}

}  // namespace rckt
}  // namespace kt
