// Quantitative interpretability metrics for response influences.
//
// The paper (Sec. V-E) argues influence quality cannot be quantified on
// real datasets: there are no explanation annotations, and deleting
// responses perturbs the student's entire inferred state. Our synthetic
// substrate removes both obstacles, so this module implements two
// quantitative checks as an extension:
//
//   * Deletion fidelity: mask the k MOST influential history responses and
//     measure the change in the model's decision statistic, against masking
//     k RANDOM responses. Faithful influences => targeted deletion moves
//     the score more than random deletion.
//   * Proficiency fidelity: Pearson correlation between the traced
//     per-concept proficiency (Eq. 30 probe) and the simulator's
//     ground-truth latent theta along a student's trajectory.
#ifndef KT_RCKT_INTERPRETABILITY_H_
#define KT_RCKT_INTERPRETABILITY_H_

#include <vector>

#include "core/rng.h"
#include "data/simulator.h"
#include "rckt/rckt_model.h"

namespace kt {
namespace rckt {

struct DeletionFidelityResult {
  // Mean |score change| when masking the top-k most influential responses.
  double targeted_shift = 0.0;
  // Mean |score change| when masking k uniformly random responses.
  double random_shift = 0.0;
  // targeted / random; > 1 means influences identify the responses that
  // actually matter.
  double fidelity_ratio = 0.0;
  int64_t num_samples = 0;
};

// Runs the deletion test over prefix samples drawn from `dataset`.
// `k` responses are masked per sample; samples with fewer than k + 2
// history responses are skipped.
DeletionFidelityResult DeletionFidelity(RCKT& model,
                                        const data::Dataset& dataset,
                                        int64_t k, int64_t max_samples,
                                        Rng& rng);

struct ProficiencyFidelityResult {
  // Mean per-student Pearson correlation between traced proficiency and
  // ground-truth theta on the most practiced concept.
  double mean_correlation = 0.0;
  int64_t num_students = 0;
};

// Generates `num_students` fresh simulated students (with ground-truth
// traces) and correlates the model's concept-probe proficiency against the
// latent theta.
ProficiencyFidelityResult ProficiencyFidelity(
    RCKT& model, const data::StudentSimulator& simulator,
    int64_t num_students, int64_t sequence_length);

// Pearson correlation helper (exposed for tests).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace rckt
}  // namespace kt

#endif  // KT_RCKT_INTERPRETABILITY_H_
