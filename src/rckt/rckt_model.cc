#include "rckt/rckt_model.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "autograd/ops.h"
#include "core/parallel.h"
#include "nn/losses.h"
#include "obs/obs.h"
#include "rckt/counterfactual.h"
#include "tensor/tensor_ops.h"

namespace kt {
namespace rckt {
namespace {

constexpr float kLogEps = 1e-6f;

// Extracts one row's responses from a flattened batch.
std::vector<int> RowResponses(const data::Batch& batch, int64_t b) {
  std::vector<int> out(static_cast<size_t>(batch.max_len));
  for (int64_t t = 0; t < batch.max_len; ++t) {
    out[static_cast<size_t>(t)] =
        batch.responses[static_cast<size_t>(batch.FlatIndex(b, t))];
  }
  return out;
}

// Writes one row's categories back into a flattened vector.
void PutRow(std::vector<int>& flat, const data::Batch& batch, int64_t b,
            const std::vector<int>& row) {
  for (int64_t t = 0; t < batch.max_len; ++t) {
    flat[static_cast<size_t>(batch.FlatIndex(b, t))] =
        row[static_cast<size_t>(t)];
  }
}

// Runs `count` independent generator passes across the kt::parallel pool
// (the counterfactual fan-out: each pass builds its own forward graph
// against the shared, read-only parameters). Two pieces of per-thread state
// are handled so results are bit-identical for any KT_NUM_THREADS:
//   * the autograd grad mode is thread-local, so the caller's mode is
//     re-applied inside every task (pool workers default to grad-on);
//   * when dropout is live, each pass draws from its own Rng, pre-forked
//     from the caller's stream in pass order — masks then never depend on
//     which thread runs which pass.
// True when dropout masks will actually be drawn this pass — the one case
// where stacked and per-pass fan-out cannot share RNG streams, forcing the
// per-pass path.
bool DropoutLive(const nn::Context& ctx, float dropout) {
  return ctx.train && ctx.rng != nullptr && dropout > 0.0f;
}

// Replicates a batch k times along the row dimension for a stacked fan-out
// pass. Only the fields the generator path reads (questions, concept bags,
// responses, lengths) are stacked; valid/targets are loss-side tensors that
// never enter GenerateProbs.
data::Batch StackBatch(const data::Batch& batch, int64_t k) {
  data::Batch out;
  out.batch_size = batch.batch_size * k;
  out.max_len = batch.max_len;
  out.questions.reserve(batch.questions.size() * static_cast<size_t>(k));
  out.responses.reserve(batch.responses.size() * static_cast<size_t>(k));
  out.concept_bags.reserve(batch.concept_bags.size() * static_cast<size_t>(k));
  out.lengths.reserve(batch.lengths.size() * static_cast<size_t>(k));
  for (int64_t rep = 0; rep < k; ++rep) {
    out.questions.insert(out.questions.end(), batch.questions.begin(),
                         batch.questions.end());
    out.responses.insert(out.responses.end(), batch.responses.begin(),
                         batch.responses.end());
    out.concept_bags.insert(out.concept_bags.end(), batch.concept_bags.begin(),
                            batch.concept_bags.end());
    out.lengths.insert(out.lengths.end(), batch.lengths.begin(),
                       batch.lengths.end());
  }
  return out;
}

void RunGeneratorPasses(
    int64_t count, const nn::Context& ctx, float dropout,
    const std::function<void(int64_t, const nn::Context&)>& pass) {
  const bool grad_enabled = ag::GradModeEnabled();
  std::vector<Rng> pass_rngs;
  if (ctx.train && ctx.rng != nullptr && dropout > 0.0f) {
    pass_rngs.reserve(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) pass_rngs.push_back(ctx.rng->Fork());
  }
  ParallelFor(0, count, /*grain=*/1, [&](int64_t i) {
    std::optional<ag::NoGradGuard> no_grad;
    if (!grad_enabled) no_grad.emplace();
    nn::Context local = ctx;
    if (!pass_rngs.empty()) local.rng = &pass_rngs[static_cast<size_t>(i)];
    pass(i, local);
  });
}

}  // namespace

RcktConfig RcktConfigFor(const std::string& dataset, EncoderKind encoder) {
  // Paper Table III: {lr, lambda, l2, dropout, layers} per dataset/encoder.
  // Values follow the table; layer counts are capped at 2 for the CPU build.
  struct Row {
    float lr, lambda, l2, dropout;
    int64_t layers;
  };
  auto pick = [&]() -> Row {
    const bool dkt = encoder == EncoderKind::kDKT;
    const bool sakt = encoder == EncoderKind::kSAKT;
    if (dataset == "assist09") {
      if (dkt) return {1e-3f, 0.1f, 1e-5f, 0.3f, 2};
      if (sakt) return {2e-3f, 0.1f, 2e-4f, 0.2f, 2};
      return {5e-4f, 0.01f, 5e-5f, 0.0f, 2};
    }
    if (dataset == "assist12") {
      if (dkt) return {2e-3f, 0.01f, 1e-5f, 0.0f, 2};
      if (sakt) return {2e-3f, 0.1f, 5e-4f, 0.2f, 2};
      return {5e-4f, 0.05f, 1e-5f, 0.0f, 2};
    }
    if (dataset == "slepemapy") {
      if (dkt) return {1e-3f, 0.1f, 0.0f, 0.0f, 2};
      if (sakt) return {5e-4f, 0.4f, 1e-5f, 0.0f, 2};
      return {5e-4f, 0.01f, 1e-5f, 0.0f, 2};
    }
    // eedi (default)
    if (dkt) return {1e-3f, 0.1f, 0.0f, 0.0f, 2};
    if (sakt) return {1e-3f, 0.1f, 1e-5f, 0.0f, 2};
    return {5e-4f, 0.01f, 1e-5f, 0.0f, 2};
  };
  const Row row = pick();
  RcktConfig config;
  config.encoder = encoder;
  config.lr = row.lr;
  config.lambda = row.lambda;
  config.weight_decay = row.l2;
  config.dropout = row.dropout;
  config.num_layers = row.layers;
  return config;
}

RCKT::RCKT(int64_t num_questions, int64_t num_concepts, RcktConfig config)
    : config_(config),
      num_questions_(num_questions),
      num_concepts_(num_concepts),
      rng_(config.seed * 77 + 13),
      embedder_(num_questions, num_concepts, config.dim, rng_),
      mlp_hidden_(2 * config.dim, config.dim, rng_),
      mlp_out_(config.dim, 1, rng_) {
  RegisterChild("embedder", &embedder_);
  encoder_ = MakeBiEncoder(config.encoder, config.dim, config.num_layers,
                           config.num_heads, config.dropout, rng_);
  RegisterChild("encoder", encoder_.get());
  RegisterChild("mlp_hidden", &mlp_hidden_);
  RegisterChild("mlp_out", &mlp_out_);

  nn::AdamOptions options;
  options.lr = config.lr;
  options.weight_decay = config.weight_decay;
  optimizer_ = std::make_unique<nn::Adam>(Parameters(), options);
}

std::string RCKT::name() const {
  return std::string("RCKT-") + EncoderKindName(config_.encoder);
}

void RCKT::CheckEqualLength(const data::Batch& batch) {
  for (int64_t len : batch.lengths) {
    KT_CHECK_EQ(len, batch.max_len)
        << "RCKT requires equal-length prefix batches";
  }
  KT_CHECK_GE(batch.max_len, 2) << "need at least one history response";
}

ag::Variable RCKT::GenerateProbs(const data::Batch& batch,
                                 const std::vector<int>& categories,
                                 const nn::Context& ctx,
                                 const ag::Variable* probe) const {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;
  const int64_t d = config_.dim;

  ag::Variable e = embedder_.QuestionEmbed(batch);  // [B, T, d]
  if (probe != nullptr) {
    // Replace the target (last) position's question embedding with the
    // probe, broadcast across the batch.
    ag::Variable probe_rows = ag::Add(
        ag::Reshape(*probe, Shape{1, 1, d}),
        ag::Constant(Tensor::Zeros(Shape{b, 1, d})));
    e = ag::Concat({ag::Slice(e, 1, 0, t - 1), probe_rows}, 1);
  }

  std::vector<int64_t> r_idx(categories.begin(), categories.end());
  ag::Variable r = ag::Reshape(
      ag::EmbeddingLookup(embedder_.response_table(), r_idx), Shape{b, t, d});
  ag::Variable a = ag::Add(e, r);

  ag::Variable h = encoder_->Encode(a, ctx);
  ag::Variable x = ag::Concat({h, e}, 2);  // [B, T, 2d]
  ag::Variable mid = mlp_hidden_.ForwardAct(x, ag::Act::kRelu);
  if (ctx.train && config_.dropout > 0.0f) {
    mid = ag::Dropout(mid, config_.dropout, *ctx.rng, true);
  }
  return ag::Reshape(mlp_out_.ForwardAct(mid, ag::Act::kSigmoid),
                     Shape{b, t});
}

std::vector<ag::Variable> RCKT::GenerateProbsFanOut(
    const data::Batch& batch,
    const std::vector<const std::vector<int>*>& category_sets,
    const nn::Context& ctx, const ag::Variable* probe) const {
  const int64_t k = static_cast<int64_t>(category_sets.size());
  KT_CHECK_GT(k, 0);
  if (obs::Enabled()) {
    static obs::Counter* const passes = obs::Counter::Get("rckt.fanout_passes");
    passes->Add(k);
  }
  if (config_.stacked_fanout && k > 1 && !DropoutLive(ctx, config_.dropout)) {
    return GenerateProbsStacked(batch, category_sets, ctx, probe);
  }
  KT_OBS_SCOPE("rckt/fanout_pooled");
  std::vector<ag::Variable> out(static_cast<size_t>(k));
  RunGeneratorPasses(k, ctx, config_.dropout,
                     [&](int64_t rep, const nn::Context& local) {
                       out[static_cast<size_t>(rep)] = GenerateProbs(
                           batch, *category_sets[static_cast<size_t>(rep)],
                           local, probe);
                     });
  return out;
}

std::vector<ag::Variable> RCKT::GenerateProbsStacked(
    const data::Batch& batch,
    const std::vector<const std::vector<int>*>& category_sets,
    const nn::Context& ctx, const ag::Variable* probe) const {
  KT_OBS_SCOPE("rckt/fanout_stacked");
  const int64_t k = static_cast<int64_t>(category_sets.size());
  const int64_t b = batch.batch_size;
  const size_t flat = static_cast<size_t>(b * batch.max_len);

  data::Batch stacked = StackBatch(batch, k);
  std::vector<int> cats;
  cats.reserve(flat * static_cast<size_t>(k));
  for (const std::vector<int>* set : category_sets) {
    KT_CHECK_EQ(set->size(), flat);
    cats.insert(cats.end(), set->begin(), set->end());
  }

  ag::Variable probs = GenerateProbs(stacked, cats, ctx, probe);  // [K*B, T]
  std::vector<ag::Variable> out(static_cast<size_t>(k));
  for (int64_t rep = 0; rep < k; ++rep) {
    out[static_cast<size_t>(rep)] =
        ag::Slice(probs, 0, rep * b, (rep + 1) * b);  // [B, T]
  }
  return out;
}

RCKT::InfluenceTensors RCKT::ComputeInfluences(const data::Batch& batch,
                                               const nn::Context& ctx,
                                               const ag::Variable* probe) const {
  CheckEqualLength(batch);
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;
  const int64_t target = t - 1;
  const size_t flat = static_cast<size_t>(b * t);

  // Category assignments for the four generator passes.
  std::vector<int> cats_f_plus(flat), cats_cf_minus(flat), cats_f_minus(flat),
      cats_cf_plus(flat);
  for (int64_t row = 0; row < b; ++row) {
    const std::vector<int> responses = RowResponses(batch, row);
    PutRow(cats_f_plus, batch, row,
           AssumedFactualCategories(responses, target, 1));
    PutRow(cats_f_minus, batch, row,
           AssumedFactualCategories(responses, target, 0));
    PutRow(cats_cf_minus, batch, row,
           BackwardCounterfactualCategories(responses, target, 0,
                                            config_.use_monotonicity));
    PutRow(cats_cf_plus, batch, row,
           BackwardCounterfactualCategories(responses, target, 1,
                                            config_.use_monotonicity));
  }

  // All four assignments fan out across the pool as independent passes.
  const auto probs = GenerateProbsFanOut(
      batch, {&cats_f_plus, &cats_cf_minus, &cats_f_minus, &cats_cf_plus},
      ctx, probe);
  const ag::Variable& p_a = probs[0];
  const ag::Variable& p_b = probs[1];
  const ag::Variable& p_c = probs[2];
  const ag::Variable& p_d = probs[3];

  InfluenceTensors result;
  result.mask_correct = Tensor::Zeros(Shape{b, t});
  result.mask_incorrect = Tensor::Zeros(Shape{b, t});
  for (int64_t row = 0; row < b; ++row) {
    for (int64_t i = 0; i < target; ++i) {
      const int64_t idx = batch.FlatIndex(row, i);
      if (batch.responses[static_cast<size_t>(idx)] == 1) {
        result.mask_correct.flat(idx) = 1.0f;
      } else {
        result.mask_incorrect.flat(idx) = 1.0f;
      }
    }
  }

  // Delta+_i = pA_i - pB_i (drop in p(correct) when target flips to
  // incorrect); Delta-_i = pD_i - pC_i (drop in p(incorrect), rewritten in
  // terms of p(correct)).
  result.delta_plus_per_pos = ag::Sub(p_a, p_b);
  result.delta_minus_per_pos = ag::Sub(p_d, p_c);
  result.delta_plus = ag::Sum(
      ag::Mul(result.delta_plus_per_pos, ag::Constant(result.mask_correct)),
      1);
  result.delta_minus = ag::Sum(
      ag::Mul(result.delta_minus_per_pos,
              ag::Constant(result.mask_incorrect)),
      1);
  return result;
}

RCKT::InfluenceTensors RCKT::ComputeInfluencesExact(
    const data::Batch& batch, const nn::Context& ctx) const {
  CheckEqualLength(batch);
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;
  const int64_t target = t - 1;
  const size_t flat = static_cast<size_t>(b * t);

  // Per-row response vectors, extracted once and shared by the factual pass
  // and all t-1 counterfactual passes below.
  std::vector<std::vector<int>> responses(static_cast<size_t>(b));
  for (int64_t row = 0; row < b; ++row) {
    responses[static_cast<size_t>(row)] = RowResponses(batch, row);
  }

  // Factual pass: target masked, history factual; prediction read at target.
  std::vector<int> cats_f(flat);
  for (int64_t row = 0; row < b; ++row) {
    PutRow(cats_f, batch, row,
           MaskedTargetCategories(responses[static_cast<size_t>(row)], target));
  }
  ag::Variable p_f = GenerateProbs(batch, cats_f, ctx, nullptr);  // [B, T]
  // p(correct at target) per row, [B].
  ag::Variable pf_target =
      ag::Reshape(ag::Slice(p_f, 1, target, target + 1), Shape{b});

  // One counterfactual pass per history position: flip response i, apply
  // mask/retain, read the target probability. The passes are independent
  // given p_f, so they fan out across the pool (the t-1 passes are the
  // entire cost of exact mode — see Table VI); columns land in
  // position-indexed slots and concatenate in fixed order.
  std::vector<ag::Variable> plus_cols(static_cast<size_t>(t)),
      minus_cols(static_cast<size_t>(t));
  InfluenceTensors result;
  result.mask_correct = Tensor::Zeros(Shape{b, t});
  result.mask_incorrect = Tensor::Zeros(Shape{b, t});
  for (int64_t row = 0; row < b; ++row) {
    for (int64_t i = 0; i < target; ++i) {
      const int64_t idx = batch.FlatIndex(row, i);
      if (batch.responses[static_cast<size_t>(idx)] == 1) {
        result.mask_correct.flat(idx) = 1.0f;
      } else {
        result.mask_incorrect.flat(idx) = 1.0f;
      }
    }
  }

  // Builds the flattened category assignment for counterfactual position i.
  const auto fill_counterfactual = [&](int64_t i, std::vector<int>& cats,
                                       size_t offset) {
    for (int64_t row = 0; row < b; ++row) {
      const std::vector<int> row_cats = ForwardCounterfactualCategories(
          responses[static_cast<size_t>(row)], target, i,
          config_.use_monotonicity);
      for (int64_t j = 0; j < t; ++j) {
        cats[offset + static_cast<size_t>(batch.FlatIndex(row, j))] =
            row_cats[static_cast<size_t>(j)];
      }
    }
  };
  // Reads "Delta at target" out of one [B, T] (or stacked-slice) pass.
  // Correct i:  Delta+ = p_f - p_cf (drop in p(correct)).
  // Incorrect i: Delta- = (1-p_f) - (1-p_cf) = p_cf - p_f.
  const auto store_columns = [&](int64_t i, const ag::Variable& p_cf) {
    ag::Variable pcf_target =
        ag::Reshape(ag::Slice(p_cf, 1, target, target + 1), Shape{b});
    plus_cols[static_cast<size_t>(i)] =
        ag::Reshape(ag::Sub(pf_target, pcf_target), Shape{b, 1});
    minus_cols[static_cast<size_t>(i)] =
        ag::Reshape(ag::Sub(pcf_target, pf_target), Shape{b, 1});
  };

  const ag::Variable zero = ag::Constant(Tensor::Zeros(Shape{b, 1}));
  plus_cols[static_cast<size_t>(target)] = zero;
  minus_cols[static_cast<size_t>(target)] = zero;

  if (config_.stacked_fanout && !DropoutLive(ctx, config_.dropout)) {
    // Chunked stacking: positions [0, target) run as ceil(target/chunk)
    // stacked passes of up to chunk*B rows each, fanned out across the
    // pool. Row-wise ops make this bit-identical to one pass per position.
    const int64_t chunk = std::max<int64_t>(1, config_.exact_stack_chunk);
    const int64_t num_chunks = (target + chunk - 1) / chunk;
    RunGeneratorPasses(
        num_chunks, ctx, config_.dropout,
        [&](int64_t ci, const nn::Context& local) {
          const int64_t lo = ci * chunk;
          const int64_t hi = std::min(target, lo + chunk);
          const int64_t kk = hi - lo;
          data::Batch stacked = StackBatch(batch, kk);
          std::vector<int> cats(flat * static_cast<size_t>(kk));
          for (int64_t i = lo; i < hi; ++i) {
            fill_counterfactual(i, cats,
                                static_cast<size_t>(i - lo) * flat);
          }
          ag::Variable p_cf =
              GenerateProbs(stacked, cats, local, nullptr);  // [kk*B, T]
          for (int64_t i = lo; i < hi; ++i) {
            store_columns(
                i, ag::Slice(p_cf, 0, (i - lo) * b, (i - lo + 1) * b));
          }
        });
  } else {
    RunGeneratorPasses(
        t, ctx, config_.dropout, [&](int64_t i, const nn::Context& local) {
          if (i == target) return;
          std::vector<int> cats_cf(flat);
          fill_counterfactual(i, cats_cf, 0);
          store_columns(i, GenerateProbs(batch, cats_cf, local, nullptr));
        });
  }

  result.delta_plus_per_pos = ag::Concat(plus_cols, 1);    // [B, T]
  result.delta_minus_per_pos = ag::Concat(minus_cols, 1);  // [B, T]
  result.delta_plus = ag::Sum(
      ag::Mul(result.delta_plus_per_pos, ag::Constant(result.mask_correct)),
      1);
  result.delta_minus = ag::Sum(
      ag::Mul(result.delta_minus_per_pos,
              ag::Constant(result.mask_incorrect)),
      1);
  return result;
}

ag::Variable RCKT::BuildLoss(const data::Batch& batch,
                             const InfluenceTensors& influences,
                             const nn::Context& ctx) const {
  const int64_t b = batch.batch_size;
  const int64_t t = batch.max_len;
  const int64_t target = t - 1;
  const float inv_2t = 1.0f / (2.0f * static_cast<float>(target));

  // Sign per row: (-1)^{r_target} — -1 for a correct target, +1 otherwise.
  Tensor sign(Shape{b});
  for (int64_t row = 0; row < b; ++row) {
    const int r = batch.responses[static_cast<size_t>(
        batch.FlatIndex(row, target))];
    sign.flat(row) = r == 1 ? -1.0f : 1.0f;
  }

  // L_CF = -log( sign * (Delta- - Delta+) / (2t) + 1/2 )      (Eq. 16)
  ag::Variable diff = ag::Sub(influences.delta_minus, influences.delta_plus);
  ag::Variable scaled =
      ag::MulScalar(ag::Mul(diff, ag::Constant(sign)), inv_2t);
  ag::Variable inside = ag::AddScalar(scaled, 0.5f + kLogEps);
  ag::Variable loss = ag::MeanAll(ag::Neg(ag::Log(inside)));

  // Constraint term L* (Eq. 17): hinge on negative influences.
  if (config_.use_constraint && config_.alpha > 0.0f) {
    ag::Variable zero_pp = ag::Constant(Tensor::Zeros(Shape{b, t}));
    ag::Variable violation_plus = ag::Mul(
        ag::Maximum(ag::Neg(influences.delta_plus_per_pos), zero_pp),
        ag::Constant(influences.mask_correct));
    ag::Variable violation_minus = ag::Mul(
        ag::Maximum(ag::Neg(influences.delta_minus_per_pos), zero_pp),
        ag::Constant(influences.mask_incorrect));
    ag::Variable constraint = ag::MulScalar(
        ag::Add(ag::SumAll(violation_plus), ag::SumAll(violation_minus)),
        1.0f / static_cast<float>(b));
    loss = ag::Add(loss, ag::MulScalar(constraint, config_.alpha));
  }

  // Joint training terms (Eq. 27-29): BCE of the generator on the factual
  // sequence and the two correctness-masked augmentations.
  if (config_.joint_training && config_.lambda > 0.0f) {
    const size_t flat = static_cast<size_t>(b * t);
    std::vector<int> cats_factual(flat), cats_keep_correct(flat),
        cats_keep_incorrect(flat);
    for (int64_t row = 0; row < b; ++row) {
      const std::vector<int> responses = RowResponses(batch, row);
      PutRow(cats_factual, batch, row, responses);
      PutRow(cats_keep_correct, batch, row,
             MaskByCorrectness(responses, /*keep_correct=*/true));
      PutRow(cats_keep_incorrect, batch, row,
             MaskByCorrectness(responses, /*keep_correct=*/false));
    }
    const Tensor all_positions = Tensor::Ones(Shape{b, t});
    const auto joint_probs = GenerateProbsFanOut(
        batch, {&cats_factual, &cats_keep_correct, &cats_keep_incorrect},
        ctx, nullptr);
    ag::Variable l_f = nn::BinaryCrossEntropyFromProbs(
        joint_probs[0], batch.targets, all_positions);
    ag::Variable l_m_plus = nn::BinaryCrossEntropyFromProbs(
        joint_probs[1], batch.targets, all_positions);
    ag::Variable l_m_minus = nn::BinaryCrossEntropyFromProbs(
        joint_probs[2], batch.targets, all_positions);
    ag::Variable joint = ag::Add(ag::Add(l_f, l_m_plus), l_m_minus);
    loss = ag::Add(loss, ag::MulScalar(joint, config_.lambda));
  }
  return loss;
}

float RCKT::RunTrainStep(const data::Batch& prefix_batch, bool exact) {
  KT_OBS_SCOPE("rckt/train_step");
  nn::Context ctx{/*train=*/true, &rng_};
  InfluenceTensors influences =
      exact ? ComputeInfluencesExact(prefix_batch, ctx)
            : ComputeInfluences(prefix_batch, ctx, nullptr);
  ag::Variable loss = BuildLoss(prefix_batch, influences, ctx);
  optimizer_->ZeroGrad();
  loss.Backward();
  optimizer_->Step();
  return loss.value().item();
}

float RCKT::TrainStep(const data::Batch& prefix_batch) {
  return RunTrainStep(prefix_batch, /*exact=*/false);
}

float RCKT::TrainStepExact(const data::Batch& prefix_batch) {
  return RunTrainStep(prefix_batch, /*exact=*/true);
}

std::vector<float> RCKT::ScoreFromInfluences(
    const InfluenceTensors& influences, int64_t history_length) const {
  KT_CHECK_GT(history_length, 0);
  const Tensor& plus = influences.delta_plus.value();
  const Tensor& minus = influences.delta_minus.value();
  std::vector<float> scores(static_cast<size_t>(plus.numel()));
  const float inv_t = 1.0f / static_cast<float>(history_length);
  for (int64_t i = 0; i < plus.numel(); ++i) {
    // sigmoid((Delta+ - Delta-) / t): monotone in the paper's decision
    // statistic with the sign rule's boundary mapped to 0.5. The 1/t
    // normalization (mean rather than summed influence difference) keeps
    // scores comparable across history lengths when AUC pools samples of
    // different prefix sizes — the sign (Eq. 13) is unaffected.
    const float diff = (plus.flat(i) - minus.flat(i)) * inv_t;
    scores[static_cast<size_t>(i)] = 1.0f / (1.0f + std::exp(-diff));
  }
  return scores;
}

std::vector<float> RCKT::ScoreTargets(const data::Batch& prefix_batch) {
  KT_OBS_SCOPE("rckt/score_targets");
  ag::NoGradGuard no_grad;
  nn::Context ctx;
  return ScoreFromInfluences(ComputeInfluences(prefix_batch, ctx, nullptr),
                             prefix_batch.max_len - 1);
}

std::vector<float> RCKT::GeneratorScoreTargets(
    const data::Batch& prefix_batch) {
  ag::NoGradGuard no_grad;
  CheckEqualLength(prefix_batch);
  nn::Context ctx;
  const int64_t b = prefix_batch.batch_size;
  const int64_t t = prefix_batch.max_len;
  const int64_t target = t - 1;
  std::vector<int> categories(static_cast<size_t>(b * t));
  for (int64_t row = 0; row < b; ++row) {
    PutRow(categories, prefix_batch, row,
           MaskedTargetCategories(RowResponses(prefix_batch, row), target));
  }
  ag::Variable probs = GenerateProbs(prefix_batch, categories, ctx, nullptr);
  std::vector<float> out(static_cast<size_t>(b));
  for (int64_t row = 0; row < b; ++row) {
    out[static_cast<size_t>(row)] =
        probs.value().flat(prefix_batch.FlatIndex(row, target));
  }
  return out;
}

std::vector<std::vector<float>> RCKT::GeneratorScoreTargetsStacked(
    const data::Batch& prefix_batch,
    const std::vector<std::vector<std::vector<int>>>& response_variants) {
  ag::NoGradGuard no_grad;
  CheckEqualLength(prefix_batch);
  nn::Context ctx;
  const int64_t b = prefix_batch.batch_size;
  const int64_t t = prefix_batch.max_len;
  const int64_t target = t - 1;
  const size_t k = response_variants.size();
  std::vector<std::vector<float>> out(k);
  if (k == 0) return out;
  // Bounded chunks keep the stacked batch's working set (K*B rows) inside
  // cache-friendly territory; results are read per-chunk so chunking cannot
  // change bits.
  constexpr size_t kChunk = 64;
  for (size_t begin = 0; begin < k; begin += kChunk) {
    const size_t end = std::min(k, begin + kChunk);
    std::vector<std::vector<int>> cats(end - begin);
    std::vector<const std::vector<int>*> sets(end - begin);
    for (size_t v = begin; v < end; ++v) {
      const auto& variant = response_variants[v];
      KT_CHECK_EQ(variant.size(), static_cast<size_t>(b));
      std::vector<int>& flat = cats[v - begin];
      flat.resize(static_cast<size_t>(b * t));
      for (int64_t row = 0; row < b; ++row) {
        const auto& responses = variant[static_cast<size_t>(row)];
        KT_CHECK_EQ(responses.size(), static_cast<size_t>(t));
        PutRow(flat, prefix_batch, row,
               MaskedTargetCategories(responses, target));
      }
      sets[v - begin] = &flat;
    }
    const auto probs = GenerateProbsFanOut(prefix_batch, sets, ctx, nullptr);
    for (size_t v = begin; v < end; ++v) {
      std::vector<float>& row_probs = out[v];
      row_probs.resize(static_cast<size_t>(b));
      const Tensor& value = probs[v - begin].value();
      for (int64_t row = 0; row < b; ++row) {
        row_probs[static_cast<size_t>(row)] =
            value.flat(prefix_batch.FlatIndex(row, target));
      }
    }
  }
  return out;
}

std::vector<float> RCKT::ScoreTargetsExact(const data::Batch& prefix_batch) {
  ag::NoGradGuard no_grad;
  nn::Context ctx;
  return ScoreFromInfluences(ComputeInfluencesExact(prefix_batch, ctx),
                             prefix_batch.max_len - 1);
}

std::vector<RCKT::Explanation> RCKT::ExplainTargets(
    const data::Batch& prefix_batch) {
  ag::NoGradGuard no_grad;
  nn::Context ctx;
  return ExplanationsFromInfluences(
      prefix_batch, ComputeInfluences(prefix_batch, ctx, nullptr));
}

std::vector<RCKT::Explanation> RCKT::ExplainConceptProbe(
    const data::Batch& prefix_batch,
    const std::vector<int64_t>& concept_questions, int64_t concept_id) {
  ag::NoGradGuard no_grad;
  nn::Context ctx;
  ag::Variable probe =
      embedder_.ConceptProbeEmbed(concept_questions, concept_id);
  return ExplanationsFromInfluences(
      prefix_batch, ComputeInfluences(prefix_batch, ctx, &probe));
}

std::vector<RCKT::Explanation> RCKT::ExplanationsFromInfluences(
    const data::Batch& prefix_batch,
    const InfluenceTensors& influences) const {
  const int64_t b = prefix_batch.batch_size;
  const int64_t t = prefix_batch.max_len;
  const Tensor& plus_pp = influences.delta_plus_per_pos.value();
  const Tensor& minus_pp = influences.delta_minus_per_pos.value();

  std::vector<Explanation> out(static_cast<size_t>(b));
  for (int64_t row = 0; row < b; ++row) {
    Explanation& ex = out[static_cast<size_t>(row)];
    ex.influence.assign(static_cast<size_t>(t), 0.0f);
    ex.responses = RowResponses(prefix_batch, row);
    for (int64_t i = 0; i < t; ++i) {
      const int64_t idx = prefix_batch.FlatIndex(row, i);
      if (influences.mask_correct.flat(idx) != 0.0f) {
        ex.influence[static_cast<size_t>(i)] = plus_pp.flat(idx);
        ex.total_correct += plus_pp.flat(idx);
      } else if (influences.mask_incorrect.flat(idx) != 0.0f) {
        ex.influence[static_cast<size_t>(i)] = minus_pp.flat(idx);
        ex.total_incorrect += minus_pp.flat(idx);
      }
    }
    ex.score = ex.total_correct - ex.total_incorrect;
    ex.predicted_correct = ex.score >= 0.0f;
  }
  return out;
}

std::vector<float> RCKT::ScoreConceptProbe(
    const data::Batch& prefix_batch,
    const std::vector<int64_t>& concept_questions, int64_t concept_id) {
  ag::NoGradGuard no_grad;
  nn::Context ctx;
  ag::Variable probe =
      embedder_.ConceptProbeEmbed(concept_questions, concept_id);
  return ScoreFromInfluences(ComputeInfluences(prefix_batch, ctx, &probe),
                             prefix_batch.max_len - 1);
}

}  // namespace rckt
}  // namespace kt
