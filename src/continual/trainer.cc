#include "continual/trainer.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <iterator>
#include <utility>

#include <sys/stat.h>
#include <sys/types.h>

#include "ckpt/ckpt.h"
#include "ckpt/training_state.h"
#include "core/binio.h"
#include "core/check.h"
#include "core/logging.h"
#include "eval/metrics.h"
#include "nn/serialize.h"
#include "obs/obs.h"
#include "obs/runlog.h"
#include "rckt/samples.h"

namespace kt {
namespace continual {
namespace {

constexpr uint32_t kCheckpointSchemaVersion = 1;

// mkdir -p (EEXIST is success).
bool MakeDirs(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (!prefix.empty() &&
        ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
    if (i < path.size()) prefix.push_back('/');
  }
  return true;
}

// The candidate is trained with dropout OFF so a mini-epoch over a fixed
// replay set is a pure function of (weights, optimizer, samples) — no RNG
// stream to carry through checkpoints — and with the continual learning
// rate instead of the offline one.
rckt::RcktConfig CandidateConfig(const rckt::RcktConfig& serving,
                                 const TrainerOptions& options) {
  rckt::RcktConfig config = serving;
  config.lr = options.lr;
  config.dropout = 0.0f;
  return config;
}

// Stable sequence storage + prefix samples for a sample list (order
// preserved: row i of the grouped batches maps back through the
// PrefixSample's sequence pointer).
struct MaterializedSet {
  std::vector<data::ResponseSequence> sequences;
  std::vector<rckt::PrefixSample> samples;
};

MaterializedSet Materialize(const std::vector<TrainSample>& set) {
  MaterializedSet out;
  out.sequences.reserve(set.size());
  out.samples.reserve(set.size());
  for (const TrainSample& sample : set) {
    data::ResponseSequence seq;
    seq.student = static_cast<int64_t>(sample.student_fnv);
    seq.interactions.reserve(sample.context.size() + 1);
    seq.interactions.assign(sample.context.begin(), sample.context.end());
    seq.interactions.push_back(sample.target);
    out.sequences.push_back(std::move(seq));
  }
  for (const data::ResponseSequence& seq : out.sequences) {
    out.samples.push_back({&seq, seq.length() - 1});
  }
  return out;
}

// AUC of `model`'s generator predictions (the serving predict path) over a
// held-out sample list. 0.5 when a class is absent, matching ComputeAuc.
double ScoreAuc(rckt::RCKT& model, const std::vector<TrainSample>& holdout,
                int64_t batch_size) {
  MaterializedSet set = Materialize(holdout);
  eval::MetricAccumulator acc;
  for (const auto& group :
       rckt::GroupIntoBatches(set.samples, batch_size, nullptr)) {
    const std::vector<float> probs =
        model.GeneratorScoreTargets(rckt::MakePrefixBatch(group));
    for (size_t i = 0; i < group.size(); ++i) {
      acc.AddOne(probs[i], group[i].sequence->interactions.back().response);
    }
  }
  return acc.Auc();
}

void Bump(const char* name, int64_t n = 1) {
  if (obs::Enabled()) obs::Counter::Get(name)->Add(n);
}

}  // namespace

ContinualTrainer::ContinualTrainer(rckt::RCKT& serving,
                                   const TrainerOptions& options)
    : options_(options),
      serving_(serving),
      collector_([&] {
        CollectorOptions c;
        c.shards = options.shards;
        c.window = options.window;
        c.min_history = options.min_history;
        c.holdout_every = options.holdout_every;
        c.seed = options.seed;
        return c;
      }()),
      reservoir_(options.reservoir_capacity, options.seed) {
  options_.tail_capacity = std::max<int64_t>(0, options.tail_capacity);
  options_.holdout_capacity = std::max<int64_t>(1, options.holdout_capacity);
  options_.batch_size = std::max<int64_t>(1, options.batch_size);
  candidate_ = std::make_unique<rckt::RCKT>(
      serving.num_questions(), serving.num_concepts(),
      CandidateConfig(serving.config(), options_));
  candidate_->SetState(serving.StateClone());
  weight_version_.store(options_.initial_weight_version);
  if (!options_.dir.empty() && !MakeDirs(options_.dir)) {
    KT_LOG(WARNING) << "continual: cannot create directory " << options_.dir;
  }
}

ContinualTrainer::~ContinualTrainer() { Stop(); }

void ContinualTrainer::Record(int shard, const serve::UpdateEvent& event) {
  collector_.Record(shard, event);
}

void ContinualTrainer::DrainNow() {
  std::lock_guard<std::mutex> lock(data_mu_);
  std::vector<TrainSample> new_train;
  std::vector<TrainSample> new_holdout;
  collector_.Drain(&new_train, &new_holdout);
  for (TrainSample& sample : new_train) {
    if (options_.tail_capacity > 0) {
      reservoir_.Offer(sample);
      tail_.push_back(std::move(sample));
    } else {
      reservoir_.Offer(std::move(sample));
    }
  }
  if (static_cast<int64_t>(tail_.size()) > options_.tail_capacity) {
    tail_.erase(tail_.begin(),
                tail_.end() - static_cast<ptrdiff_t>(options_.tail_capacity));
  }
  std::move(new_holdout.begin(), new_holdout.end(),
            std::back_inserter(holdout_));
  if (static_cast<int64_t>(holdout_.size()) > options_.holdout_capacity) {
    holdout_.erase(
        holdout_.begin(),
        holdout_.end() - static_cast<ptrdiff_t>(options_.holdout_capacity));
  }
}

std::vector<TrainSample> ContinualTrainer::SnapshotTrainSet() {
  std::lock_guard<std::mutex> lock(data_mu_);
  std::vector<TrainSample> out;
  out.reserve(static_cast<size_t>(reservoir_.size()) + tail_.size());
  for (const TrainSample* sample : reservoir_.Ordered()) {
    out.push_back(*sample);
  }
  out.insert(out.end(), tail_.begin(), tail_.end());
  return out;
}

bool ContinualTrainer::RunMiniEpoch() {
  const auto start = std::chrono::steady_clock::now();
  DrainNow();
  const std::vector<TrainSample> train_set = SnapshotTrainSet();
  std::vector<TrainSample> holdout;
  int64_t reservoir_size = 0;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    reservoir_size = reservoir_.size();
    holdout = holdout_;
  }
  if (train_set.empty()) return false;

  // Deterministic mini-epoch: canonical sample order (reservoir order,
  // then the tail ring), unshuffled length-bucketed batches, no dropout.
  MaterializedSet set = Materialize(train_set);
  double loss_sum = 0.0;
  int64_t batches = 0;
  for (const auto& group :
       rckt::GroupIntoBatches(set.samples, options_.batch_size, nullptr)) {
    loss_sum += candidate_->TrainStep(rckt::MakePrefixBatch(group));
    ++batches;
  }
  const double train_loss = batches > 0 ? loss_sum / batches : 0.0;

  // Promotion gate on held-out traffic the candidate never trained on:
  // the candidate must not lose more than gate_eps AUC to the incumbent.
  const int64_t gate_samples = static_cast<int64_t>(holdout.size());
  double candidate_auc = 0.0;
  double incumbent_auc = 0.0;
  bool promoted = false;
  if (gate_samples >= options_.gate_min_samples) {
    candidate_auc = ScoreAuc(*candidate_, holdout, options_.batch_size);
    // Concurrent read-only forward on the shared serving weights — the
    // same contract the shard engines rely on.
    incumbent_auc = ScoreAuc(serving_, holdout, options_.batch_size);
    promoted = candidate_auc >= incumbent_auc - options_.gate_eps;

    std::lock_guard<std::mutex> lock(stats_mu_);
    if (has_baseline_ &&
        incumbent_auc < baseline_auc_ - options_.drift_threshold) {
      ++drift_events_;
      Bump("continual.drift_events");
    }
    baseline_auc_ = has_baseline_
                        ? 0.9 * baseline_auc_ + 0.1 * incumbent_auc
                        : incumbent_auc;
    has_baseline_ = true;
    last_candidate_auc_ = candidate_auc;
    last_incumbent_auc_ = incumbent_auc;
    if (obs::Enabled()) {
      obs::Histogram::Get("continual.incumbent_auc")->Record(incumbent_auc);
      obs::Histogram::Get("continual.candidate_auc")->Record(candidate_auc);
    }
  }

  int64_t version = weight_version_.load(std::memory_order_relaxed);
  if (promoted) {
    ++version;
    const uint64_t fingerprint = nn::FingerprintModule(*candidate_);
    if (!options_.dir.empty()) {
      nn::ModelMeta meta;
      const rckt::RcktConfig& config = candidate_->config();
      meta.encoder_kind = static_cast<int32_t>(config.encoder);
      meta.dim = config.dim;
      meta.num_layers = config.num_layers;
      meta.num_heads = config.num_heads;
      meta.num_questions = candidate_->num_questions();
      meta.num_concepts = candidate_->num_concepts();
      meta.weights_fnv64 = fingerprint;
      meta.weight_version = version;
      const Status status = nn::SaveModuleWithMeta(
          *candidate_, meta, options_.dir + "/current.ktw");
      if (!status.ok()) {
        KT_LOG(WARNING) << "continual: publish failed: " << status.message();
      }
    }
    const std::vector<Tensor> state = candidate_->StateClone();
    if (shards_ != nullptr) {
      shards_->SwapWeights(state, fingerprint, version);
    } else {
      serving_.SetState(state);
    }
    weight_version_.store(version, std::memory_order_relaxed);
    Bump("continual.promotions");
  }

  const double epoch_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  int64_t mini_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    mini_epoch = ++mini_epochs_;
    if (promoted) ++promotions_;
  }
  Bump("continual.mini_epochs");
  if (obs::Enabled()) {
    obs::Histogram::Get("continual.mini_epoch_ms")->Record(epoch_ms);
  }
  if (obs::RunLogActive()) {
    obs::ContinualLogEntry entry;
    entry.mini_epoch = mini_epoch;
    entry.events = events_base_ + collector_.TotalEvents();
    entry.reservoir_size = reservoir_size;
    entry.samples = static_cast<int64_t>(train_set.size());
    entry.train_loss = train_loss;
    entry.epoch_ms = epoch_ms;
    entry.candidate_auc = candidate_auc;
    entry.incumbent_auc = incumbent_auc;
    entry.gate_samples = gate_samples;
    entry.promoted = promoted;
    entry.weight_version = version;
    obs::AppendContinualLogEntry(entry);
  }
  if (!options_.dir.empty()) {
    const Status status = SaveCheckpoint();
    if (!status.ok()) {
      KT_LOG(WARNING) << "continual: checkpoint failed: " << status.message();
    }
  }
  return true;
}

void ContinualTrainer::Start(serve::ShardSet* shards) {
  Stop();
  shards_ = shards;
  if (shards_ != nullptr) {
    shards_->set_stats_decorator(
        [this](serve::ServeResponse& response) { DecorateStats(&response); });
  }
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void ContinualTrainer::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    stop_ = true;
  }
  loop_cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
    DrainNow();
    if (!options_.dir.empty()) {
      const Status status = SaveCheckpoint();
      if (!status.ok()) {
        KT_LOG(WARNING) << "continual: final checkpoint failed: "
                        << status.message();
      }
    }
  }
  shards_ = nullptr;
}

void ContinualTrainer::Loop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(loop_mu_);
      loop_cv_.wait_for(lock, std::chrono::milliseconds(
                                  std::max<int64_t>(1, options_.poll_ms)),
                        [&] { return stop_; });
      if (stop_) return;
    }
    DrainNow();
    const int64_t events = events_base_ + collector_.TotalEvents();
    if (events - last_epoch_events_ >= options_.train_every) {
      RunMiniEpoch();
      last_epoch_events_ = events;
    }
  }
}

ContinualTrainer::Stats ContinualTrainer::GetStats() {
  DrainNow();
  Stats stats;
  stats.events = events_base_ + collector_.TotalEvents();
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    stats.reservoir_size = reservoir_.size();
    stats.reservoir_fnv64 = reservoir_.Digest();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.mini_epochs = mini_epochs_;
    stats.promotions = promotions_;
    stats.drift_events = drift_events_;
    stats.last_candidate_auc = last_candidate_auc_;
    stats.last_incumbent_auc = last_incumbent_auc_;
  }
  stats.weight_version = weight_version_.load(std::memory_order_relaxed);
  return stats;
}

void ContinualTrainer::DecorateStats(serve::ServeResponse* response) {
  const Stats stats = GetStats();
  response->has_continual = true;
  response->continual_events = stats.events;
  response->continual_mini_epochs = stats.mini_epochs;
  response->continual_promotions = stats.promotions;
  response->continual_reservoir_size = stats.reservoir_size;
  response->continual_reservoir_fnv64 = stats.reservoir_fnv64;
}

Status ContinualTrainer::SaveCheckpoint() {
  if (options_.dir.empty()) {
    return Status::InvalidArgument("continual trainer has no directory");
  }
  ckpt::CheckpointWriter writer;
  std::string& schema = writer.Section("schema");
  const rckt::RcktConfig& config = candidate_->config();
  AppendPod<uint32_t>(&schema, kCheckpointSchemaVersion);
  AppendPod<int32_t>(&schema, static_cast<int32_t>(config.encoder));
  AppendPod<int64_t>(&schema, config.dim);
  AppendPod<int64_t>(&schema, config.num_layers);
  AppendPod<int64_t>(&schema, candidate_->num_questions());
  AppendPod<int64_t>(&schema, candidate_->num_concepts());
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    reservoir_.Serialize(&writer.Section("reservoir"));
    AppendSamples(tail_, &writer.Section("tail"));
    AppendSamples(holdout_, &writer.Section("holdout"));
  }
  std::string& trainer = writer.Section("trainer");
  AppendPod<int64_t>(&trainer, events_base_ + collector_.TotalEvents());
  AppendPod<int64_t>(&trainer, last_epoch_events_);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    AppendPod<int64_t>(&trainer, mini_epochs_);
    AppendPod<int64_t>(&trainer, promotions_);
    AppendPod<int64_t>(&trainer, drift_events_);
    AppendPod<double>(&trainer, last_candidate_auc_);
    AppendPod<double>(&trainer, last_incumbent_auc_);
    AppendPod<double>(&trainer, baseline_auc_);
    AppendPod<uint8_t>(&trainer, has_baseline_ ? 1 : 0);
  }
  AppendPod<int64_t>(&trainer,
                     weight_version_.load(std::memory_order_relaxed));
  nn::AppendModuleState(*candidate_, &writer.Section("weights"));
  ckpt::AppendAdamState(*candidate_->optimizer(), &writer.Section("adam"));
  return writer.Commit(options_.dir + "/continual.ktc");
}

bool ContinualTrainer::LoadCheckpoint() {
  if (options_.dir.empty()) return false;
  const std::string path = options_.dir + "/continual.ktc";
  ckpt::CheckpointReader reader;
  if (!reader.Open(path).ok()) return false;

  std::string_view schema, reservoir_bytes, tail_bytes, holdout_bytes,
      trainer_bytes, weight_bytes, adam_bytes;
  if (!reader.Find("schema", &schema).ok() ||
      !reader.Find("reservoir", &reservoir_bytes).ok() ||
      !reader.Find("tail", &tail_bytes).ok() ||
      !reader.Find("holdout", &holdout_bytes).ok() ||
      !reader.Find("trainer", &trainer_bytes).ok() ||
      !reader.Find("weights", &weight_bytes).ok() ||
      !reader.Find("adam", &adam_bytes).ok()) {
    KT_LOG(WARNING) << "continual: checkpoint " << path
                    << " is missing sections; starting fresh";
    return false;
  }

  const rckt::RcktConfig& config = candidate_->config();
  {
    BinCursor cursor(schema.data(), schema.size());
    uint32_t version = 0;
    int32_t kind = 0;
    int64_t dim = 0, layers = 0, questions = 0, concepts = 0;
    if (!cursor.Read(&version) || version != kCheckpointSchemaVersion ||
        !cursor.Read(&kind) || !cursor.Read(&dim) || !cursor.Read(&layers) ||
        !cursor.Read(&questions) || !cursor.Read(&concepts)) {
      KT_LOG(WARNING) << "continual: malformed checkpoint schema; "
                      << "starting fresh";
      return false;
    }
    KT_CHECK(kind == static_cast<int32_t>(config.encoder) &&
             dim == config.dim && layers == config.num_layers &&
             questions == candidate_->num_questions() &&
             concepts == candidate_->num_concepts())
        << "continual checkpoint " << path
        << " was written for a different model architecture";
  }

  // Stage the sample state, then apply. Weights/optimizer apply in
  // sequence afterwards; the schema check above pins the architecture, so
  // their shape validation cannot fail half-way for a well-formed file.
  Reservoir reservoir(options_.reservoir_capacity, options_.seed);
  std::vector<TrainSample> tail, holdout;
  if (!reservoir.Deserialize(reservoir_bytes.data(), reservoir_bytes.size()) ||
      !ParseSamples(tail_bytes.data(), tail_bytes.size(), &tail) ||
      !ParseSamples(holdout_bytes.data(), holdout_bytes.size(), &holdout)) {
    KT_LOG(WARNING) << "continual: malformed checkpoint samples; "
                    << "starting fresh";
    return false;
  }
  BinCursor trainer(trainer_bytes.data(), trainer_bytes.size());
  int64_t events = 0, last_epoch = 0, mini_epochs = 0, promotions = 0,
          drift = 0, version = 0;
  double cand = 0.0, inc = 0.0, baseline = 0.0;
  uint8_t has_baseline = 0;
  if (!trainer.Read(&events) || !trainer.Read(&last_epoch) ||
      !trainer.Read(&mini_epochs) || !trainer.Read(&promotions) ||
      !trainer.Read(&drift) || !trainer.Read(&cand) || !trainer.Read(&inc) ||
      !trainer.Read(&baseline) || !trainer.Read(&has_baseline) ||
      !trainer.Read(&version) || !trainer.done()) {
    KT_LOG(WARNING) << "continual: malformed trainer section; "
                    << "starting fresh";
    return false;
  }
  const Status weight_status = nn::ParseModuleState(
      weight_bytes.data(), weight_bytes.size(), *candidate_);
  if (!weight_status.ok()) {
    KT_LOG(WARNING) << "continual: checkpoint weights rejected: "
                    << weight_status.message();
    return false;
  }
  std::vector<Shape> expected;
  for (const ag::Variable& param : candidate_->Parameters()) {
    expected.push_back(param.value().shape());
  }
  const Status adam_status = ckpt::ParseAdamState(
      adam_bytes.data(), adam_bytes.size(), expected, candidate_->optimizer());
  if (!adam_status.ok()) {
    KT_LOG(WARNING) << "continual: checkpoint optimizer rejected: "
                    << adam_status.message();
    return false;
  }

  {
    std::lock_guard<std::mutex> lock(data_mu_);
    reservoir_ = std::move(reservoir);
    tail_ = std::move(tail);
    holdout_ = std::move(holdout);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    events_base_ = events;
    mini_epochs_ = mini_epochs;
    promotions_ = promotions;
    drift_events_ = drift;
    last_candidate_auc_ = cand;
    last_incumbent_auc_ = inc;
    baseline_auc_ = baseline;
    has_baseline_ = has_baseline != 0;
  }
  last_epoch_events_ = last_epoch;
  weight_version_.store(version, std::memory_order_relaxed);
  return true;
}

}  // namespace continual
}  // namespace kt
