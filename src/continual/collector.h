// Per-shard accumulation of committed serve updates into train samples.
//
// Each serve shard gets its own slot: the engine's update sink calls
// Record(shard, event) from the shard's worker thread, so two shards never
// contend on one slot's mutex (the lock exists only because the trainer
// drains concurrently). A slot tracks, per student, the last <= window-1
// interactions plus the next expected event index, and turns every
// committed update into a TrainSample = (bounded context, target).
//
// Determinism across shard layouts: a student's context stream depends only
// on the student's OWN committed updates in order — which every layout
// preserves (a student lives on exactly one shard) — so the multiset of
// emitted samples is shard-count-invariant, and so is everything selected
// from it by hash (the reservoir's bottom-k, the holdout split). The
// `index` field guards the invariant: a discontinuity (reset op, session
// re-created after a restart mid-stream) resets the context window rather
// than fabricating a context the student never had.
#ifndef KT_CONTINUAL_COLLECTOR_H_
#define KT_CONTINUAL_COLLECTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "continual/reservoir.h"
#include "serve/engine.h"

namespace kt {
namespace continual {

struct CollectorOptions {
  int shards = 1;
  // Max sample length (context + target); matches the offline window.
  int64_t window = 32;
  // Samples need at least this much context to be worth training on
  // (mirrors MakePrefixSamples' min_target; must be >= 1 because RCKT
  // requires one history response).
  int64_t min_history = 4;
  // Every event whose holdout hash lands on 0 mod this goes to the holdout
  // split (never trained on) for the promotion gate; <= 1 disables the
  // split (everything trains).
  int64_t holdout_every = 8;
  uint64_t seed = 1;
};

class EventCollector {
 public:
  explicit EventCollector(const CollectorOptions& options);

  // Engine-thread side; safe for concurrent calls with distinct `shard`.
  void Record(int shard, const serve::UpdateEvent& event);

  // Trainer side: moves every pending sample out of all slots, appending
  // train samples to *train and gate samples to *holdout. Returns the
  // number of samples moved.
  int64_t Drain(std::vector<TrainSample>* train,
                std::vector<TrainSample>* holdout);

  // Committed events seen so far (including ones below min_history).
  int64_t TotalEvents() const {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  struct StudentContext {
    int64_t next_index = 0;
    std::deque<data::Interaction> window;
  };

  struct Slot {
    std::mutex mu;
    std::unordered_map<uint64_t, StudentContext> contexts;
    std::vector<TrainSample> pending_train;
    std::vector<TrainSample> pending_holdout;
  };

  CollectorOptions options_;
  std::atomic<int64_t> events_{0};
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace continual
}  // namespace kt

#endif  // KT_CONTINUAL_COLLECTOR_H_
