#include "continual/collector.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace kt {
namespace continual {

EventCollector::EventCollector(const CollectorOptions& options)
    : options_(options) {
  options_.shards = std::max(1, options.shards);
  options_.window = std::max<int64_t>(2, options.window);
  options_.min_history =
      std::min(std::max<int64_t>(1, options.min_history), options_.window - 1);
  slots_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void EventCollector::Record(int shard, const serve::UpdateEvent& event) {
  events_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = *slots_[static_cast<size_t>(
      std::clamp(shard, 0, options_.shards - 1))];
  const uint64_t student_fnv = HashStudent(event.student);

  std::lock_guard<std::mutex> lock(slot.mu);
  StudentContext& ctx = slot.contexts[student_fnv];
  if (event.index != ctx.next_index) {
    // Discontinuity: the session was reset or re-created mid-stream and we
    // did not observe the intervening events. Whatever context we held no
    // longer matches the student's stream — start over at this index.
    ctx.window.clear();
    ctx.next_index = event.index;
  }

  data::Interaction target;
  target.question = event.question;
  target.response = event.response;
  if (event.concepts != nullptr) target.concepts = *event.concepts;

  if (static_cast<int64_t>(ctx.window.size()) >= options_.min_history) {
    TrainSample sample;
    sample.student_fnv = student_fnv;
    sample.index = event.index;
    sample.target = target;
    sample.context.assign(ctx.window.begin(), ctx.window.end());
    // A second, independent hash stream decides the holdout split so it
    // never correlates with the reservoir's priorities.
    const bool holdout =
        options_.holdout_every > 1 &&
        SamplePriority(options_.seed ^ 0x9e3779b97f4a7c15ull, student_fnv,
                       sample.index) %
                static_cast<uint64_t>(options_.holdout_every) ==
            0;
    (holdout ? slot.pending_holdout : slot.pending_train)
        .push_back(std::move(sample));
  }

  ctx.window.push_back(std::move(target));
  while (static_cast<int64_t>(ctx.window.size()) > options_.window - 1) {
    ctx.window.pop_front();
  }
  ++ctx.next_index;
}

int64_t EventCollector::Drain(std::vector<TrainSample>* train,
                              std::vector<TrainSample>* holdout) {
  int64_t moved = 0;
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    moved += static_cast<int64_t>(slot->pending_train.size() +
                                  slot->pending_holdout.size());
    std::move(slot->pending_train.begin(), slot->pending_train.end(),
              std::back_inserter(*train));
    slot->pending_train.clear();
    std::move(slot->pending_holdout.begin(), slot->pending_holdout.end(),
              std::back_inserter(*holdout));
    slot->pending_holdout.clear();
  }
  return moved;
}

}  // namespace continual
}  // namespace kt
