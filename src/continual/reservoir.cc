#include "continual/reservoir.h"

#include <algorithm>
#include <utility>

#include "core/binio.h"

namespace kt {
namespace continual {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void MixPod(uint64_t* h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (value >> (8 * i)) & 0xffu;
    *h *= kFnvPrime;
  }
}

void MixInteraction(uint64_t* h, const data::Interaction& it) {
  MixPod(h, static_cast<uint64_t>(it.question));
  MixPod(h, static_cast<uint64_t>(it.response));
  MixPod(h, it.concepts.size());
  for (const int64_t c : it.concepts) MixPod(h, static_cast<uint64_t>(c));
}

void AppendInteraction(std::string* out, const data::Interaction& it) {
  AppendPod<int64_t>(out, it.question);
  AppendPod<int32_t>(out, static_cast<int32_t>(it.response));
  AppendPod<uint32_t>(out, static_cast<uint32_t>(it.concepts.size()));
  for (const int64_t c : it.concepts) AppendPod<int64_t>(out, c);
}

bool ReadInteraction(BinCursor* cursor, data::Interaction* it) {
  int32_t response = 0;
  uint32_t bag = 0;
  if (!cursor->Read(&it->question) || !cursor->Read(&response) ||
      !cursor->Read(&bag)) {
    return false;
  }
  it->response = response;
  it->concepts.resize(bag);
  for (uint32_t c = 0; c < bag; ++c) {
    if (!cursor->Read(&it->concepts[c])) return false;
  }
  return true;
}

bool ReadSample(BinCursor* cursor, TrainSample* sample) {
  uint32_t context = 0;
  if (!cursor->Read(&sample->student_fnv) || !cursor->Read(&sample->index) ||
      !ReadInteraction(cursor, &sample->target) || !cursor->Read(&context)) {
    return false;
  }
  sample->context.resize(context);
  for (uint32_t c = 0; c < context; ++c) {
    if (!ReadInteraction(cursor, &sample->context[c])) return false;
  }
  return true;
}

// Content hash of a sample (target + context, NOT the identity key). The
// final KeyLess tie-break: two distinct samples can share (student, index)
// when a session resets and the event index restarts, and without a
// content-aware tie-break their eviction and canonical order would depend
// on the reservoir's internal heap arrangement (i.e. on history).
uint64_t ContentFnv(const TrainSample& sample) {
  uint64_t h = kFnvOffset;
  MixInteraction(&h, sample.target);
  MixPod(&h, sample.context.size());
  for (const data::Interaction& it : sample.context) MixInteraction(&h, it);
  return h;
}

void AppendSample(std::string* out, const TrainSample& sample) {
  AppendPod<uint64_t>(out, sample.student_fnv);
  AppendPod<int64_t>(out, sample.index);
  AppendInteraction(out, sample.target);
  AppendPod<uint32_t>(out, static_cast<uint32_t>(sample.context.size()));
  for (const data::Interaction& it : sample.context) {
    AppendInteraction(out, it);
  }
}

}  // namespace

void AppendSamples(const std::vector<TrainSample>& samples,
                   std::string* out) {
  AppendPod<uint64_t>(out, samples.size());
  for (const TrainSample& sample : samples) AppendSample(out, sample);
}

bool ParseSamples(const char* data, size_t size,
                  std::vector<TrainSample>* out) {
  out->clear();
  BinCursor cursor(data, size);
  uint64_t count = 0;
  if (!cursor.Read(&count)) return false;
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TrainSample sample;
    if (!ReadSample(&cursor, &sample)) {
      out->clear();
      return false;
    }
    out->push_back(std::move(sample));
  }
  if (!cursor.done()) {
    out->clear();
    return false;
  }
  return true;
}

uint64_t HashStudent(std::string_view student) {
  uint64_t h = kFnvOffset;
  for (const char c : student) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

uint64_t SamplePriority(uint64_t seed, uint64_t student_fnv, int64_t index) {
  return Splitmix64(seed ^ Splitmix64(student_fnv ^
                                      Splitmix64(static_cast<uint64_t>(index))));
}

Reservoir::Reservoir(int64_t capacity, uint64_t seed)
    : capacity_(std::max<int64_t>(1, capacity)), seed_(seed) {
  entries_.reserve(static_cast<size_t>(capacity_) + 1);
}

bool Reservoir::KeyLess(const Entry& a, const Entry& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  if (a.sample.student_fnv != b.sample.student_fnv) {
    return a.sample.student_fnv < b.sample.student_fnv;
  }
  if (a.sample.index != b.sample.index) return a.sample.index < b.sample.index;
  return a.content_fnv < b.content_fnv;
}

void Reservoir::OfferEntry(Entry entry) {
  if (static_cast<int64_t>(entries_.size()) < capacity_) {
    entries_.push_back(std::move(entry));
    std::push_heap(entries_.begin(), entries_.end(), KeyLess);
    return;
  }
  // Full: the new entry displaces the current maximum iff it sorts below.
  if (!KeyLess(entry, entries_.front())) return;
  std::pop_heap(entries_.begin(), entries_.end(), KeyLess);
  entries_.back() = std::move(entry);
  std::push_heap(entries_.begin(), entries_.end(), KeyLess);
}

void Reservoir::Offer(TrainSample sample) {
  Entry entry;
  entry.priority = SamplePriority(seed_, sample.student_fnv, sample.index);
  entry.content_fnv = ContentFnv(sample);
  entry.sample = std::move(sample);
  OfferEntry(std::move(entry));
}

void Reservoir::MergeFrom(Reservoir* other) {
  for (Entry& entry : other->entries_) {
    // Priorities are a pure function of (seed, student, index); recompute
    // under OUR seed in case the partials were built with another one.
    entry.priority =
        SamplePriority(seed_, entry.sample.student_fnv, entry.sample.index);
    OfferEntry(std::move(entry));
  }
  other->entries_.clear();
}

std::vector<const TrainSample*> Reservoir::Ordered() const {
  std::vector<const Entry*> order;
  order.reserve(entries_.size());
  for (const Entry& entry : entries_) order.push_back(&entry);
  std::sort(order.begin(), order.end(),
            [](const Entry* a, const Entry* b) { return KeyLess(*a, *b); });
  std::vector<const TrainSample*> out;
  out.reserve(order.size());
  for (const Entry* entry : order) out.push_back(&entry->sample);
  return out;
}

uint64_t Reservoir::Digest() const {
  uint64_t h = kFnvOffset;
  for (const TrainSample* sample : Ordered()) {
    MixPod(&h, sample->student_fnv);
    MixPod(&h, static_cast<uint64_t>(sample->index));
    MixInteraction(&h, sample->target);
    MixPod(&h, sample->context.size());
    for (const data::Interaction& it : sample->context) {
      MixInteraction(&h, it);
    }
  }
  return h;
}

void Reservoir::Serialize(std::string* out) const {
  AppendPod<int64_t>(out, capacity_);
  AppendPod<uint64_t>(out, seed_);
  const auto ordered = Ordered();
  AppendPod<uint64_t>(out, ordered.size());
  for (const TrainSample* sample : ordered) AppendSample(out, *sample);
}

bool Reservoir::Deserialize(const char* data, size_t size) {
  entries_.clear();
  BinCursor cursor(data, size);
  int64_t capacity = 0;
  uint64_t seed = 0;
  uint64_t count = 0;
  if (!cursor.Read(&capacity) || capacity < 1 || !cursor.Read(&seed) ||
      !cursor.Read(&count) || count > static_cast<uint64_t>(capacity)) {
    return false;
  }
  capacity_ = capacity;
  seed_ = seed;
  for (uint64_t i = 0; i < count; ++i) {
    TrainSample sample;
    if (!ReadSample(&cursor, &sample)) {
      entries_.clear();
      return false;
    }
    Offer(std::move(sample));
  }
  if (!cursor.done()) {
    entries_.clear();
    return false;
  }
  return true;
}

}  // namespace continual
}  // namespace kt
