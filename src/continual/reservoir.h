// Deterministic replay reservoir for the continual trainer.
//
// A classic reservoir sample depends on arrival order, which would make the
// trainer's replay set (and therefore the fine-tuned weights) depend on
// shard count and queue interleavings. This one is a *bottom-k selection*
// instead: every committed (student, event-index) pair gets a fixed pseudo
// random priority
//
//   priority = hash64(seed, student_fnv, index)
//
// and the reservoir keeps the `capacity` events with the smallest
// (priority, student_fnv, index, content-hash) keys — the content hash
// makes the order total even when a session reset restarts a student's
// index and re-issues an identity key. Selection over a multiset of events
// is a pure function of the set — independent of arrival order, partition,
// or merge schedule — so per-shard partial reservoirs merged via MergeFrom
// are bit-identical to one global reservoir fed the same events, and
// `--shards 1` and `--shards 4` agree digest-for-digest
// (scripts/check_continual.sh gates on exactly that). Statistically the
// bottom-k of i.i.d. uniform priorities IS a uniform sample without
// replacement, so the replay set keeps the usual reservoir guarantees.
#ifndef KT_CONTINUAL_RESERVOIR_H_
#define KT_CONTINUAL_RESERVOIR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"

namespace kt {
namespace continual {

// One training sample harvested from serve traffic: a committed interaction
// (`target`) plus its bounded left context — enough to build an
// equal-length prefix batch row (rckt/samples.h) with the target last.
struct TrainSample {
  uint64_t student_fnv = 0;  // FNV-1a of the student id
  int64_t index = 0;         // event index within the student's stream
  data::Interaction target;
  std::vector<data::Interaction> context;

  int64_t length() const {
    return static_cast<int64_t>(context.size()) + 1;
  }
};

// FNV-1a 64 of the student id — the reservoir/routing-independent student
// key (same function the serve shard router uses).
uint64_t HashStudent(std::string_view student);

// The fixed per-event priority (splitmix64-style avalanche over the seed,
// student and index). Uniform enough that bottom-k is an unbiased sample.
uint64_t SamplePriority(uint64_t seed, uint64_t student_fnv, int64_t index);

// Flat (de)serialization of a sample list — the checkpoint encoding of the
// trainer's tail and holdout rings (the reservoir embeds the same per-entry
// layout). Parse replaces *out and fails (leaving it empty) on bad input.
void AppendSamples(const std::vector<TrainSample>& samples, std::string* out);
bool ParseSamples(const char* data, size_t size,
                  std::vector<TrainSample>* out);

class Reservoir {
 public:
  Reservoir(int64_t capacity, uint64_t seed);

  // Considers one sample for membership (computes its priority; keeps it
  // iff it is within the current bottom-k).
  void Offer(TrainSample sample);

  // Offers every entry of `other` into this reservoir (the shard-merge
  // path), leaving `other` empty.
  void MergeFrom(Reservoir* other);

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  int64_t capacity() const { return capacity_; }
  uint64_t seed() const { return seed_; }

  // Members in canonical order — ascending (priority, student_fnv, index).
  // Pointers are invalidated by the next non-const call.
  std::vector<const TrainSample*> Ordered() const;

  // FNV-1a 64 over the canonical-ordered members (keys and full sample
  // contents). Equal digests <=> equal replay sets.
  uint64_t Digest() const;

  // Checkpoint (de)serialization. Deserialize replaces the contents and
  // fails (leaving the reservoir empty) on any malformed input.
  void Serialize(std::string* out) const;
  bool Deserialize(const char* data, size_t size);

 private:
  struct Entry {
    uint64_t priority = 0;
    // FNV over target + context: the final tie-break, because a session
    // reset restarts the event index and (student, index) alone can then
    // name two DIFFERENT samples.
    uint64_t content_fnv = 0;
    TrainSample sample;
  };

  // Strict total order over events: priority first, then (student, index),
  // then the content hash — deterministic for any distinct pair.
  static bool KeyLess(const Entry& a, const Entry& b);

  void OfferEntry(Entry entry);

  int64_t capacity_;
  uint64_t seed_;
  // Max-heap on KeyLess (largest key at front) so eviction is O(log k).
  std::vector<Entry> entries_;
};

}  // namespace continual
}  // namespace kt

#endif  // KT_CONTINUAL_RESERVOIR_H_
