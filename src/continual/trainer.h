// kt::continual — streaming trainer that closes the serve -> train loop.
//
// Wiring (ktcli `serve --continual`):
//
//   engine update sink -> EventCollector (per-shard slots)
//        |                      |
//        |                Drain (trainer thread / stats decorator)
//        |                      v
//        |          Reservoir (bottom-k replay) + recent tail + holdout
//        |                      v
//        |      mini-epoch: candidate RCKT TrainStep over reservoir+tail
//        |                      v
//        |      gate: candidate vs incumbent AUC on held-out traffic
//        |                      v   (promote)
//        +-- ShardSet::SwapWeights <- publish <dir>/current.ktw (KTW2+meta)
//
// Determinism contracts (tests/continual_test.cc):
//   * the replay set is shard-count and arrival-order invariant (see
//     reservoir.h), digest-gated at 1 vs 4 shards;
//   * a mini-epoch over a fixed replay set is deterministic: canonical
//     sample order, GroupIntoBatches without shuffling, dropout disabled
//     in the candidate config (so no RNG stream to checkpoint);
//   * SaveCheckpoint/LoadCheckpoint round-trips the reservoir, the rings,
//     the candidate weights and the Adam moments bit-identically, so a
//     warm-restarted trainer continues exactly where the killed one was.
//
// Crash safety: the checkpoint commits through kt::ckpt (tmp+fsync+rename)
// and the published weights through nn::SaveModuleWithMeta (same discipline
// + CRC), so a kill -9 at any byte leaves the previous artifact intact and
// loadable — never a torn file.
#ifndef KT_CONTINUAL_TRAINER_H_
#define KT_CONTINUAL_TRAINER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "continual/collector.h"
#include "continual/reservoir.h"
#include "core/status.h"
#include "rckt/rckt_model.h"
#include "serve/engine.h"
#include "serve/shard.h"

namespace kt {
namespace continual {

struct TrainerOptions {
  // Publish/checkpoint directory: <dir>/current.ktw (promoted weights),
  // <dir>/continual.ktc (trainer state). Created if missing.
  std::string dir;
  int shards = 1;
  // A mini-epoch triggers once this many new committed events accumulated.
  int64_t train_every = 256;
  int64_t reservoir_capacity = 2048;
  // Recent-window tail: the last N drained train samples ride along with
  // every mini-epoch so fresh drift is always represented even when the
  // uniform reservoir is dominated by old traffic.
  int64_t tail_capacity = 512;
  int64_t holdout_capacity = 1024;
  // Sample shape (see CollectorOptions).
  int64_t window = 32;
  int64_t min_history = 4;
  int64_t holdout_every = 8;
  int64_t batch_size = 32;
  // Promotion gate: candidate AUC >= incumbent AUC - gate_eps over at
  // least gate_min_samples held-out samples.
  double gate_eps = 0.02;
  int64_t gate_min_samples = 64;
  // Drift detector: incumbent holdout AUC this far below its running
  // baseline (EMA) counts as a drift event.
  double drift_threshold = 0.05;
  float lr = 1e-4f;
  uint64_t seed = 1;
  // Trainer-thread poll cadence.
  int64_t poll_ms = 20;
  // Version of the incumbent at startup (from the resumed current.ktw
  // meta, or 0 for the offline model); promotions count up from here.
  int64_t initial_weight_version = 0;
};

class ContinualTrainer {
 public:
  // `serving` is the live model the shards read; the trainer clones it
  // into a private candidate and never writes it outside SwapWeights'
  // quiesce barrier. Must outlive the trainer.
  ContinualTrainer(rckt::RCKT& serving, const TrainerOptions& options);
  ~ContinualTrainer();

  // The engine update tap (wire as EngineOptions::update_sink). Called on
  // shard worker threads; cheap (one per-slot lock, no training work).
  void Record(int shard, const serve::UpdateEvent& event);

  // Background loop against a live shard set. Stop() joins the thread and
  // takes a final checkpoint; both idempotent.
  void Start(serve::ShardSet* shards);
  void Stop();

  // Moves pending collector samples into the reservoir/rings. Safe from
  // any thread; the stats decorator calls it so `stats` always reflects
  // every event recorded before the stats op was submitted.
  void DrainNow();

  // One synchronous mini-epoch over the current replay set (the loop's
  // body; public for tests and single-threaded drivers). Returns false
  // when there was nothing to train on. When `shards` was given at Start
  // (or via this call's argument) a promotion swaps the serving weights;
  // otherwise it writes current.ktw and updates the incumbent in place.
  bool RunMiniEpoch();

  // Warm restart: restores reservoir, rings, counters, candidate weights
  // and optimizer moments from <dir>/continual.ktc. Call before Start.
  // Returns false (leaving the fresh state) when no checkpoint exists;
  // dies on a checkpoint for a different architecture.
  bool LoadCheckpoint();
  Status SaveCheckpoint();

  struct Stats {
    int64_t events = 0;       // committed events observed (incl. resumed)
    int64_t mini_epochs = 0;
    int64_t promotions = 0;
    int64_t reservoir_size = 0;
    uint64_t reservoir_fnv64 = 0;
    int64_t weight_version = 0;
    int64_t drift_events = 0;
    double last_candidate_auc = 0.0;
    double last_incumbent_auc = 0.0;
  };
  // Drains first, so the digest covers all recorded events.
  Stats GetStats();

  // ShardSet stats decorator (fills the response's continual section).
  void DecorateStats(serve::ServeResponse* response);

  int64_t weight_version() const {
    return weight_version_.load(std::memory_order_relaxed);
  }

  // Test access.
  rckt::RCKT& candidate() { return *candidate_; }

 private:
  void Loop();
  // Snapshot of the replay set in canonical order (reservoir then tail).
  std::vector<TrainSample> SnapshotTrainSet();

  TrainerOptions options_;
  rckt::RCKT& serving_;
  std::unique_ptr<rckt::RCKT> candidate_;
  EventCollector collector_;

  // Ingest state: reservoir + rings. Held only for drain/snapshot/digest —
  // never across training, gating, or SwapWeights.
  std::mutex data_mu_;
  Reservoir reservoir_;
  std::vector<TrainSample> tail_;
  std::vector<TrainSample> holdout_;

  // Cached stats (stats_mu_): updated at the end of each mini-epoch.
  std::mutex stats_mu_;
  int64_t events_base_ = 0;  // events carried over from a resumed run
  int64_t mini_epochs_ = 0;
  int64_t promotions_ = 0;
  int64_t drift_events_ = 0;
  double last_candidate_auc_ = 0.0;
  double last_incumbent_auc_ = 0.0;
  double baseline_auc_ = 0.0;
  bool has_baseline_ = false;

  std::atomic<int64_t> weight_version_{0};
  int64_t last_epoch_events_ = 0;  // trainer thread only

  serve::ShardSet* shards_ = nullptr;
  std::thread thread_;
  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stop_ = false;
};

}  // namespace continual
}  // namespace kt

#endif  // KT_CONTINUAL_TRAINER_H_
