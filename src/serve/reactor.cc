#include "serve/reactor.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/logging.h"
#include "obs/obs.h"
#include "serve/server.h"

namespace kt {
namespace serve {
namespace {

constexpr uint64_t kListenerTag = ~0ull;
constexpr uint64_t kEventFdTag = ~0ull - 1;
// Outbound bytes buffered past this pause reads until the peer drains —
// a client that writes requests but never reads replies stops costing
// memory instead of growing the buffer without bound.
constexpr size_t kOutHighWater = 4u << 20;

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

struct Completion {
  uint32_t conn = 0;
  uint32_t seq = 0;
  std::string line;
};

// Shared between the reactor and the shard-side sink closure, which can
// outlive the event loop (a completion for a dropped connection may land
// after RunReactor returned): `open` gates eventfd writes.
struct CompletionQueue {
  std::mutex mu;
  std::vector<Completion> items;
  int event_fd = -1;
  bool open = true;
};

// One reply slot per accepted request line, flushed strictly in request
// order regardless of shard completion order.
struct Slot {
  uint32_t seq = 0;
  bool done = false;
  bool close_after = false;  // flush this reply, then close the connection
  std::string line;
};

struct Conn {
  explicit Conn(size_t max_line_bytes) : framer(max_line_bytes) {}

  uint32_t id = 0;
  int fd = -1;
  LineFramer framer;
  std::string out;
  size_t out_off = 0;
  std::deque<Slot> slots;
  uint32_t next_seq = 0;
  int64_t in_flight = 0;      // submitted to shards, completion not seen yet
  uint32_t events = EPOLLIN;  // currently registered epoll interest
  bool no_more_reads = false;  // peer EOF / fatal line / server shutdown
  bool peer_eof = false;
  bool closing = false;  // a close_after reply was flushed into `out`
};

class Reactor {
 public:
  Reactor(ShardSet& shards, const ReactorOptions& options)
      : shards_(shards),
        options_(options),
        cq_(std::make_shared<CompletionQueue>()) {}

  int Run();

 private:
  static uint64_t MakeTag(uint32_t conn, uint32_t seq) {
    return (static_cast<uint64_t>(seq) << 32) | conn;
  }

  int SetupListener();
  void Accept();
  bool OnReadable(Conn& conn);
  // Advances a connection through decode -> submit -> flush; returns
  // false (and must not be followed by any use of `conn`) if it closed.
  bool Pump(Conn& conn);
  void ProcessLines(Conn& conn);
  void FlushSlots(Conn& conn);
  bool FlushWrite(Conn& conn);
  void UpdateInterest(Conn& conn);
  void HandleCompletions();
  void BeginShutdown();
  // Shutdown drain: closes idle connections, true when none remain.
  bool Drained();
  void CloseConn(Conn& conn);

  ShardSet& shards_;
  ReactorOptions options_;
  std::shared_ptr<CompletionQueue> cq_;
  int epoll_fd_ = -1;
  int listener_ = -1;
  uint32_t next_conn_id_ = 1;
  std::unordered_map<uint32_t, std::unique_ptr<Conn>> conns_;
  bool shutting_down_ = false;
  std::chrono::steady_clock::time_point drain_deadline_;
};

int Reactor::SetupListener() {
  listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener_ < 0) {
    KT_LOG(ERROR) << "serve: socket() failed";
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    KT_LOG(ERROR) << "serve: cannot bind 127.0.0.1:" << options_.port;
    return 1;
  }
  if (::listen(listener_, 128) < 0 || !SetNonBlocking(listener_)) {
    KT_LOG(ERROR) << "serve: listen() failed";
    return 1;
  }
  return 0;
}

void Reactor::Accept() {
  while (true) {
    const int fd = AcceptRetryEintr(listener_);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED) continue;
      KT_LOG(WARNING) << "serve: accept failed: " << std::strerror(errno);
      return;
    }
    if (shutting_down_ || !SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const uint32_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(options_.max_line_bytes);
    conn->id = id;
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
  }
}

bool Reactor::OnReadable(Conn& conn) {
  char buf[16384];
  while (!conn.no_more_reads) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.framer.Append(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;  // likely drained
      continue;
    }
    if (n == 0) {
      // Graceful half-close: stop reading, but pending replies still get
      // computed and written before the socket closes.
      conn.peer_eof = true;
      conn.no_more_reads = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn);  // ECONNRESET and friends
    return false;
  }
  return Pump(conn);
}

void Reactor::ProcessLines(Conn& conn) {
  std::string line;
  while (!conn.closing) {
    if (conn.in_flight >= options_.max_inflight_per_conn) break;
    if (conn.out.size() - conn.out_off > kOutHighWater) break;
    const LineFramer::Result r = conn.framer.Next(&line);
    if (r == LineFramer::Result::kNeedMore) break;
    if (r == LineFramer::Result::kOverflow) {
      // A client streaming a line past the cap is broken or hostile:
      // reject with ok:false, then close once the reply is flushed.
      conn.slots.push_back(Slot{conn.next_seq++, true, true,
                                OversizeError(options_.max_line_bytes)});
      conn.no_more_reads = true;
      break;
    }
    if (BlankLine(line)) continue;
    DecodedLine decoded = DecodeLine(line);
    if (decoded.shutdown) {
      conn.slots.push_back(Slot{conn.next_seq++, true, true,
                                "{\"ok\":true,\"op\":\"shutdown\"}"});
      conn.no_more_reads = true;
      BeginShutdown();
      break;
    }
    if (!decoded.ok) {
      conn.slots.push_back(
          Slot{conn.next_seq++, true, false, SerializeError(decoded.error)});
      continue;
    }
    const uint32_t seq = conn.next_seq++;
    conn.slots.push_back(Slot{seq, false, false, {}});
    ++conn.in_flight;
    shards_.SubmitAsync(std::move(decoded.request), MakeTag(conn.id, seq));
  }
}

void Reactor::FlushSlots(Conn& conn) {
  while (!conn.closing && !conn.slots.empty() && conn.slots.front().done) {
    Slot& slot = conn.slots.front();
    conn.out += slot.line;
    conn.out += '\n';
    if (slot.close_after) conn.closing = true;
    conn.slots.pop_front();
  }
}

bool Reactor::FlushWrite(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = SendNoSignal(conn.fd, conn.out.data() + conn.out_off,
                                   conn.out.size() - conn.out_off);
    if (n >= 0) {
      conn.out_off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;  // peer reset / broken pipe
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  } else if (conn.out_off > (1u << 16)) {
    conn.out.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  return true;
}

void Reactor::UpdateInterest(Conn& conn) {
  uint32_t want = 0;
  const size_t pending = conn.out.size() - conn.out_off;
  if (!conn.no_more_reads &&
      conn.in_flight < options_.max_inflight_per_conn &&
      pending <= kOutHighWater) {
    want |= EPOLLIN;
  }
  if (pending > 0) want |= EPOLLOUT;
  if (want == conn.events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.events = want;
}

bool Reactor::Pump(Conn& conn) {
  ProcessLines(conn);
  FlushSlots(conn);
  if (!FlushWrite(conn)) {
    CloseConn(conn);
    return false;
  }
  if (conn.out_off == conn.out.size()) {
    if (conn.closing || (conn.peer_eof && conn.slots.empty())) {
      CloseConn(conn);
      return false;
    }
  }
  UpdateInterest(conn);
  return true;
}

void Reactor::HandleCompletions() {
  uint64_t drained = 0;
  while (::read(cq_->event_fd, &drained, sizeof(drained)) < 0 &&
         errno == EINTR) {
  }
  std::vector<Completion> items;
  {
    std::lock_guard<std::mutex> lock(cq_->mu);
    items.swap(cq_->items);
  }
  for (Completion& done : items) {
    auto it = conns_.find(done.conn);
    if (it == conns_.end()) continue;  // connection already dropped
    Conn& conn = *it->second;
    --conn.in_flight;
    for (Slot& slot : conn.slots) {
      if (slot.seq == done.seq) {
        slot.done = true;
        slot.line = std::move(done.line);
        break;
      }
    }
    Pump(conn);
  }
}

void Reactor::BeginShutdown() {
  if (shutting_down_) return;
  shutting_down_ = true;
  drain_deadline_ = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  if (listener_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_, nullptr);
    ::close(listener_);
    listener_ = -1;
  }
  // Stop reading everywhere; in-flight requests still complete and flush.
  for (auto& [id, conn] : conns_) conn->no_more_reads = true;
}

void Reactor::CloseConn(Conn& conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conns_.erase(conn.id);  // destroys `conn`
  if (obs::Enabled()) {
    static obs::Counter* const reaped =
        obs::Counter::Get("serve.connections_reaped");
    reaped->Add(1);
  }
}

bool Reactor::Drained() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& conn = *it->second;
    if (conn.slots.empty() && conn.out_off == conn.out.size()) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
      ::close(conn.fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
  return conns_.empty();
}

int Reactor::Run() {
  if (SetupListener() != 0) {
    if (listener_ >= 0) ::close(listener_);
    return 1;
  }
  epoll_fd_ = ::epoll_create1(0);
  const int event_fd = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || event_fd < 0) {
    KT_LOG(ERROR) << "serve: epoll/eventfd setup failed";
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (event_fd >= 0) ::close(event_fd);
    ::close(listener_);
    return 1;
  }
  cq_->event_fd = event_fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_, &ev);
  ev.data.u64 = kEventFdTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd, &ev);

  // Shard workers deliver serialized replies here (from their threads);
  // the eventfd write wakes the loop. Writes are gated on `open` so a
  // late completion after teardown is dropped, not written to a dead fd.
  std::shared_ptr<CompletionQueue> cq = cq_;
  shards_.set_sink([cq](uint64_t tag, std::string line) {
    std::lock_guard<std::mutex> lock(cq->mu);
    if (!cq->open) return;
    cq->items.push_back(Completion{static_cast<uint32_t>(tag),
                                   static_cast<uint32_t>(tag >> 32),
                                   std::move(line)});
    const uint64_t one = 1;
    if (::write(cq->event_fd, &one, sizeof(one)) < 0) {
      // Queue stays consistent; the next successful write re-wakes us.
    }
  });

  KT_LOG(INFO) << "serving on 127.0.0.1:" << options_.port << " ("
               << shards_.shards() << " shard"
               << (shards_.shards() == 1 ? "" : "s") << ")";

  epoll_event events[64];
  while (true) {
    const int timeout_ms = shutting_down_ ? 100 : -1;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      KT_LOG(ERROR) << "serve: epoll_wait failed: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        Accept();
        continue;
      }
      if (tag == kEventFdTag) {
        HandleCompletions();
        continue;
      }
      // Look up by id every time: an earlier event in this batch may have
      // closed the connection.
      auto it = conns_.find(static_cast<uint32_t>(tag));
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(conn);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        if (!OnReadable(conn)) continue;
      }
      if (events[i].events & EPOLLOUT) {
        if (!Pump(conn)) continue;
      }
    }
    if (shutting_down_) {
      if (Drained()) break;
      if (std::chrono::steady_clock::now() > drain_deadline_) {
        KT_LOG(WARNING) << "serve: shutdown drain timed out; dropping "
                        << conns_.size() << " connections";
        break;
      }
    }
  }

  for (auto& [id, conn] : conns_) ::close(conn->fd);
  conns_.clear();
  {
    std::lock_guard<std::mutex> lock(cq_->mu);
    cq_->open = false;
    ::close(cq_->event_fd);
    cq_->event_fd = -1;
  }
  if (listener_ >= 0) ::close(listener_);
  ::close(epoll_fd_);
  return 0;
}

}  // namespace

int RunReactor(ShardSet& shards, const ReactorOptions& options) {
  Reactor reactor(shards, options);
  return reactor.Run();
}

}  // namespace serve
}  // namespace kt
