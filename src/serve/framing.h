// Line framing and syscall hygiene shared by every serve transport.
//
// The NDJSON protocol frames requests with '\n'. Three transports consume
// it — the blocking stdio loop, unit tests, and the epoll reactor — and
// all of them need the same two defenses:
//
//   * a hard per-line byte cap, so a client that streams bytes without a
//     newline cannot grow a server-side buffer without bound (the reply is
//     an `ok:false` error; TCP then closes, stdio resyncs to the next
//     newline and keeps serving);
//   * EINTR-correct syscalls and SIGPIPE-proof writes (`::send` with
//     MSG_NOSIGNAL, like loadgen's LineClient), so a profiler signal or a
//     client that disconnects mid-reply cannot look like a disconnect or
//     kill the process.
//
// LineFramer is a cursor over an owned buffer: Append() bytes in, Next()
// complete lines out. Erasing consumed bytes from the front of a string on
// every line would be quadratic over a long-lived connection, so consumed
// bytes are tracked with an offset and compacted only when the dead prefix
// dominates the buffer.
#ifndef KT_SERVE_FRAMING_H_
#define KT_SERVE_FRAMING_H_

#include <sys/types.h>

#include <cstddef>
#include <string>

namespace kt {
namespace serve {

// Default per-line cap. Requests are small JSON objects (longest in
// practice: explain responses, which are outbound); 1 MiB leaves orders of
// magnitude of headroom while bounding per-connection memory.
inline constexpr size_t kDefaultMaxLineBytes = 1 << 20;

class LineFramer {
 public:
  enum class Result {
    kLine,      // *line holds the next complete line (newline stripped)
    kNeedMore,  // no complete line buffered yet — Append() more bytes
    kOverflow,  // current line exceeds the cap; sticky until Resync()
  };

  explicit LineFramer(size_t max_line_bytes = kDefaultMaxLineBytes);

  void Append(const char* data, size_t n);
  Result Next(std::string* line);

  // Recover from kOverflow: drop the oversized line (including bytes of it
  // not yet received — discarding stays active across Append calls until a
  // newline goes by). The TCP transports close instead; stdio resyncs.
  void Resync();

  // Bytes currently buffered (diagnostics/tests).
  size_t buffered() const { return buffer_.size() - start_; }
  size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  void CompactIfWorthIt();

  size_t max_line_bytes_;
  std::string buffer_;
  size_t start_ = 0;         // consumed prefix of buffer_
  bool discarding_ = false;  // inside an oversized line, post-Resync
};

// read(2) retried on EINTR. Returns the usual read semantics otherwise
// (0 = EOF, -1 = error with errno set, e.g. EAGAIN on nonblocking fds).
ssize_t ReadRetryEintr(int fd, void* buf, size_t n);

// accept(2) retried on EINTR; other failures return -1.
int AcceptRetryEintr(int listener);

// Blocking "write it all": send(2) with MSG_NOSIGNAL so a peer that
// already closed produces EPIPE (return false) instead of a process-fatal
// SIGPIPE, retried on EINTR. Used by the blocking transports; the reactor
// uses SendNoSignal below and handles partial writes itself.
bool SendAllNoSignal(int fd, const std::string& data);

// One send(2) with MSG_NOSIGNAL + EINTR retry, for nonblocking fds:
// returns bytes written, or -1 with errno (EAGAIN/EPIPE/...).
ssize_t SendNoSignal(int fd, const char* data, size_t n);

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_FRAMING_H_
