#include "serve/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace kt {
namespace serve {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& member : object) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

bool JsonValue::ToInt(int64_t* out) const {
  if (!IsNumber()) return false;
  // Both bounds are exactly representable doubles: -2^63 is INT64_MIN and
  // 2^63 is the first value past INT64_MAX. Outside [-2^63, 2^63) — which
  // also catches NaN — the cast below would be undefined behaviour.
  if (!(number >= -9223372036854775808.0 && number < 9223372036854775808.0)) {
    return false;
  }
  *out = static_cast<int64_t>(number);
  return true;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  int64_t value = 0;
  return (v != nullptr && v->ToInt(&value)) ? value : fallback;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->IsNumber()) ? v->number : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->IsString()) ? v->string_value : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->IsBool()) ? v->bool_value : fallback;
}

namespace {

// Recursive-descent parser. Depth is bounded so a hostile request of
// nothing but '[' cannot blow the stack.
class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, 0)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing content");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 32;

  bool Fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Literal("true", 4);
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Literal("false", 5);
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null", 4);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("truncated escape");
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by this protocol; lone surrogates encode as-is).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return Fail("expected value");
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  *out = JsonValue();
  return Parser(text, error).Parse(out);
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_.push_back(',');
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  MaybeComma();
  AppendJsonString(&out_, name);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  MaybeComma();
  AppendJsonString(&out_, value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Float(float value) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(value));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  MaybeComma();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

}  // namespace serve
}  // namespace kt
