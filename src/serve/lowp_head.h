// Low-precision serve-path MLP head (serve precision policy, DESIGN.md §14).
//
// Only the predict head runs below fp32: it is a pure function of the
// cached fp32 forward stream and the target embedding, so quantizing it
// cannot perturb session state, updates, replay, or explanation — those
// regions keep the bitwise fp32 contract. The head replays the same math
// as the ag path (x W1 + b1 -> relu -> W2 + b2 -> sigmoid, identical
// activation formulas) with the two GEMMs swapped for a kt::quant storage
// family, and is gated by accuracy parity (scripts/check_precision.sh)
// rather than bitwise parity.
//
// Weights are packed ONCE at construction (model load). int8 additionally
// needs static activation scales: CalibrateInt8() runs the fp32 head on a
// sample batch of real head inputs and records per-tensor symmetric scales
// for x and for the post-relu hidden activations; until then the engine
// keeps serving fp32. Calibration from the same data is deterministic, so
// every shard arrives at identical scales.
#ifndef KT_SERVE_LOWP_HEAD_H_
#define KT_SERVE_LOWP_HEAD_H_

#include <string>
#include <vector>

#include "nn/linear.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace kt {
namespace serve {

// Serve-path numeric policy (--precision). fp32 is the default bitwise
// contract; bf16/int8 relax only the predict head.
enum class Precision { kFp32, kBf16, kInt8 };

// Parses "fp32" | "bf16" | "int8"; returns false on anything else.
bool PrecisionByName(const std::string& name, Precision* out);
const char* PrecisionName(Precision precision);

class LowpHead {
 public:
  // Packs both head layers at `precision` (kBf16 or kInt8; a kFp32 head is
  // never constructed — the engine keeps the ag path). `hidden` is
  // [2d, d], `out` is [d, 1], both with bias.
  LowpHead(Precision precision, const nn::Linear& hidden,
           const nn::Linear& out);

  // probs[i] = sigmoid(relu(x_i W1 + b1) W2 + b2) for each row of x
  // [k, 2d]. For int8, requires calibrated() — the engine guards this.
  void Forward(const Tensor& x, float* probs) const;

  // Static int8 activation calibration from sample head inputs [k, 2d]
  // (real rows harvested from training data; see
  // InferenceEngine::CalibrateLowp). Runs the head in fp32 to observe the
  // hidden activations. No-op for bf16 (calibrated() is always true).
  void CalibrateInt8(const Tensor& sample_x);

  bool calibrated() const { return calibrated_; }
  Precision precision() const { return precision_; }

  // Exposed for tests: the calibrated per-tensor activation scales.
  float x_scale() const { return x_params_.scale; }
  float hidden_scale() const { return hidden_params_.scale; }

 private:
  // Shared fp32 tail: bias + relu on the hidden block, second-layer bias +
  // sigmoid on the logits — the exact ApplyAct formulas the ag path uses.
  void HiddenEpilogue(float* hidden, int64_t k) const;
  void OutEpilogue(const float* logits, int64_t k, float* probs) const;

  Precision precision_;
  int64_t in_ = 0;   // 2d
  int64_t mid_ = 0;  // d
  std::vector<float> bias1_;
  std::vector<float> bias2_;  // [1]

  quant::Bf16Panels w1_bf16_;
  quant::Bf16Panels w2_bf16_;

  quant::Int8Panels w1_int8_;
  quant::Int8Panels w2_int8_;
  std::vector<float> w1_fp32_;  // int8 only; freed after calibration
  quant::QuantParams x_params_;
  quant::QuantParams hidden_params_;
  bool calibrated_ = false;
};

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_LOWP_HEAD_H_
