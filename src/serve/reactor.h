// Nonblocking epoll TCP transport for the sharded serving engine.
//
// One reactor thread owns every socket: a level-triggered epoll loop over
// the listener, an eventfd (shard-completion wakeups), and all client
// connections, each carrying its own LineFramer, outbound buffer, and a
// FIFO of pending reply slots. Decoded requests are handed to the
// ShardSet (serve/shard.h) without blocking; shard workers serialize the
// reply and post it back through the completion queue, and the reactor
// flushes each connection's replies strictly in request order no matter
// which shards finish first.
//
// Flow control instead of threads: the old transport spent one blocking
// thread per connection and leaked finished handles until the next
// accept. Here a connection that has `max_inflight_per_conn` requests in
// the shards (or an unread outbound buffer past the high-water mark)
// simply stops being read until replies drain — backpressure with zero
// extra threads, no matter how many clients connect.
//
// Lifecycle: peer EOF is a graceful half-close (pending replies are still
// computed, written, then the socket closes); an oversized request line
// is answered with ok:false and closed after the reply flushes; a
// `shutdown` op answers, stops the listener, drains every connection,
// then returns.
#ifndef KT_SERVE_REACTOR_H_
#define KT_SERVE_REACTOR_H_

#include <cstddef>
#include <cstdint>

#include "serve/framing.h"
#include "serve/shard.h"

namespace kt {
namespace serve {

struct ReactorOptions {
  int port = 0;
  size_t max_line_bytes = kDefaultMaxLineBytes;
  // Per-connection cap on requests submitted but not yet answered; when
  // reached the connection is not read until replies drain.
  int64_t max_inflight_per_conn = 256;
};

// Serves until a shutdown op (drains and returns 0) or a fatal listener
// error (returns 1). Installs the ShardSet's sink; the caller stops the
// shards after this returns.
int RunReactor(ShardSet& shards, const ReactorOptions& options);

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_REACTOR_H_
