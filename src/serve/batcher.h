// Dynamic micro-batcher: coalesces concurrent single-student requests into
// engine batches.
//
// Producer threads (one per client connection) call Submit and block until
// their response is ready. A single dispatcher thread drains the queue:
// when a request arrives it waits up to `max_wait_us` for more to pile up
// (or until `max_batch` are pending), then runs the whole slice through
// InferenceEngine::ExecuteBatch. Because exactly one thread touches the
// engine, the engine needs no locking, and the coalesced execution is
// bit-identical to sequential execution in arrival order (the engine's
// stacking contract).
//
// Backpressure: when `max_queue` requests are already pending, Submit
// blocks the producer until the dispatcher drains below the bound — load
// beyond capacity slows clients instead of growing memory without limit.
#ifndef KT_SERVE_BATCHER_H_
#define KT_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "serve/engine.h"

namespace kt {
namespace serve {

struct BatcherOptions {
  int64_t max_batch = 16;
  int64_t max_wait_us = 1000;
  int64_t max_queue = 256;
};

class MicroBatcher {
 public:
  MicroBatcher(InferenceEngine& engine, BatcherOptions options);
  ~MicroBatcher();

  // Blocks until the request has been executed; thread-safe. Returns an
  // error response if called after Stop.
  ServeResponse Submit(const ServeRequest& request);

  // Drains pending requests and joins the dispatcher (idempotent).
  void Stop();

 private:
  struct Pending {
    const ServeRequest* request;
    ServeResponse response;
    bool done = false;
  };

  void DispatchLoop();

  InferenceEngine& engine_;
  BatcherOptions options_;
  std::mutex mu_;
  std::condition_variable queue_cv_;  // dispatcher wake-up
  std::condition_variable space_cv_;  // producer backpressure release
  std::condition_variable done_cv_;   // per-batch completion broadcast
  std::deque<Pending*> queue_;
  bool stopping_ = false;
  std::thread dispatcher_;
};

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_BATCHER_H_
