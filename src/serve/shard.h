// Sharded serving engine: N single-threaded InferenceEngines behind
// student-hash routing.
//
// The engine is not thread-safe, so the original server put ONE engine
// behind ONE dispatcher thread (serve/batcher.h) and scaled only the
// model-internal parallelism. A ShardSet instead runs N engines, each
// owned by its own worker thread with its own SessionStore slice
// (budget/N) and its own coalescing loop, all sharing the read-only model
// weights. Requests route by FNV-1a(student) % N, so a student's whole
// session — neural state, history, cold-tier snapshot — lives on exactly
// one shard and per-student operation order is preserved; `stats`
// broadcasts to every shard and sums.
//
// Bit-identity across shard counts: predictions depend only on the
// student's own chain (every stacked GEMM row is an independent
// accumulator), and eviction differences between shard layouts only
// change WHEN a state is rebuilt, never the rebuilt bits. So `--shards 8`
// serves bitwise the same predictions as `--shards 1` on the same
// traffic; scripts/check_scenarios.sh gates on exactly that.
//
// Producers are either the epoll reactor (SubmitAsync: non-blocking
// hand-off, reply delivered to the sink from the shard thread, already
// serialized) or the stdio front end and tests (SubmitSync: blocks for
// the ServeResponse).
#ifndef KT_SERVE_SHARD_H_
#define KT_SERVE_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "rckt/rckt_model.h"
#include "serve/batcher.h"
#include "serve/engine.h"

namespace kt {
namespace serve {

struct ShardSetOptions {
  int shards = 1;
  // Starting weight version reported by `stats` (bumped by SwapWeights).
  // 0 means "the offline-trained model"; a server resuming a published
  // continual checkpoint seeds this from the KTW2 meta chunk.
  int64_t initial_weight_version = 0;
  // Per-shard coalescing knobs (max_batch slice size, max_wait_us poll for
  // stragglers). max_queue is enforced upstream by the reactor's
  // per-connection in-flight cap, not here.
  BatcherOptions batcher;
  // engine.session_budget_bytes is the TOTAL across shards; each shard
  // gets an equal slice. cold_dir (if set) is shared: snapshots are keyed
  // by student, and a student only ever belongs to one shard.
  EngineOptions engine;
};

class ShardSet {
 public:
  // Replies for SubmitAsync: called on a shard worker thread with the
  // caller's tag and the serialized JSON response line (no newline).
  using Sink = std::function<void(uint64_t tag, std::string line)>;

  // Spins up the shard workers. `concept_data`, when given, seeds each
  // shard's question->concepts fallback map.
  ShardSet(rckt::RCKT& model, const ShardSetOptions& options,
           const data::Dataset* concept_data);
  ~ShardSet();

  // The routing function, exposed for tests and capacity planning:
  // FNV-1a 64 of the student id, mod `shards`.
  static uint32_t ShardFor(std::string_view student, uint32_t shards);
  uint32_t shard_for(std::string_view student) const;

  // Must be set before the first SubmitAsync and not changed after.
  void set_sink(Sink sink);

  // Non-blocking: enqueues on the owning shard (kStats: on every shard,
  // sink fires once with the summed payload). The sink receives `tag`.
  void SubmitAsync(ServeRequest request, uint64_t tag);

  // Blocking: executes on the owning shard's thread, returns the result.
  ServeResponse SubmitSync(const ServeRequest& request);

  // Runs InferenceEngine::FlushColdSnapshots on every shard (on the shard
  // threads, synchronously) — the graceful-shutdown warm-restart hook.
  void FlushColdSnapshots();

  // Atomic hot weight swap — the continual trainer's promotion path.
  // Enqueues a barrier item on every shard, blocks until every worker has
  // parked at it (so no request is in flight anywhere and all ops enqueued
  // before the swap have executed against the OLD weights), installs
  // `state` into the shared model, notifies each engine
  // (InferenceEngine::OnModelSwapped: cached streams drop, histories
  // survive, cold tier re-keys), bumps the fingerprint/version reported by
  // `stats`, and releases the workers. Ops enqueued after SwapWeights
  // returns are served by the new weights. Must be called from a
  // NON-worker thread; returns false when the set is stopping.
  bool SwapWeights(const std::vector<Tensor>& state, uint64_t fingerprint,
                   int64_t weight_version);

  uint64_t model_fingerprint() const { return fingerprint_.load(); }
  int64_t weight_version() const { return version_.load(); }

  // Hook that augments the aggregated `stats` response just before
  // delivery (the continual trainer fills its section here). Set before
  // the first stats request; invoked on a shard worker thread.
  void set_stats_decorator(std::function<void(ServeResponse&)> decorator);

  // Drains all queues and joins the workers (idempotent; ~ShardSet calls
  // it). SubmitAsync/SubmitSync after Stop return an error response.
  void Stop();

  int shards() const { return static_cast<int>(shards_.size()); }

  // Test access to a shard's engine. Only safe while no traffic is in
  // flight (the engines themselves are single-threaded).
  InferenceEngine& engine(int shard) { return *shards_[shard]->engine; }

 private:
  struct SyncCell {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    ServeResponse response;
  };

  // Cross-shard sum for one kStats request.
  struct StatsAgg {
    std::mutex mu;
    int remaining = 0;
    ServeResponse acc;
    uint64_t tag = 0;
    // Set for SubmitSync(stats): deliver here instead of the sink.
    SyncCell* cell = nullptr;
  };

  // Rendezvous for SwapWeights: each worker parks (++arrived) when it
  // reaches its swap item, the swapping thread mutates the model once all
  // have arrived, then releases them (done).
  struct SwapGate {
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;
    bool done = false;
  };

  struct Item {
    enum class Kind { kRequest, kFlush, kSwap };
    Kind kind = Kind::kRequest;
    ServeRequest request;
    uint64_t tag = 0;
    SyncCell* cell = nullptr;             // blocking submit
    std::shared_ptr<StatsAgg> agg;        // cross-shard stats
    std::shared_ptr<SwapGate> gate;       // weight-swap barrier
  };

  // Two lanes per shard (both guarded by `mu`): `queue` holds O(1) work
  // (predict/update/stats/flush) and is coalesced into engine batches;
  // `heavy_queue` holds O(T) ops (explain/recourse), of which the worker
  // executes at most ONE per loop iteration — so a burst of heavy ops can
  // delay a predict by at most one heavy op, never a convoy of them.
  // `heavy_pending` counts queued heavy-lane items per student: while a
  // student has heavy work queued, that student's later ops are routed to
  // the heavy lane too, preserving per-student operation order across the
  // lane split (the bit-identity contracts depend on it).
  struct Shard {
    std::unique_ptr<InferenceEngine> engine;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Item> queue;
    std::vector<Item> heavy_queue;
    std::unordered_map<std::string, int64_t> heavy_pending;
    std::thread worker;
  };

  void WorkerLoop(Shard& shard);
  void Enqueue(Shard& shard, Item item);
  void Deliver(const Item& item, ServeResponse response);

  ShardSetOptions options_;
  Sink sink_;
  std::atomic<bool> stopping_{false};
  rckt::RCKT* model_ = nullptr;  // the shared serving weights (swap target)
  std::atomic<uint64_t> fingerprint_{0};
  std::atomic<int64_t> version_{0};
  std::function<void(ServeResponse&)> stats_decorator_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_SHARD_H_
