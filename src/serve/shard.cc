#include "serve/shard.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "obs/obs.h"
#include "serve/server.h"

namespace kt {
namespace serve {

uint32_t ShardSet::ShardFor(std::string_view student, uint32_t shards) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : student) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return shards == 0 ? 0 : static_cast<uint32_t>(h % shards);
}

uint32_t ShardSet::shard_for(std::string_view student) const {
  return ShardFor(student, static_cast<uint32_t>(shards_.size()));
}

ShardSet::ShardSet(rckt::RCKT& model, const ShardSetOptions& options,
                   const data::Dataset* concept_data)
    : options_(options), model_(&model) {
  const int n = std::max(1, options.shards);
  options_.shards = n;
  fingerprint_.store(options.engine.model_fingerprint);
  version_.store(options.initial_weight_version);
  EngineOptions per_shard = options.engine;
  if (per_shard.session_budget_bytes > 0) {
    // Equal budget slices; never round down to 0, which means "unlimited".
    per_shard.session_budget_bytes = std::max<size_t>(
        1, per_shard.session_budget_bytes / static_cast<size_t>(n));
  }
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    per_shard.shard_index = i;
    shard->engine = std::make_unique<InferenceEngine>(model, per_shard);
    if (concept_data != nullptr) {
      shard->engine->LoadConceptMap(*concept_data);
      // int8 static calibration, per shard from the same data — the
      // procedure is deterministic, so every shard lands on identical
      // activation scales and the precision policy is shard-invariant.
      shard->engine->CalibrateLowp(*concept_data);
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->worker = std::thread([this, raw] { WorkerLoop(*raw); });
  }
}

ShardSet::~ShardSet() { Stop(); }

void ShardSet::set_sink(Sink sink) { sink_ = std::move(sink); }

void ShardSet::set_stats_decorator(std::function<void(ServeResponse&)> decorator) {
  stats_decorator_ = std::move(decorator);
}

namespace {

// Ops whose cost scales with the session history (full counterfactual
// passes) — these take the heavy lane so they cannot convoy in front of
// O(1) predicts.
bool HeavyOp(Op op) { return op == Op::kExplain || op == Op::kRecourse; }

}  // namespace

void ShardSet::Enqueue(Shard& shard, Item item) {
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    bool heavy = false;
    if (item.kind == Item::Kind::kRequest) {
      // A student with heavy work already queued keeps subsequent ops in
      // the heavy lane: both lanes are FIFO and drain on the one worker
      // thread, so per-student order survives the split.
      heavy = HeavyOp(item.request.op) ||
              (!item.request.student.empty() &&
               shard.heavy_pending.count(item.request.student) != 0);
    }
    if (heavy) {
      ++shard.heavy_pending[item.request.student];
      shard.heavy_queue.push_back(std::move(item));
    } else {
      shard.queue.push_back(std::move(item));
    }
    if (obs::Enabled()) {
      obs::Histogram::Get("serve.queue_depth")
          ->Record(static_cast<double>(shard.queue.size() +
                                       shard.heavy_queue.size()));
    }
  }
  shard.cv.notify_all();
}

void ShardSet::SubmitAsync(ServeRequest request, uint64_t tag) {
  if (stopping_.load()) {
    ServeResponse response;
    response.ok = false;
    response.op = request.op;
    response.error = "server is shutting down";
    sink_(tag, SerializeResponse(response));
    return;
  }
  if (request.op == Op::kStats) {
    auto agg = std::make_shared<StatsAgg>();
    agg->remaining = shards();
    agg->tag = tag;
    for (auto& shard : shards_) {
      Item item;
      item.request = request;
      item.agg = agg;
      Enqueue(*shard, std::move(item));
    }
    return;
  }
  Shard& shard = *shards_[shard_for(request.student)];
  Item item;
  item.request = std::move(request);
  item.tag = tag;
  Enqueue(shard, std::move(item));
}

ServeResponse ShardSet::SubmitSync(const ServeRequest& request) {
  if (stopping_.load()) {
    ServeResponse response;
    response.ok = false;
    response.op = request.op;
    response.error = "server is shutting down";
    return response;
  }
  SyncCell cell;
  if (request.op == Op::kStats) {
    auto agg = std::make_shared<StatsAgg>();
    agg->remaining = shards();
    agg->cell = &cell;
    for (auto& shard : shards_) {
      Item item;
      item.request = request;
      item.agg = agg;
      Enqueue(*shard, std::move(item));
    }
  } else {
    Item item;
    item.request = request;
    item.cell = &cell;
    Enqueue(*shards_[shard_for(request.student)], std::move(item));
  }
  std::unique_lock<std::mutex> lock(cell.mu);
  cell.cv.wait(lock, [&] { return cell.done; });
  return std::move(cell.response);
}

void ShardSet::FlushColdSnapshots() {
  // Run on each worker thread (the engines are single-threaded), and wait.
  std::vector<std::unique_ptr<SyncCell>> cells;
  for (auto& shard : shards_) {
    auto cell = std::make_unique<SyncCell>();
    Item item;
    item.kind = Item::Kind::kFlush;
    item.cell = cell.get();
    Enqueue(*shard, std::move(item));
    cells.push_back(std::move(cell));
  }
  for (auto& cell : cells) {
    std::unique_lock<std::mutex> lock(cell->mu);
    cell->cv.wait(lock, [&] { return cell->done; });
  }
}

bool ShardSet::SwapWeights(const std::vector<Tensor>& state,
                           uint64_t fingerprint, int64_t weight_version) {
  if (stopping_.load()) return false;
  const auto start = std::chrono::steady_clock::now();
  auto gate = std::make_shared<SwapGate>();
  for (auto& shard : shards_) {
    Item item;
    item.kind = Item::Kind::kSwap;
    item.gate = gate;
    Enqueue(*shard, std::move(item));
  }
  {
    std::unique_lock<std::mutex> lock(gate->mu);
    gate->cv.wait(lock, [&] { return gate->arrived == shards(); });
  }
  // Every worker is parked at the gate: no request is in flight anywhere,
  // so mutating the shared weights and each engine's session cache here is
  // race-free even though neither is otherwise synchronized.
  model_->SetState(state);
  for (auto& shard : shards_) shard->engine->OnModelSwapped(fingerprint);
  fingerprint_.store(fingerprint);
  version_.store(weight_version);
  if (obs::Enabled()) {
    const double pause_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    obs::Histogram::Get("serve.swap_pause_ms")->Record(pause_ms);
    obs::Counter::Get("serve.weight_swaps")->Add(1);
  }
  {
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->done = true;
  }
  gate->cv.notify_all();
  return true;
}

void ShardSet::Stop() {
  stopping_.store(true);
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
    }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ShardSet::Deliver(const Item& item, ServeResponse response) {
  if (item.agg != nullptr) {
    StatsAgg& agg = *item.agg;
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(agg.mu);
      agg.acc.op = Op::kStats;
      agg.acc.sessions += response.sessions;
      agg.acc.state_bytes += response.state_bytes;
      agg.acc.history_bytes += response.history_bytes;
      agg.acc.evictions += response.evictions;
      last = --agg.remaining == 0;
    }
    if (!last) return;
    // Model identity + continual section are shard-set-level facts, filled
    // once on the aggregate rather than summed per shard.
    agg.acc.model_fingerprint = fingerprint_.load();
    agg.acc.weight_version = version_.load();
    if (stats_decorator_) stats_decorator_(agg.acc);
    if (agg.cell != nullptr) {
      // Notify under the lock: the waiter owns the cell's storage and may
      // destroy it the moment wait() returns, which it cannot do before we
      // release — so notify_all never touches a dead condition variable.
      std::lock_guard<std::mutex> lock(agg.cell->mu);
      agg.cell->response = agg.acc;
      agg.cell->done = true;
      agg.cell->cv.notify_all();
    } else {
      sink_(agg.tag, SerializeResponse(agg.acc));
    }
    return;
  }
  if (item.cell != nullptr) {
    // Notify under the lock (see above): the cell dies with the waiter.
    std::lock_guard<std::mutex> lock(item.cell->mu);
    item.cell->response = std::move(response);
    item.cell->done = true;
    item.cell->cv.notify_all();
    return;
  }
  sink_(item.tag, SerializeResponse(response));
}

void ShardSet::WorkerLoop(Shard& shard) {
  const int64_t max_batch = std::max<int64_t>(1, options_.batcher.max_batch);
  std::vector<Item> slice;
  while (true) {
    Item heavy_item;
    bool have_heavy = false;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return stopping_.load() || !shard.queue.empty() ||
               !shard.heavy_queue.empty();
      });
      if (shard.queue.empty() && shard.heavy_queue.empty()) {
        return;  // stopping, and fully drained
      }
      if (!shard.queue.empty() &&
          static_cast<int64_t>(shard.queue.size()) < max_batch &&
          !stopping_.load() && options_.batcher.max_wait_us > 0) {
        // Brief straggler window so concurrent clients coalesce into one
        // engine batch — the same trade the MicroBatcher makes.
        shard.cv.wait_for(
            lock, std::chrono::microseconds(options_.batcher.max_wait_us),
            [&] {
              return stopping_.load() ||
                     static_cast<int64_t>(shard.queue.size()) >= max_batch;
            });
      }
      const size_t take = std::min<size_t>(shard.queue.size(),
                                           static_cast<size_t>(max_batch));
      slice.assign(std::make_move_iterator(shard.queue.begin()),
                   std::make_move_iterator(shard.queue.begin() +
                                           static_cast<ptrdiff_t>(take)));
      shard.queue.erase(shard.queue.begin(),
                        shard.queue.begin() + static_cast<ptrdiff_t>(take));
      if (!shard.heavy_queue.empty()) {
        // At most ONE heavy op per iteration, executed AFTER the light
        // slice: O(1) predicts are delayed by at most one O(T) op.
        heavy_item = std::move(shard.heavy_queue.front());
        shard.heavy_queue.erase(shard.heavy_queue.begin());
        have_heavy = true;
        // The pop is the routing boundary: ops for this student enqueued
        // from here on go to the light lane, where they land in a LATER
        // iteration than this item's execution below — order holds.
        auto it = shard.heavy_pending.find(heavy_item.request.student);
        if (it != shard.heavy_pending.end() && --it->second <= 0) {
          shard.heavy_pending.erase(it);
        }
      }
    }
    if (obs::Enabled()) {
      obs::Histogram::Get("serve.batch_size")
          ->Record(static_cast<double>(slice.size()));
    }
    // Contiguous request runs execute as one coalesced engine batch;
    // control items (cold flush) run in order between them.
    size_t i = 0;
    while (i < slice.size()) {
      if (slice[i].kind == Item::Kind::kSwap) {
        // Park at the barrier until the swapping thread has installed the
        // new weights (see SwapWeights). The one heavy item this iteration
        // may have popped executes AFTER the swap — benign: it replays its
        // session against the new weights, same as any later op.
        SwapGate& gate = *slice[i].gate;
        std::unique_lock<std::mutex> lock(gate.mu);
        ++gate.arrived;
        gate.cv.notify_all();
        gate.cv.wait(lock, [&] { return gate.done; });
        ++i;
        continue;
      }
      if (slice[i].kind == Item::Kind::kFlush) {
        shard.engine->FlushColdSnapshots();
        if (slice[i].cell != nullptr) {
          // Notify under the lock (see Deliver): the cell dies with the
          // waiter the moment wait() observes done.
          std::lock_guard<std::mutex> lock(slice[i].cell->mu);
          slice[i].cell->done = true;
          slice[i].cell->cv.notify_all();
        }
        ++i;
        continue;
      }
      size_t j = i;
      std::vector<ServeRequest> requests;
      while (j < slice.size() && slice[j].kind == Item::Kind::kRequest) {
        requests.push_back(std::move(slice[j].request));
        ++j;
      }
      std::vector<ServeResponse> responses = shard.engine->ExecuteBatch(requests);
      for (size_t k = i; k < j; ++k) {
        Deliver(slice[k], std::move(responses[k - i]));
      }
      i = j;
    }
    slice.clear();
    if (have_heavy) {
      Deliver(heavy_item, shard.engine->Execute(heavy_item.request));
    }
  }
}

}  // namespace serve
}  // namespace kt
