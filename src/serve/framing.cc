#include "serve/framing.h"

#include <cerrno>

#include <sys/socket.h>
#include <unistd.h>

namespace kt {
namespace serve {

LineFramer::LineFramer(size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes) {}

void LineFramer::Append(const char* data, size_t n) {
  if (discarding_) {
    // Still inside an oversized line the caller chose to skip: drop bytes
    // through its terminating newline, keep whatever follows.
    size_t i = 0;
    while (i < n && data[i] != '\n') ++i;
    if (i == n) return;  // newline not reached yet
    discarding_ = false;
    ++i;  // consume the newline itself
    data += i;
    n -= i;
  }
  buffer_.append(data, n);
}

LineFramer::Result LineFramer::Next(std::string* line) {
  const size_t pos = buffer_.find('\n', start_);
  if (pos != std::string::npos && pos - start_ <= max_line_bytes_) {
    line->assign(buffer_, start_, pos - start_);
    start_ = pos + 1;
    CompactIfWorthIt();
    return Result::kLine;
  }
  // Overflow covers both shapes of abuse: no newline yet but the partial
  // line already exceeds the cap, and a complete line longer than the cap.
  if (buffer_.size() - start_ > max_line_bytes_) return Result::kOverflow;
  return Result::kNeedMore;
}

void LineFramer::Resync() {
  const size_t pos = buffer_.find('\n', start_);
  if (pos == std::string::npos) {
    // The rest of the oversized line is still in flight: drop everything
    // buffered and keep dropping until the next newline arrives.
    buffer_.clear();
    start_ = 0;
    discarding_ = true;
    return;
  }
  start_ = pos + 1;
  CompactIfWorthIt();
}

void LineFramer::CompactIfWorthIt() {
  if (start_ == buffer_.size()) {
    buffer_.clear();
    start_ = 0;
  } else if (start_ > 4096 && start_ > buffer_.size() / 2) {
    buffer_.erase(0, start_);
    start_ = 0;
  }
}

ssize_t ReadRetryEintr(int fd, void* buf, size_t n) {
  while (true) {
    const ssize_t r = ::read(fd, buf, n);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

int AcceptRetryEintr(int listener) {
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0 && errno == EINTR) continue;
    return fd;
  }
}

bool SendAllNoSignal(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = SendNoSignal(fd, data.data() + off, data.size() - off);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

ssize_t SendNoSignal(int fd, const char* data, size_t n) {
  while (true) {
    const ssize_t r = ::send(fd, data, n, MSG_NOSIGNAL);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

}  // namespace serve
}  // namespace kt
