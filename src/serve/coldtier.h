// Cold session tier: disk snapshots of evicted forward-stream states.
//
// Without it, eviction under the session-memory budget drops a student's
// neural state and the next touch pays a full O(T) replay rebuild. With a
// cold directory configured, eviction first serializes the stream (raw
// float bytes — reloads are bit-identical to the replay rebuild they
// replace), the interaction history, and the cached last_f row into one
// kt::ckpt container per student:
//
//   <dir>/<fnv64(student) hex>.ktc
//     sections: schema | student | history | stream | last_f
//
// Each snapshot commits through the ckpt writer's tmp+fsync+rename, so a
// kill -9 at any moment leaves whole snapshots only — that is what makes
// warm restarts safe: a new server pointed at the same --cold-dir restores
// any snapshotted student on first touch, history included, without
// replay. Snapshots are retained after a load (they go stale one update
// later and are refreshed by the next eviction or a graceful-shutdown
// flush); a `reset` op erases the student's snapshot with the session.
//
// Schema guard: snapshots carry the encoder kind/dim/layers they were
// written under, plus the FINGERPRINT of the weights that produced the
// stream (nn::FingerprintModule). A mismatching or corrupt snapshot is
// treated as a miss (the caller falls back to replay), never as state. The
// fingerprint check is what makes hot weight swaps safe: a snapshot taken
// under the old weights must never resume as a stream under the new ones —
// on fingerprint mismatch the snapshot's HISTORY is still adopted (when the
// session has none, i.e. warm restart), because history is model-independent
// ground truth, but the stream is rebuilt by replay.
#ifndef KT_SERVE_COLDTIER_H_
#define KT_SERVE_COLDTIER_H_

#include <cstdint>
#include <string>

#include "rckt/encoders.h"
#include "serve/session.h"

namespace kt {
namespace serve {

class ColdTier {
 public:
  // Creates `dir` (and parents) if needed. The encoder reference must
  // outlive the tier; `kind`/`dim`/`num_layers` and `model_fingerprint`
  // form the schema guard.
  ColdTier(std::string dir, const rckt::BiEncoder& encoder,
           rckt::EncoderKind kind, int64_t dim, int64_t num_layers,
           uint64_t model_fingerprint = 0);

  // Weight-swap hook: snapshots written from here on carry the new
  // fingerprint, and existing snapshots under the old one read as misses.
  void set_model_fingerprint(uint64_t fingerprint) {
    model_fingerprint_ = fingerprint;
  }
  uint64_t model_fingerprint() const { return model_fingerprint_; }

  // Snapshots `session` (history + stream + last_f). Returns false for
  // sessions with nothing to snapshot (no stream or empty history) or on
  // write failure.
  bool Save(const Session& session);

  // Restores `session` from its snapshot, bit-identical to the state at
  // snapshot time. Only fills a session whose stream is null; adopts the
  // snapshot history when the session's own history is empty (warm
  // restart), otherwise requires the histories to be equal. Corrupt,
  // mismatched, or absent snapshots return false and, when stale, are
  // deleted.
  bool Load(Session* session);

  // Drops the student's snapshot, if any (reset op).
  void Erase(const std::string& student);

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(const std::string& student) const;

  std::string dir_;
  const rckt::BiEncoder& encoder_;
  rckt::EncoderKind kind_;
  int64_t dim_;
  int64_t num_layers_;
  uint64_t model_fingerprint_;
};

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_COLDTIER_H_
