#include "serve/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "eval/metrics.h"
#include "serve/json.h"

namespace kt {
namespace serve {

LineClient::~LineClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool LineClient::Connect(int port, std::string* error) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = "socket() failed";
    return false;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect() to 127.0.0.1:" + std::to_string(port) + " failed";
    return false;
  }
  return true;
}

bool LineClient::RoundTrip(const std::string& line, std::string* response,
                           std::string* error) {
  std::string out = line;
  out.push_back('\n');
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      *error = "send() failed";
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  response->clear();
  while (true) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      *response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      *error = "server closed the connection";
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

std::string PredictLine(const std::string& student, int64_t question,
                        const std::vector<int64_t>& concepts) {
  JsonWriter w;
  w.BeginObject();
  w.Key("op").String("predict");
  w.Key("student").String(student);
  w.Key("question").Int(question);
  w.Key("concepts").BeginArray();
  for (int64_t c : concepts) w.Int(c);
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string UpdateLine(const std::string& student, int64_t question,
                       const std::vector<int64_t>& concepts, int response) {
  JsonWriter w;
  w.BeginObject();
  w.Key("op").String("update");
  w.Key("student").String(student);
  w.Key("question").Int(question);
  w.Key("concepts").BeginArray();
  for (int64_t c : concepts) w.Int(c);
  w.EndArray();
  w.Key("response").Int(response);
  w.EndObject();
  return w.str();
}

std::string ResetLine(const std::string& student) {
  JsonWriter w;
  w.BeginObject();
  w.Key("op").String("reset");
  w.Key("student").String(student);
  w.EndObject();
  return w.str();
}

std::string RecourseLine(const std::string& student, int64_t question,
                         const std::vector<int64_t>& concepts, int k, int top,
                         double target_p,
                         const std::vector<int64_t>& insert_questions,
                         bool brute) {
  JsonWriter w;
  w.BeginObject();
  w.Key("op").String("recourse");
  w.Key("student").String(student);
  w.Key("question").Int(question);
  w.Key("concepts").BeginArray();
  for (int64_t c : concepts) w.Int(c);
  w.EndArray();
  w.Key("k").Int(k);
  w.Key("top").Int(top);
  if (target_p >= 0.0) w.Key("target_p").Double(target_p);
  if (!insert_questions.empty()) {
    w.Key("insert_questions").BeginArray();
    for (int64_t q : insert_questions) w.Int(q);
    w.EndArray();
  }
  if (brute) w.Key("brute").Bool(true);
  w.EndObject();
  return w.str();
}

uint32_t FloatBits(float f) {
  uint32_t u = 0;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

Result<ExpectedPredictions> ParseExpectedPredictions(
    const std::string& json_text, int64_t default_stride,
    int64_t default_min_target) {
  JsonValue doc;
  std::string error;
  if (!ParseJson(json_text, &doc, &error)) {
    return Status::InvalidArgument("expect file: " + error);
  }
  ExpectedPredictions out;
  out.stride = doc.GetInt("stride", default_stride);
  out.min_target = doc.GetInt("min_target", default_min_target);
  const JsonValue* preds = doc.Find("predictions");
  if (preds == nullptr || !preds->IsArray()) {
    return Status::InvalidArgument("expect file has no predictions array");
  }
  for (const auto& p : preds->array) {
    out.scores[{p.GetInt("sequence", -1), p.GetInt("target", -1)}] =
        static_cast<float>(p.GetNumber("generator_score", 0.0));
  }
  return out;
}

MismatchReport CheckPredictions(const PredictionMap& expected,
                                const PredictionMap& got,
                                int64_t max_details, double tolerance) {
  MismatchReport report;
  report.compared = static_cast<int64_t>(expected.size());
  for (const auto& [key, want] : expected) {
    const auto found = got.find(key);
    if (found == got.end()) {
      ++report.missing;
      continue;
    }
    const double err = std::fabs(static_cast<double>(found->second) -
                                 static_cast<double>(want));
    if (std::isfinite(err)) report.max_abs_err =
        std::max(report.max_abs_err, err);
    // tolerance == 0 keeps the bitwise contract (it also catches
    // sign-of-zero and NaN divergences a numeric compare would miss).
    const bool bad = tolerance > 0.0 ? !(err <= tolerance)
                                     : FloatBits(found->second) !=
                                           FloatBits(want);
    if (bad) {
      if (++report.mismatches <= max_details) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "MISMATCH seq=%lld target=%lld online=%.9g "
                      "offline=%.9g",
                      static_cast<long long>(key.first),
                      static_cast<long long>(key.second), found->second,
                      want);
        report.details.push_back(line);
      }
    }
  }
  return report;
}

namespace {

double Percentile(const std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

}  // namespace

LatencyStats SummarizeLatencies(std::vector<double>& us) {
  LatencyStats stats;
  stats.count = static_cast<int64_t>(us.size());
  if (us.empty()) return stats;
  std::sort(us.begin(), us.end());
  double total = 0.0;
  for (double v : us) total += v;
  stats.mean_us = total / static_cast<double>(us.size());
  stats.p50_us = Percentile(us, 0.50);
  stats.p99_us = Percentile(us, 0.99);
  return stats;
}

std::string ReplaySummaryJson(const ReplaySummary& s) {
  JsonWriter w;
  w.BeginObject();
  w.Key("mode").String("replay");
  w.Key("connections").Int(s.connections);
  w.Key("predictions").Int(s.predictions);
  w.Key("compared").Int(s.check.compared);
  w.Key("mismatches").Int(s.check.mismatches);
  w.Key("missing").Int(s.check.missing);
  w.Key("max_abs_err").Double(s.check.max_abs_err);
  w.Key("auc").Double(s.auc);
  w.Key("auc_samples").Int(s.auc_samples);
  w.Key("elapsed_s").Double(s.elapsed_s);
  w.Key("latency_p50_us").Double(s.latency.p50_us);
  w.Key("latency_p99_us").Double(s.latency.p99_us);
  w.Key("latency_mean_us").Double(s.latency.mean_us);
  w.EndObject();
  return w.str();
}

std::string BenchSummaryJson(const BenchSummary& s) {
  JsonWriter w;
  w.BeginObject();
  w.Key("mode").String("bench");
  w.Key("connections").Int(s.connections);
  w.Key("requests").Int(s.latency.count);
  w.Key("elapsed_s").Double(s.elapsed_s);
  w.Key("throughput_rps")
      .Double(s.elapsed_s > 0.0
                  ? static_cast<double>(s.latency.count) / s.elapsed_s
                  : 0.0);
  w.Key("latency_p50_us").Double(s.latency.p50_us);
  w.Key("latency_p99_us").Double(s.latency.p99_us);
  w.Key("latency_mean_us").Double(s.latency.mean_us);
  w.EndObject();
  return w.str();
}

std::string RecourseSummaryJson(const RecourseSummary& s) {
  JsonWriter w;
  w.BeginObject();
  w.Key("mode").String("recourse");
  w.Key("connections").Int(s.connections);
  w.Key("students").Int(s.students);
  w.Key("updates").Int(s.updates);
  w.Key("recourses").Int(s.recourses);
  w.Key("candidates").Int(s.candidates);
  w.Key("mean_top_lift").Double(s.mean_top_lift);
  w.Key("brute").Bool(s.brute);
  w.Key("elapsed_s").Double(s.elapsed_s);
  w.Key("latency_p50_us").Double(s.latency.p50_us);
  w.Key("latency_p99_us").Double(s.latency.p99_us);
  w.Key("latency_mean_us").Double(s.latency.mean_us);
  // Hex keeps the digest readable and avoids int64 overflow in parsers.
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(s.recourse_fnv64));
  w.Key("recourse_fnv64").String(hex);
  w.EndObject();
  return w.str();
}

uint64_t FnvMixRecourseReply(uint64_t h, const JsonValue& reply) {
  h = FnvMixU64(
      h, FloatBits(static_cast<float>(reply.GetNumber("base_p", 0.0))));
  h = FnvMixU64(h, static_cast<uint64_t>(reply.GetInt("evaluated", -1)));
  const JsonValue* candidates = reply.Find("candidates");
  if (candidates == nullptr || !candidates->IsArray()) return h;
  for (const JsonValue& candidate : candidates->array) {
    h = FnvMixU64(
        h, FloatBits(static_cast<float>(candidate.GetNumber("p", 0.0))));
    const JsonValue* interventions = candidate.Find("interventions");
    if (interventions == nullptr || !interventions->IsArray()) continue;
    for (const JsonValue& intervention : interventions->array) {
      h = FnvMixU64(h,
                    intervention.GetString("type", "") == "flip" ? 1u : 2u);
      h = FnvMixU64(
          h, static_cast<uint64_t>(intervention.GetInt("position", -1)));
      h = FnvMixU64(
          h, static_cast<uint64_t>(intervention.GetInt("question", -1)));
    }
  }
  return h;
}

std::string ScenarioSummaryJson(const ScenarioSummary& s) {
  JsonWriter w;
  w.BeginObject();
  w.Key("mode").String("scenario");
  w.Key("scenario").String(s.scenario);
  w.Key("connections").Int(s.connections);
  w.Key("seed").Int(static_cast<int64_t>(s.seed));
  w.Key("scale").Double(s.scale);
  w.Key("students").Int(s.students);
  w.Key("interactions").Int(s.interactions);
  w.Key("predictions").Int(s.predictions);
  w.Key("elapsed_s").Double(s.elapsed_s);
  w.Key("throughput_rps").Double(s.throughput_rps);
  w.Key("auc").Double(s.auc);
  w.Key("auc_samples").Int(s.auc_samples);
  w.Key("auc_window").Int(s.auc_window);
  w.Key("predict_p50_us").Double(s.predict_p50_us);
  w.Key("predict_p99_us").Double(s.predict_p99_us);
  w.Key("predict_mean_us").Double(s.predict_mean_us);
  w.Key("update_p50_us").Double(s.update_p50_us);
  w.Key("update_p99_us").Double(s.update_p99_us);
  w.Key("update_mean_us").Double(s.update_mean_us);
  // Hex keeps the digest readable and avoids int64 overflow in parsers.
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(s.traffic_fnv64));
  w.Key("traffic_fnv64").String(hex);
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(s.pred_fnv64));
  w.Key("pred_fnv64").String(hex);
  // Model identity from the final stats poll (empty fingerprint when the
  // server predates the `model` stats section or the poll failed).
  w.Key("model_fingerprint").String(s.model_fingerprint);
  w.Key("weight_version").Int(s.weight_version);
  if (!s.window_stats.empty()) {
    w.Key("windows").BeginArray();
    for (const auto& win : s.window_stats) {
      w.BeginObject();
      w.Key("index").Int(win.index);
      w.Key("students").Int(win.students);
      w.Key("auc").Double(win.auc);
      w.Key("auc_samples").Int(win.auc_samples);
      w.Key("weight_version").Int(win.weight_version);
      w.Key("model_fingerprint").String(win.model_fingerprint);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.str();
}

RollingAuc::RollingAuc(int64_t window) : window_(std::max<int64_t>(1, window)) {
  scores_.reserve(static_cast<size_t>(std::min<int64_t>(window_, 1 << 20)));
}

void RollingAuc::Add(float score, int label) {
  if (count() < window_) {
    scores_.push_back(score);
    labels_.push_back(label);
    return;
  }
  scores_[next_] = score;
  labels_[next_] = label;
  next_ = (next_ + 1) % scores_.size();
}

void RollingAuc::Merge(const RollingAuc& other) {
  scores_.insert(scores_.end(), other.scores_.begin(), other.scores_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

double RollingAuc::Auc() const {
  if (scores_.empty()) return 0.5;
  return eval::ComputeAuc(scores_, labels_);
}

uint64_t FnvMixU64(uint64_t h, uint64_t v) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kPrime;
  }
  return h;
}

uint64_t FnvMixInteraction(uint64_t h, int64_t question,
                           const std::vector<int64_t>& concepts,
                           int response) {
  h = FnvMixU64(h, static_cast<uint64_t>(question));
  for (int64_t c : concepts) h = FnvMixU64(h, static_cast<uint64_t>(c));
  h = FnvMixU64(h, static_cast<uint64_t>(response));
  return h;
}

}  // namespace serve
}  // namespace kt
