#include "serve/coldtier.h"

#include <cerrno>
#include <cstdio>
#include <utility>

#include <sys/stat.h>
#include <sys/types.h>

#include "ckpt/ckpt.h"
#include "core/binio.h"
#include "core/logging.h"
#include "obs/obs.h"

namespace kt {
namespace serve {
namespace {

// v2 appended the model fingerprint to the schema section. v1 snapshots
// (no fingerprint) predate hot weight swaps and read as misses.
constexpr uint32_t kSnapshotVersion = 2;

uint64_t Fnv64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// mkdir -p: create every missing component; EEXIST is success.
bool MakeDirs(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (!prefix.empty() &&
        ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
    if (i < path.size()) prefix.push_back('/');
  }
  return true;
}

void AppendHistory(std::string* out,
                   const std::vector<data::Interaction>& history) {
  AppendPod<uint64_t>(out, history.size());
  for (const auto& it : history) {
    AppendPod<int64_t>(out, it.question);
    AppendPod<int32_t>(out, static_cast<int32_t>(it.response));
    AppendPod<uint32_t>(out, static_cast<uint32_t>(it.concepts.size()));
    for (const int64_t c : it.concepts) AppendPod<int64_t>(out, c);
  }
}

bool ReadHistory(std::string_view bytes,
                 std::vector<data::Interaction>* history) {
  BinCursor cursor(bytes.data(), bytes.size());
  uint64_t count = 0;
  if (!cursor.Read(&count)) return false;
  history->clear();
  history->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    data::Interaction it;
    int32_t response = 0;
    uint32_t bag = 0;
    if (!cursor.Read(&it.question) || !cursor.Read(&response) ||
        !cursor.Read(&bag)) {
      return false;
    }
    it.response = response;
    it.concepts.resize(bag);
    for (uint32_t c = 0; c < bag; ++c) {
      if (!cursor.Read(&it.concepts[c])) return false;
    }
    history->push_back(std::move(it));
  }
  return cursor.done();
}

bool SameHistory(const std::vector<data::Interaction>& a,
                 const std::vector<data::Interaction>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].question != b[i].question || a[i].response != b[i].response ||
        a[i].concepts != b[i].concepts) {
      return false;
    }
  }
  return true;
}

void BumpCounter(const char* name) {
  if (obs::Enabled()) obs::Counter::Get(name)->Add(1);
}

}  // namespace

ColdTier::ColdTier(std::string dir, const rckt::BiEncoder& encoder,
                   rckt::EncoderKind kind, int64_t dim, int64_t num_layers,
                   uint64_t model_fingerprint)
    : dir_(std::move(dir)),
      encoder_(encoder),
      kind_(kind),
      dim_(dim),
      num_layers_(num_layers),
      model_fingerprint_(model_fingerprint) {
  if (!MakeDirs(dir_)) {
    KT_LOG(WARNING) << "cold tier: cannot create directory " << dir_;
  }
}

std::string ColdTier::PathFor(const std::string& student) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(Fnv64(student)));
  return dir_ + "/" + hex + ".ktc";
}

bool ColdTier::Save(const Session& session) {
  if (session.stream == nullptr || session.history.empty()) return false;
  ckpt::CheckpointWriter writer;
  std::string& schema = writer.Section("schema");
  AppendPod<uint32_t>(&schema, kSnapshotVersion);
  AppendPod<int32_t>(&schema, static_cast<int32_t>(kind_));
  AppendPod<int64_t>(&schema, dim_);
  AppendPod<int64_t>(&schema, num_layers_);
  AppendPod<uint64_t>(&schema, model_fingerprint_);
  writer.Section("student") = session.id;
  AppendHistory(&writer.Section("history"), session.history);
  encoder_.SerializeStream(*session.stream, &writer.Section("stream"));
  std::string& last_f = writer.Section("last_f");
  AppendPod<uint32_t>(&last_f, static_cast<uint32_t>(session.last_f.numel()));
  AppendBytes(&last_f, session.last_f.data(),
              static_cast<size_t>(session.last_f.numel()) * sizeof(float));
  const Status status = writer.Commit(PathFor(session.id));
  if (!status.ok()) {
    KT_LOG(WARNING) << "cold tier: snapshot of '" << session.id
                    << "' failed: " << status.message();
    return false;
  }
  BumpCounter("serve.cold_saves");
  return true;
}

bool ColdTier::Load(Session* session) {
  if (session->stream != nullptr) return false;
  const std::string path = PathFor(session->id);
  ckpt::CheckpointReader reader;
  if (!reader.Open(path).ok()) return false;

  std::string_view schema, student, history_bytes, stream_bytes, last_bytes;
  if (!reader.Find("schema", &schema).ok() ||
      !reader.Find("student", &student).ok() ||
      !reader.Find("history", &history_bytes).ok() ||
      !reader.Find("stream", &stream_bytes).ok() ||
      !reader.Find("last_f", &last_bytes).ok()) {
    return false;
  }
  // Hash-collision / schema guard: the snapshot must name this student and
  // this model shape exactly, else it is a miss.
  if (student != session->id) return false;
  uint64_t snapshot_fingerprint = 0;
  {
    BinCursor cursor(schema.data(), schema.size());
    uint32_t version = 0;
    int32_t kind = 0;
    int64_t dim = 0, layers = 0;
    if (!cursor.Read(&version) || version != kSnapshotVersion ||
        !cursor.Read(&kind) || kind != static_cast<int32_t>(kind_) ||
        !cursor.Read(&dim) || dim != dim_ || !cursor.Read(&layers) ||
        layers != num_layers_ || !cursor.Read(&snapshot_fingerprint)) {
      return false;
    }
  }

  std::vector<data::Interaction> history;
  if (!ReadHistory(history_bytes, &history) || history.empty()) return false;
  if (!session->history.empty() &&
      !SameHistory(session->history, history)) {
    // A snapshot that disagrees with the live history is stale garbage
    // (e.g. leftover from a previous run after a reset): drop it.
    std::remove(path.c_str());
    return false;
  }

  if (snapshot_fingerprint != model_fingerprint_) {
    // The stream bits were produced by DIFFERENT weights (a hot swap or a
    // restart onto new weights happened after the snapshot) — resuming
    // them would silently serve stale-model predictions. The history is
    // model-independent ground truth though: adopt it on a warm restart
    // (session has none yet) so the caller can rebuild by replay against
    // the CURRENT weights, then drop the stale snapshot.
    if (session->history.empty()) session->history = std::move(history);
    std::remove(path.c_str());
    BumpCounter("serve.cold_fingerprint_miss");
    return false;
  }

  auto stream =
      encoder_.DeserializeStream(stream_bytes.data(), stream_bytes.size());
  if (stream == nullptr) return false;

  BinCursor cursor(last_bytes.data(), last_bytes.size());
  uint32_t numel = 0;
  if (!cursor.Read(&numel) || static_cast<int64_t>(numel) != dim_) {
    return false;
  }
  Tensor last_f(Shape{1, dim_});
  if (!cursor.ReadBytes(last_f.data(),
                        static_cast<size_t>(dim_) * sizeof(float)) ||
      !cursor.done()) {
    return false;
  }

  session->history = std::move(history);
  session->stream = std::move(stream);
  session->last_f = std::move(last_f);
  BumpCounter("serve.cold_loads");
  return true;
}

void ColdTier::Erase(const std::string& student) {
  std::remove(PathFor(student).c_str());
}

}  // namespace serve
}  // namespace kt
