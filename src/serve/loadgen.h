// kt::serve load-generation support: the testable core of tools/kt_loadgen.
//
// tools/kt_loadgen.cc keeps only flag parsing and the per-mode driver
// loops; everything with a failure mode worth unit-testing lives here:
//   * LineClient        — blocking NDJSON round-trip client (TCP loopback),
//                         with explicit errors for refused connections and
//                         mid-stream server disconnects,
//   * ParseExpectedPredictions — the `ktcli evaluate --json` reader behind
//                         --expect, returning Status instead of dying on
//                         malformed input,
//   * CheckPredictions  — the online-vs-offline mismatch checker (bit-exact
//                         by default, tolerance-based for low-precision
//                         serving),
//   * SummarizeLatencies / summary-JSON builders for all three modes,
//   * RollingAuc        — bounded ring of (score, label) pairs for the
//                         scenario mode's rolling online AUC at scales
//                         where keeping every prediction is not an option.
//
// Everything here is deterministic given its inputs: the JSON builders
// format through serve::JsonWriter (shortest round-trip doubles), and
// RollingAuc::Auc delegates to eval::ComputeAuc, which is permutation-
// invariant — merging per-worker rings in any order yields one AUC.
#ifndef KT_SERVE_LOADGEN_H_
#define KT_SERVE_LOADGEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace kt {
namespace serve {

// Blocking line-oriented client connection to 127.0.0.1:port.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool Connect(int port, std::string* error);

  // Sends one request line and reads the one response line. On failure
  // (send error or server-side disconnect) fills *error and returns false.
  bool RoundTrip(const std::string& line, std::string* response,
                 std::string* error);

 private:
  int fd_ = -1;
  std::string buffer_;
};

struct JsonValue;

// NDJSON request lines understood by `ktcli serve`.
std::string PredictLine(const std::string& student, int64_t question,
                        const std::vector<int64_t>& concepts);
std::string UpdateLine(const std::string& student, int64_t question,
                       const std::vector<int64_t>& concepts, int response);
// Erases the student's session server-side. Recourse traffic sends this
// before (re)feeding a window so repeated runs against one warm server —
// the fast-vs-brute and shard-parity gates — see identical histories.
std::string ResetLine(const std::string& student);
// Recourse request: target_p < 0 and an empty insert list omit those
// fields (engine defaults apply); brute is only written when true.
std::string RecourseLine(const std::string& student, int64_t question,
                         const std::vector<int64_t>& concepts, int k, int top,
                         double target_p,
                         const std::vector<int64_t>& insert_questions,
                         bool brute);

uint32_t FloatBits(float f);

// (sequence, target) -> probability, the key space shared by the offline
// scorer (`ktcli evaluate --json`) and the replay client.
using PredictionMap = std::map<std::pair<int64_t, int64_t>, float>;

// The --expect file contents: offline generator scores plus the sampling
// parameters they were produced with (so online replay can never disagree
// with the offline scorer about which samples exist).
struct ExpectedPredictions {
  int64_t stride = 0;
  int64_t min_target = 0;
  PredictionMap scores;
};

// Parses the JSON object written by `ktcli evaluate --json`. The defaults
// seed stride/min_target for legacy files that omit them. Fails (rather
// than aborting) on malformed JSON or a missing predictions array.
Result<ExpectedPredictions> ParseExpectedPredictions(
    const std::string& json_text, int64_t default_stride,
    int64_t default_min_target);

// Comparison of online probabilities against offline scores. The default
// tolerance of exactly 0 keeps the historical contract: float BIT patterns
// must match. A tolerance > 0 (kt_loadgen --expect-tol, for servers
// running --precision bf16/int8 whose head is gated by accuracy instead of
// bitwise parity) accepts |online - offline| <= tolerance and still
// reports the largest deviation seen.
struct MismatchReport {
  int64_t compared = 0;    // expected entries examined
  int64_t mismatches = 0;  // outside tolerance (bitwise when tol == 0)
  int64_t missing = 0;     // expected but never predicted online
  double max_abs_err = 0.0;  // largest |online - offline| over compared
  // Human-readable lines for the first few mismatches.
  std::vector<std::string> details;

  bool ok() const { return mismatches == 0 && missing == 0; }
};
MismatchReport CheckPredictions(const PredictionMap& expected,
                                const PredictionMap& got,
                                int64_t max_details = 5,
                                double tolerance = 0.0);

struct LatencyStats {
  double p50_us = 0.0, p99_us = 0.0, mean_us = 0.0;
  int64_t count = 0;
};

// Sorts `us` in place. Empty input yields all-zero stats (the
// empty-dataset path: a replay of zero windows is a valid, passing run).
LatencyStats SummarizeLatencies(std::vector<double>& us);

// One-line JSON summaries (stdout contract of kt_loadgen, consumed by
// scripts/check_serve.sh, scripts/check_scenarios.sh and tools/obs_check).
struct ReplaySummary {
  int connections = 0;
  int64_t predictions = 0;
  MismatchReport check;
  // Online AUC of the replayed predictions against the dataset's actual
  // responses (0.5 when no predictions fired). Bitwise replay already pins
  // every probability, so for fp32 servers this only restates the offline
  // AUC; for low-precision servers (--expect-tol) it is the accuracy-
  // parity gate: scripts/check_precision.sh asserts the quantized server's
  // AUC stays within 1e-3 of fp32.
  double auc = 0.5;
  int64_t auc_samples = 0;
  double elapsed_s = 0.0;
  LatencyStats latency;
};
std::string ReplaySummaryJson(const ReplaySummary& s);

struct BenchSummary {
  int connections = 0;
  double elapsed_s = 0.0;
  LatencyStats latency;
};
std::string BenchSummaryJson(const BenchSummary& s);

// Recourse-mode report (kt_loadgen --mode recourse). recourse_fnv64 is
// the XOR across students of each student's FnvMixRecourseReply fold —
// two servers given the same traffic agree iff every recourse reply
// (base probability, candidate ranking, every intervention) is bitwise
// identical. scripts/check_serve.sh gates fast-vs-brute and
// --shards 1 vs --shards 4 on exactly this digest.
struct RecourseSummary {
  int connections = 0;
  int64_t students = 0;
  int64_t updates = 0;     // history updates sent
  int64_t recourses = 0;   // recourse ops sent
  int64_t candidates = 0;  // candidate sets returned in total
  double mean_top_lift = 0.0;  // mean best-candidate lift over students
  bool brute = false;
  double elapsed_s = 0.0;
  LatencyStats latency;  // recourse round-trips only
  uint64_t recourse_fnv64 = 0;
};
std::string RecourseSummaryJson(const RecourseSummary& s);

// Folds one parsed recourse reply into h: the float bits of base_p, the
// evaluated count, then per candidate its probability bits plus every
// intervention (type, position, question) in rank order.
uint64_t FnvMixRecourseReply(uint64_t h, const JsonValue& reply);

// One drift-replay phase of a scenario run (kt_loadgen --mode scenario
// --windows W): a contiguous chunk of the student range replayed with a
// fresh rolling-AUC ring, plus the serving model's identity polled from
// the `stats` op right after the chunk finished. check_continual.sh
// compares first-vs-last window AUC and weight_version to prove the
// continual trainer promoted (and that the promotion helped).
struct ScenarioWindow {
  int64_t index = 0;      // 0-based phase index
  int64_t students = 0;   // students replayed in this window
  double auc = 0.5;       // merged rolling AUC over this window only
  int64_t auc_samples = 0;
  int64_t weight_version = 0;     // from the post-window stats poll
  std::string model_fingerprint;  // 16-hex-digit, ditto
};

// Scenario-mode report (schema documented in DESIGN.md §12; validated by
// `obs_check scenario`). Latency percentiles come from kt::obs histogram
// snapshots (bucket resolution), not sorted vectors, so the report stays
// O(1) in the number of requests.
struct ScenarioSummary {
  std::string scenario;
  int connections = 0;
  uint64_t seed = 0;
  double scale = 1.0;
  int64_t students = 0;
  int64_t interactions = 0;  // update ops sent
  int64_t predictions = 0;   // predict ops sent
  double elapsed_s = 0.0;
  double throughput_rps = 0.0;
  double auc = 0.5;          // rolling online AUC over the last auc_window
  int64_t auc_samples = 0;   // pairs inside the rolling window at the end
  int64_t auc_window = 0;
  double predict_p50_us = 0.0, predict_p99_us = 0.0, predict_mean_us = 0.0;
  double update_p50_us = 0.0, update_p99_us = 0.0, update_mean_us = 0.0;
  // Order-independent FNV-1a digest of the generated traffic (question,
  // concepts, response per interaction, XOR-combined across students):
  // equal across runs iff the scenario stream is bit-identical.
  uint64_t traffic_fnv64 = 0;
  // Same structure over the SERVER's replies: the float bits of every
  // predict probability, folded per student and XOR-combined. Two servers
  // given the same scenario agree on pred_fnv64 iff every prediction is
  // bitwise identical — the cross-configuration parity gate (e.g.
  // --shards 1 vs --shards 8 in scripts/check_scenarios.sh).
  uint64_t pred_fnv64 = 0;
  // Serving model identity from the final `stats` poll: the KTW2 weight
  // fingerprint (16 hex digits) and monotone weight version. Under
  // `serve --continual` the version advances on every promotion, so a
  // first-vs-last mismatch across drift windows proves a hot swap landed.
  std::string model_fingerprint;
  int64_t weight_version = 0;
  // Per-phase breakdown when --windows > 1 (empty for single-window runs).
  std::vector<ScenarioWindow> window_stats;
};
std::string ScenarioSummaryJson(const ScenarioSummary& s);

// Bounded ring of (score, label) pairs: the newest `window` predictions.
// Per-worker rings are Merge()d after the join; Auc() is then a single
// eval::ComputeAuc over the union, deterministic for a fixed worker count.
class RollingAuc {
 public:
  explicit RollingAuc(int64_t window);

  void Add(float score, int label);
  void Merge(const RollingAuc& other);

  // AUC over the ring contents (0.5 when one class is absent or empty).
  double Auc() const;
  int64_t count() const { return static_cast<int64_t>(scores_.size()); }
  int64_t window() const { return window_; }

 private:
  int64_t window_;
  size_t next_ = 0;  // overwrite cursor once the ring is full
  std::vector<float> scores_;
  std::vector<int> labels_;
};

// FNV-1a over one interaction, for ScenarioSummary::traffic_fnv64. Fold
// each student's interactions left-to-right starting from `h` (pass
// kFnvOffset for the first), then XOR the per-student digests together.
inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;
uint64_t FnvMixU64(uint64_t h, uint64_t v);
uint64_t FnvMixInteraction(uint64_t h, int64_t question,
                           const std::vector<int64_t>& concepts,
                           int response);

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_LOADGEN_H_
