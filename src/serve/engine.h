// Tape-free online inference engine over a trained RCKT model.
//
// The offline scorer (`ktcli evaluate`) re-encodes a student's whole prefix
// for every prediction. Online, the same quantities fall out of an
// incremental decomposition of the generator chain:
//
//   predict(q): the generator's masked-target probability at the last
//     position. ShiftAndAdd makes h_target = fwd_{T-2} + 0 — the backward
//     stream contributes only its zero boundary at the final position — so
//     a prediction needs just the cached forward-stream output of the last
//     history step, the target's question embedding, and the two-layer MLP
//     head: O(1) work per request for every encoder.
//   update(q, r): advances the forward stream by one step (O(1) for
//     DKT/GRU, O(history) attention over the KV cache for SAKT/AKT).
//   explain(q): full response-influence breakdown (RCKT::ExplainTargets)
//     over the session history — inherently O(T) counterfactual passes.
//
// Load-bearing contract (tests/serve_test.cc, scripts/check_serve.sh):
// predict is BIT-IDENTICAL to RCKT::GeneratorScoreTargets on the
// equivalent offline prefix batch, at any thread count, because every op on
// the incremental path replays the same kernel chain on the same bits (see
// DESIGN.md §11).
#ifndef KT_SERVE_ENGINE_H_
#define KT_SERVE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rckt/rckt_model.h"
#include "serve/coldtier.h"
#include "serve/lowp_head.h"
#include "serve/session.h"

namespace kt {
namespace serve {

enum class Op { kPredict, kUpdate, kExplain, kRecourse, kReset, kStats };

// One primitive edit of a student's trajectory, the unit the recourse
// search composes into candidate sets (ROADMAP's typed intervention model).
struct Intervention {
  enum class Kind {
    kFlipResponse,    // history[position]: incorrect -> correct
    kInsertPractice,  // append a correct practice of `question` after the
                      // history, before the target
  };
  Kind kind = Kind::kFlipResponse;
  // kFlipResponse: index into the session history. -1 for inserts.
  int64_t position = -1;
  // The question involved (the flipped interaction's question, or the
  // inserted practice question).
  int64_t question = -1;
};

// One scored candidate intervention set: apply `interventions` and the
// target's predicted mastery becomes `p` (lift = p - base_p).
struct Counterfactual {
  std::vector<Intervention> interventions;
  float p = 0.0f;
  float lift = 0.0f;
  bool reaches_target = false;  // p >= target_p (when target_p was given)
};

struct ServeRequest {
  Op op = Op::kPredict;
  std::string student;
  int64_t question = -1;
  int response = 0;
  // Explicit concept bag; when absent the engine falls back to the
  // question->concepts map seeded from the training data.
  bool has_concepts = false;
  std::vector<int64_t> concepts;
  // ---- recourse fields ----
  int k = 2;             // max interventions per candidate set, in [1, 4]
  int top = 3;           // number of ranked sets to return, in [1, 16]
  double target_p = -1.0;  // mastery goal in [0, 1]; < 0 means "no goal"
  // Candidate practice questions for kInsertPractice primitives. When
  // absent the engine defaults to {question} (practice the target itself).
  bool has_insert_questions = false;
  std::vector<int64_t> insert_questions;
  // Evaluate every candidate by brute-force full re-encode instead of the
  // stacked/stream-reuse fast path. Same bits by contract; exists so tests
  // and the loadgen gate can prove it.
  bool brute = false;
};

struct ServeResponse {
  bool ok = true;
  std::string error;
  Op op = Op::kPredict;
  std::string student;
  int64_t question = -1;
  float p = 0.0f;       // predict: p(correct) at the target
  int64_t history = 0;  // session history length after the op
  // explain payload (RCKT::Explanation of the session's prefix).
  std::vector<float> influence;
  std::vector<int> responses;
  float total_correct = 0.0f;
  float total_incorrect = 0.0f;
  float score = 0.0f;
  bool predicted_correct = false;
  // stats payload
  int64_t sessions = 0;
  int64_t state_bytes = 0;
  int64_t history_bytes = 0;
  int64_t evictions = 0;
  // stats: model identity (which weights served this traffic). The
  // fingerprint is nn::FingerprintModule of the serving parameters; the
  // version counts continual-trainer promotions (0 = the offline model).
  uint64_t model_fingerprint = 0;
  int64_t weight_version = 0;
  // stats: continual-trainer section, filled by the ShardSet stats
  // decorator when `serve --continual` is live (absent from the wire
  // otherwise).
  bool has_continual = false;
  int64_t continual_events = 0;
  int64_t continual_mini_epochs = 0;
  int64_t continual_promotions = 0;
  int64_t continual_reservoir_size = 0;
  uint64_t continual_reservoir_fnv64 = 0;
  // recourse payload
  float base_p = 0.0f;     // factual predict probability (fp32 head)
  int64_t evaluated = 0;   // candidate sets scored
  std::vector<Counterfactual> candidates;  // ranked, best first
};

// One committed history update, as seen by the continual-learning event
// stream: `index` is the student's per-session event index (the history
// length BEFORE this interaction), which is deterministic for a student's
// own stream regardless of shard layout. The referenced strings/vectors are
// only valid for the duration of the sink call.
struct UpdateEvent {
  std::string_view student;
  int64_t index = 0;
  int64_t question = -1;
  int response = 0;
  const std::vector<int64_t>* concepts = nullptr;
};

struct EngineOptions {
  // Budget for cached neural state across all sessions (see SessionStore).
  size_t session_budget_bytes = 64ull << 20;
  // Input validation bounds; 0 disables the check (ids the embedder has
  // never seen would abort the process inside EmbeddingLookup otherwise).
  int64_t num_questions = 0;
  int64_t num_concepts = 0;
  // Cold session tier directory (serve/coldtier.h); empty disables it.
  // With a cold dir, eviction snapshots neural state to disk instead of
  // discarding it, the next touch reloads the snapshot (bit-identical to
  // the replay rebuild it replaces), and a restarted server resumes
  // snapshotted sessions — history included — without replay.
  std::string cold_dir;
  // Serve precision policy (serve/lowp_head.h). Below fp32, ONLY the
  // predict MLP head changes: update/replay/explain and all session state
  // keep the bitwise fp32 contract. int8 additionally needs
  // CalibrateLowp() with sample data before it takes effect; predicts
  // fall back to fp32 until then.
  Precision precision = Precision::kFp32;
  // Fingerprint of the serving weights at startup (see
  // nn::FingerprintModule); reported by `stats` and stamped into cold-tier
  // snapshot headers so stale-model snapshots read as misses.
  uint64_t model_fingerprint = 0;
  // Continual-learning event tap: invoked synchronously on the engine's
  // thread for every COMMITTED update (after the session stepped), with
  // this engine's shard index. Must be cheap and must not call back into
  // the engine.
  std::function<void(int shard, const UpdateEvent&)> update_sink;
  // Which shard this engine serves (set by ShardSet; 0 for a lone engine).
  int shard_index = 0;
};

// NOT thread-safe: one engine is driven by one thread (the micro-batcher's
// dispatcher in the server). Concurrency comes from kt::parallel inside the
// stacked compute, not from concurrent Execute calls.
class InferenceEngine {
 public:
  InferenceEngine(rckt::RCKT& model, EngineOptions options);

  // Seeds the question->concepts fallback map (first occurrence wins).
  void LoadConceptMap(const data::Dataset& dataset);

  // Static int8 activation calibration (no-op for fp32/bf16): harvests up
  // to `max_rows` real predict-head input rows from the dataset (forward
  // replay of sequence prefixes — the same math EnsureStream runs) and
  // records per-tensor activation scales. Deterministic for a given
  // dataset, so independently calibrated shards agree bit-for-bit.
  void CalibrateLowp(const data::Dataset& dataset, int64_t max_rows = 256);

  // The active precision, and whether predicts are actually served at it
  // (int8 reports false until CalibrateLowp has run).
  Precision precision() const { return options_.precision; }
  bool lowp_active() const;

  ServeResponse Execute(const ServeRequest& request);

  // Executes `requests` with results equal to sequential Execute calls in
  // order, but coalesces adjacent runs of predicts (stacked MLP head) and
  // of updates on distinct students (stacked encoder step) — the dynamic
  // micro-batching payoff. Stacked and sequential paths are bit-identical
  // (every GEMM row is an independent accumulator chain).
  std::vector<ServeResponse> ExecuteBatch(
      const std::vector<ServeRequest>& requests);

  const SessionStore& sessions() const { return store_; }
  int64_t dim() const { return dim_; }

  // Cold-tier plumbing. FlushColdSnapshots persists every resident
  // session (graceful shutdown), so a warm restart resumes them all; the
  // counters let tests and operators distinguish "resumed from cold
  // snapshot" from "rebuilt by replay".
  void FlushColdSnapshots();
  int64_t cold_loads() const { return cold_loads_; }
  int64_t replays() const { return replays_; }

  // Weight-swap notification (must run on the engine's own thread, with no
  // request in flight — ShardSet::SwapWeights quiesces the workers first).
  // Every session's cached forward stream and last_f are dropped — the
  // histories are kept, so the next touch rebuilds by replay against the
  // NEW weights, bit-identical to a fresh replay — and the cold tier's
  // snapshot fingerprint moves to the new model so pre-swap snapshots load
  // as misses.
  void OnModelSwapped(uint64_t fingerprint);
  uint64_t model_fingerprint() const { return options_.model_fingerprint; }

 private:
  // Concept bag for a request (explicit > map > empty).
  const std::vector<int64_t>& ConceptsFor(const ServeRequest& request) const;
  // Validates ids; fills *response and returns false on a bad request.
  bool Validate(const ServeRequest& request, ServeResponse* response) const;
  // Makes sure `session.stream` exists, replaying the history if it was
  // evicted. Counts serve.cache_hit / serve.cache_miss.
  void EnsureStream(Session& session);
  // Bookkeeping after the stream advanced (state size + LRU budget).
  void AccountState(Session& session);
  // The MLP-head input row [1, 2*dim] for predicting `question` on
  // `session` (h-half from the cached forward stream, e-half embedded).
  Tensor PredictInputRow(const Session& session, int64_t question,
                         const std::vector<int64_t>& concepts) const;
  // Same row built from an explicit forward-stream output (numel 0 means
  // "empty history": the zero boundary). Recourse uses this to score
  // hypothetical streams without touching the session.
  Tensor HeadInputRow(const Tensor& last_f, int64_t question,
                      const std::vector<int64_t>& concepts) const;
  // Concept bag for an arbitrary question id (map lookup, else empty).
  const std::vector<int64_t>& BagFor(int64_t question) const;
  // The embedded interaction row a = e + r_emb[response], [1, dim].
  Tensor InteractionRow(int64_t question, const std::vector<int64_t>& concepts,
                        int response) const;

  ServeResponse ExecutePredict(const ServeRequest& request);
  ServeResponse ExecuteUpdate(const ServeRequest& request);
  ServeResponse ExecuteExplain(const ServeRequest& request);
  ServeResponse ExecuteRecourse(const ServeRequest& request);
  ServeResponse ExecuteStats(const ServeRequest& request);

  // Coalesced runs for ExecuteBatch ([begin, end) of same-op requests).
  void PredictRun(const std::vector<ServeRequest>& requests, size_t begin,
                  size_t end, std::vector<ServeResponse>* out);
  void UpdateRun(const std::vector<ServeRequest>& requests, size_t begin,
                 size_t end, std::vector<ServeResponse>* out);

  rckt::RCKT& model_;
  EngineOptions options_;
  std::unique_ptr<LowpHead> lowp_head_;  // null when precision is fp32
  int64_t dim_;
  SessionStore store_;
  std::unique_ptr<ColdTier> cold_;  // null when options_.cold_dir is empty
  int64_t cold_loads_ = 0;
  int64_t replays_ = 0;
  std::unordered_map<int64_t, std::vector<int64_t>> concept_map_;
  const std::vector<int64_t> empty_bag_;
};

const char* OpName(Op op);

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_ENGINE_H_
