#include "serve/lowp_head.h"

#include <cmath>
#include <cstring>

#include "core/logging.h"
#include "tensor/gemm.h"

namespace kt {
namespace serve {
namespace {

// Same formulas as ag::ApplyAct (autograd/ops.cc) so the only deviation
// from the fp32 head is the quantized GEMMs themselves.
inline float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }
inline float ReluF(float x) { return x > 0.0f ? x : 0.0f; }

}  // namespace

bool PrecisionByName(const std::string& name, Precision* out) {
  if (name == "fp32") {
    *out = Precision::kFp32;
    return true;
  }
  if (name == "bf16") {
    *out = Precision::kBf16;
    return true;
  }
  if (name == "int8") {
    *out = Precision::kInt8;
    return true;
  }
  return false;
}

const char* PrecisionName(Precision precision) {
  switch (precision) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
  }
  return "fp32";
}

LowpHead::LowpHead(Precision precision, const nn::Linear& hidden,
                   const nn::Linear& out)
    : precision_(precision),
      in_(hidden.in_features()),
      mid_(hidden.out_features()) {
  KT_CHECK(precision != Precision::kFp32);
  KT_CHECK_EQ(out.in_features(), mid_);
  KT_CHECK_EQ(out.out_features(), 1);
  const Tensor& w1 = hidden.weight().value();  // [2d, d]
  const Tensor& w2 = out.weight().value();     // [d, 1]
  bias1_.assign(hidden.bias().value().data(),
                hidden.bias().value().data() + mid_);
  bias2_.assign(out.bias().value().data(), out.bias().value().data() + 1);
  if (precision_ == Precision::kBf16) {
    w1_bf16_ = quant::PackBf16(w1.data(), in_, mid_);
    w2_bf16_ = quant::PackBf16(w2.data(), mid_, 1);
    calibrated_ = true;  // bf16 needs no activation statistics
  } else {
    w1_int8_ = quant::PackInt8(w1.data(), in_, mid_);
    w2_int8_ = quant::PackInt8(w2.data(), mid_, 1);
    // Kept only until CalibrateInt8 has observed the fp32 hidden range.
    w1_fp32_.assign(w1.data(), w1.data() + in_ * mid_);
  }
}

void LowpHead::HiddenEpilogue(float* hidden, int64_t k) const {
  for (int64_t i = 0; i < k; ++i) {
    float* row = hidden + i * mid_;
    for (int64_t j = 0; j < mid_; ++j) row[j] = ReluF(row[j] + bias1_[j]);
  }
}

void LowpHead::OutEpilogue(const float* logits, int64_t k,
                           float* probs) const {
  for (int64_t i = 0; i < k; ++i) probs[i] = SigmoidF(logits[i] + bias2_[0]);
}

void LowpHead::Forward(const Tensor& x, float* probs) const {
  const int64_t k = x.shape()[0];
  KT_CHECK_EQ(x.shape()[1], in_);
  if (k <= 0) return;
  std::vector<float> hidden(static_cast<size_t>(k * mid_));
  std::vector<float> logits(static_cast<size_t>(k));
  if (precision_ == Precision::kBf16) {
    quant::GemmBf16(x.data(), w1_bf16_, hidden.data(), k);
    HiddenEpilogue(hidden.data(), k);
    quant::GemmBf16(hidden.data(), w2_bf16_, logits.data(), k);
  } else {
    KT_CHECK(calibrated_);
    quant::GemmInt8FromFloat(x.data(), x_params_, w1_int8_, hidden.data(), k);
    HiddenEpilogue(hidden.data(), k);
    quant::GemmInt8FromFloat(hidden.data(), hidden_params_, w2_int8_,
                             logits.data(), k);
  }
  OutEpilogue(logits.data(), k, probs);
}

void LowpHead::CalibrateInt8(const Tensor& sample_x) {
  if (precision_ != Precision::kInt8) return;
  const int64_t k = sample_x.shape()[0];
  KT_CHECK_EQ(sample_x.shape()[1], in_);
  KT_CHECK_GT(k, 0);
  KT_CHECK(!w1_fp32_.empty());
  // Observe the fp32 head on the sample rows: x feeds layer 1 directly,
  // the post-relu hidden block feeds layer 2.
  std::vector<float> hidden(static_cast<size_t>(k * mid_));
  Gemm(sample_x.data(), w1_fp32_.data(), hidden.data(), k, in_, mid_);
  HiddenEpilogue(hidden.data(), k);
  x_params_ = quant::CalibrateSymmetric(sample_x.data(), k * in_);
  hidden_params_ = quant::CalibrateSymmetric(hidden.data(), k * mid_);
  calibrated_ = true;
  w1_fp32_.clear();
  w1_fp32_.shrink_to_fit();
}

}  // namespace serve
}  // namespace kt
