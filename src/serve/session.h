// Per-student session cache for online serving.
//
// A session holds a student's interaction history plus the incremental
// neural state of the model's forward stream: recurrent hidden/cell rows
// for DKT/GRU, append-only attention KV caches for SAKT/AKT (see
// rckt::ForwardStreamState). Sessions are kept in an LRU list under a
// configurable memory budget counting neural state AND history bytes —
// when the budget is exceeded the least-recently-used sessions' neural
// state is dropped while their histories are kept, so a returning student
// is rebuilt by one ReplayForward pass instead of being forgotten.
// Histories still count against the budget (they are real resident
// memory): a store full of long histories evicts neural state earlier,
// and `stats` reports history_bytes so operators can size budgets.
#ifndef KT_SERVE_SESSION_H_
#define KT_SERVE_SESSION_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "rckt/encoders.h"
#include "tensor/tensor.h"

namespace kt {
namespace serve {

struct Session {
  std::string id;
  // Everything the student has answered, in order (questions, responses,
  // concept bags). Never evicted — it is the ground truth the neural state
  // can always be rebuilt from.
  std::vector<data::Interaction> history;
  // Incremental forward-stream state; nullptr after eviction (or before
  // first use) — the engine replays the history to rebuild it.
  std::unique_ptr<rckt::ForwardStreamState> stream;
  // Forward-stream output at the last history position, [1, dim]
  // (numel 0 while the history is empty). This is the h-half of the next
  // predict's MLP input.
  Tensor last_f;
  // Accounted bytes of `stream` (+ last_f), kept in sync by the store.
  size_t state_bytes = 0;
  // Accounted bytes of `history` (interactions + concept bags), kept in
  // sync by the store. Charged against the budget but never evicted —
  // eviction only ever reclaims state_bytes.
  size_t history_bytes = 0;
};

class SessionStore {
 public:
  // `budget_bytes` bounds the summed state_bytes of all sessions; 0 means
  // unlimited.
  explicit SessionStore(size_t budget_bytes);

  // Returns the session for `id`, creating it if needed, and marks it
  // most-recently-used. Pointers remain valid until Erase — the store is
  // node-based.
  Session& GetOrCreate(const std::string& id);

  // Lookup without creating (does not touch LRU order).
  Session* Find(const std::string& id);

  // Records that `session`'s neural state now occupies `bytes`, then
  // evicts least-recently-used neural state (never `session`'s own, never
  // a pinned session's, and never any history) until the budget holds
  // again.
  void SetStateBytes(Session& session, size_t bytes);

  // Records that `session`'s history now occupies `bytes`. History counts
  // against the budget (so growing histories squeeze out cold neural
  // state) but is itself never evicted; a store whose histories alone
  // exceed the budget simply holds no neural state.
  void SetHistoryBytes(Session& session, size_t bytes);

  // Pins sessions against eviction for the duration of a coalesced run:
  // the engine collects raw stream pointers for several sessions before
  // stepping them together, so accounting for a later session must not
  // free an earlier session's stream. On destruction the pins are released
  // and the budget is re-enforced in one pass.
  class PinScope {
   public:
    explicit PinScope(SessionStore& store) : store_(store) {}
    ~PinScope();
    PinScope(const PinScope&) = delete;
    PinScope& operator=(const PinScope&) = delete;

    void Pin(Session& session);

   private:
    SessionStore& store_;
    std::vector<const Session*> pinned_;
  };

  // Drops the whole session (reset op).
  void Erase(const std::string& id);

  // Called with each eviction victim right BEFORE its neural state is
  // dropped — the cold tier's snapshot hook. The hook must not touch the
  // store (it runs mid-eviction).
  void SetEvictionHook(std::function<void(Session&)> hook) {
    eviction_hook_ = std::move(hook);
  }

  // Visits every live session (graceful-shutdown cold flush).
  void ForEach(const std::function<void(Session&)>& fn);

  size_t size() const { return sessions_.size(); }
  size_t total_state_bytes() const { return total_state_bytes_; }
  size_t total_history_bytes() const { return total_history_bytes_; }
  uint64_t evictions() const { return evictions_; }
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    Session session;
    std::list<std::string>::iterator lru_it;
  };

  void Touch(Entry& entry);
  void EvictUntilWithinBudget(const Session* keep);

  size_t budget_bytes_;
  size_t total_state_bytes_ = 0;
  size_t total_history_bytes_ = 0;
  uint64_t evictions_ = 0;
  std::function<void(Session&)> eviction_hook_;
  // Sessions currently protected by a live PinScope.
  std::unordered_set<const Session*> pinned_;
  // Front = most recently used.
  std::list<std::string> lru_;
  std::unordered_map<std::string, Entry> sessions_;
};

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_SESSION_H_
