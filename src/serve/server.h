// Newline-delimited-JSON serving front end.
//
// Two transports share one protocol:
//   * stdio  (port == 0): synchronous request/response over stdin/stdout —
//     trivially scriptable (`echo '{"op":...}' | ktcli serve ...`);
//   * TCP    (port  > 0): listens on 127.0.0.1, one thread per connection,
//     all connections feeding the shared MicroBatcher so concurrent
//     clients coalesce into engine batches.
//
// Protocol (one JSON object per line, one response line per request):
//   {"op":"predict","student":"s1","question":7,"concepts":[2,5]}
//     -> {"ok":true,"op":"predict",...,"p":0.53,"history":12}
//   {"op":"update","student":"s1","question":7,"response":1}
//     -> {"ok":true,"op":"update",...,"history":13}
//   {"op":"explain","student":"s1","question":7}
//     -> {"ok":true,...,"influence":[...],"responses":[...],...}
//   {"op":"reset","student":"s1"} | {"op":"stats"} | {"op":"shutdown"}
// `concepts` is optional everywhere (fallback: the engine's question map).
#ifndef KT_SERVE_SERVER_H_
#define KT_SERVE_SERVER_H_

#include <string>

#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/framing.h"
#include "serve/json.h"

namespace kt {
namespace serve {

struct ServerOptions {
  int port = 0;  // 0 = stdio transport
  // Per-line request cap (serve/framing.h). An oversized line gets an
  // `ok:false` reply; TCP then closes the connection, stdio resyncs to the
  // next newline.
  size_t max_line_bytes = kDefaultMaxLineBytes;
  BatcherOptions batcher;
};

// Serves until stdin EOF / a shutdown op. Returns a process exit code.
int RunServer(InferenceEngine& engine, const ServerOptions& options);

// Wire <-> struct conversions (shared by the server, kt_loadgen and
// tests/serve_test.cc). ParseServeRequest rejects unknown/malformed ops
// ("shutdown" is transport-level and handled before this).
bool ParseServeRequest(const JsonValue& json, ServeRequest* out,
                       std::string* error);
std::string SerializeResponse(const ServeResponse& response);
std::string SerializeError(const std::string& message);

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_SERVER_H_
