// Newline-delimited-JSON serving front end.
//
// Two transports share one protocol:
//   * stdio  (port == 0): synchronous request/response over stdin/stdout —
//     trivially scriptable (`echo '{"op":...}' | ktcli serve ...`);
//   * TCP    (port  > 0): a nonblocking epoll reactor (serve/reactor.h)
//     on 127.0.0.1, feeding N shard engines (serve/shard.h) routed by
//     student hash. Replies per connection keep request order even when
//     shards finish out of order.
//
// Protocol (one JSON object per line, one response line per request):
//   {"op":"predict","student":"s1","question":7,"concepts":[2,5]}
//     -> {"ok":true,"op":"predict",...,"p":0.53,"history":12}
//   {"op":"update","student":"s1","question":7,"response":1}
//     -> {"ok":true,"op":"update",...,"history":13}
//   {"op":"explain","student":"s1","question":7}
//     -> {"ok":true,...,"influence":[...],"responses":[...],...}
//   {"op":"reset","student":"s1"} | {"op":"stats"} | {"op":"shutdown"}
// `concepts` is optional everywhere (fallback: the engine's question map).
// `stats` sums across shards, so its payload is layout-independent.
#ifndef KT_SERVE_SERVER_H_
#define KT_SERVE_SERVER_H_

#include <functional>
#include <string>

#include "serve/batcher.h"
#include "serve/engine.h"
#include "serve/framing.h"
#include "serve/json.h"

namespace kt {
namespace serve {

class ShardSet;

// Lifecycle hooks around the serving loop. `on_start` runs after the
// ShardSet is live and before the first request (the continual trainer
// attaches here: stats decorator + its training thread); `on_stop` runs
// after the serving loop exits, BEFORE the cold-snapshot flush and shard
// stop — so the hook may still SubmitSync/SwapWeights on its way out.
struct ServeHooks {
  std::function<void(ShardSet&)> on_start;
  std::function<void()> on_stop;
};

struct ServerOptions {
  int port = 0;    // 0 = stdio transport
  int shards = 1;  // worker shards (TCP; stdio always behaves like 1)
  // Initial weight version for `stats` (see ShardSetOptions).
  int64_t initial_weight_version = 0;
  // Per-line request cap (serve/framing.h). An oversized line gets an
  // `ok:false` reply; TCP then closes the connection, stdio resyncs to the
  // next newline.
  size_t max_line_bytes = kDefaultMaxLineBytes;
  BatcherOptions batcher;
  // Session budget (split across shards), id bounds, cold tier dir.
  EngineOptions engine;
};

// Serves until stdin EOF / a shutdown op. Flushes cold-tier snapshots on
// the way out (warm restart), then stops the shards. Returns a process
// exit code. `concept_data`, when given, seeds the question->concepts
// fallback map of every shard. `hooks` brackets the serving loop (see
// ServeHooks).
int RunServer(rckt::RCKT& model, const ServerOptions& options,
              const data::Dataset* concept_data = nullptr,
              const ServeHooks& hooks = {});

// Wire <-> struct conversions (shared by the server, kt_loadgen and
// tests/serve_test.cc). ParseServeRequest rejects unknown/malformed ops
// ("shutdown" is transport-level and handled before this).
bool ParseServeRequest(const JsonValue& json, ServeRequest* out,
                       std::string* error);
std::string SerializeResponse(const ServeResponse& response);
std::string SerializeError(const std::string& message);

// One decoded request line (shared by the stdio front end and the
// reactor): exactly one of `shutdown`, `ok` (request valid), or `error`.
struct DecodedLine {
  bool shutdown = false;
  bool ok = false;
  std::string error;
  ServeRequest request;
};
DecodedLine DecodeLine(const std::string& line);

// True for whitespace-only lines (skipped without a reply).
bool BlankLine(const std::string& line);

// The ok:false reply for a request line past the framer cap.
std::string OversizeError(size_t max_line_bytes);

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_SERVER_H_
