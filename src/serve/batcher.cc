#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "obs/obs.h"

namespace kt {
namespace serve {

MicroBatcher::MicroBatcher(InferenceEngine& engine, BatcherOptions options)
    : engine_(engine), options_(options) {
  KT_CHECK_GT(options_.max_batch, 0);
  KT_CHECK_GT(options_.max_queue, 0);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

MicroBatcher::~MicroBatcher() { Stop(); }

ServeResponse MicroBatcher::Submit(const ServeRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  Pending pending;
  pending.request = &request;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Backpressure: block the producer while the queue is at capacity.
    space_cv_.wait(lock, [&] {
      return stopping_ ||
             static_cast<int64_t>(queue_.size()) < options_.max_queue;
    });
    if (stopping_) {
      ServeResponse response;
      response.ok = false;
      response.error = "server is shutting down";
      return response;
    }
    queue_.push_back(&pending);
    if (obs::Enabled()) {
      obs::Histogram::Get("serve.queue_depth")
          ->Record(static_cast<double>(queue_.size()));
    }
    queue_cv_.notify_one();
    done_cv_.wait(lock, [&] { return pending.done; });
  }
  if (obs::Enabled()) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    obs::Histogram::Get("serve.request_latency_us")
        ->Record(static_cast<double>(elapsed.count()));
  }
  return pending.response;
}

void MicroBatcher::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Coalescing window: give concurrent producers up to max_wait_us to
    // join this batch (skipped once max_batch are already pending).
    if (static_cast<int64_t>(queue_.size()) < options_.max_batch &&
        options_.max_wait_us > 0 && !stopping_) {
      queue_cv_.wait_for(
          lock, std::chrono::microseconds(options_.max_wait_us), [&] {
            return stopping_ ||
                   static_cast<int64_t>(queue_.size()) >= options_.max_batch;
          });
    }
    const size_t take = std::min(queue_.size(),
                                 static_cast<size_t>(options_.max_batch));
    std::vector<Pending*> slice(queue_.begin(),
                                queue_.begin() + static_cast<long>(take));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(take));
    space_cv_.notify_all();
    std::vector<ServeRequest> requests;
    requests.reserve(take);
    for (const Pending* pending : slice) requests.push_back(*pending->request);
    lock.unlock();
    if (obs::Enabled()) {
      obs::Histogram::Get("serve.batch_size")
          ->Record(static_cast<double>(take));
    }
    std::vector<ServeResponse> responses = engine_.ExecuteBatch(requests);
    lock.lock();
    for (size_t i = 0; i < slice.size(); ++i) {
      slice[i]->response = std::move(responses[i]);
      slice[i]->done = true;
    }
    done_cv_.notify_all();
    if (stopping_ && queue_.empty()) return;
  }
}

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

}  // namespace serve
}  // namespace kt
