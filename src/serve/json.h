// Minimal JSON for the serving wire protocol (newline-delimited JSON over
// stdio or TCP). Zero-dependency by design: a recursive-descent parser into
// a small variant type plus a comma-managing writer.
//
// Floats are emitted with %.9g, which round-trips every float bit pattern
// through decimal — the parity checks in scripts/check_serve.sh compare
// server output against `ktcli evaluate --json` output literally.
#ifndef KT_SERVE_JSON_H_
#define KT_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace kt {
namespace serve {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  // Insertion-ordered; duplicate keys keep the first occurrence on Find.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  // Safe number -> int64 conversion: false when this value is not a
  // number or lies outside int64 range (where the raw double cast would
  // be undefined behaviour). NaN fails; fractional values truncate.
  bool ToInt(int64_t* out) const;

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Typed member accessors with defaults (object-only helpers).
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetNumber(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;
};

// Parses exactly one JSON value (trailing non-space content is an error).
// On failure returns false and fills *error with a position-annotated
// message.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// Escapes `s` per RFC 8259 and appends the quoted result to *out.
void AppendJsonString(std::string* out, const std::string& s);

// Single-line JSON writer with automatic comma placement.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  // Starts an object member; follow with exactly one value call (or
  // BeginObject/BeginArray).
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Float(float value);   // %.9g — float round-trip safe
  JsonWriter& Double(double value); // %.17g — double round-trip safe
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  std::string out_;
  // true when the next emission at this depth needs a leading comma.
  std::vector<bool> need_comma_;
  bool after_key_ = false;
};

}  // namespace serve
}  // namespace kt

#endif  // KT_SERVE_JSON_H_
