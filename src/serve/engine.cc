#include "serve/engine.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "autograd/ops.h"
#include "data/batch.h"
#include "obs/obs.h"

namespace kt {
namespace serve {
namespace {

void BumpCounter(const char* name, int64_t n = 1) {
  if (!obs::Enabled()) return;
  obs::Counter::Get(name)->Add(n);
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kPredict:
      return "predict";
    case Op::kUpdate:
      return "update";
    case Op::kExplain:
      return "explain";
    case Op::kReset:
      return "reset";
    case Op::kStats:
      return "stats";
  }
  return "?";
}

InferenceEngine::InferenceEngine(rckt::RCKT& model, EngineOptions options)
    : model_(model),
      options_(std::move(options)),
      dim_(model.config().dim),
      store_(options_.session_budget_bytes) {
  if (options_.precision != Precision::kFp32) {
    lowp_head_ = std::make_unique<LowpHead>(options_.precision,
                                            model_.mlp_hidden(),
                                            model_.mlp_out());
  }
  if (!options_.cold_dir.empty()) {
    cold_ = std::make_unique<ColdTier>(
        options_.cold_dir, model_.bi_encoder(), model_.config().encoder,
        dim_, model_.config().num_layers);
    // Eviction becomes demotion: snapshot the victim's neural state right
    // before the store drops it. The hook only reads the session, so it is
    // safe mid-eviction.
    store_.SetEvictionHook([this](Session& victim) { cold_->Save(victim); });
  }
}

void InferenceEngine::LoadConceptMap(const data::Dataset& dataset) {
  for (const auto& sequence : dataset.sequences) {
    for (const auto& interaction : sequence.interactions) {
      concept_map_.emplace(interaction.question, interaction.concepts);
    }
  }
}

bool InferenceEngine::lowp_active() const {
  return lowp_head_ != nullptr && lowp_head_->calibrated();
}

void InferenceEngine::CalibrateLowp(const data::Dataset& dataset,
                                    int64_t max_rows) {
  if (lowp_head_ == nullptr || lowp_head_->calibrated()) return;
  ag::NoGradGuard no_grad;
  // Harvest real predict-head inputs: for each prefix position t of a
  // sequence, the row the head would see is concat(f_{t-1}, e_t) — the
  // exact construction PredictInputRow performs online. Sequences are
  // visited in dataset order and capped per sequence so the sample spans
  // many students; the whole procedure is deterministic.
  constexpr int64_t kRowsPerSequence = 16;
  std::vector<Tensor> rows;
  for (const auto& sequence : dataset.sequences) {
    if (static_cast<int64_t>(rows.size()) >= max_rows) break;
    const int64_t n = static_cast<int64_t>(sequence.interactions.size());
    if (n <= 0) continue;
    std::vector<int64_t> questions(static_cast<size_t>(n));
    std::vector<int64_t> categories(static_cast<size_t>(n));
    std::vector<std::vector<int64_t>> bags(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const auto& interaction = sequence.interactions[static_cast<size_t>(i)];
      questions[static_cast<size_t>(i)] = interaction.question;
      categories[static_cast<size_t>(i)] = interaction.response;
      bags[static_cast<size_t>(i)] = interaction.concepts;
    }
    const ag::Variable e = model_.embedder().QuestionEmbedRows(questions, bags);
    const ag::Variable r =
        ag::EmbeddingLookup(model_.embedder().response_table(), categories);
    const Tensor a = ag::Add(e, r).value().Reshape(Shape{1, n, dim_});
    auto stream = model_.bi_encoder().NewForwardStream();
    const Tensor f = model_.bi_encoder().ReplayForward(*stream, a);
    const int64_t take = std::min<int64_t>(
        {n, kRowsPerSequence, max_rows - static_cast<int64_t>(rows.size())});
    for (int64_t t = 0; t < take; ++t) {
      Tensor x(Shape{1, 2 * dim_});
      if (t == 0) {
        std::memset(x.data(), 0, static_cast<size_t>(dim_) * sizeof(float));
      } else {
        std::memcpy(x.data(), f.data() + (t - 1) * dim_,
                    static_cast<size_t>(dim_) * sizeof(float));
      }
      std::memcpy(x.data() + dim_, e.value().data() + t * dim_,
                  static_cast<size_t>(dim_) * sizeof(float));
      rows.push_back(std::move(x));
    }
  }
  if (rows.empty()) return;
  const int64_t k = static_cast<int64_t>(rows.size());
  Tensor stacked(Shape{k, 2 * dim_});
  for (int64_t j = 0; j < k; ++j) {
    std::memcpy(stacked.data() + j * 2 * dim_,
                rows[static_cast<size_t>(j)].data(),
                static_cast<size_t>(2 * dim_) * sizeof(float));
  }
  lowp_head_->CalibrateInt8(stacked);
}

const std::vector<int64_t>& InferenceEngine::ConceptsFor(
    const ServeRequest& request) const {
  if (request.has_concepts) return request.concepts;
  auto it = concept_map_.find(request.question);
  return it == concept_map_.end() ? empty_bag_ : it->second;
}

bool InferenceEngine::Validate(const ServeRequest& request,
                               ServeResponse* response) const {
  response->op = request.op;
  response->student = request.student;
  response->question = request.question;
  auto fail = [&](const std::string& message) {
    response->ok = false;
    response->error = message;
    return false;
  };
  if (request.op != Op::kStats && request.student.empty()) {
    return fail("missing student id");
  }
  if (request.op == Op::kPredict || request.op == Op::kUpdate ||
      request.op == Op::kExplain) {
    if (request.question < 0 ||
        (options_.num_questions > 0 &&
         request.question >= options_.num_questions)) {
      return fail("question id out of range");
    }
    if (request.has_concepts && options_.num_concepts > 0) {
      for (const int64_t c : request.concepts) {
        if (c < 0 || c >= options_.num_concepts) {
          return fail("concept id out of range");
        }
      }
    }
  }
  if (request.op == Op::kUpdate &&
      (request.response < 0 || request.response > 1)) {
    return fail("response must be 0 or 1");
  }
  return true;
}

void InferenceEngine::EnsureStream(Session& session) {
  if (session.stream != nullptr) {
    BumpCounter("serve.cache_hit");
    return;
  }
  BumpCounter("serve.cache_miss");
  if (cold_ != nullptr && cold_->Load(&session)) {
    // Demoted (or snapshotted by a previous server run): the disk state is
    // bit-identical to the replay rebuild below, at O(bytes) instead of
    // O(T) encoder work — and after a warm restart it carries the history
    // a fresh session wouldn't even have.
    ++cold_loads_;
    AccountState(session);
    return;
  }
  session.stream = model_.bi_encoder().NewForwardStream();
  const int64_t n = static_cast<int64_t>(session.history.size());
  if (n > 0) {
    ++replays_;
    // The neural state was evicted (or never built): rebuild it with one
    // bulk pass over the kept history — bit-identical to having stepped.
    KT_OBS_SCOPE("serve/replay");
    if (obs::Enabled()) {
      obs::Histogram::Get("serve.replay_len")->Record(static_cast<double>(n));
    }
    ag::NoGradGuard no_grad;
    std::vector<int64_t> questions(static_cast<size_t>(n));
    std::vector<int64_t> categories(static_cast<size_t>(n));
    std::vector<std::vector<int64_t>> bags(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const auto& interaction = session.history[static_cast<size_t>(i)];
      questions[static_cast<size_t>(i)] = interaction.question;
      categories[static_cast<size_t>(i)] = interaction.response;
      bags[static_cast<size_t>(i)] = interaction.concepts;
    }
    ag::Variable e = model_.embedder().QuestionEmbedRows(questions, bags);
    ag::Variable r = ag::EmbeddingLookup(
        model_.embedder().response_table(), categories);
    const Tensor a = ag::Add(e, r).value().Reshape(Shape{1, n, dim_});
    const Tensor f = model_.bi_encoder().ReplayForward(*session.stream, a);
    session.last_f = Tensor(Shape{1, dim_});
    std::memcpy(session.last_f.data(), f.data() + (n - 1) * dim_,
                static_cast<size_t>(dim_) * sizeof(float));
  }
  AccountState(session);
}

void InferenceEngine::AccountState(Session& session) {
  // Charge what the session actually holds: a session whose stream was
  // evicted out from under it carries no neural state regardless of its
  // history length.
  const size_t bytes =
      session.stream == nullptr
          ? 0
          : model_.bi_encoder().StateBytes(
                static_cast<int64_t>(session.history.size())) +
                static_cast<size_t>(session.last_f.numel()) * sizeof(float);
  store_.SetStateBytes(session, bytes);
}

Tensor InferenceEngine::PredictInputRow(
    const Session& session, int64_t question,
    const std::vector<int64_t>& concepts) const {
  ag::NoGradGuard no_grad;
  const ag::Variable e =
      model_.embedder().QuestionEmbedRows({question}, {concepts});  // [1, d]
  // ShiftAndAdd at the target: h = fwd_{T-2} + backward-zero-boundary. The
  // explicit Add with zeros replays the offline op (it normalizes -0.0f the
  // same way); an empty history contributes the forward zero boundary too.
  const Tensor h_in = session.last_f.numel() > 0
                          ? session.last_f
                          : Tensor::Zeros(Shape{1, dim_});
  const Tensor h = ag::Add(ag::Constant(h_in),
                           ag::Constant(Tensor::Zeros(Shape{1, dim_})))
                       .value();
  // x = concat(h, e) along features, [1, 2d] — same bytes Concat({h,e},2)
  // lays out for this row offline.
  Tensor x(Shape{1, 2 * dim_});
  std::memcpy(x.data(), h.data(), static_cast<size_t>(dim_) * sizeof(float));
  std::memcpy(x.data() + dim_, e.value().data(),
              static_cast<size_t>(dim_) * sizeof(float));
  return x;
}

Tensor InferenceEngine::InteractionRow(int64_t question,
                                       const std::vector<int64_t>& concepts,
                                       int response) const {
  ag::NoGradGuard no_grad;
  const ag::Variable e =
      model_.embedder().QuestionEmbedRows({question}, {concepts});
  const ag::Variable r = ag::EmbeddingLookup(
      model_.embedder().response_table(), {response});
  return ag::Add(e, r).value();
}

ServeResponse InferenceEngine::ExecutePredict(const ServeRequest& request) {
  ServeResponse response;
  if (!Validate(request, &response)) return response;
  KT_OBS_SCOPE("serve/predict");
  ag::NoGradGuard no_grad;
  Session& session = store_.GetOrCreate(request.student);
  EnsureStream(session);
  const Tensor x = PredictInputRow(session, request.question,
                                   ConceptsFor(request));
  if (lowp_active()) {
    // Precision policy: the pure predict head may run below fp32; all
    // state-bearing paths above stayed strict fp32.
    BumpCounter("serve.lowp_predicts");
    lowp_head_->Forward(x, &response.p);
  } else {
    const ag::Variable mid =
        model_.mlp_hidden().ForwardAct(ag::Constant(x), ag::Act::kRelu);
    const ag::Variable p =
        model_.mlp_out().ForwardAct(mid, ag::Act::kSigmoid);  // [1, 1]
    response.p = p.value().flat(0);
  }
  response.history = static_cast<int64_t>(session.history.size());
  return response;
}

ServeResponse InferenceEngine::ExecuteUpdate(const ServeRequest& request) {
  ServeResponse response;
  if (!Validate(request, &response)) return response;
  KT_OBS_SCOPE("serve/update");
  ag::NoGradGuard no_grad;
  Session& session = store_.GetOrCreate(request.student);
  EnsureStream(session);
  const std::vector<int64_t>& concepts = ConceptsFor(request);
  const Tensor a = InteractionRow(request.question, concepts,
                                  request.response);
  session.last_f = model_.bi_encoder().StepForward(*session.stream, a);
  session.history.push_back(
      data::Interaction{request.question, request.response, concepts});
  AccountState(session);
  response.history = static_cast<int64_t>(session.history.size());
  return response;
}

ServeResponse InferenceEngine::ExecuteExplain(const ServeRequest& request) {
  ServeResponse response;
  if (!Validate(request, &response)) return response;
  Session& session = store_.GetOrCreate(request.student);
  if (session.history.empty() && cold_ != nullptr) {
    // After a warm restart the history may live only in the cold tier.
    EnsureStream(session);
  }
  if (session.history.empty()) {
    response.ok = false;
    response.error = "explain needs at least one history interaction";
    return response;
  }
  KT_OBS_SCOPE("serve/explain");
  // Influence attribution needs counterfactual passes over the whole
  // prefix — this is the offline path by construction, run on the
  // session's history with the request as target.
  data::ResponseSequence sequence;
  sequence.interactions = session.history;
  sequence.interactions.push_back(data::Interaction{
      request.question, request.response, ConceptsFor(request)});
  const data::Batch batch = data::MakeBatch({&sequence});
  rckt::RCKT::Explanation explanation =
      std::move(model_.ExplainTargets(batch)[0]);
  response.influence = std::move(explanation.influence);
  response.responses = std::move(explanation.responses);
  response.total_correct = explanation.total_correct;
  response.total_incorrect = explanation.total_incorrect;
  response.score = explanation.score;
  response.predicted_correct = explanation.predicted_correct;
  response.history = static_cast<int64_t>(session.history.size());
  return response;
}

ServeResponse InferenceEngine::ExecuteStats(const ServeRequest& request) {
  ServeResponse response;
  response.op = request.op;
  response.sessions = static_cast<int64_t>(store_.size());
  response.state_bytes = static_cast<int64_t>(store_.total_state_bytes());
  response.evictions = static_cast<int64_t>(store_.evictions());
  return response;
}

ServeResponse InferenceEngine::Execute(const ServeRequest& request) {
  BumpCounter("serve.requests");
  switch (request.op) {
    case Op::kPredict:
      return ExecutePredict(request);
    case Op::kUpdate:
      return ExecuteUpdate(request);
    case Op::kExplain:
      return ExecuteExplain(request);
    case Op::kReset: {
      ServeResponse response;
      if (!Validate(request, &response)) return response;
      store_.Erase(request.student);
      // A reset must forget the student everywhere — a surviving snapshot
      // would resurrect the history on next touch.
      if (cold_ != nullptr) cold_->Erase(request.student);
      return response;
    }
    case Op::kStats:
      return ExecuteStats(request);
  }
  ServeResponse response;
  response.ok = false;
  response.error = "unknown op";
  return response;
}

void InferenceEngine::PredictRun(const std::vector<ServeRequest>& requests,
                                 size_t begin, size_t end,
                                 std::vector<ServeResponse>* out) {
  ag::NoGradGuard no_grad;
  BumpCounter("serve.requests", static_cast<int64_t>(end - begin));
  std::vector<size_t> slots;
  std::vector<Tensor> rows;
  for (size_t i = begin; i < end; ++i) {
    ServeResponse& response = (*out)[i];
    if (!Validate(requests[i], &response)) continue;
    Session& session = store_.GetOrCreate(requests[i].student);
    EnsureStream(session);
    rows.push_back(PredictInputRow(session, requests[i].question,
                                   ConceptsFor(requests[i])));
    slots.push_back(i);
    response.history = static_cast<int64_t>(session.history.size());
  }
  if (rows.empty()) return;
  // One stacked MLP-head pass for the whole run; row j is bitwise the
  // single-request result.
  const int64_t k = static_cast<int64_t>(rows.size());
  Tensor stacked(Shape{k, 2 * dim_});
  for (int64_t j = 0; j < k; ++j) {
    std::memcpy(stacked.data() + j * 2 * dim_,
                rows[static_cast<size_t>(j)].data(),
                static_cast<size_t>(2 * dim_) * sizeof(float));
  }
  if (lowp_active()) {
    BumpCounter("serve.lowp_predicts", k);
    std::vector<float> probs(static_cast<size_t>(k));
    lowp_head_->Forward(stacked, probs.data());
    for (int64_t j = 0; j < k; ++j) {
      (*out)[slots[static_cast<size_t>(j)]].p = probs[static_cast<size_t>(j)];
    }
    return;
  }
  const ag::Variable mid =
      model_.mlp_hidden().ForwardAct(ag::Constant(stacked), ag::Act::kRelu);
  const ag::Variable p =
      model_.mlp_out().ForwardAct(mid, ag::Act::kSigmoid);  // [k, 1]
  for (int64_t j = 0; j < k; ++j) {
    (*out)[slots[static_cast<size_t>(j)]].p = p.value().flat(j);
  }
}

void InferenceEngine::UpdateRun(const std::vector<ServeRequest>& requests,
                                size_t begin, size_t end,
                                std::vector<ServeResponse>* out) {
  ag::NoGradGuard no_grad;
  BumpCounter("serve.requests", static_cast<int64_t>(end - begin));
  std::vector<size_t> slots;
  std::vector<Session*> touched;
  std::vector<rckt::ForwardStreamState*> states;
  std::vector<Tensor> rows;
  std::vector<const std::vector<int64_t>*> bags;
  // The raw stream pointers in `states` stay live across the whole run:
  // pin every session before a later request's EnsureStream/AccountState
  // can trigger eviction, which would free an earlier session's stream
  // under StepForwardMany. The budget is re-enforced when the scope ends.
  SessionStore::PinScope pins(store_);
  for (size_t i = begin; i < end; ++i) {
    ServeResponse& response = (*out)[i];
    if (!Validate(requests[i], &response)) continue;
    Session& session = store_.GetOrCreate(requests[i].student);
    pins.Pin(session);
    EnsureStream(session);
    const std::vector<int64_t>& concepts = ConceptsFor(requests[i]);
    rows.push_back(InteractionRow(requests[i].question, concepts,
                                  requests[i].response));
    slots.push_back(i);
    touched.push_back(&session);
    states.push_back(session.stream.get());
    bags.push_back(&concepts);
  }
  if (rows.empty()) return;
  // One batched encoder step across the distinct students of the run.
  const std::vector<Tensor> outputs =
      model_.bi_encoder().StepForwardMany(states, rows);
  for (size_t j = 0; j < slots.size(); ++j) {
    Session& session = *touched[j];
    const ServeRequest& request = requests[slots[j]];
    session.last_f = outputs[j];
    session.history.push_back(
        data::Interaction{request.question, request.response, *bags[j]});
    AccountState(session);
    (*out)[slots[j]].history = static_cast<int64_t>(session.history.size());
  }
}

void InferenceEngine::FlushColdSnapshots() {
  if (cold_ == nullptr) return;
  store_.ForEach([this](Session& session) { cold_->Save(session); });
}

std::vector<ServeResponse> InferenceEngine::ExecuteBatch(
    const std::vector<ServeRequest>& requests) {
  const size_t n = requests.size();
  std::vector<ServeResponse> out(n);
  size_t i = 0;
  while (i < n) {
    const Op op = requests[i].op;
    if (op == Op::kPredict) {
      size_t j = i;
      while (j < n && requests[j].op == Op::kPredict) ++j;
      PredictRun(requests, i, j, &out);
      i = j;
    } else if (op == Op::kUpdate) {
      // A student appearing twice must step sequentially: close the run at
      // the repeat so the second step sees the first one's state.
      std::unordered_set<std::string> seen;
      size_t j = i;
      while (j < n && requests[j].op == Op::kUpdate &&
             seen.insert(requests[j].student).second) {
        ++j;
      }
      UpdateRun(requests, i, j, &out);
      i = j;
    } else {
      out[i] = Execute(requests[i]);
      ++i;
    }
  }
  return out;
}

}  // namespace serve
}  // namespace kt
