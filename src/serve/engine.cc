#include "serve/engine.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_set>
#include <utility>

#include "autograd/ops.h"
#include "data/batch.h"
#include "obs/obs.h"

namespace kt {
namespace serve {
namespace {

void BumpCounter(const char* name, int64_t n = 1) {
  if (!obs::Enabled()) return;
  obs::Counter::Get(name)->Add(n);
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kPredict:
      return "predict";
    case Op::kUpdate:
      return "update";
    case Op::kExplain:
      return "explain";
    case Op::kRecourse:
      return "recourse";
    case Op::kReset:
      return "reset";
    case Op::kStats:
      return "stats";
  }
  return "?";
}

InferenceEngine::InferenceEngine(rckt::RCKT& model, EngineOptions options)
    : model_(model),
      options_(std::move(options)),
      dim_(model.config().dim),
      store_(options_.session_budget_bytes) {
  if (options_.precision != Precision::kFp32) {
    lowp_head_ = std::make_unique<LowpHead>(options_.precision,
                                            model_.mlp_hidden(),
                                            model_.mlp_out());
  }
  if (!options_.cold_dir.empty()) {
    cold_ = std::make_unique<ColdTier>(
        options_.cold_dir, model_.bi_encoder(), model_.config().encoder,
        dim_, model_.config().num_layers, options_.model_fingerprint);
    // Eviction becomes demotion: snapshot the victim's neural state right
    // before the store drops it. The hook only reads the session, so it is
    // safe mid-eviction.
    store_.SetEvictionHook([this](Session& victim) { cold_->Save(victim); });
  }
}

void InferenceEngine::LoadConceptMap(const data::Dataset& dataset) {
  for (const auto& sequence : dataset.sequences) {
    for (const auto& interaction : sequence.interactions) {
      concept_map_.emplace(interaction.question, interaction.concepts);
    }
  }
}

bool InferenceEngine::lowp_active() const {
  return lowp_head_ != nullptr && lowp_head_->calibrated();
}

void InferenceEngine::CalibrateLowp(const data::Dataset& dataset,
                                    int64_t max_rows) {
  if (lowp_head_ == nullptr || lowp_head_->calibrated()) return;
  ag::NoGradGuard no_grad;
  // Harvest real predict-head inputs: for each prefix position t of a
  // sequence, the row the head would see is concat(f_{t-1}, e_t) — the
  // exact construction PredictInputRow performs online. Sequences are
  // visited in dataset order and capped per sequence so the sample spans
  // many students; the whole procedure is deterministic.
  constexpr int64_t kRowsPerSequence = 16;
  std::vector<Tensor> rows;
  for (const auto& sequence : dataset.sequences) {
    if (static_cast<int64_t>(rows.size()) >= max_rows) break;
    const int64_t n = static_cast<int64_t>(sequence.interactions.size());
    if (n <= 0) continue;
    std::vector<int64_t> questions(static_cast<size_t>(n));
    std::vector<int64_t> categories(static_cast<size_t>(n));
    std::vector<std::vector<int64_t>> bags(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const auto& interaction = sequence.interactions[static_cast<size_t>(i)];
      questions[static_cast<size_t>(i)] = interaction.question;
      categories[static_cast<size_t>(i)] = interaction.response;
      bags[static_cast<size_t>(i)] = interaction.concepts;
    }
    const ag::Variable e = model_.embedder().QuestionEmbedRows(questions, bags);
    const ag::Variable r =
        ag::EmbeddingLookup(model_.embedder().response_table(), categories);
    const Tensor a = ag::Add(e, r).value().Reshape(Shape{1, n, dim_});
    auto stream = model_.bi_encoder().NewForwardStream();
    const Tensor f = model_.bi_encoder().ReplayForward(*stream, a);
    const int64_t take = std::min<int64_t>(
        {n, kRowsPerSequence, max_rows - static_cast<int64_t>(rows.size())});
    for (int64_t t = 0; t < take; ++t) {
      Tensor x(Shape{1, 2 * dim_});
      if (t == 0) {
        std::memset(x.data(), 0, static_cast<size_t>(dim_) * sizeof(float));
      } else {
        std::memcpy(x.data(), f.data() + (t - 1) * dim_,
                    static_cast<size_t>(dim_) * sizeof(float));
      }
      std::memcpy(x.data() + dim_, e.value().data() + t * dim_,
                  static_cast<size_t>(dim_) * sizeof(float));
      rows.push_back(std::move(x));
    }
  }
  if (rows.empty()) return;
  const int64_t k = static_cast<int64_t>(rows.size());
  Tensor stacked(Shape{k, 2 * dim_});
  for (int64_t j = 0; j < k; ++j) {
    std::memcpy(stacked.data() + j * 2 * dim_,
                rows[static_cast<size_t>(j)].data(),
                static_cast<size_t>(2 * dim_) * sizeof(float));
  }
  lowp_head_->CalibrateInt8(stacked);
}

const std::vector<int64_t>& InferenceEngine::ConceptsFor(
    const ServeRequest& request) const {
  if (request.has_concepts) return request.concepts;
  return BagFor(request.question);
}

const std::vector<int64_t>& InferenceEngine::BagFor(int64_t question) const {
  auto it = concept_map_.find(question);
  return it == concept_map_.end() ? empty_bag_ : it->second;
}

bool InferenceEngine::Validate(const ServeRequest& request,
                               ServeResponse* response) const {
  response->op = request.op;
  response->student = request.student;
  response->question = request.question;
  auto fail = [&](const std::string& message) {
    response->ok = false;
    response->error = message;
    return false;
  };
  if (request.op != Op::kStats && request.student.empty()) {
    return fail("missing student id");
  }
  if (request.op == Op::kPredict || request.op == Op::kUpdate ||
      request.op == Op::kExplain || request.op == Op::kRecourse) {
    if (request.question < 0 ||
        (options_.num_questions > 0 &&
         request.question >= options_.num_questions)) {
      return fail("question id out of range");
    }
    if (request.has_concepts && options_.num_concepts > 0) {
      for (const int64_t c : request.concepts) {
        if (c < 0 || c >= options_.num_concepts) {
          return fail("concept id out of range");
        }
      }
    }
  }
  if (request.op == Op::kUpdate &&
      (request.response < 0 || request.response > 1)) {
    return fail("response must be 0 or 1");
  }
  if (request.op == Op::kRecourse) {
    if (request.k < 1 || request.k > 4) {
      return fail("k must be in [1, 4]");
    }
    if (request.top < 1 || request.top > 16) {
      return fail("top must be in [1, 16]");
    }
    // target_p == -1.0 is the "no goal" sentinel the wire layer sets when
    // the field is absent.
    if (request.target_p != -1.0 &&
        !(request.target_p >= 0.0 && request.target_p <= 1.0)) {
      return fail("target_p must be in [0, 1]");
    }
    if (request.has_insert_questions) {
      for (const int64_t q : request.insert_questions) {
        if (q < 0 ||
            (options_.num_questions > 0 && q >= options_.num_questions)) {
          return fail("insert question id out of range");
        }
      }
    }
  }
  return true;
}

void InferenceEngine::EnsureStream(Session& session) {
  if (session.stream != nullptr) {
    BumpCounter("serve.cache_hit");
    return;
  }
  BumpCounter("serve.cache_miss");
  if (cold_ != nullptr && cold_->Load(&session)) {
    // Demoted (or snapshotted by a previous server run): the disk state is
    // bit-identical to the replay rebuild below, at O(bytes) instead of
    // O(T) encoder work — and after a warm restart it carries the history
    // a fresh session wouldn't even have.
    ++cold_loads_;
    AccountState(session);
    return;
  }
  session.stream = model_.bi_encoder().NewForwardStream();
  const int64_t n = static_cast<int64_t>(session.history.size());
  if (n > 0) {
    ++replays_;
    // The neural state was evicted (or never built): rebuild it with one
    // bulk pass over the kept history — bit-identical to having stepped.
    KT_OBS_SCOPE("serve/replay");
    if (obs::Enabled()) {
      obs::Histogram::Get("serve.replay_len")->Record(static_cast<double>(n));
    }
    ag::NoGradGuard no_grad;
    std::vector<int64_t> questions(static_cast<size_t>(n));
    std::vector<int64_t> categories(static_cast<size_t>(n));
    std::vector<std::vector<int64_t>> bags(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      const auto& interaction = session.history[static_cast<size_t>(i)];
      questions[static_cast<size_t>(i)] = interaction.question;
      categories[static_cast<size_t>(i)] = interaction.response;
      bags[static_cast<size_t>(i)] = interaction.concepts;
    }
    ag::Variable e = model_.embedder().QuestionEmbedRows(questions, bags);
    ag::Variable r = ag::EmbeddingLookup(
        model_.embedder().response_table(), categories);
    const Tensor a = ag::Add(e, r).value().Reshape(Shape{1, n, dim_});
    const Tensor f = model_.bi_encoder().ReplayForward(*session.stream, a);
    session.last_f = Tensor(Shape{1, dim_});
    std::memcpy(session.last_f.data(), f.data() + (n - 1) * dim_,
                static_cast<size_t>(dim_) * sizeof(float));
  }
  AccountState(session);
}

void InferenceEngine::AccountState(Session& session) {
  // Charge what the session actually holds: a session whose stream was
  // evicted out from under it carries no neural state regardless of its
  // history length. The history itself is also real resident memory —
  // interactions plus their concept bags — and is charged separately so
  // long-lived students squeeze cold neural state out of the budget
  // instead of growing unaccounted.
  size_t history_bytes = 0;
  for (const auto& interaction : session.history) {
    history_bytes += sizeof(data::Interaction) +
                     interaction.concepts.size() * sizeof(int64_t);
  }
  store_.SetHistoryBytes(session, history_bytes);
  const size_t bytes =
      session.stream == nullptr
          ? 0
          : model_.bi_encoder().StateBytes(
                static_cast<int64_t>(session.history.size())) +
                static_cast<size_t>(session.last_f.numel()) * sizeof(float);
  store_.SetStateBytes(session, bytes);
}

Tensor InferenceEngine::PredictInputRow(
    const Session& session, int64_t question,
    const std::vector<int64_t>& concepts) const {
  return HeadInputRow(session.last_f, question, concepts);
}

Tensor InferenceEngine::HeadInputRow(
    const Tensor& last_f, int64_t question,
    const std::vector<int64_t>& concepts) const {
  ag::NoGradGuard no_grad;
  const ag::Variable e =
      model_.embedder().QuestionEmbedRows({question}, {concepts});  // [1, d]
  // ShiftAndAdd at the target: h = fwd_{T-2} + backward-zero-boundary. The
  // explicit Add with zeros replays the offline op (it normalizes -0.0f the
  // same way); an empty history contributes the forward zero boundary too.
  const Tensor h_in =
      last_f.numel() > 0 ? last_f : Tensor::Zeros(Shape{1, dim_});
  const Tensor h = ag::Add(ag::Constant(h_in),
                           ag::Constant(Tensor::Zeros(Shape{1, dim_})))
                       .value();
  // x = concat(h, e) along features, [1, 2d] — same bytes Concat({h,e},2)
  // lays out for this row offline.
  Tensor x(Shape{1, 2 * dim_});
  std::memcpy(x.data(), h.data(), static_cast<size_t>(dim_) * sizeof(float));
  std::memcpy(x.data() + dim_, e.value().data(),
              static_cast<size_t>(dim_) * sizeof(float));
  return x;
}

Tensor InferenceEngine::InteractionRow(int64_t question,
                                       const std::vector<int64_t>& concepts,
                                       int response) const {
  ag::NoGradGuard no_grad;
  const ag::Variable e =
      model_.embedder().QuestionEmbedRows({question}, {concepts});
  const ag::Variable r = ag::EmbeddingLookup(
      model_.embedder().response_table(), {response});
  return ag::Add(e, r).value();
}

ServeResponse InferenceEngine::ExecutePredict(const ServeRequest& request) {
  ServeResponse response;
  if (!Validate(request, &response)) return response;
  KT_OBS_SCOPE("serve/predict");
  ag::NoGradGuard no_grad;
  Session& session = store_.GetOrCreate(request.student);
  EnsureStream(session);
  const Tensor x = PredictInputRow(session, request.question,
                                   ConceptsFor(request));
  if (lowp_active()) {
    // Precision policy: the pure predict head may run below fp32; all
    // state-bearing paths above stayed strict fp32.
    BumpCounter("serve.lowp_predicts");
    lowp_head_->Forward(x, &response.p);
  } else {
    const ag::Variable mid =
        model_.mlp_hidden().ForwardAct(ag::Constant(x), ag::Act::kRelu);
    const ag::Variable p =
        model_.mlp_out().ForwardAct(mid, ag::Act::kSigmoid);  // [1, 1]
    response.p = p.value().flat(0);
  }
  response.history = static_cast<int64_t>(session.history.size());
  return response;
}

ServeResponse InferenceEngine::ExecuteUpdate(const ServeRequest& request) {
  ServeResponse response;
  if (!Validate(request, &response)) return response;
  KT_OBS_SCOPE("serve/update");
  ag::NoGradGuard no_grad;
  Session& session = store_.GetOrCreate(request.student);
  EnsureStream(session);
  const std::vector<int64_t>& concepts = ConceptsFor(request);
  const Tensor a = InteractionRow(request.question, concepts,
                                  request.response);
  const int64_t index = static_cast<int64_t>(session.history.size());
  session.last_f = model_.bi_encoder().StepForward(*session.stream, a);
  session.history.push_back(
      data::Interaction{request.question, request.response, concepts});
  AccountState(session);
  if (options_.update_sink) {
    UpdateEvent event;
    event.student = session.id;
    event.index = index;
    event.question = request.question;
    event.response = request.response;
    event.concepts = &session.history.back().concepts;
    options_.update_sink(options_.shard_index, event);
  }
  response.history = static_cast<int64_t>(session.history.size());
  return response;
}

ServeResponse InferenceEngine::ExecuteExplain(const ServeRequest& request) {
  ServeResponse response;
  if (!Validate(request, &response)) return response;
  Session& session = store_.GetOrCreate(request.student);
  if (session.history.empty() && cold_ != nullptr) {
    // After a warm restart the history may live only in the cold tier.
    EnsureStream(session);
  }
  if (session.history.empty()) {
    response.ok = false;
    response.error = "explain needs at least one history interaction";
    return response;
  }
  KT_OBS_SCOPE("serve/explain");
  // Influence attribution needs counterfactual passes over the whole
  // prefix — this is the offline path by construction, run on the
  // session's history with the request as target.
  data::ResponseSequence sequence;
  sequence.interactions = session.history;
  sequence.interactions.push_back(data::Interaction{
      request.question, request.response, ConceptsFor(request)});
  const data::Batch batch = data::MakeBatch({&sequence});
  rckt::RCKT::Explanation explanation =
      std::move(model_.ExplainTargets(batch)[0]);
  response.influence = std::move(explanation.influence);
  response.responses = std::move(explanation.responses);
  response.total_correct = explanation.total_correct;
  response.total_incorrect = explanation.total_incorrect;
  response.score = explanation.score;
  response.predicted_correct = explanation.predicted_correct;
  response.history = static_cast<int64_t>(session.history.size());
  return response;
}

namespace {

// Bounds of the recourse search (DESIGN.md §15). Primitives are the unit
// edits candidate sets are composed from; the candidate cap keeps the
// worst-case stacked batch bounded no matter what K the client asks for.
constexpr int kMaxFlipPrimitives = 8;
constexpr size_t kMaxInsertPrimitives = 4;
constexpr size_t kMaxCandidates = 128;

}  // namespace

ServeResponse InferenceEngine::ExecuteRecourse(const ServeRequest& request) {
  ServeResponse response;
  if (!Validate(request, &response)) return response;
  KT_OBS_SCOPE("serve/recourse");
  ag::NoGradGuard no_grad;
  Session& session = store_.GetOrCreate(request.student);
  EnsureStream(session);
  const std::vector<int64_t>& target_bag = ConceptsFor(request);
  const int64_t history_len = static_cast<int64_t>(session.history.size());
  response.history = history_len;

  // base_p: the factual prediction, always through the strict-fp32 head
  // (recourse, like explain, never runs low precision) — bitwise the
  // offline GeneratorScoreTargets result by the serve predict contract.
  auto head_probs = [&](const Tensor& stacked_rows) -> std::vector<float> {
    const int64_t rows = stacked_rows.shape()[0];
    const ag::Variable mid = model_.mlp_hidden().ForwardAct(
        ag::Constant(stacked_rows), ag::Act::kRelu);
    const ag::Variable p =
        model_.mlp_out().ForwardAct(mid, ag::Act::kSigmoid);  // [rows, 1]
    std::vector<float> out(static_cast<size_t>(rows));
    for (int64_t j = 0; j < rows; ++j) out[static_cast<size_t>(j)] =
        p.value().flat(j);
    return out;
  };
  response.base_p = head_probs(
      PredictInputRow(session, request.question, target_bag))[0];

  // ---- Primitives ----
  // Flips: the most recent incorrect answers (newest first — recency is
  // the natural recourse horizon), capped.
  struct Primitive {
    Intervention intervention;
    bool is_insert;
  };
  std::vector<Primitive> primitives;
  for (int64_t i = history_len - 1;
       i >= 0 &&
       primitives.size() < static_cast<size_t>(kMaxFlipPrimitives);
       --i) {
    const auto& interaction = session.history[static_cast<size_t>(i)];
    if (interaction.response != 0) continue;
    Primitive prim;
    prim.intervention.kind = Intervention::Kind::kFlipResponse;
    prim.intervention.position = i;
    prim.intervention.question = interaction.question;
    prim.is_insert = false;
    primitives.push_back(prim);
  }
  const size_t num_flips = primitives.size();
  // Inserts: requested practice questions (deduped in order, capped), else
  // practicing the target question itself.
  std::vector<int64_t> insert_questions;
  if (request.has_insert_questions) {
    for (const int64_t q : request.insert_questions) {
      if (insert_questions.size() >= kMaxInsertPrimitives) break;
      if (std::find(insert_questions.begin(), insert_questions.end(), q) ==
          insert_questions.end()) {
        insert_questions.push_back(q);
      }
    }
  } else {
    insert_questions.push_back(request.question);
  }
  for (const int64_t q : insert_questions) {
    Primitive prim;
    prim.intervention.kind = Intervention::Kind::kInsertPractice;
    prim.intervention.position = -1;
    prim.intervention.question = q;
    prim.is_insert = true;
    primitives.push_back(prim);
  }

  // ---- Candidate enumeration ----
  // All non-empty primitive subsets of size <= k, size-ascending then
  // lexicographic by primitive index, deterministically truncated at the
  // cap. The order is part of the wire contract (ties rank by it).
  const int np = static_cast<int>(primitives.size());
  std::vector<std::vector<int>> candidates;
  for (int s = 1; s <= request.k && s <= np; ++s) {
    std::vector<int> combo(static_cast<size_t>(s));
    for (int j = 0; j < s; ++j) combo[static_cast<size_t>(j)] = j;
    while (candidates.size() < kMaxCandidates) {
      candidates.push_back(combo);
      // Advance to the next lexicographic s-combination of [0, np).
      int j = s - 1;
      while (j >= 0 && combo[static_cast<size_t>(j)] == np - s + j) --j;
      if (j < 0) break;
      ++combo[static_cast<size_t>(j)];
      for (int m = j + 1; m < s; ++m) {
        combo[static_cast<size_t>(m)] = combo[static_cast<size_t>(m - 1)] + 1;
      }
    }
    if (candidates.size() >= kMaxCandidates) break;
  }
  response.evaluated = static_cast<int64_t>(candidates.size());
  if (candidates.empty()) return response;

  // Sequence builder for brute mode: factual history with the candidate's
  // flips applied, then its inserts (correct practice, in primitive order),
  // then the target interaction. The target's response value never
  // matters — GeneratorScoreTargets masks the target category.
  auto build_sequence =
      [&](const std::vector<int>& combo) -> data::ResponseSequence {
    data::ResponseSequence sequence;
    sequence.interactions = session.history;
    for (const int pi : combo) {
      const Primitive& prim = primitives[static_cast<size_t>(pi)];
      if (!prim.is_insert) {
        sequence.interactions[static_cast<size_t>(prim.intervention.position)]
            .response = 1;
      }
    }
    for (const int pi : combo) {
      const Primitive& prim = primitives[static_cast<size_t>(pi)];
      if (prim.is_insert) {
        sequence.interactions.push_back(data::Interaction{
            prim.intervention.question, 1,
            BagFor(prim.intervention.question)});
      }
    }
    sequence.interactions.push_back(
        data::Interaction{request.question, 0, target_bag});
    return sequence;
  };

  std::vector<float> probs(candidates.size(), 0.0f);
  if (request.brute) {
    // Reference path: one full offline re-encode per candidate.
    for (size_t c = 0; c < candidates.size(); ++c) {
      const data::ResponseSequence sequence = build_sequence(candidates[c]);
      probs[c] = model_.GeneratorScoreTargets(
          data::MakeBatch({&sequence}))[0];
    }
  } else {
    // Fast path (DESIGN.md §15): no candidate ever re-encodes the
    // unmodified prefix. A candidate's timeline differs from the factual
    // history only from its earliest edit position p onward, and the serve
    // predict contract needs only the FORWARD stream at the last position
    // (the backward contribution there is the zero boundary row), so each
    // candidate is scored by (a) materializing the forward-stream state at
    // p — a prefix-truncated clone of the session's KV caches for attention
    // encoders, a snapshot from one shared prefix walk for recurrent ones —
    // then (b) bulk-replaying its short modified suffix (flipped rows, then
    // inserted practice) with StepForwardRun, and (c) scoring every final
    // row in one stacked strict-fp32 head pass.
    const rckt::BiEncoder& encoder = model_.bi_encoder();

    std::vector<int64_t> earliest(candidates.size(), history_len);
    for (size_t c = 0; c < candidates.size(); ++c) {
      for (const int pi : candidates[c]) {
        const Primitive& prim = primitives[static_cast<size_t>(pi)];
        if (!prim.is_insert) {
          earliest[c] = std::min(earliest[c], prim.intervention.position);
        }
      }
    }

    // Factual embedded rows, one batched embed — bit-identical per row to
    // the InteractionRow steps that built the session stream.
    Tensor a_factual;
    if (history_len > 0) {
      std::vector<int64_t> questions(static_cast<size_t>(history_len));
      std::vector<int64_t> categories(static_cast<size_t>(history_len));
      std::vector<std::vector<int64_t>> bags(
          static_cast<size_t>(history_len));
      for (int64_t i = 0; i < history_len; ++i) {
        const auto& interaction = session.history[static_cast<size_t>(i)];
        questions[static_cast<size_t>(i)] = interaction.question;
        categories[static_cast<size_t>(i)] = interaction.response;
        bags[static_cast<size_t>(i)] = interaction.concepts;
      }
      const ag::Variable e =
          model_.embedder().QuestionEmbedRows(questions, bags);
      const ag::Variable r = ag::EmbeddingLookup(
          model_.embedder().response_table(), categories);
      a_factual = ag::Add(e, r).value();  // [history_len, d]
    }

    // Edited rows, cached across candidates: a flip re-embeds the position
    // with its response forced correct, an insert embeds correct practice.
    std::map<int64_t, Tensor> flip_rows;     // history position -> [1, d]
    std::map<int64_t, Tensor> insert_rows;   // question -> [1, d]
    for (const Primitive& prim : primitives) {
      if (prim.is_insert) {
        insert_rows.emplace(
            prim.intervention.question,
            InteractionRow(prim.intervention.question,
                           BagFor(prim.intervention.question), 1));
      } else {
        const auto& interaction =
            session.history[static_cast<size_t>(prim.intervention.position)];
        flip_rows.emplace(
            prim.intervention.position,
            InteractionRow(interaction.question, interaction.concepts, 1));
      }
    }

    // Prefix states. Attention encoders rewind in O(bytes); recurrent ones
    // cannot, so one shared walk over the factual prefix snapshots the
    // stream at every needed position (ascending, each segment replayed in
    // bulk) — amortized over all candidates.
    std::vector<int64_t> needed;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (earliest[c] < history_len) needed.push_back(earliest[c]);
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()), needed.end());
    const bool can_rewind =
        needed.empty() ||
        encoder.CloneStreamPrefix(*session.stream, needed.front()) != nullptr;
    std::map<int64_t, std::string> snapshots;
    if (!can_rewind) {
      auto walk = encoder.NewForwardStream();
      int64_t pos = 0;
      for (const int64_t p : needed) {
        if (p > pos) {
          Tensor segment(Shape{1, p - pos, dim_});
          std::memcpy(segment.data(), a_factual.data() + pos * dim_,
                      static_cast<size_t>((p - pos) * dim_) * sizeof(float));
          encoder.StepForwardRun(*walk, segment);
          pos = p;
        }
        encoder.SerializeStream(*walk, &snapshots[p]);
      }
    }
    std::string full_blob;  // lazily serialized full session stream
    auto state_at =
        [&](int64_t p) -> std::unique_ptr<rckt::ForwardStreamState> {
      if (history_len == 0) return encoder.NewForwardStream();
      if (auto clone = encoder.CloneStreamPrefix(*session.stream, p)) {
        return clone;
      }
      if (p == history_len) {
        // Bit-identical round-trip clone of the full cached stream, so the
        // session's own state is never touched.
        if (full_blob.empty()) {
          encoder.SerializeStream(*session.stream, &full_blob);
        }
        return encoder.DeserializeStream(full_blob.data(), full_blob.size());
      }
      const std::string& blob = snapshots.at(p);
      return encoder.DeserializeStream(blob.data(), blob.size());
    };

    Tensor stacked(Shape{static_cast<int64_t>(candidates.size()), 2 * dim_});
    for (size_t c = 0; c < candidates.size(); ++c) {
      const int64_t p = earliest[c];
      int64_t num_inserts = 0;
      for (const int pi : candidates[c]) {
        if (primitives[static_cast<size_t>(pi)].is_insert) ++num_inserts;
      }
      // Suffix timeline: factual tail rows with this candidate's flips
      // overwritten in place, then its inserted practices in primitive
      // order (candidate combos are index-sorted, and inserts follow flips
      // in the primitive list).
      const int64_t tail = history_len - p;
      const int64_t suffix_len = tail + num_inserts;
      Tensor suffix(Shape{1, suffix_len, dim_});
      if (tail > 0) {
        std::memcpy(suffix.data(), a_factual.data() + p * dim_,
                    static_cast<size_t>(tail * dim_) * sizeof(float));
      }
      int64_t write = tail;
      for (const int pi : candidates[c]) {
        const Primitive& prim = primitives[static_cast<size_t>(pi)];
        if (prim.is_insert) {
          std::memcpy(suffix.data() + write * dim_,
                      insert_rows.at(prim.intervention.question).data(),
                      static_cast<size_t>(dim_) * sizeof(float));
          ++write;
        } else {
          std::memcpy(suffix.data() + (prim.intervention.position - p) * dim_,
                      flip_rows.at(prim.intervention.position).data(),
                      static_cast<size_t>(dim_) * sizeof(float));
        }
      }
      auto stream = state_at(p);
      const Tensor f_run = encoder.StepForwardRun(*stream, suffix);
      Tensor f_last(Shape{1, dim_});
      std::memcpy(f_last.data(), f_run.data() + (suffix_len - 1) * dim_,
                  static_cast<size_t>(dim_) * sizeof(float));
      const Tensor row = HeadInputRow(f_last, request.question, target_bag);
      std::memcpy(stacked.data() + static_cast<int64_t>(c) * 2 * dim_,
                  row.data(),
                  static_cast<size_t>(2 * dim_) * sizeof(float));
    }
    probs = head_probs(stacked);
  }

  // ---- Ranking ----
  // Lift per intervention first (the "minimal set" objective), then raw
  // lift, then smaller sets, then enumeration order. All keys derive from
  // bitwise-deterministic floats, so the order is reproducible across
  // thread counts, shard counts, and the brute/fast paths.
  std::vector<size_t> order(candidates.size());
  for (size_t c = 0; c < order.size(); ++c) order[c] = c;
  const double base_p = static_cast<double>(response.base_p);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const double lift_a = static_cast<double>(probs[a]) - base_p;
    const double lift_b = static_cast<double>(probs[b]) - base_p;
    const double per_a = lift_a / static_cast<double>(candidates[a].size());
    const double per_b = lift_b / static_cast<double>(candidates[b].size());
    if (per_a != per_b) return per_a > per_b;
    if (lift_a != lift_b) return lift_a > lift_b;
    if (candidates[a].size() != candidates[b].size()) {
      return candidates[a].size() < candidates[b].size();
    }
    return a < b;
  });
  const size_t take =
      std::min(order.size(), static_cast<size_t>(request.top));
  response.candidates.reserve(take);
  for (size_t r = 0; r < take; ++r) {
    const size_t c = order[r];
    Counterfactual counterfactual;
    for (const int pi : candidates[c]) {
      counterfactual.interventions.push_back(
          primitives[static_cast<size_t>(pi)].intervention);
    }
    counterfactual.p = probs[c];
    counterfactual.lift = probs[c] - response.base_p;
    counterfactual.reaches_target =
        request.target_p >= 0.0 &&
        static_cast<double>(probs[c]) >= request.target_p;
    response.candidates.push_back(std::move(counterfactual));
  }
  return response;
}

ServeResponse InferenceEngine::ExecuteStats(const ServeRequest& request) {
  ServeResponse response;
  response.op = request.op;
  response.sessions = static_cast<int64_t>(store_.size());
  response.state_bytes = static_cast<int64_t>(store_.total_state_bytes());
  response.history_bytes =
      static_cast<int64_t>(store_.total_history_bytes());
  response.evictions = static_cast<int64_t>(store_.evictions());
  response.model_fingerprint = options_.model_fingerprint;
  return response;
}

void InferenceEngine::OnModelSwapped(uint64_t fingerprint) {
  options_.model_fingerprint = fingerprint;
  // Drop every cached forward stream (and its accounted bytes): the bits
  // were computed under the OLD weights. Histories survive, so the next
  // touch replays them against the new weights — EnsureStream's rebuild is
  // bit-identical to a fresh engine fed the same history.
  store_.ForEach([this](Session& session) {
    session.stream.reset();
    session.last_f = Tensor();
    AccountState(session);
  });
  if (cold_ != nullptr) cold_->set_model_fingerprint(fingerprint);
  // The int8 head's weight packs/calibration derive from the old weights;
  // rebuild the packs and keep the activation scales' calibration policy:
  // serve --continual requires fp32, so in practice this branch is cold.
  if (lowp_head_ != nullptr) {
    lowp_head_ = std::make_unique<LowpHead>(options_.precision,
                                            model_.mlp_hidden(),
                                            model_.mlp_out());
  }
}

ServeResponse InferenceEngine::Execute(const ServeRequest& request) {
  BumpCounter("serve.requests");
  switch (request.op) {
    case Op::kPredict:
      return ExecutePredict(request);
    case Op::kUpdate:
      return ExecuteUpdate(request);
    case Op::kExplain:
      return ExecuteExplain(request);
    case Op::kRecourse:
      return ExecuteRecourse(request);
    case Op::kReset: {
      ServeResponse response;
      if (!Validate(request, &response)) return response;
      store_.Erase(request.student);
      // A reset must forget the student everywhere — a surviving snapshot
      // would resurrect the history on next touch.
      if (cold_ != nullptr) cold_->Erase(request.student);
      return response;
    }
    case Op::kStats:
      return ExecuteStats(request);
  }
  ServeResponse response;
  response.ok = false;
  response.error = "unknown op";
  return response;
}

void InferenceEngine::PredictRun(const std::vector<ServeRequest>& requests,
                                 size_t begin, size_t end,
                                 std::vector<ServeResponse>* out) {
  ag::NoGradGuard no_grad;
  BumpCounter("serve.requests", static_cast<int64_t>(end - begin));
  std::vector<size_t> slots;
  std::vector<Tensor> rows;
  for (size_t i = begin; i < end; ++i) {
    ServeResponse& response = (*out)[i];
    if (!Validate(requests[i], &response)) continue;
    Session& session = store_.GetOrCreate(requests[i].student);
    EnsureStream(session);
    rows.push_back(PredictInputRow(session, requests[i].question,
                                   ConceptsFor(requests[i])));
    slots.push_back(i);
    response.history = static_cast<int64_t>(session.history.size());
  }
  if (rows.empty()) return;
  // One stacked MLP-head pass for the whole run; row j is bitwise the
  // single-request result.
  const int64_t k = static_cast<int64_t>(rows.size());
  Tensor stacked(Shape{k, 2 * dim_});
  for (int64_t j = 0; j < k; ++j) {
    std::memcpy(stacked.data() + j * 2 * dim_,
                rows[static_cast<size_t>(j)].data(),
                static_cast<size_t>(2 * dim_) * sizeof(float));
  }
  if (lowp_active()) {
    BumpCounter("serve.lowp_predicts", k);
    std::vector<float> probs(static_cast<size_t>(k));
    lowp_head_->Forward(stacked, probs.data());
    for (int64_t j = 0; j < k; ++j) {
      (*out)[slots[static_cast<size_t>(j)]].p = probs[static_cast<size_t>(j)];
    }
    return;
  }
  const ag::Variable mid =
      model_.mlp_hidden().ForwardAct(ag::Constant(stacked), ag::Act::kRelu);
  const ag::Variable p =
      model_.mlp_out().ForwardAct(mid, ag::Act::kSigmoid);  // [k, 1]
  for (int64_t j = 0; j < k; ++j) {
    (*out)[slots[static_cast<size_t>(j)]].p = p.value().flat(j);
  }
}

void InferenceEngine::UpdateRun(const std::vector<ServeRequest>& requests,
                                size_t begin, size_t end,
                                std::vector<ServeResponse>* out) {
  ag::NoGradGuard no_grad;
  BumpCounter("serve.requests", static_cast<int64_t>(end - begin));
  std::vector<size_t> slots;
  std::vector<Session*> touched;
  std::vector<rckt::ForwardStreamState*> states;
  std::vector<Tensor> rows;
  std::vector<const std::vector<int64_t>*> bags;
  // The raw stream pointers in `states` stay live across the whole run:
  // pin every session before a later request's EnsureStream/AccountState
  // can trigger eviction, which would free an earlier session's stream
  // under StepForwardMany. The budget is re-enforced when the scope ends.
  SessionStore::PinScope pins(store_);
  for (size_t i = begin; i < end; ++i) {
    ServeResponse& response = (*out)[i];
    if (!Validate(requests[i], &response)) continue;
    Session& session = store_.GetOrCreate(requests[i].student);
    pins.Pin(session);
    EnsureStream(session);
    const std::vector<int64_t>& concepts = ConceptsFor(requests[i]);
    rows.push_back(InteractionRow(requests[i].question, concepts,
                                  requests[i].response));
    slots.push_back(i);
    touched.push_back(&session);
    states.push_back(session.stream.get());
    bags.push_back(&concepts);
  }
  if (rows.empty()) return;
  // One batched encoder step across the distinct students of the run.
  const std::vector<Tensor> outputs =
      model_.bi_encoder().StepForwardMany(states, rows);
  for (size_t j = 0; j < slots.size(); ++j) {
    Session& session = *touched[j];
    const ServeRequest& request = requests[slots[j]];
    const int64_t index = static_cast<int64_t>(session.history.size());
    session.last_f = outputs[j];
    session.history.push_back(
        data::Interaction{request.question, request.response, *bags[j]});
    AccountState(session);
    if (options_.update_sink) {
      UpdateEvent event;
      event.student = session.id;
      event.index = index;
      event.question = request.question;
      event.response = request.response;
      event.concepts = &session.history.back().concepts;
      options_.update_sink(options_.shard_index, event);
    }
    (*out)[slots[j]].history = static_cast<int64_t>(session.history.size());
  }
}

void InferenceEngine::FlushColdSnapshots() {
  if (cold_ == nullptr) return;
  store_.ForEach([this](Session& session) { cold_->Save(session); });
}

std::vector<ServeResponse> InferenceEngine::ExecuteBatch(
    const std::vector<ServeRequest>& requests) {
  const size_t n = requests.size();
  std::vector<ServeResponse> out(n);
  size_t i = 0;
  while (i < n) {
    const Op op = requests[i].op;
    if (op == Op::kPredict) {
      size_t j = i;
      while (j < n && requests[j].op == Op::kPredict) ++j;
      PredictRun(requests, i, j, &out);
      i = j;
    } else if (op == Op::kUpdate) {
      // A student appearing twice must step sequentially: close the run at
      // the repeat so the second step sees the first one's state.
      std::unordered_set<std::string> seen;
      size_t j = i;
      while (j < n && requests[j].op == Op::kUpdate &&
             seen.insert(requests[j].student).second) {
        ++j;
      }
      UpdateRun(requests, i, j, &out);
      i = j;
    } else {
      out[i] = Execute(requests[i]);
      ++i;
    }
  }
  return out;
}

}  // namespace serve
}  // namespace kt
