#include "serve/server.h"

#include <atomic>
#include <cerrno>
#include <iostream>
#include <list>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/logging.h"
#include "obs/obs.h"
#include "serve/framing.h"

namespace kt {
namespace serve {

bool ParseServeRequest(const JsonValue& json, ServeRequest* out,
                       std::string* error) {
  *out = ServeRequest();
  if (!json.IsObject()) {
    *error = "request must be a JSON object";
    return false;
  }
  const std::string op = json.GetString("op", "");
  if (op == "predict") {
    out->op = Op::kPredict;
  } else if (op == "update") {
    out->op = Op::kUpdate;
  } else if (op == "explain") {
    out->op = Op::kExplain;
  } else if (op == "reset") {
    out->op = Op::kReset;
  } else if (op == "stats") {
    out->op = Op::kStats;
  } else {
    *error = op.empty() ? "missing op" : "unknown op '" + op + "'";
    return false;
  }
  out->student = json.GetString("student", "");
  out->question = json.GetInt("question", -1);
  // Clamp just outside the valid {0, 1} range so the engine's validation
  // rejects out-of-range values without an undefined narrowing cast.
  auto clamp_response = [](int64_t value) {
    return value < 0 ? -1 : value > 1 ? 2 : static_cast<int>(value);
  };
  if (out->op == Op::kUpdate) {
    const JsonValue* response = json.Find("response");
    int64_t response_value = 0;
    if (response == nullptr || !response->ToInt(&response_value)) {
      *error = "update needs a numeric 'response'";
      return false;
    }
    out->response = clamp_response(response_value);
  } else {
    out->response = clamp_response(json.GetInt("response", 0));
  }
  if (const JsonValue* concepts = json.Find("concepts")) {
    if (!concepts->IsArray()) {
      *error = "'concepts' must be an array";
      return false;
    }
    out->has_concepts = true;
    out->concepts.reserve(concepts->array.size());
    for (const JsonValue& c : concepts->array) {
      int64_t concept_id = 0;
      if (!c.ToInt(&concept_id)) {
        *error = "'concepts' entries must be numbers";
        return false;
      }
      out->concepts.push_back(concept_id);
    }
  }
  return true;
}

std::string SerializeResponse(const ServeResponse& response) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(response.ok);
  if (!response.ok) {
    w.Key("error").String(response.error);
    if (!response.student.empty()) w.Key("student").String(response.student);
    w.EndObject();
    return w.str();
  }
  w.Key("op").String(OpName(response.op));
  switch (response.op) {
    case Op::kPredict:
      w.Key("student").String(response.student);
      w.Key("question").Int(response.question);
      w.Key("p").Float(response.p);
      w.Key("history").Int(response.history);
      break;
    case Op::kUpdate:
      w.Key("student").String(response.student);
      w.Key("question").Int(response.question);
      w.Key("history").Int(response.history);
      break;
    case Op::kExplain: {
      w.Key("student").String(response.student);
      w.Key("question").Int(response.question);
      w.Key("history").Int(response.history);
      w.Key("influence").BeginArray();
      for (const float v : response.influence) w.Float(v);
      w.EndArray();
      w.Key("responses").BeginArray();
      for (const int r : response.responses) w.Int(r);
      w.EndArray();
      w.Key("total_correct").Float(response.total_correct);
      w.Key("total_incorrect").Float(response.total_incorrect);
      w.Key("score").Float(response.score);
      w.Key("predicted_correct").Bool(response.predicted_correct);
      break;
    }
    case Op::kReset:
      w.Key("student").String(response.student);
      break;
    case Op::kStats:
      w.Key("sessions").Int(response.sessions);
      w.Key("state_bytes").Int(response.state_bytes);
      w.Key("evictions").Int(response.evictions);
      break;
  }
  w.EndObject();
  return w.str();
}

std::string SerializeError(const std::string& message) {
  JsonWriter w;
  w.BeginObject().Key("ok").Bool(false).Key("error").String(message)
      .EndObject();
  return w.str();
}

namespace {

bool IsShutdown(const JsonValue& json) {
  return json.GetString("op", "") == "shutdown";
}

// One request line -> one response line (or a shutdown marker).
std::string HandleLine(MicroBatcher& batcher, const std::string& line,
                       bool* shutdown) {
  JsonValue json;
  std::string error;
  if (!ParseJson(line, &json, &error)) {
    return SerializeError("bad json: " + error);
  }
  if (IsShutdown(json)) {
    *shutdown = true;
    return "{\"ok\":true,\"op\":\"shutdown\"}";
  }
  ServeRequest request;
  if (!ParseServeRequest(json, &request, &error)) {
    return SerializeError(error);
  }
  const ServeResponse response = batcher.Submit(request);
  return SerializeResponse(response);
}

bool BlankLine(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

std::string OversizeError(size_t max_line_bytes) {
  return SerializeError("request line exceeds " +
                        std::to_string(max_line_bytes) + " bytes");
}

int RunStdioServer(MicroBatcher& batcher, size_t max_line_bytes) {
  LineFramer framer(max_line_bytes);
  std::string line;
  bool shutdown = false;
  bool eof = false;
  char chunk[4096];
  while (!shutdown) {
    const LineFramer::Result r = framer.Next(&line);
    if (r == LineFramer::Result::kLine) {
      if (BlankLine(line)) continue;
      std::cout << HandleLine(batcher, line, &shutdown) << "\n" << std::flush;
      continue;
    }
    if (r == LineFramer::Result::kOverflow) {
      // Reject the oversized line but keep serving: stdio has exactly one
      // client, so closing on it (the TCP policy) would end the session.
      std::cout << OversizeError(max_line_bytes) << "\n" << std::flush;
      framer.Resync();
      continue;
    }
    if (eof) break;
    const ssize_t n = ReadRetryEintr(STDIN_FILENO, chunk, sizeof(chunk));
    if (n <= 0) {
      // Terminate an unterminated final line so it is still served.
      eof = true;
      framer.Append("\n", 1);
      continue;
    }
    framer.Append(chunk, static_cast<size_t>(n));
  }
  return 0;
}

// Serves one blocking TCP connection until peer disconnect, an oversized
// request line, a failed write, or a shutdown op.
void ServeConnection(MicroBatcher& batcher, int conn, size_t max_line_bytes,
                     std::atomic<bool>* shutdown, int listener) {
  LineFramer framer(max_line_bytes);
  std::string line;
  char chunk[4096];
  while (true) {
    const LineFramer::Result r = framer.Next(&line);
    if (r == LineFramer::Result::kOverflow) {
      // A client streaming a line past the cap is broken or hostile:
      // reject with ok:false, then close.
      SendAllNoSignal(conn, OversizeError(max_line_bytes) + "\n");
      break;
    }
    if (r == LineFramer::Result::kNeedMore) {
      const ssize_t n = ReadRetryEintr(conn, chunk, sizeof(chunk));
      if (n <= 0) break;
      framer.Append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (BlankLine(line)) continue;
    bool want_shutdown = false;
    const std::string reply = HandleLine(batcher, line, &want_shutdown);
    if (!SendAllNoSignal(conn, reply + "\n")) break;
    if (want_shutdown) {
      shutdown->store(true);
      // Unblock the accept loop so it can exit.
      ::shutdown(listener, SHUT_RDWR);
      break;
    }
  }
  ::close(conn);
}

int RunTcpServer(MicroBatcher& batcher, int port, size_t max_line_bytes) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    KT_LOG(ERROR) << "serve: socket() failed";
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    KT_LOG(ERROR) << "serve: cannot bind 127.0.0.1:" << port;
    ::close(listener);
    return 1;
  }
  if (::listen(listener, 64) < 0) {
    KT_LOG(ERROR) << "serve: listen() failed";
    ::close(listener);
    return 1;
  }
  KT_LOG(INFO) << "serving on 127.0.0.1:" << port;

  std::atomic<bool> shutdown{false};
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::list<Connection> connections;
  // Join connections whose handler already finished (all of them when
  // draining), so a long-running server does not accumulate thread
  // handles without bound.
  auto reap = [&connections](bool drain) {
    int64_t joined = 0;
    for (auto it = connections.begin(); it != connections.end();) {
      if (drain || it->done->load()) {
        it->thread.join();
        it = connections.erase(it);
        ++joined;
      } else {
        ++it;
      }
    }
    if (joined > 0 && obs::Enabled())
      obs::Counter::Get("serve.connections_reaped")->Add(joined);
  };
  while (!shutdown.load()) {
    // Wake at least every 200 ms so finished connection threads are joined
    // on a timer tick, not only when the next connection arrives.
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    reap(/*drain=*/false);
    if (ready == 0) continue;
    const int conn = AcceptRetryEintr(listener);
    if (conn < 0) {
      if (shutdown.load()) break;  // listener closed by a shutdown op
      // Transient per-connection failures (ECONNABORTED and friends) leave
      // the listener healthy; anything else is fatal.
      if (errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread thread(
        [&batcher, &shutdown, listener, conn, max_line_bytes, done] {
          ServeConnection(batcher, conn, max_line_bytes, &shutdown, listener);
          done->store(true);
        });
    connections.push_back(Connection{std::move(thread), std::move(done)});
  }
  ::close(listener);
  reap(/*drain=*/true);
  return 0;
}

}  // namespace

int RunServer(InferenceEngine& engine, const ServerOptions& options) {
  MicroBatcher batcher(engine, options.batcher);
  const int code =
      options.port > 0
          ? RunTcpServer(batcher, options.port, options.max_line_bytes)
          : RunStdioServer(batcher, options.max_line_bytes);
  batcher.Stop();
  return code;
}

}  // namespace serve
}  // namespace kt
