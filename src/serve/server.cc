#include "serve/server.h"

#include <algorithm>
#include <climits>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>

#include <unistd.h>

#include "serve/framing.h"
#include "serve/reactor.h"
#include "serve/shard.h"

namespace kt {
namespace serve {

bool ParseServeRequest(const JsonValue& json, ServeRequest* out,
                       std::string* error) {
  *out = ServeRequest();
  if (!json.IsObject()) {
    *error = "request must be a JSON object";
    return false;
  }
  const std::string op = json.GetString("op", "");
  if (op == "predict") {
    out->op = Op::kPredict;
  } else if (op == "update") {
    out->op = Op::kUpdate;
  } else if (op == "explain") {
    out->op = Op::kExplain;
  } else if (op == "recourse") {
    out->op = Op::kRecourse;
  } else if (op == "reset") {
    out->op = Op::kReset;
  } else if (op == "stats") {
    out->op = Op::kStats;
  } else {
    *error = op.empty() ? "missing op" : "unknown op '" + op + "'";
    return false;
  }
  out->student = json.GetString("student", "");
  out->question = json.GetInt("question", -1);
  // Clamp just outside the valid {0, 1} range so the engine's validation
  // rejects out-of-range values without an undefined narrowing cast.
  auto clamp_response = [](int64_t value) {
    return value < 0 ? -1 : value > 1 ? 2 : static_cast<int>(value);
  };
  if (out->op == Op::kUpdate) {
    const JsonValue* response = json.Find("response");
    int64_t response_value = 0;
    if (response == nullptr || !response->ToInt(&response_value)) {
      *error = "update needs a numeric 'response'";
      return false;
    }
    out->response = clamp_response(response_value);
  } else {
    out->response = clamp_response(json.GetInt("response", 0));
  }
  if (const JsonValue* concepts = json.Find("concepts")) {
    if (!concepts->IsArray()) {
      *error = "'concepts' must be an array";
      return false;
    }
    out->has_concepts = true;
    out->concepts.reserve(concepts->array.size());
    for (const JsonValue& c : concepts->array) {
      int64_t concept_id = 0;
      if (!c.ToInt(&concept_id)) {
        *error = "'concepts' entries must be numbers";
        return false;
      }
      out->concepts.push_back(concept_id);
    }
  }
  if (out->op == Op::kRecourse) {
    // Range-checked ints: an absent field keeps its default; a present
    // field that is not an in-range number is a hard parse error (so
    // "k":1e300 cannot silently fall back to 2).
    if (const JsonValue* k = json.Find("k")) {
      int64_t value = 0;
      if (!k->ToInt(&value)) {
        *error = "'k' must be an integer";
        return false;
      }
      out->k = static_cast<int>(
          std::max<int64_t>(INT_MIN, std::min<int64_t>(INT_MAX, value)));
    }
    if (const JsonValue* top = json.Find("top")) {
      int64_t value = 0;
      if (!top->ToInt(&value)) {
        *error = "'top' must be an integer";
        return false;
      }
      out->top = static_cast<int>(
          std::max<int64_t>(INT_MIN, std::min<int64_t>(INT_MAX, value)));
    }
    if (const JsonValue* target = json.Find("target_p")) {
      if (!target->IsNumber()) {
        *error = "'target_p' must be a number";
        return false;
      }
      out->target_p = target->number;
    }
    if (const JsonValue* inserts = json.Find("insert_questions")) {
      if (!inserts->IsArray()) {
        *error = "'insert_questions' must be an array";
        return false;
      }
      out->has_insert_questions = true;
      out->insert_questions.reserve(inserts->array.size());
      for (const JsonValue& q : inserts->array) {
        int64_t question = 0;
        if (!q.ToInt(&question)) {
          *error = "'insert_questions' entries must be numbers";
          return false;
        }
        out->insert_questions.push_back(question);
      }
    }
    out->brute = json.GetBool("brute", false);
  }
  return true;
}

std::string SerializeResponse(const ServeResponse& response) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ok").Bool(response.ok);
  if (!response.ok) {
    w.Key("error").String(response.error);
    if (!response.student.empty()) w.Key("student").String(response.student);
    w.EndObject();
    return w.str();
  }
  w.Key("op").String(OpName(response.op));
  switch (response.op) {
    case Op::kPredict:
      w.Key("student").String(response.student);
      w.Key("question").Int(response.question);
      w.Key("p").Float(response.p);
      w.Key("history").Int(response.history);
      break;
    case Op::kUpdate:
      w.Key("student").String(response.student);
      w.Key("question").Int(response.question);
      w.Key("history").Int(response.history);
      break;
    case Op::kExplain: {
      w.Key("student").String(response.student);
      w.Key("question").Int(response.question);
      w.Key("history").Int(response.history);
      w.Key("influence").BeginArray();
      for (const float v : response.influence) w.Float(v);
      w.EndArray();
      w.Key("responses").BeginArray();
      for (const int r : response.responses) w.Int(r);
      w.EndArray();
      w.Key("total_correct").Float(response.total_correct);
      w.Key("total_incorrect").Float(response.total_incorrect);
      w.Key("score").Float(response.score);
      w.Key("predicted_correct").Bool(response.predicted_correct);
      break;
    }
    case Op::kRecourse: {
      w.Key("student").String(response.student);
      w.Key("question").Int(response.question);
      w.Key("history").Int(response.history);
      w.Key("base_p").Float(response.base_p);
      w.Key("evaluated").Int(response.evaluated);
      w.Key("candidates").BeginArray();
      for (const Counterfactual& candidate : response.candidates) {
        w.BeginObject();
        w.Key("p").Float(candidate.p);
        w.Key("lift").Float(candidate.lift);
        w.Key("size").Int(
            static_cast<int64_t>(candidate.interventions.size()));
        w.Key("reaches_target").Bool(candidate.reaches_target);
        w.Key("interventions").BeginArray();
        for (const Intervention& intervention : candidate.interventions) {
          w.BeginObject();
          w.Key("type").String(
              intervention.kind == Intervention::Kind::kFlipResponse
                  ? "flip"
                  : "insert");
          if (intervention.kind == Intervention::Kind::kFlipResponse) {
            w.Key("position").Int(intervention.position);
          }
          w.Key("question").Int(intervention.question);
          w.EndObject();
        }
        w.EndArray();
        w.EndObject();
      }
      w.EndArray();
      break;
    }
    case Op::kReset:
      w.Key("student").String(response.student);
      break;
    case Op::kStats: {
      w.Key("sessions").Int(response.sessions);
      w.Key("state_bytes").Int(response.state_bytes);
      w.Key("history_bytes").Int(response.history_bytes);
      w.Key("evictions").Int(response.evictions);
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(response.model_fingerprint));
      w.Key("model").BeginObject();
      w.Key("fingerprint").String(hex);
      w.Key("weight_version").Int(response.weight_version);
      w.EndObject();
      if (response.has_continual) {
        std::snprintf(
            hex, sizeof(hex), "%016llx",
            static_cast<unsigned long long>(response.continual_reservoir_fnv64));
        w.Key("continual").BeginObject();
        w.Key("events").Int(response.continual_events);
        w.Key("mini_epochs").Int(response.continual_mini_epochs);
        w.Key("promotions").Int(response.continual_promotions);
        w.Key("reservoir_size").Int(response.continual_reservoir_size);
        w.Key("reservoir_fnv64").String(hex);
        w.EndObject();
      }
      break;
    }
  }
  w.EndObject();
  return w.str();
}

std::string SerializeError(const std::string& message) {
  JsonWriter w;
  w.BeginObject().Key("ok").Bool(false).Key("error").String(message)
      .EndObject();
  return w.str();
}

DecodedLine DecodeLine(const std::string& line) {
  DecodedLine out;
  JsonValue json;
  std::string error;
  if (!ParseJson(line, &json, &error)) {
    out.error = "bad json: " + error;
    return out;
  }
  if (json.GetString("op", "") == "shutdown") {
    out.shutdown = true;
    return out;
  }
  out.ok = ParseServeRequest(json, &out.request, &out.error);
  return out;
}

bool BlankLine(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

std::string OversizeError(size_t max_line_bytes) {
  return SerializeError("request line exceeds " +
                        std::to_string(max_line_bytes) + " bytes");
}

namespace {

// One request line -> one response line (or a shutdown marker).
std::string HandleLine(ShardSet& shards, const std::string& line,
                       bool* shutdown) {
  const DecodedLine decoded = DecodeLine(line);
  if (decoded.shutdown) {
    *shutdown = true;
    return "{\"ok\":true,\"op\":\"shutdown\"}";
  }
  if (!decoded.ok) return SerializeError(decoded.error);
  return SerializeResponse(shards.SubmitSync(decoded.request));
}

int RunStdioServer(ShardSet& shards, size_t max_line_bytes) {
  LineFramer framer(max_line_bytes);
  std::string line;
  bool shutdown = false;
  bool eof = false;
  char chunk[4096];
  while (!shutdown) {
    const LineFramer::Result r = framer.Next(&line);
    if (r == LineFramer::Result::kLine) {
      if (BlankLine(line)) continue;
      std::cout << HandleLine(shards, line, &shutdown) << "\n" << std::flush;
      continue;
    }
    if (r == LineFramer::Result::kOverflow) {
      // Reject the oversized line but keep serving: stdio has exactly one
      // client, so closing on it (the TCP policy) would end the session.
      std::cout << OversizeError(max_line_bytes) << "\n" << std::flush;
      framer.Resync();
      continue;
    }
    if (eof) break;
    const ssize_t n = ReadRetryEintr(STDIN_FILENO, chunk, sizeof(chunk));
    if (n <= 0) {
      // Terminate an unterminated final line so it is still served.
      eof = true;
      framer.Append("\n", 1);
      continue;
    }
    framer.Append(chunk, static_cast<size_t>(n));
  }
  return 0;
}

}  // namespace

int RunServer(rckt::RCKT& model, const ServerOptions& options,
              const data::Dataset* concept_data, const ServeHooks& hooks) {
  ShardSetOptions shard_options;
  shard_options.shards = options.shards;
  shard_options.initial_weight_version = options.initial_weight_version;
  shard_options.batcher = options.batcher;
  shard_options.engine = options.engine;
  ShardSet shards(model, shard_options, concept_data);
  if (hooks.on_start) hooks.on_start(shards);
  int code = 0;
  if (options.port > 0) {
    ReactorOptions reactor_options;
    reactor_options.port = options.port;
    reactor_options.max_line_bytes = options.max_line_bytes;
    reactor_options.max_inflight_per_conn =
        std::max<int64_t>(1, options.batcher.max_queue);
    code = RunReactor(shards, reactor_options);
  } else {
    code = RunStdioServer(shards, options.max_line_bytes);
  }
  // Trainer (and other hooks) detach first — while the shards can still
  // take their final checkpoint/stats traffic — then the shards drain.
  if (hooks.on_stop) hooks.on_stop();
  // Graceful shutdown: persist every resident session so a warm restart
  // resumes it without replay (no-op when no cold dir is configured).
  shards.FlushColdSnapshots();
  shards.Stop();
  return code;
}

}  // namespace serve
}  // namespace kt
