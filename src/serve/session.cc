#include "serve/session.h"

#include "obs/obs.h"

namespace kt {
namespace serve {

SessionStore::SessionStore(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

void SessionStore::Touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

Session& SessionStore::GetOrCreate(const std::string& id) {
  auto it = sessions_.find(id);
  if (it != sessions_.end()) {
    Touch(it->second);
    return it->second.session;
  }
  lru_.push_front(id);
  Entry& entry = sessions_[id];
  entry.session.id = id;
  entry.lru_it = lru_.begin();
  return entry.session;
}

Session* SessionStore::Find(const std::string& id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second.session;
}

void SessionStore::SetStateBytes(Session& session, size_t bytes) {
  total_state_bytes_ -= session.state_bytes;
  session.state_bytes = bytes;
  total_state_bytes_ += bytes;
  EvictUntilWithinBudget(&session);
}

void SessionStore::SetHistoryBytes(Session& session, size_t bytes) {
  total_history_bytes_ -= session.history_bytes;
  session.history_bytes = bytes;
  total_history_bytes_ += bytes;
  EvictUntilWithinBudget(&session);
}

void SessionStore::PinScope::Pin(Session& session) {
  if (store_.pinned_.insert(&session).second) pinned_.push_back(&session);
}

SessionStore::PinScope::~PinScope() {
  if (pinned_.empty()) return;
  for (const Session* session : pinned_) store_.pinned_.erase(session);
  // The pins may have held the store over budget; settle up now.
  store_.EvictUntilWithinBudget(nullptr);
}

void SessionStore::EvictUntilWithinBudget(const Session* keep) {
  if (budget_bytes_ == 0) return;
  // Walk from the cold end, dropping neural state (histories stay — they
  // count against the budget but are never reclaimed, so a store whose
  // histories alone exceed the budget settles at zero neural state).
  auto it = lru_.rbegin();
  while (total_state_bytes_ + total_history_bytes_ > budget_bytes_ &&
         it != lru_.rend()) {
    Entry& entry = sessions_.at(*it);
    Session& victim = entry.session;
    ++it;
    if (&victim == keep || pinned_.count(&victim) != 0 ||
        victim.state_bytes == 0) {
      continue;
    }
    if (eviction_hook_) eviction_hook_(victim);
    total_state_bytes_ -= victim.state_bytes;
    victim.state_bytes = 0;
    victim.stream.reset();
    victim.last_f = Tensor();
    ++evictions_;
    if (obs::Enabled()) {
      static obs::Counter* const evicted =
          obs::Counter::Get("serve.evictions");
      evicted->Add(1);
    }
  }
}

void SessionStore::ForEach(const std::function<void(Session&)>& fn) {
  for (auto& [id, entry] : sessions_) fn(entry.session);
}

void SessionStore::Erase(const std::string& id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  pinned_.erase(&it->second.session);
  total_state_bytes_ -= it->second.session.state_bytes;
  total_history_bytes_ -= it->second.session.history_bytes;
  lru_.erase(it->second.lru_it);
  sessions_.erase(it);
}

}  // namespace serve
}  // namespace kt
