#include "tensor/autotune.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

#include "core/cpu.h"

namespace kt {
namespace autotune {
namespace {

struct Table {
  std::vector<Entry> entries;  // sorted by (m, k, n)
};

// Published via acquire/release; old tables are intentionally leaked
// (republication is a startup-frequency event, and leaking keeps lookups
// wait-free without hazard tracking).
std::atomic<const Table*> g_table{nullptr};

bool ShapeLess(const Entry& a, const Entry& b) {
  return std::tie(a.m, a.k, a.n) < std::tie(b.m, b.k, b.n);
}

void Publish(std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(), ShapeLess);
  g_table.store(new Table{std::move(entries)}, std::memory_order_release);
}

// Deterministic non-trivial fill so timing runs touch realistic values
// (no denormals, mixed signs).
void FillPattern(float* p, int64_t count, uint32_t salt) {
  for (int64_t i = 0; i < count; ++i) {
    const uint32_t h = (static_cast<uint32_t>(i) + salt) * 2654435761u;
    p[i] = static_cast<float>((h >> 16) & 0xff) / 256.0f - 0.5f;
  }
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Seconds per call for `kernel` on this shape, min over timing batches.
double MeasureKernel(GemmKernel kernel, int64_t m, int64_t k, int64_t n,
                     const Options& options) {
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  std::vector<float> c(static_cast<size_t>(m * n));
  FillPattern(a.data(), m * k, 1u);
  FillPattern(b.data(), k * n, 2u);

  const GemmKernel previous = GetGemmKernel();
  SetGemmKernel(kernel);
  Gemm(a.data(), b.data(), c.data(), m, k, n);  // warm caches + pack buffers

  const double t0 = Now();
  Gemm(a.data(), b.data(), c.data(), m, k, n);
  const double once = std::max(Now() - t0, 1e-9);
  const int64_t iters = std::clamp<int64_t>(
      static_cast<int64_t>(options.target_batch_seconds / once), 1, 20000);

  double best = 1e30;
  const int samples = std::max(1, options.samples);
  for (int s = 0; s < samples; ++s) {
    const double start = Now();
    for (int64_t it = 0; it < iters; ++it) {
      Gemm(a.data(), b.data(), c.data(), m, k, n);
    }
    best = std::min(best, (Now() - start) / static_cast<double>(iters));
  }
  SetGemmKernel(previous);
  return best;
}

Entry MeasureShape(int64_t m, int64_t k, int64_t n, const Options& options) {
  Entry e;
  e.m = m;
  e.k = k;
  e.n = n;
  const double t_ref = MeasureKernel(GemmKernel::kReference, m, k, n, options);
  const double t_tiled = MeasureKernel(GemmKernel::kTiled, m, k, n, options);
  e.strict_kernel =
      t_ref < t_tiled ? GemmKernel::kReference : GemmKernel::kTiled;
  const double t_strict = std::min(t_ref, t_tiled);
  e.relaxed_kernel = e.strict_kernel;
  const GemmBackendDesc* fma = FindGemmBackend("tiled_fma");
  if (fma != nullptr && fma->available) {
    const double t_fma = MeasureKernel(GemmKernel::kTiledFma, m, k, n, options);
    if (t_fma < t_strict) e.relaxed_kernel = GemmKernel::kTiledFma;
  }
  return e;
}

bool ParseKernelToken(const std::string& token, GemmKernel* out) {
  GemmKernel k;
  if (!GemmKernelByName(token, &k) || k == GemmKernel::kAuto) return false;
  *out = k;
  return true;
}

}  // namespace

bool LoadCacheFile(const std::string& path, std::vector<Entry>* out) {
  out->clear();
  std::ifstream in(path);
  if (!in.is_open()) return false;
  std::string header;
  if (!std::getline(in, header)) return false;
  if (header != "ktgemm-autotune v1 cpu=" + cpu::IdString()) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    Entry e;
    std::string strict_name;
    std::string relaxed_name;
    if (!(fields >> e.m >> e.k >> e.n >> strict_name >> relaxed_name) ||
        e.m <= 0 || e.k <= 0 || e.n <= 0 ||
        !ParseKernelToken(strict_name, &e.strict_kernel) ||
        !ParseKernelToken(relaxed_name, &e.relaxed_kernel)) {
      out->clear();  // corrupt file: discard everything, caller retunes
      return false;
    }
    e.from_cache = true;
    out->push_back(e);
  }
  return true;
}

bool SaveCacheFile(const std::string& path,
                   const std::vector<Entry>& entries) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream o(tmp, std::ios::trunc);
    if (!o.is_open()) return false;
    o << "ktgemm-autotune v1 cpu=" << cpu::IdString() << "\n";
    for (const Entry& e : entries) {
      o << e.m << ' ' << e.k << ' ' << e.n << ' '
        << GemmKernelName(e.strict_kernel) << ' '
        << GemmKernelName(e.relaxed_kernel) << "\n";
    }
    if (!o.good()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

Result TuneShapes(const std::vector<std::array<int64_t, 3>>& shapes,
                  const Options& options) {
  Result result;

  std::vector<Entry> cached;
  if (!options.cache_path.empty()) {
    LoadCacheFile(options.cache_path, &cached);
  }
  auto find_cached = [&cached](int64_t m, int64_t k, int64_t n) -> Entry* {
    for (Entry& e : cached) {
      if (e.m == m && e.k == k && e.n == n) return &e;
    }
    return nullptr;
  };

  for (const auto& shape : shapes) {
    const int64_t m = shape[0];
    const int64_t k = shape[1];
    const int64_t n = shape[2];
    if (m <= 0 || k <= 0 || n <= 0) continue;
    const bool duplicate =
        std::any_of(result.entries.begin(), result.entries.end(),
                    [&](const Entry& e) {
                      return e.m == m && e.k == k && e.n == n;
                    });
    if (duplicate) continue;
    if (Entry* hit = find_cached(m, k, n)) {
      result.entries.push_back(*hit);
      ++result.cached;
    } else {
      result.entries.push_back(MeasureShape(m, k, n, options));
      ++result.measured;
    }
  }

  // Keep cached winners for shapes this run did not ask about, so one
  // binary's startup does not evict another's entries.
  std::vector<Entry> merged = result.entries;
  for (const Entry& e : cached) {
    const bool present = std::any_of(
        merged.begin(), merged.end(), [&](const Entry& have) {
          return have.m == e.m && have.k == e.k && have.n == e.n;
        });
    if (!present) merged.push_back(e);
  }
  if (result.measured > 0 && !options.cache_path.empty()) {
    SaveCacheFile(options.cache_path, merged);
  }
  Publish(std::move(merged));
  return result;
}

std::vector<Entry> PublishedEntries() {
  const Table* table = g_table.load(std::memory_order_acquire);
  return table != nullptr ? table->entries : std::vector<Entry>{};
}

void ClearPublishedTable() {
  g_table.store(nullptr, std::memory_order_release);
}

bool LookupForDispatch(int64_t m, int64_t k, int64_t n, bool relaxed,
                       GemmKernel* out) {
  const Table* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) return false;
  Entry probe;
  probe.m = m;
  probe.k = k;
  probe.n = n;
  const auto it = std::lower_bound(table->entries.begin(),
                                   table->entries.end(), probe, ShapeLess);
  if (it == table->entries.end() || it->m != m || it->k != k || it->n != n) {
    return false;
  }
  *out = relaxed ? it->relaxed_kernel : it->strict_kernel;
  return true;
}

}  // namespace autotune
}  // namespace kt
