// Per-shape GEMM kernel autotuner.
//
// The built-in kAuto heuristic (gemm.cc) picks tiled vs reference from a
// fixed size cutoff; real crossover points depend on the host. At startup
// a server calls TuneShapes() with the model's actual (M, K, N) shapes;
// each eligible kernel family is timed on this machine and the winners are
// published in a table the kAuto dispatcher consults before falling back
// to the heuristic. Two winners are kept per shape because eligibility is
// region-dependent (gemm.h): strict regions may only use the bit-exact
// families (reference, tiled), relaxed regions may also use tiled_fma.
//
// Winners are cached on disk so later startups skip the measurement. The
// cache is a line-oriented text file:
//
//   ktgemm-autotune v1 cpu=<core/cpu.h IdString>
//   <m> <k> <n> <strict kernel name> <relaxed kernel name>
//   ...
//
// keyed by shape + CPU feature string: a file written on an AVX2+FMA host
// is ignored (and retuned) on a host with different features, and any
// parse error discards the whole file — a corrupt cache can only cost a
// re-measurement, never select a wrong kernel.
//
// Tuning temporarily drives the process-wide SetGemmKernel override, so
// call it during startup before concurrent GEMM work begins. Publication
// itself is atomic; lookups are wait-free.
#ifndef KT_TENSOR_AUTOTUNE_H_
#define KT_TENSOR_AUTOTUNE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/gemm.h"

namespace kt {
namespace autotune {

struct Options {
  // On-disk winner table; empty measures without persistence.
  std::string cache_path;
  // Timing batches per candidate kernel (minimum of the batch means is
  // taken, the usual noise-robust estimator).
  int samples = 3;
  // Each batch's iteration count is calibrated so a batch runs about this
  // long; bounds startup cost while keeping small shapes measurable.
  double target_batch_seconds = 0.002;
};

struct Entry {
  int64_t m = 0;
  int64_t k = 0;
  int64_t n = 0;
  GemmKernel strict_kernel = GemmKernel::kTiled;   // best bit-exact family
  GemmKernel relaxed_kernel = GemmKernel::kTiled;  // best incl. tiled_fma
  bool from_cache = false;
};

struct Result {
  int measured = 0;  // shapes benchmarked by this call
  int cached = 0;    // shapes answered by the on-disk table
  std::vector<Entry> entries;
};

// Benchmarks eligible kernels for every (m, k, n) not answered by the
// cache, publishes the combined winner table for kAuto dispatch, and
// rewrites the cache when anything new was measured. Duplicate and
// degenerate (non-positive) shapes are dropped.
Result TuneShapes(const std::vector<std::array<int64_t, 3>>& shapes,
                  const Options& options);

// Currently published entries (empty before the first TuneShapes).
std::vector<Entry> PublishedEntries();

// Unpublishes the table, restoring pure-heuristic kAuto (tests).
void ClearPublishedTable();

// Dispatcher hook (gemm.cc): exact-shape lookup in the published table.
// One relaxed pointer load when no table is published.
bool LookupForDispatch(int64_t m, int64_t k, int64_t n, bool relaxed,
                       GemmKernel* out);

// Cache round-trip, exposed for tests. Load returns false (with *out
// cleared) for missing, corrupt, or CPU-mismatched files; Save writes via
// a temp file + rename so readers never see a torn table.
bool LoadCacheFile(const std::string& path, std::vector<Entry>* out);
bool SaveCacheFile(const std::string& path, const std::vector<Entry>& entries);

}  // namespace autotune
}  // namespace kt

#endif  // KT_TENSOR_AUTOTUNE_H_
