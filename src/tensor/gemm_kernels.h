// Internal interface between the GEMM dispatcher (gemm.cc) and
// ISA-specific micro-kernel translation units. Not part of the public API
// (use tensor/gemm.h).
#ifndef KT_TENSOR_GEMM_KERNELS_H_
#define KT_TENSOR_GEMM_KERNELS_H_

#include <cstdint>

namespace kt {
namespace internal {

// Packed-B panel width in floats. Every micro-kernel TU consumes the same
// panel layout (PackB* in gemm.cc): panel j0 holds columns [j0, j0+w) as w
// contiguous floats per k step, w = min(kGemmPanelWidth, n - j0).
inline constexpr int kGemmPanelWidth = 8;

#ifdef KT_HAVE_AVX2_KERNEL
// Tiled sweep over m rows of C against pre-packed B panels, using 8-row
// ymm register tiles (gemm_avx2.cc, compiled -mavx2 -mno-fma). Bit-identical
// to the portable tiled and reference kernels; call only if
// cpu::Get().avx2. `load_c` selects the accumulate chain
// (true) vs the dot chain with one final add (false).
void TiledRowsAvx2(const float* a, int64_t lda, const float* bp, float* c,
                   int64_t ldc, int64_t m, int64_t k, int64_t n, bool load_c);
#endif

#ifdef KT_HAVE_AVX2_FMA_KERNEL
// Same sweep compiled -mavx2 -mfma -ffp-contract=fast (gemm_avx2_fma.cc):
// each multiply-add contracts to one vfmadd, which rounds ONCE where the
// reference chain rounds twice — NOT bit-identical, only faster. The
// dispatcher reaches it solely via the kTiledFma override or a relaxed
// precision region (see gemm.h). Call only if cpu::Get().avx2 && .fma.
void TiledRowsAvx2Fma(const float* a, int64_t lda, const float* bp, float* c,
                      int64_t ldc, int64_t m, int64_t k, int64_t n,
                      bool load_c);
#endif

}  // namespace internal
}  // namespace kt

#endif  // KT_TENSOR_GEMM_KERNELS_H_
