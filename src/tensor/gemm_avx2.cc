// AVX2 build of the tiled GEMM micro kernel, selected at runtime by
// gemm.cc when the CPU supports it (the default build stays portable
// x86-64, so wide vectors must come from dispatch, not from build flags).
//
// This TU is compiled with -mavx2 -mno-fma -ffp-contract=off (see
// CMakeLists.txt). FMA stays off deliberately: a contracted a*b+c rounds
// once where the reference kernels round twice, which would break the
// bit-identity contract between kernel families. Vector mul/add are
// element-wise IEEE single precision, and each C element is still one
// ascending-k accumulator chain, so results match the reference and the
// portable tiled kernels bit for bit — wider registers change scheduling,
// never values.
//
// The panel layout is shared with gemm.cc (kNR = 8 floats per k step), so
// packing is ISA-independent; only the row-tile height differs (8 ymm
// accumulator rows here vs 4x2 xmm there).
#include "tensor/gemm_kernels.h"

#include <algorithm>
#include <cstring>

namespace kt {
namespace internal {
namespace {

constexpr int kMR = 8;  // register rows (one ymm accumulator each)
constexpr int kNR = kGemmPanelWidth;

typedef float V8 __attribute__((vector_size(32)));

inline V8 Load8(const float* p) {
  V8 v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned-safe, compiles to vmovups
  return v;
}
inline void Store8(float* p, V8 v) { __builtin_memcpy(p, &v, sizeof(v)); }

// Full kMR x kNR tile. Same two chain shapes as the portable kernels:
// kLoadC starts the accumulators from C, !kLoadC starts from zero and adds
// to C once at the end (the TransB dot contract).
template <bool kLoadC>
inline void MicroTile(const float* a, int64_t lda, const float* bp, float* c,
                      int64_t ldc, int64_t k) {
  V8 acc[kMR];
  for (int i = 0; i < kMR; ++i) acc[i] = kLoadC ? Load8(c + i * ldc) : V8{};
  for (int64_t p = 0; p < k; ++p) {
    const V8 b = Load8(bp + p * kNR);
    for (int i = 0; i < kMR; ++i) {
      const float s = a[i * lda + p];
      const V8 av = {s, s, s, s, s, s, s, s};
      acc[i] += av * b;
    }
  }
  for (int i = 0; i < kMR; ++i) {
    if (kLoadC) {
      Store8(c + i * ldc, acc[i]);
    } else {
      Store8(c + i * ldc, Load8(c + i * ldc) + acc[i]);
    }
  }
}

// Edge tile with runtime extents (mr <= kMR, nr <= kNR); `bw` is the packed
// panel width. Scalar: edges are a vanishing fraction of the work, and the
// scalar expressions are the chain contract itself.
template <bool kLoadC>
inline void MicroTileEdge(const float* a, int64_t lda, const float* bp,
                          int64_t bw, float* c, int64_t ldc, int64_t k,
                          int64_t mr, int64_t nr) {
  float acc[kMR][kNR];
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) acc[i][j] = kLoadC ? c[i * ldc + j] : 0.0f;
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = bp + p * bw;
    for (int64_t i = 0; i < mr; ++i) {
      const float a_val = a[i * lda + p];
      for (int64_t j = 0; j < nr; ++j) acc[i][j] += a_val * b_row[j];
    }
  }
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) {
      if (kLoadC) {
        c[i * ldc + j] = acc[i][j];
      } else {
        c[i * ldc + j] += acc[i][j];
      }
    }
  }
}

template <bool kLoadC>
void TiledRows(const float* a, int64_t lda, const float* bp, float* c,
               int64_t ldc, int64_t m, int64_t k, int64_t n) {
  for (int64_t i0 = 0; i0 < m; i0 += kMR) {
    const int64_t mr = std::min<int64_t>(kMR, m - i0);
    for (int64_t j0 = 0; j0 < n; j0 += kNR) {
      const int64_t nr = std::min<int64_t>(kNR, n - j0);
      const float* panel = bp + j0 * k;
      float* c_tile = c + i0 * ldc + j0;
      const float* a_tile = a + i0 * lda;
      if (mr == kMR && nr == kNR) {
        MicroTile<kLoadC>(a_tile, lda, panel, c_tile, ldc, k);
      } else {
        MicroTileEdge<kLoadC>(a_tile, lda, panel, nr, c_tile, ldc, k, mr, nr);
      }
    }
  }
}

}  // namespace

void TiledRowsAvx2(const float* a, int64_t lda, const float* bp, float* c,
                   int64_t ldc, int64_t m, int64_t k, int64_t n, bool load_c) {
  if (load_c) {
    TiledRows<true>(a, lda, bp, c, ldc, m, k, n);
  } else {
    TiledRows<false>(a, lda, bp, c, ldc, m, k, n);
  }
}

}  // namespace internal
}  // namespace kt
