#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "core/parallel.h"
#include "tensor/gemm.h"

namespace kt {
namespace {

// Row-major strides for `shape`.
std::vector<int64_t> Strides(const Shape& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int64_t i = static_cast<int64_t>(shape.size()) - 2; i >= 0; --i)
    strides[i] = strides[i + 1] * shape[i + 1];
  return strides;
}

// Strides of `shape` expanded (right-aligned) to broadcast over `out_shape`,
// with 0-stride on broadcast dimensions.
std::vector<int64_t> BroadcastStrides(const Shape& shape,
                                      const Shape& out_shape) {
  const auto base = Strides(shape);
  std::vector<int64_t> out(out_shape.size(), 0);
  const int64_t offset =
      static_cast<int64_t>(out_shape.size()) - static_cast<int64_t>(shape.size());
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] != 1) out[static_cast<size_t>(offset) + i] = base[i];
  }
  return out;
}

template <typename Fn>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fn fn) {
  // Fast path: identical shapes.
  if (a.SameShape(b)) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
    return out;
  }

  const Shape out_shape = BroadcastShape(a.shape(), b.shape());
  Tensor out(out_shape);
  const auto sa = BroadcastStrides(a.shape(), out_shape);
  const auto sb = BroadcastStrides(b.shape(), out_shape);
  const auto so = Strides(out_shape);
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const int64_t n = out.numel();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();

  std::vector<int64_t> idx(static_cast<size_t>(rank), 0);
  int64_t ia = 0, ib = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = fn(pa[ia], pb[ib]);
    // Odometer increment over the output index space, updating input offsets.
    for (int64_t d = rank - 1; d >= 0; --d) {
      idx[static_cast<size_t>(d)]++;
      ia += sa[static_cast<size_t>(d)];
      ib += sb[static_cast<size_t>(d)];
      if (idx[static_cast<size_t>(d)] < out_shape[static_cast<size_t>(d)]) break;
      ia -= sa[static_cast<size_t>(d)] * out_shape[static_cast<size_t>(d)];
      ib -= sb[static_cast<size_t>(d)] * out_shape[static_cast<size_t>(d)];
      idx[static_cast<size_t>(d)] = 0;
    }
  }
  (void)so;
  return out;
}

template <typename Fn>
Tensor UnaryOp(const Tensor& a, Fn fn) {
  Tensor out(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
  return out;
}

}  // namespace

Shape BroadcastShape(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da =
        i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const int64_t db =
        i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    KT_CHECK(da == db || da == 1 || db == 1)
        << "incompatible broadcast " << ShapeToString(a) << " vs "
        << ShapeToString(b);
    out[i] = std::max(da, db);
  }
  return out;
}

bool BroadcastsTo(const Shape& from, const Shape& to) {
  if (from.size() > to.size()) return false;
  const size_t offset = to.size() - from.size();
  for (size_t i = 0; i < from.size(); ++i) {
    if (from[i] != 1 && from[i] != to[offset + i]) return false;
  }
  return true;
}

Tensor ReduceToShape(const Tensor& t, const Shape& target) {
  KT_CHECK(BroadcastsTo(target, t.shape()))
      << ShapeToString(target) << " does not broadcast to "
      << ShapeToString(t.shape());
  if (t.shape() == target) return t.Clone();

  // Sum out leading extra dims first, then dims where target has size 1.
  Tensor cur = t;
  while (cur.dim() > static_cast<int64_t>(target.size())) {
    cur = Sum(cur, 0, /*keepdim=*/false);
  }
  for (int64_t d = 0; d < cur.dim(); ++d) {
    if (target[static_cast<size_t>(d)] == 1 && cur.size(d) != 1) {
      cur = Sum(cur, d, /*keepdim=*/true);
    }
  }
  return cur.Reshape(target);
}

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return std::max(x, y); });
}
Tensor Minimum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return std::min(x, y); });
}
Tensor GreaterEqualMask(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x >= y ? 1.0f : 0.0f; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x + s; });
}
Tensor MulScalar(const Tensor& a, float s) {
  return UnaryOp(a, [s](float x) { return x * s; });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::sqrt(x); });
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::tanh(x); });
}
Tensor Relu(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::fabs(x); });
}
Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  return UnaryOp(a, fn);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  KT_CHECK_EQ(a.dim(), 2);
  KT_CHECK_EQ(b.dim(), 2);
  KT_CHECK_EQ(a.size(1), b.size(0))
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  Tensor out(Shape{m, n});
  Gemm(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

Tensor BatchMatMul(const Tensor& a, const Tensor& b) {
  KT_CHECK_GE(a.dim(), 2);
  KT_CHECK_EQ(a.dim(), b.dim());
  for (int64_t d = 0; d < a.dim() - 2; ++d) KT_CHECK_EQ(a.size(d), b.size(d));
  const int64_t m = a.size(-2), k = a.size(-1);
  KT_CHECK_EQ(b.size(-2), k)
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  const int64_t n = b.size(-1);
  const int64_t batch = a.numel() / (m * k);

  Shape out_shape = a.shape();
  out_shape[out_shape.size() - 1] = n;
  Tensor out(out_shape);
  // Parallelize across the batch when the per-matrix products are too small
  // for Gemm's own row-blocking to kick in; each batch index writes a
  // disjoint output slab, so results match the serial loop bit-for-bit.
  // (When Gemm does parallelize itself, nested calls run inline.)
  const float* a_data = a.data();
  const float* b_data = b.data();
  float* out_data = out.data();
  constexpr int64_t kBatchParallelFlops = 1 << 17;
  const int64_t grain =
      batch * m * k * n >= kBatchParallelFlops ? 1 : batch;
  ParallelFor(0, batch, grain, [=](int64_t i) {
    Gemm(a_data + i * m * k, b_data + i * k * n, out_data + i * m * n, m, k,
         n);
  });
  return out;
}

Tensor SumAll(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += a.flat(i);
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor MeanAll(const Tensor& a) {
  KT_CHECK_GT(a.numel(), 0);
  return Tensor::Scalar(SumAll(a).item() / static_cast<float>(a.numel()));
}

Tensor Sum(const Tensor& a, int64_t d, bool keepdim) {
  if (d < 0) d += a.dim();
  KT_CHECK(d >= 0 && d < a.dim());
  const int64_t dim_size = a.size(d);
  int64_t outer = 1;
  for (int64_t i = 0; i < d; ++i) outer *= a.size(i);
  int64_t inner = 1;
  for (int64_t i = d + 1; i < a.dim(); ++i) inner *= a.size(i);

  Shape out_shape;
  for (int64_t i = 0; i < a.dim(); ++i) {
    if (i == d) {
      if (keepdim) out_shape.push_back(1);
    } else {
      out_shape.push_back(a.size(i));
    }
  }
  Tensor out(out_shape);
  const float* src = a.data();
  float* dst = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < dim_size; ++j) {
      const float* s = src + (o * dim_size + j) * inner;
      float* t = dst + o * inner;
      for (int64_t i = 0; i < inner; ++i) t[i] += s[i];
    }
  }
  return out;
}

Tensor Mean(const Tensor& a, int64_t d, bool keepdim) {
  if (d < 0) d += a.dim();
  Tensor out = Sum(a, d, keepdim);
  out.MulInPlace(1.0f / static_cast<float>(a.size(d)));
  return out;
}

Tensor MaxLastDim(const Tensor& a, std::vector<int64_t>* argmax) {
  KT_CHECK_GE(a.dim(), 1);
  const int64_t cols = a.size(-1);
  KT_CHECK_GT(cols, 0);
  const int64_t rows = a.numel() / cols;
  Shape out_shape(a.shape().begin(), a.shape().end() - 1);
  Tensor out(out_shape);
  if (argmax) argmax->assign(static_cast<size_t>(rows), 0);
  for (int64_t r = 0; r < rows; ++r) {
    const float* s = a.data() + r * cols;
    int64_t best = 0;
    for (int64_t c = 1; c < cols; ++c)
      if (s[c] > s[best]) best = c;
    out.flat(r) = s[best];
    if (argmax) (*argmax)[static_cast<size_t>(r)] = best;
  }
  return out;
}

Tensor SoftmaxLastDim(const Tensor& a) {
  KT_CHECK_GE(a.dim(), 1);
  const int64_t cols = a.size(-1);
  const int64_t rows = a.numel() / cols;
  Tensor out(a.shape());
  for (int64_t r = 0; r < rows; ++r) {
    const float* s = a.data() + r * cols;
    float* t = out.data() + r * cols;
    float max_val = s[0];
    for (int64_t c = 1; c < cols; ++c) max_val = std::max(max_val, s[c]);
    float denom = 0.0f;
    for (int64_t c = 0; c < cols; ++c) {
      t[c] = std::exp(s[c] - max_val);
      denom += t[c];
    }
    const float inv = 1.0f / denom;
    for (int64_t c = 0; c < cols; ++c) t[c] *= inv;
  }
  return out;
}

}  // namespace kt
