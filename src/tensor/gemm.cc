#include "tensor/gemm.h"

#include <cstring>

namespace kt {
namespace {

// Shared inner loop: C (+)= A * B with the i-k-j ordering. The innermost j
// loop is a contiguous saxpy over the output row, which the compiler
// auto-vectorizes.
inline void GemmIkj(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float a_val = a_row[p];
      if (a_val == 0.0f) continue;
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  std::memset(c, 0, sizeof(float) * static_cast<size_t>(m * n));
  GemmIkj(a, b, c, m, k, n);
}

void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  GemmIkj(a, b, c, m, k, n);
}

void GemmTransAAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n) {
  // A is [k, m] row-major; we want C += A^T B. Loop over p (rows of A and B):
  // C[i, j] += A[p, i] * B[p, j]. Inner j loop stays contiguous.
  for (int64_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float a_val = a_row[i];
      if (a_val == 0.0f) continue;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
}

void GemmTransBAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n) {
  // B is [n, k] row-major; C[i, j] += sum_p A[i, p] * B[j, p]. The inner p
  // loop is a dot product of two contiguous rows.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += acc;
    }
  }
}

}  // namespace kt
