#include "tensor/gemm.h"

#include <cstring>

#include "core/parallel.h"

namespace kt {
namespace {

// Shared inner loop: C (+)= A * B with the i-k-j ordering. The innermost j
// loop is a contiguous saxpy over the output row, which the compiler
// auto-vectorizes.
inline void GemmIkj(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float a_val = a_row[p];
      if (a_val == 0.0f) continue;
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
}

// Parallelization policy. All four kernels split work by output row, so
// each thread writes a disjoint slab of C and each C element sees exactly
// the same sequence of floating-point updates (p ascending) as the serial
// code — results are bit-identical for every thread count. Small products
// stay serial: the pool dispatch (~µs) would dominate them.
constexpr int64_t kParallelFlopThreshold = 1 << 18;  // m*k*n multiply-adds
// Rows per chunk are sized for ~32k multiply-adds each, from the problem
// shape alone (never the thread count), so chunk boundaries are stable.
constexpr int64_t kChunkFlops = 1 << 15;

inline bool UseParallel(int64_t m, int64_t k, int64_t n) {
  return m >= 2 && m * k * n >= kParallelFlopThreshold && GetNumThreads() > 1;
}

inline int64_t RowGrain(int64_t k, int64_t n) {
  const int64_t flops_per_row = k * n;
  const int64_t rows = flops_per_row > 0 ? kChunkFlops / flops_per_row : 1;
  return rows > 0 ? rows : 1;
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  std::memset(c, 0, sizeof(float) * static_cast<size_t>(m * n));
  GemmAccumulate(a, b, c, m, k, n);
}

void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  if (UseParallel(m, k, n)) {
    ParallelForRange(0, m, RowGrain(k, n), [=](int64_t lo, int64_t hi) {
      GemmIkj(a + lo * k, b, c + lo * n, hi - lo, k, n);
    });
    return;
  }
  GemmIkj(a, b, c, m, k, n);
}

void GemmTransAAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n) {
  // A is [k, m] row-major; we want C += A^T B: C[i, j] += A[p, i] * B[p, j].
  if (UseParallel(m, k, n)) {
    // Row-partitioned form: per output row i, accumulate over p ascending —
    // the same per-element update order as the serial loop below, so the
    // result is bit-identical (A is read with stride m, a cache cost we only
    // pay above the size threshold where the parallel win dominates).
    ParallelForRange(0, m, RowGrain(k, n), [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        float* c_row = c + i * n;
        for (int64_t p = 0; p < k; ++p) {
          const float a_val = a[p * m + i];
          if (a_val == 0.0f) continue;
          const float* b_row = b + p * n;
          for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
        }
      }
    });
    return;
  }
  // Serial: loop over p (rows of A and B) so both inner reads stay
  // contiguous.
  for (int64_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float a_val = a_row[i];
      if (a_val == 0.0f) continue;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
}

void GemmTransBAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n) {
  // B is [n, k] row-major; C[i, j] += sum_p A[i, p] * B[j, p]. The inner p
  // loop is a dot product of two contiguous rows; rows of C are independent.
  const auto rows = [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* b_row = b + j * k;
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
        c_row[j] += acc;
      }
    }
  };
  if (UseParallel(m, k, n)) {
    ParallelForRange(0, m, RowGrain(k, n), rows);
    return;
  }
  rows(0, m);
}

}  // namespace kt
