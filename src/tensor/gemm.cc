#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "core/cpu.h"
#include "core/parallel.h"
#include "obs/obs.h"
#include "tensor/autotune.h"
#include "tensor/gemm_kernels.h"

namespace kt {
namespace {

// Kernel-layer telemetry (kt::obs): call and FLOP counts, total and per
// dispatch flavor. The run log's "gemm_flops" field and the --obs exit
// summary read these. Call sites guard on one relaxed atomic load, so the
// disabled hot path costs nothing measurable; when enabled this adds four
// sharded counter increments — never a floating-point operation, so results
// stay bit-identical. Flavor handles are resolved once per call site
// (function-local statics) to keep the registry mutex off the hot path.
inline void CountGemmDispatch(obs::Counter* flavor_calls,
                              obs::Counter* flavor_flops, int64_t m,
                              int64_t k, int64_t n) {
  static obs::Counter* const calls = obs::Counter::Get("gemm.calls");
  static obs::Counter* const flops = obs::Counter::Get("gemm.flops");
  const int64_t mul_adds = 2 * m * k * n;
  calls->Add(1);
  flops->Add(mul_adds);
  flavor_calls->Add(1);
  flavor_flops->Add(mul_adds);
}

#define KT_COUNT_GEMM(flavor, m, k, n)                                      \
  if (obs::Enabled()) {                                                     \
    static obs::Counter* const kt_gemm_calls =                              \
        obs::Counter::Get("gemm." flavor ".calls");                         \
    static obs::Counter* const kt_gemm_flops =                              \
        obs::Counter::Get("gemm." flavor ".flops");                         \
    CountGemmDispatch(kt_gemm_calls, kt_gemm_flops, (m), (k), (n));         \
  }

// Per-backend telemetry for the --gemm-kernel override contract (gemm.h):
// every dispatch logs which backend actually ran, so operators can confirm
// an override (or an autotuner decision) took effect from the obs summary.
inline void CountBackendDispatch(GemmKernel resolved, int64_t m, int64_t k,
                                 int64_t n) {
  if (!obs::Enabled()) return;
  static obs::Counter* const ref_calls =
      obs::Counter::Get("gemm.backend.reference.calls");
  static obs::Counter* const ref_bytes =
      obs::Counter::Get("gemm.backend.reference.bytes");
  static obs::Counter* const tiled_calls =
      obs::Counter::Get("gemm.backend.tiled.calls");
  static obs::Counter* const tiled_bytes =
      obs::Counter::Get("gemm.backend.tiled.bytes");
  static obs::Counter* const fma_calls =
      obs::Counter::Get("gemm.backend.tiled_fma.calls");
  static obs::Counter* const fma_bytes =
      obs::Counter::Get("gemm.backend.tiled_fma.bytes");
  const int64_t bytes = (m * k + k * n + m * n) * 4;
  switch (resolved) {
    case GemmKernel::kReference:
      ref_calls->Add(1);
      ref_bytes->Add(bytes);
      break;
    case GemmKernel::kTiled:
      tiled_calls->Add(1);
      tiled_bytes->Add(bytes);
      break;
    case GemmKernel::kTiledFma:
      fma_calls->Add(1);
      fma_bytes->Add(bytes);
      break;
    case GemmKernel::kAuto:
      break;  // never a resolved value
  }
}

std::atomic<GemmKernel> g_gemm_kernel{GemmKernel::kAuto};

thread_local FpRegion t_fp_region = FpRegion::kStrict;

// ---------------------------------------------------------------------------
// Reference kernels. These define the floating-point contract: each C
// element is one ascending-k accumulator chain. The tiled kernels below
// replay exactly the same per-element chains, just grouped into register
// tiles, so the two families are bit-identical.
// ---------------------------------------------------------------------------

// C (+)= A * B with the i-k-j ordering. The innermost j loop is a
// contiguous saxpy over the output row, which the compiler auto-vectorizes.
inline void GemmIkj(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* c_row = c + i * n;
    const float* a_row = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float a_val = a_row[p];
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
}

// C += A^T * B, rows [lo, hi) of C; A is [k, m] row-major. Per element the
// update order is p ascending, matching the p-outer serial form.
inline void GemmTransARows(const float* a, const float* b, float* c,
                           int64_t lo, int64_t hi, int64_t m, int64_t k,
                           int64_t n) {
  for (int64_t i = lo; i < hi; ++i) {
    float* c_row = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float a_val = a[p * m + i];
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
}

// C += A * B^T, rows [lo, hi); B is [n, k] row-major. The inner p loop is a
// dot product accumulated from zero, then added to C once — the TransB
// chain shape the tiled kernel must reproduce.
inline void GemmTransBRows(const float* a, const float* b, float* c,
                           int64_t lo, int64_t hi, int64_t k, int64_t n) {
  for (int64_t i = lo; i < hi; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] += acc;
    }
  }
}

// ---------------------------------------------------------------------------
// Tiled kernels. B is packed once into kNR-wide column panels (contiguous
// per k step) on the calling thread; C is produced in kMR x kNR register
// tiles. Each accumulator runs the full k range ascending, so the chain per
// C element is identical to the reference kernels. kMR*kNR accumulators fit
// the 16 xmm registers of baseline x86-64; with wider vectors (KT_NATIVE)
// the same source compiles to ymm/zmm tiles.
// ---------------------------------------------------------------------------

constexpr int kMR = 4;  // register rows per micro tile (portable kernel)
constexpr int kNR = internal::kGemmPanelWidth;  // packed panel width (floats)

inline std::vector<float>& PackBufA() {
  static thread_local std::vector<float> buf;
  return buf;
}
inline std::vector<float>& PackBufB() {
  static thread_local std::vector<float> buf;
  return buf;
}

// Packs B [k, n] row-major into column panels: panel j0 holds columns
// [j0, j0+w) as w contiguous floats per k step.
void PackB(const float* b, int64_t k, int64_t n, float* bp) {
  for (int64_t j0 = 0; j0 < n; j0 += kNR) {
    const int64_t w = std::min<int64_t>(kNR, n - j0);
    float* panel = bp + j0 * k;
    for (int64_t p = 0; p < k; ++p) {
      std::memcpy(panel + p * w, b + p * n + j0,
                  sizeof(float) * static_cast<size_t>(w));
    }
  }
}

// Packs B^T into the same panel layout, where B is [n, k] row-major (the
// TransB operand): panel element (p, jj) = B[j0 + jj, p].
void PackBTransposed(const float* b, int64_t k, int64_t n, float* bp) {
  for (int64_t j0 = 0; j0 < n; j0 += kNR) {
    const int64_t w = std::min<int64_t>(kNR, n - j0);
    float* panel = bp + j0 * k;
    for (int64_t jj = 0; jj < w; ++jj) {
      const float* b_row = b + (j0 + jj) * k;
      for (int64_t p = 0; p < k; ++p) panel[p * w + jj] = b_row[p];
    }
  }
}

// Packs A^T [m, k] row-major from A [k, m] row-major (the TransA operand).
void PackATransposed(const float* a, int64_t k, int64_t m, float* ap) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) ap[i * k + p] = a[p * m + i];
  }
}

// 4-wide vector lane (GCC/Clang vector extension). Lane arithmetic is
// element-wise IEEE single precision — identical to the scalar ops — so
// using vectors changes scheduling, never results. Spelling the lanes out
// (instead of a scalar j loop) matters: GCC's loop vectorizer otherwise
// targets the k loop and emits a shuffle-heavy transposed form ~3x slower
// than the reference kernels.
typedef float V4 __attribute__((vector_size(16)));

inline V4 Load4(const float* p) {
  V4 v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned-safe, compiles to movups
  return v;
}
inline void Store4(float* p, V4 v) { __builtin_memcpy(p, &v, sizeof(v)); }

// Full kMR x kNR register tile over a packed panel. kLoadC selects the
// chain shape: true  -> accumulators start from C ("(c+p0)+p1..."), the
// accumulate-form contract; false -> accumulators start from zero with one
// final `c += acc` ("c + ((0+p0)+p1...)"), the TransB dot contract.
template <bool kLoadC>
inline void MicroTile(const float* a, int64_t lda, const float* bp, float* c,
                      int64_t ldc, int64_t k) {
  static_assert(kNR == 8, "micro tile hand-unrolls two 4-wide lanes");
  V4 acc[kMR][2];
  for (int i = 0; i < kMR; ++i) {
    acc[i][0] = kLoadC ? Load4(c + i * ldc) : V4{};
    acc[i][1] = kLoadC ? Load4(c + i * ldc + 4) : V4{};
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = bp + p * kNR;
    const V4 b0 = Load4(b_row);
    const V4 b1 = Load4(b_row + 4);
    for (int i = 0; i < kMR; ++i) {
      const float s = a[i * lda + p];
      const V4 av = {s, s, s, s};
      acc[i][0] += av * b0;
      acc[i][1] += av * b1;
    }
  }
  for (int i = 0; i < kMR; ++i) {
    if (kLoadC) {
      Store4(c + i * ldc, acc[i][0]);
      Store4(c + i * ldc + 4, acc[i][1]);
    } else {
      Store4(c + i * ldc, Load4(c + i * ldc) + acc[i][0]);
      Store4(c + i * ldc + 4, Load4(c + i * ldc + 4) + acc[i][1]);
    }
  }
}

// Edge tile with runtime extents (mr <= kMR, nr <= kNR); `bw` is the packed
// panel width (== nr for a narrow edge panel, kNR otherwise).
template <bool kLoadC>
inline void MicroTileEdge(const float* a, int64_t lda, const float* bp,
                          int64_t bw, float* c, int64_t ldc, int64_t k,
                          int64_t mr, int64_t nr) {
  float acc[kMR][kNR];
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) acc[i][j] = kLoadC ? c[i * ldc + j] : 0.0f;
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = bp + p * bw;
    for (int64_t i = 0; i < mr; ++i) {
      const float a_val = a[i * lda + p];
      for (int64_t j = 0; j < nr; ++j) acc[i][j] += a_val * b_row[j];
    }
  }
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) {
      if (kLoadC) {
        c[i * ldc + j] = acc[i][j];
      } else {
        c[i * ldc + j] += acc[i][j];
      }
    }
  }
}

// Tiled sweep over m rows of C against pre-packed B panels. `a` addresses
// the first of the m rows ([m, k]-ish with row stride lda).
template <bool kLoadC>
void TiledRowsPortable(const float* a, int64_t lda, const float* bp, float* c,
                       int64_t ldc, int64_t m, int64_t k, int64_t n) {
  for (int64_t i0 = 0; i0 < m; i0 += kMR) {
    const int64_t mr = std::min<int64_t>(kMR, m - i0);
    for (int64_t j0 = 0; j0 < n; j0 += kNR) {
      const int64_t nr = std::min<int64_t>(kNR, n - j0);
      const float* panel = bp + j0 * k;
      float* c_tile = c + i0 * ldc + j0;
      const float* a_tile = a + i0 * lda;
      if (mr == kMR && nr == kNR) {
        MicroTile<kLoadC>(a_tile, lda, panel, c_tile, ldc, k);
      } else {
        MicroTileEdge<kLoadC>(a_tile, lda, panel, nr, c_tile, ldc, k, mr, nr);
      }
    }
  }
}

// True when the FMA micro kernel is both compiled in and runnable here.
inline bool FmaKernelAvailable() {
#ifdef KT_HAVE_AVX2_FMA_KERNEL
  const cpu::Features& f = cpu::Get();
  return f.avx2 && f.fma;
#else
  return false;
#endif
}

// Runtime ISA dispatch. The default build is portable x86-64, so AVX2 is
// reached via separately-compiled TUs (gemm_avx2.cc, gemm_avx2_fma.cc)
// guarded by the cached core/cpu.h probe, not via build flags. The no-FMA
// tiled implementations consume the same packed panels and replay the same
// per-element chains, so which one runs is unobservable in the results;
// `use_fma` (already availability-checked by ResolveKernel) switches to
// the contracted kernel, which is observable and must have been chosen by
// the precision policy.
template <bool kLoadC>
inline void TiledRows(bool use_fma, const float* a, int64_t lda,
                      const float* bp, float* c, int64_t ldc, int64_t m,
                      int64_t k, int64_t n) {
#ifdef KT_HAVE_AVX2_FMA_KERNEL
  if (use_fma && FmaKernelAvailable()) {
    internal::TiledRowsAvx2Fma(a, lda, bp, c, ldc, m, k, n, kLoadC);
    return;
  }
#else
  (void)use_fma;
#endif
#ifdef KT_HAVE_AVX2_KERNEL
  if (cpu::Get().avx2) {
    internal::TiledRowsAvx2(a, lda, bp, c, ldc, m, k, n, kLoadC);
    return;
  }
#endif
  TiledRowsPortable<kLoadC>(a, lda, bp, c, ldc, m, k, n);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

// Parallelization policy. All kernels split work by output row, so each
// thread writes a disjoint slab of C and each C element sees exactly the
// same sequence of floating-point updates (p ascending) as the serial
// code — results are bit-identical for every thread count. Small products
// stay serial: the pool dispatch (~µs) would dominate them.
constexpr int64_t kParallelFlopThreshold = 1 << 18;  // m*k*n multiply-adds
// Rows per chunk are sized for ~32k multiply-adds each, from the problem
// shape alone (never the thread count), so chunk boundaries are stable.
constexpr int64_t kChunkFlops = 1 << 15;

inline bool UseParallel(int64_t m, int64_t k, int64_t n) {
  return m >= 2 && m * k * n >= kParallelFlopThreshold && GetNumThreads() > 1;
}

inline int64_t RowGrain(int64_t k, int64_t n) {
  const int64_t flops_per_row = k * n;
  const int64_t rows = flops_per_row > 0 ? kChunkFlops / flops_per_row : 1;
  return rows > 0 ? rows : 1;
}

// Tiled kernels win once the k*n pack is amortized over enough rows and the
// tile has real width; tiny or skinny products keep the reference loops.
inline bool TiledHeuristic(int64_t m, int64_t k, int64_t n) {
  return m >= kMR && n >= kNR && k >= 4 && m * k * n >= 4096;
}

// Resolves the kernel family that will actually run this product, in
// priority order: explicit override, autotuned per-shape winner, built-in
// heuristic. kTiledFma is availability-checked here (falling back to the
// bit-exact tiled kernel), and in the kAuto path it is only eligible when
// the CALLING thread is in a relaxed precision region — pool workers
// inherit the decision, not the region, because resolution happens before
// any row split. Never returns kAuto.
GemmKernel ResolveKernel(int64_t m, int64_t k, int64_t n) {
  const GemmKernel override_kernel =
      g_gemm_kernel.load(std::memory_order_relaxed);
  if (override_kernel == GemmKernel::kTiledFma) {
    return FmaKernelAvailable() ? GemmKernel::kTiledFma : GemmKernel::kTiled;
  }
  if (override_kernel != GemmKernel::kAuto) return override_kernel;
  const bool relaxed = t_fp_region == FpRegion::kRelaxed;
  GemmKernel tuned;
  if (autotune::LookupForDispatch(m, k, n, relaxed, &tuned)) {
    if (tuned == GemmKernel::kTiledFma && !FmaKernelAvailable()) {
      return GemmKernel::kTiled;  // table written on a different host
    }
    return tuned;
  }
  if (!TiledHeuristic(m, k, n)) return GemmKernel::kReference;
  return relaxed && FmaKernelAvailable() ? GemmKernel::kTiledFma
                                         : GemmKernel::kTiled;
}

}  // namespace

void SetGemmKernel(GemmKernel kernel) {
  g_gemm_kernel.store(kernel, std::memory_order_relaxed);
}

GemmKernel GetGemmKernel() {
  return g_gemm_kernel.load(std::memory_order_relaxed);
}

FpRegion CurrentFpRegion() { return t_fp_region; }

FpRegionScope::FpRegionScope(FpRegion region) : previous_(t_fp_region) {
  t_fp_region = region;
}

FpRegionScope::~FpRegionScope() { t_fp_region = previous_; }

const std::vector<GemmBackendDesc>& GemmBackends() {
  static const std::vector<GemmBackendDesc>* const backends = [] {
    bool avx2 = false;
#ifdef KT_HAVE_AVX2_KERNEL
    avx2 = cpu::Get().avx2;
#endif
    const bool fma = FmaKernelAvailable();
    auto* v = new std::vector<GemmBackendDesc>();
    v->push_back({"reference", GemmKernel::kReference, /*dispatchable=*/true,
                  /*bit_exact=*/true, /*available=*/true, "scalar"});
    v->push_back({"tiled", GemmKernel::kTiled, true, true, true,
                  avx2 ? "avx2" : "portable-simd"});
    v->push_back({"tiled_fma", GemmKernel::kTiledFma, true, false, fma,
                  fma ? "avx2+fma" : "unavailable"});
    // The low-precision storage families are not reachable through the
    // fp32 dispatcher (they need pre-packed panels; see tensor/quant.h),
    // but the registry still describes them so tools can enumerate
    // capabilities. Portable fallbacks keep them available everywhere.
    v->push_back({"bf16", GemmKernel::kAuto, false, false, true,
                  fma ? "avx2+fma" : "scalar-fmaf"});
    v->push_back({"int8", GemmKernel::kAuto, false, false, true,
                  avx2 ? "avx2-maddwd" : "scalar"});
    return v;
  }();
  return *backends;
}

const GemmBackendDesc* FindGemmBackend(const std::string& name) {
  for (const GemmBackendDesc& desc : GemmBackends()) {
    if (desc.name == name) return &desc;
  }
  return nullptr;
}

bool GemmKernelByName(const std::string& name, GemmKernel* out) {
  if (name == "auto") {
    *out = GemmKernel::kAuto;
    return true;
  }
  const GemmBackendDesc* desc = FindGemmBackend(name);
  if (desc == nullptr || !desc->dispatchable) return false;
  *out = desc->kernel;
  return true;
}

const char* GemmKernelName(GemmKernel kernel) {
  switch (kernel) {
    case GemmKernel::kAuto:
      return "auto";
    case GemmKernel::kReference:
      return "reference";
    case GemmKernel::kTiled:
      return "tiled";
    case GemmKernel::kTiledFma:
      return "tiled_fma";
  }
  return "auto";
}

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  // Guard the memset: c may legitimately be null when the output is empty
  // (e.g. a zero-size buffer's data()), and memset(nullptr, 0, 0) is UB.
  if (m <= 0 || n <= 0) return;
  std::memset(c, 0, sizeof(float) * static_cast<size_t>(m * n));
  GemmAccumulate(a, b, c, m, k, n);
}

void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  KT_COUNT_GEMM("nn", m, k, n);
  const GemmKernel resolved = ResolveKernel(m, k, n);
  CountBackendDispatch(resolved, m, k, n);
  if (resolved != GemmKernel::kReference) {
    const bool fma = resolved == GemmKernel::kTiledFma;
    std::vector<float>& bp = PackBufB();
    bp.resize(static_cast<size_t>(k * n));
    PackB(b, k, n, bp.data());
    const float* bpp = bp.data();
    if (UseParallel(m, k, n)) {
      ParallelForRange(0, m, RowGrain(k, n), [=](int64_t lo, int64_t hi) {
        TiledRows<true>(fma, a + lo * k, k, bpp, c + lo * n, n, hi - lo, k, n);
      });
      return;
    }
    TiledRows<true>(fma, a, k, bpp, c, n, m, k, n);
    return;
  }
  if (UseParallel(m, k, n)) {
    ParallelForRange(0, m, RowGrain(k, n), [=](int64_t lo, int64_t hi) {
      GemmIkj(a + lo * k, b, c + lo * n, hi - lo, k, n);
    });
    return;
  }
  GemmIkj(a, b, c, m, k, n);
}

void GemmTransAAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n) {
  // A is [k, m] row-major; we want C += A^T B: C[i, j] += A[p, i] * B[p, j].
  if (m <= 0 || n <= 0 || k <= 0) return;
  KT_COUNT_GEMM("ta", m, k, n);
  const GemmKernel resolved = ResolveKernel(m, k, n);
  CountBackendDispatch(resolved, m, k, n);
  if (resolved != GemmKernel::kReference) {
    const bool fma = resolved == GemmKernel::kTiledFma;
    // Pack A^T once so the micro kernel reads contiguous k-runs; the chain
    // per C element (p ascending) is unchanged from the reference forms.
    std::vector<float>& ap = PackBufA();
    ap.resize(static_cast<size_t>(m * k));
    PackATransposed(a, k, m, ap.data());
    std::vector<float>& bp = PackBufB();
    bp.resize(static_cast<size_t>(k * n));
    PackB(b, k, n, bp.data());
    const float* app = ap.data();
    const float* bpp = bp.data();
    if (UseParallel(m, k, n)) {
      ParallelForRange(0, m, RowGrain(k, n), [=](int64_t lo, int64_t hi) {
        TiledRows<true>(fma, app + lo * k, k, bpp, c + lo * n, n, hi - lo, k,
                        n);
      });
      return;
    }
    TiledRows<true>(fma, app, k, bpp, c, n, m, k, n);
    return;
  }
  if (UseParallel(m, k, n)) {
    // Row-partitioned form: per output row i, accumulate over p ascending —
    // the same per-element update order as the serial loop below, so the
    // result is bit-identical (A is read with stride m, a cache cost we only
    // pay above the size threshold where the parallel win dominates).
    ParallelForRange(0, m, RowGrain(k, n), [=](int64_t lo, int64_t hi) {
      GemmTransARows(a, b, c, lo, hi, m, k, n);
    });
    return;
  }
  // Serial: loop over p (rows of A and B) so both inner reads stay
  // contiguous.
  for (int64_t p = 0; p < k; ++p) {
    const float* a_row = a + p * m;
    const float* b_row = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float a_val = a_row[i];
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += a_val * b_row[j];
    }
  }
}

void GemmTransBAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n) {
  // B is [n, k] row-major; C[i, j] += sum_p A[i, p] * B[j, p].
  if (m <= 0 || n <= 0) return;
  KT_COUNT_GEMM("tb", m, k, n);
  if (k <= 0) {
    // The reference dot form still executes `c += 0.0f` per element; keep
    // that (it normalizes -0.0f) so all paths agree bit-for-bit.
    for (int64_t i = 0; i < m * n; ++i) c[i] += 0.0f;
    return;
  }
  const GemmKernel resolved = ResolveKernel(m, k, n);
  CountBackendDispatch(resolved, m, k, n);
  if (resolved != GemmKernel::kReference) {
    const bool fma = resolved == GemmKernel::kTiledFma;
    std::vector<float>& bp = PackBufB();
    bp.resize(static_cast<size_t>(k * n));
    PackBTransposed(b, k, n, bp.data());
    const float* bpp = bp.data();
    if (UseParallel(m, k, n)) {
      ParallelForRange(0, m, RowGrain(k, n), [=](int64_t lo, int64_t hi) {
        TiledRows<false>(fma, a + lo * k, k, bpp, c + lo * n, n, hi - lo, k,
                         n);
      });
      return;
    }
    TiledRows<false>(fma, a, k, bpp, c, n, m, k, n);
    return;
  }
  if (UseParallel(m, k, n)) {
    ParallelForRange(0, m, RowGrain(k, n), [=](int64_t lo, int64_t hi) {
      GemmTransBRows(a, b, c, lo, hi, k, n);
    });
    return;
  }
  GemmTransBRows(a, b, c, 0, m, k, n);
}

}  // namespace kt
