// AVX2+FMA build of the tiled GEMM micro kernel — the one fp32 family that
// is allowed to contract a*b+c into a single fused multiply-add.
//
// This TU is compiled with -mavx2 -mfma -ffp-contract=fast (see
// CMakeLists.txt), so `acc += av * b` lowers to vfmadd231ps. One fma
// rounds once where the reference kernels round twice, which makes this
// family deliberately NOT bit-identical to the others; the dispatcher
// (gemm.cc) therefore only reaches it through the explicit kTiledFma
// override or a relaxed precision region (gemm.h). Error is still tightly
// bounded — every element remains one ascending-k chain over the same
// products, just with at most one rounding saved per step — and the
// equivalence sweep in tests/tensor_test.cc asserts a per-element bound.
//
// The panel layout is shared with gemm.cc (kNR = 8 floats per k step), so
// packing is ISA-independent; only the contraction differs from
// gemm_avx2.cc.
#include "tensor/gemm_kernels.h"

#include <algorithm>

namespace kt {
namespace internal {
namespace {

constexpr int kMR = 8;  // register rows (one ymm accumulator each)
constexpr int kNR = kGemmPanelWidth;

typedef float V8 __attribute__((vector_size(32)));

inline V8 Load8(const float* p) {
  V8 v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned-safe, compiles to vmovups
  return v;
}
inline void Store8(float* p, V8 v) { __builtin_memcpy(p, &v, sizeof(v)); }

template <bool kLoadC>
inline void MicroTile(const float* a, int64_t lda, const float* bp, float* c,
                      int64_t ldc, int64_t k) {
  V8 acc[kMR];
  for (int i = 0; i < kMR; ++i) acc[i] = kLoadC ? Load8(c + i * ldc) : V8{};
  for (int64_t p = 0; p < k; ++p) {
    const V8 b = Load8(bp + p * kNR);
    for (int i = 0; i < kMR; ++i) {
      const float s = a[i * lda + p];
      const V8 av = {s, s, s, s, s, s, s, s};
      acc[i] += av * b;  // contracts to vfmadd231ps under -ffp-contract=fast
    }
  }
  for (int i = 0; i < kMR; ++i) {
    if (kLoadC) {
      Store8(c + i * ldc, acc[i]);
    } else {
      Store8(c + i * ldc, Load8(c + i * ldc) + acc[i]);
    }
  }
}

// Edge tile with runtime extents (mr <= kMR, nr <= kNR); `bw` is the
// packed panel width. Scalar, but still contracted: the compiler fuses
// `acc += a * b` here too, so edges share the family's rounding behavior.
template <bool kLoadC>
inline void MicroTileEdge(const float* a, int64_t lda, const float* bp,
                          int64_t bw, float* c, int64_t ldc, int64_t k,
                          int64_t mr, int64_t nr) {
  float acc[kMR][kNR];
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) acc[i][j] = kLoadC ? c[i * ldc + j] : 0.0f;
  }
  for (int64_t p = 0; p < k; ++p) {
    const float* b_row = bp + p * bw;
    for (int64_t i = 0; i < mr; ++i) {
      const float a_val = a[i * lda + p];
      for (int64_t j = 0; j < nr; ++j) acc[i][j] += a_val * b_row[j];
    }
  }
  for (int64_t i = 0; i < mr; ++i) {
    for (int64_t j = 0; j < nr; ++j) {
      if (kLoadC) {
        c[i * ldc + j] = acc[i][j];
      } else {
        c[i * ldc + j] += acc[i][j];
      }
    }
  }
}

template <bool kLoadC>
void TiledRows(const float* a, int64_t lda, const float* bp, float* c,
               int64_t ldc, int64_t m, int64_t k, int64_t n) {
  for (int64_t i0 = 0; i0 < m; i0 += kMR) {
    const int64_t mr = std::min<int64_t>(kMR, m - i0);
    for (int64_t j0 = 0; j0 < n; j0 += kNR) {
      const int64_t nr = std::min<int64_t>(kNR, n - j0);
      const float* panel = bp + j0 * k;
      float* c_tile = c + i0 * ldc + j0;
      const float* a_tile = a + i0 * lda;
      if (mr == kMR && nr == kNR) {
        MicroTile<kLoadC>(a_tile, lda, panel, c_tile, ldc, k);
      } else {
        MicroTileEdge<kLoadC>(a_tile, lda, panel, nr, c_tile, ldc, k, mr, nr);
      }
    }
  }
}

}  // namespace

void TiledRowsAvx2Fma(const float* a, int64_t lda, const float* bp, float* c,
                      int64_t ldc, int64_t m, int64_t k, int64_t n,
                      bool load_c) {
  if (load_c) {
    TiledRows<true>(a, lda, bp, c, ldc, m, k, n);
  } else {
    TiledRows<false>(a, lda, bp, c, ldc, m, k, n);
  }
}

}  // namespace internal
}  // namespace kt
