// AVX2+FMA build of the bf16-storage GEMM row sweep (see tensor/quant.h
// for the panel layout). Compiled -mavx2 -mfma (CMakeLists.txt).
//
// A bf16 value widens to fp32 exactly (shift left 16), so the only
// roundings in the kernel are the per-step vfmadd ones — the same chain
// the portable fmaf fallback performs, which is what makes the two
// implementations bit-identical on every host.
#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "tensor/gemm_kernels.h"
#include "tensor/quant_kernels.h"

namespace kt {
namespace quant {
namespace internal {
namespace {

constexpr int kMR = 8;  // rows per register block (one ymm accumulator each)
constexpr int kNR = ::kt::internal::kGemmPanelWidth;

// 8 bf16 lanes -> 8 fp32 lanes, exactly.
inline __m256 WidenBf16(const uint16_t* p) {
  const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m256i w = _mm256_cvtepu16_epi32(h);
  return _mm256_castsi256_ps(_mm256_slli_epi32(w, 16));
}

// One panel (8 columns) against mr <= kMR rows of A; stores nr <= kNR
// logical columns of C.
inline void PanelRows(const float* a, int64_t lda, const uint16_t* panel,
                      float* c, int64_t ldc, int64_t mr, int64_t k,
                      int64_t nr) {
  __m256 acc[kMR];
  for (int64_t i = 0; i < mr; ++i) acc[i] = _mm256_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const __m256 b = WidenBf16(panel + p * kNR);
    for (int64_t i = 0; i < mr; ++i) {
      acc[i] = _mm256_fmadd_ps(_mm256_set1_ps(a[i * lda + p]), b, acc[i]);
    }
  }
  if (nr == kNR) {
    for (int64_t i = 0; i < mr; ++i) _mm256_storeu_ps(c + i * ldc, acc[i]);
  } else {
    float tmp[kNR];
    for (int64_t i = 0; i < mr; ++i) {
      _mm256_storeu_ps(tmp, acc[i]);
      for (int64_t jj = 0; jj < nr; ++jj) c[i * ldc + jj] = tmp[jj];
    }
  }
}

}  // namespace

void GemmBf16RowsAvx2(const float* a, const uint16_t* panels, float* c,
                      int64_t ldc, int64_t m, int64_t k, int64_t n) {
  for (int64_t i0 = 0; i0 < m; i0 += kMR) {
    const int64_t mr = std::min<int64_t>(kMR, m - i0);
    for (int64_t j0 = 0; j0 < n; j0 += kNR) {
      const int64_t nr = std::min<int64_t>(kNR, n - j0);
      PanelRows(a + i0 * k, k, panels + j0 * k, c + i0 * ldc + j0, ldc, mr, k,
                nr);
    }
  }
}

}  // namespace internal
}  // namespace quant
}  // namespace kt
