// Single-precision general matrix multiply kernels, plus the precision-
// policy layer that decides which kernel family may serve a given region
// of the program.
//
// Three fp32 kernel families share the dispatcher:
//
//   * reference: plain loop kernels (i-k-j saxpy for the normal/TransA
//     forms, row-dot for TransB). These define the per-element update
//     order and are kept as the serial ground truth.
//   * tiled: cache-blocked, register-tiled kernels. B is packed once into
//     kNR-wide column panels; C is computed in kMR x kNR register tiles.
//     The k dimension is never split: every C element is produced by one
//     ascending-k accumulator chain, which is exactly the reference
//     order, so the two families are bit-identical. The micro kernel is
//     ISA-dispatched at runtime (portable vectors / AVX2 without FMA).
//   * tiled_fma: the AVX2 tiled kernel with FMA contraction
//     (gemm_avx2_fma.cc). An fma rounds once where the reference chain
//     rounds twice, so this family is NOT bit-identical — only measurably
//     faster. It is reachable ONLY by explicit override (SetGemmKernel /
//     --gemm-kernel tiled_fma) or when the calling thread is inside a
//     relaxed-precision region (FpRegionScope below): training,
//     explanation, and default fp32 serving never see it.
//
// Low-precision storage families (bf16 panels, calibrated int8) need
// pre-packed weights and live behind explicit entry points in
// tensor/quant.h; the registry below still describes them so tools can
// enumerate capabilities.
//
// Products above a size threshold are additionally row-blocked across the
// kt::parallel pool (see core/parallel.h); the split is by output row with
// per-element update order unchanged, so results are bit-identical for
// every KT_NUM_THREADS value (within a family).
#ifndef KT_TENSOR_GEMM_H_
#define KT_TENSOR_GEMM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kt {

// Kernel selection. kAuto picks per shape: first the autotuner table
// (tensor/autotune.h) when one has been published, then the built-in
// heuristic (tiled for shapes large enough to amortize the pack,
// reference otherwise).
//
// Override contract (SetGemmKernel / --gemm-kernel): the override is a
// process-wide, test/bench/operator-facing escape hatch. kReference and
// kTiled preserve the bit-identity contract for every shape and thread
// count. kTiledFma deliberately BREAKS it (one rounding per multiply-add)
// in exchange for FMA throughput; selecting it voids the bitwise replay
// and pred_fnv64 parity gates, so production servers only use it when the
// operator explicitly opts out of bit-exactness. If kTiledFma is forced
// on a machine without AVX2+FMA, dispatch falls back to the bit-exact
// tiled kernel. Every dispatch logs its resolved backend through kt::obs
// ("gemm.backend.<name>.calls" / ".bytes") when observability is on.
enum class GemmKernel {
  kAuto,
  kReference,
  kTiled,
  kTiledFma,
};

// Process-wide kernel override (default kAuto).
void SetGemmKernel(GemmKernel kernel);
GemmKernel GetGemmKernel();

// ---------------------------------------------------------------------------
// Precision regions
// ---------------------------------------------------------------------------

// Floating-point contract of the CURRENT THREAD's region, in the spirit of
// attribute-driven region offload: callers mark a region, the dispatcher
// picks the fastest kernel the region's contract allows.
//
//   kStrict  (default): results must be bit-identical to the reference
//            chain — training, explanation/influence, state updates, and
//            fp32 serving all run here.
//   kRelaxed: correctly-rounded-per-op is not required; kAuto may choose
//            the FMA tiled kernel. Entered only by code whose output is
//            gated by an accuracy metric instead of bitwise parity (e.g.
//            the serve predict head under --precision bf16/int8, and
//            benches measuring the relaxed families).
enum class FpRegion { kStrict, kRelaxed };

FpRegion CurrentFpRegion();

// RAII region marker (thread-local, nestable; restores on destruction).
class FpRegionScope {
 public:
  explicit FpRegionScope(FpRegion region);
  ~FpRegionScope();
  FpRegionScope(const FpRegionScope&) = delete;
  FpRegionScope& operator=(const FpRegionScope&) = delete;

 private:
  FpRegion previous_;
};

// ---------------------------------------------------------------------------
// Backend registry
// ---------------------------------------------------------------------------

// One row per kernel backend the build knows about, with capability flags.
// `available` reflects this host (compiled in AND the CPU supports the
// fast path; the bf16/int8 rows stay available on any host because they
// carry portable fallbacks, just without the SIMD speedup).
struct GemmBackendDesc {
  std::string name;     // "reference" | "tiled" | "tiled_fma" | "bf16" | "int8"
  GemmKernel kernel;    // dispatch enum value (meaningful iff dispatchable)
  bool dispatchable;    // selectable via SetGemmKernel / --gemm-kernel
  bool bit_exact;       // replays the reference fp32 chain bit for bit
  bool available;       // usable on this host at full speed
  std::string isa;      // micro-kernel ISA resolved for this host
};

// All known backends (stable order: reference, tiled, tiled_fma, bf16,
// int8). Availability is probed once via core/cpu.h.
const std::vector<GemmBackendDesc>& GemmBackends();

// Lookup by name; returns nullptr for unknown names.
const GemmBackendDesc* FindGemmBackend(const std::string& name);

// Parses a --gemm-kernel flag value ("auto" plus every dispatchable
// backend name). Returns false (with *out untouched) on unknown names;
// the caller prints the valid list from GemmBackends().
bool GemmKernelByName(const std::string& name, GemmKernel* out);

// Canonical flag-facing name for a kernel value ("auto", "reference", ...).
const char* GemmKernelName(GemmKernel kernel);

// ---------------------------------------------------------------------------
// GEMM entry points
// ---------------------------------------------------------------------------

// C = A * B where A is [m, k], B is [k, n], C is [m, n], all row-major.
// C is overwritten.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n);

// C += A * B (accumulating form, used by autograd backward passes).
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);

// C += A^T * B where A is [k, m] stored row-major (so A^T is [m, k]).
void GemmTransAAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n);

// C += A * B^T where B is [n, k] stored row-major (so B^T is [k, n]).
void GemmTransBAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n);

}  // namespace kt

#endif  // KT_TENSOR_GEMM_H_
