// Single-precision general matrix multiply kernels.
//
// Two kernel families share one floating-point contract:
//
//   * reference: plain loop kernels (i-k-j saxpy for the normal/TransA
//     forms, row-dot for TransB). These define the per-element update
//     order and are kept as the serial ground truth.
//   * tiled: cache-blocked, register-tiled kernels. B is packed once into
//     kNR-wide column panels; C is computed in kMR x kNR register tiles.
//     The k dimension is never split: every C element is produced by one
//     ascending-k accumulator chain, which is exactly the reference
//     order, so the two families are bit-identical.
//
// Products above a size threshold are additionally row-blocked across the
// kt::parallel pool (see core/parallel.h); the split is by output row with
// per-element update order unchanged, so results are bit-identical for
// every KT_NUM_THREADS value.
#ifndef KT_TENSOR_GEMM_H_
#define KT_TENSOR_GEMM_H_

#include <cstdint>

namespace kt {

// Kernel selection. kAuto picks tiled kernels for shapes large enough to
// amortize the pack, reference otherwise. The forced settings exist for the
// equivalence tests and the before/after benchmarks; both families produce
// identical bits for all shapes.
enum class GemmKernel {
  kAuto,
  kReference,
  kTiled,
};

// Process-wide kernel override (tests/benches only; default kAuto).
void SetGemmKernel(GemmKernel kernel);
GemmKernel GetGemmKernel();

// C = A * B where A is [m, k], B is [k, n], C is [m, n], all row-major.
// C is overwritten.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n);

// C += A * B (accumulating form, used by autograd backward passes).
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);

// C += A^T * B where A is [k, m] stored row-major (so A^T is [m, k]).
void GemmTransAAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n);

// C += A * B^T where B is [n, k] stored row-major (so B^T is [k, n]).
void GemmTransBAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n);

}  // namespace kt

#endif  // KT_TENSOR_GEMM_H_
