// Single-precision general matrix multiply kernels.
//
// The serial core uses a register-blocked, cache-friendly loop order (i-k-j
// with accumulation into the output row) rather than naive i-j-k; this is
// the single hottest kernel in training. Products above a size threshold
// are row-blocked across the kt::parallel pool (see core/parallel.h); the
// split is by output row with per-element update order unchanged, so
// results are bit-identical for every KT_NUM_THREADS value.
#ifndef KT_TENSOR_GEMM_H_
#define KT_TENSOR_GEMM_H_

#include <cstdint>

namespace kt {

// C = A * B where A is [m, k], B is [k, n], C is [m, n], all row-major.
// C is overwritten.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n);

// C += A * B (accumulating form, used by autograd backward passes).
void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);

// C += A^T * B where A is [k, m] stored row-major (so A^T is [m, k]).
void GemmTransAAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n);

// C += A * B^T where B is [n, k] stored row-major (so B^T is [k, n]).
void GemmTransBAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n);

}  // namespace kt

#endif  // KT_TENSOR_GEMM_H_
