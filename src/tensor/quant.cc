#include "tensor/quant.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "core/cpu.h"
#include "core/parallel.h"
#include "obs/obs.h"
#include "tensor/gemm_kernels.h"
#include "tensor/quant_kernels.h"

namespace kt {
namespace quant {
namespace {

using ::kt::internal::kGemmPanelWidth;

inline int64_t RoundUp(int64_t v, int64_t to) { return (v + to - 1) / to * to; }

// Same parallel policy as the fp32 dispatcher (gemm.cc): split by output
// row above a flop threshold; rows are independent, so every thread count
// produces the same bits.
inline bool UseParallel(int64_t m, int64_t k, int64_t n) {
  return m >= 2 && m * k * n >= (int64_t{1} << 18) && GetNumThreads() > 1;
}

inline int64_t RowGrain(int64_t k, int64_t n) {
  const int64_t flops_per_row = std::max<int64_t>(1, 2 * k * n);
  return std::max<int64_t>(1, (int64_t{1} << 15) / flops_per_row);
}

inline void CountBackend(const char* calls_name, const char* bytes_name,
                         int64_t bytes) {
  if (!obs::Enabled()) return;
  obs::Counter::Get(calls_name)->Add(1);
  obs::Counter::Get(bytes_name)->Add(bytes);
}

std::atomic<bool> g_simd_enabled{true};

// ---------------------------------------------------------------------------
// Portable kernels (also the cross-check oracle for the SIMD TUs)
// ---------------------------------------------------------------------------

// One ascending-k fmaf chain per element — fmaf is correctly rounded, so
// this replays the AVX2 vfmadd chain exactly on any host.
void GemmBf16RowsPortable(const float* a, const uint16_t* panels, float* c,
                          int64_t ldc, int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    for (int64_t j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
      const uint16_t* panel = panels + j0 * k;
      const int64_t nr = std::min<int64_t>(kGemmPanelWidth, n - j0);
      for (int64_t jj = 0; jj < nr; ++jj) {
        float acc = 0.0f;
        for (int64_t p = 0; p < k; ++p) {
          acc = std::fmaf(a_row[p],
                          FloatFromBf16(panel[p * kGemmPanelWidth + jj]), acc);
        }
        c[i * ldc + j0 + jj] = acc;
      }
    }
  }
}

// Exact int32 accumulation (order-independent) + one multiply epilogue.
void GemmInt8RowsPortable(const int8_t* aq, const int8_t* panels,
                          float combined_scale, float* c, int64_t ldc,
                          int64_t m, int64_t k, int64_t n) {
  const int64_t kpad = RoundUp(k, 2);
  for (int64_t i = 0; i < m; ++i) {
    const int8_t* a_row = aq + i * k;
    for (int64_t j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
      const int8_t* panel = panels + j0 * kpad;
      const int64_t nr = std::min<int64_t>(kGemmPanelWidth, n - j0);
      for (int64_t jj = 0; jj < nr; ++jj) {
        int32_t acc = 0;
        for (int64_t p = 0; p < k; ++p) {
          const int32_t b =
              panel[(p / 2) * 2 * kGemmPanelWidth + jj * 2 + (p & 1)];
          acc += static_cast<int32_t>(a_row[p]) * b;
        }
        c[i * ldc + j0 + jj] = static_cast<float>(acc) * combined_scale;
      }
    }
  }
}

void Bf16Rows(const float* a, const uint16_t* panels, float* c, int64_t ldc,
              int64_t m, int64_t k, int64_t n) {
#ifdef KT_HAVE_AVX2_FMA_KERNEL
  if (g_simd_enabled.load(std::memory_order_relaxed) && cpu::Get().avx2 &&
      cpu::Get().fma) {
    internal::GemmBf16RowsAvx2(a, panels, c, ldc, m, k, n);
    return;
  }
#endif
  GemmBf16RowsPortable(a, panels, c, ldc, m, k, n);
}

void Int8Rows(const int8_t* aq, const int8_t* panels, float combined_scale,
              float* c, int64_t ldc, int64_t m, int64_t k, int64_t n) {
#ifdef KT_HAVE_AVX2_KERNEL
  if (g_simd_enabled.load(std::memory_order_relaxed) && cpu::Get().avx2) {
    // Scratch for the per-row (a0, a1) broadcast words: 4 rows in flight,
    // ceil(k/2) words each. thread_local so pool workers reuse it.
    static thread_local std::vector<int32_t> words;
    const size_t need = static_cast<size_t>(4 * ((k + 1) / 2));
    if (words.size() < need) words.resize(need);
    internal::GemmInt8RowsAvx2(aq, panels, combined_scale, c, ldc, m, k, n,
                               words.data());
    return;
  }
#endif
  GemmInt8RowsPortable(aq, panels, combined_scale, c, ldc, m, k, n);
}

}  // namespace

// ---------------------------------------------------------------------------
// bf16
// ---------------------------------------------------------------------------

uint16_t Bf16FromFloat(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  // Round to nearest even on the truncated 16 bits. NaNs are quieted into
  // a canonical bf16 NaN rather than risking rounding into infinity.
  if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu) != 0) {
    return static_cast<uint16_t>((bits >> 16) | 0x0040u);
  }
  const uint32_t lsb = (bits >> 16) & 1u;
  bits += 0x7fffu + lsb;
  return static_cast<uint16_t>(bits >> 16);
}

float FloatFromBf16(uint16_t h) {
  const uint32_t bits = static_cast<uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

Bf16Panels PackBf16(const float* b, int64_t k, int64_t n) {
  Bf16Panels out;
  out.k = k;
  out.n = n;
  if (k <= 0 || n <= 0) return out;
  const int64_t npad = RoundUp(n, kGemmPanelWidth);
  out.data.assign(static_cast<size_t>(npad * k), 0);
  for (int64_t j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
    uint16_t* panel = out.data.data() + j0 * k;
    const int64_t nr = std::min<int64_t>(kGemmPanelWidth, n - j0);
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t jj = 0; jj < nr; ++jj) {
        panel[p * kGemmPanelWidth + jj] = Bf16FromFloat(b[p * n + j0 + jj]);
      }
    }
  }
  return out;
}

void GemmBf16(const float* a, const Bf16Panels& b, float* c, int64_t m) {
  const int64_t k = b.k;
  const int64_t n = b.n;
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    return;
  }
  CountBackend("gemm.backend.bf16.calls", "gemm.backend.bf16.bytes",
               m * k * 4 + static_cast<int64_t>(b.data.size()) * 2 + m * n * 4);
  if (UseParallel(m, k, n)) {
    ParallelForRange(0, m, RowGrain(k, n), [&](int64_t lo, int64_t hi) {
      Bf16Rows(a + lo * k, b.data.data(), c + lo * n, n, hi - lo, k, n);
    });
  } else {
    Bf16Rows(a, b.data.data(), c, n, m, k, n);
  }
}

// ---------------------------------------------------------------------------
// int8
// ---------------------------------------------------------------------------

QuantParams CalibrateSymmetric(const float* x, int64_t n) {
  float maxabs = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    const float v = std::fabs(x[i]);
    if (v > maxabs) maxabs = v;
  }
  QuantParams params;
  params.scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
  return params;
}

void QuantizeSymmetric(const float* x, int64_t n, const QuantParams& params,
                       int8_t* out) {
  const float inv = 1.0f / params.scale;
  for (int64_t i = 0; i < n; ++i) {
    const long q = std::lrintf(x[i] * inv);
    out[i] = static_cast<int8_t>(std::clamp<long>(q, -127, 127));
  }
}

Int8Panels PackInt8(const float* b, int64_t k, int64_t n) {
  Int8Panels out;
  out.k = k;
  out.n = n;
  if (k <= 0 || n <= 0) return out;
  out.params = CalibrateSymmetric(b, k * n);
  std::vector<int8_t> q(static_cast<size_t>(k * n));
  QuantizeSymmetric(b, k * n, out.params, q.data());
  const int64_t kpad = RoundUp(k, 2);
  const int64_t npad = RoundUp(n, kGemmPanelWidth);
  out.data.assign(static_cast<size_t>(npad * kpad), 0);
  for (int64_t j0 = 0; j0 < n; j0 += kGemmPanelWidth) {
    int8_t* panel = out.data.data() + j0 * kpad;
    const int64_t nr = std::min<int64_t>(kGemmPanelWidth, n - j0);
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t jj = 0; jj < nr; ++jj) {
        panel[(p / 2) * 2 * kGemmPanelWidth + jj * 2 + (p & 1)] =
            q[p * n + j0 + jj];
      }
    }
  }
  return out;
}

void GemmInt8(const int8_t* aq, const QuantParams& a_params,
              const Int8Panels& b, float* c, int64_t m) {
  const int64_t k = b.k;
  const int64_t n = b.n;
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    return;
  }
  const float combined = a_params.scale * b.params.scale;
  CountBackend("gemm.backend.int8.calls", "gemm.backend.int8.bytes",
               m * k + static_cast<int64_t>(b.data.size()) + m * n * 4);
  if (UseParallel(m, k, n)) {
    ParallelForRange(0, m, RowGrain(k, n), [&](int64_t lo, int64_t hi) {
      Int8Rows(aq + lo * k, b.data.data(), combined, c + lo * n, n, hi - lo, k,
               n);
    });
  } else {
    Int8Rows(aq, b.data.data(), combined, c, n, m, k, n);
  }
}

void GemmInt8FromFloat(const float* a, const QuantParams& a_params,
                       const Int8Panels& b, float* c, int64_t m) {
  const int64_t k = b.k;
  if (m <= 0 || b.n <= 0) return;
  if (k <= 0) {
    std::memset(c, 0, static_cast<size_t>(m * b.n) * sizeof(float));
    return;
  }
  std::vector<int8_t> aq(static_cast<size_t>(m * k));
  QuantizeSymmetric(a, m * k, a_params, aq.data());
  GemmInt8(aq.data(), a_params, b, c, m);
}

namespace internal {

void SetSimdEnabledForTest(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}
bool SimdEnabledForTest() {
  return g_simd_enabled.load(std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace quant
}  // namespace kt
