// Free functions over Tensor: broadcast arithmetic, activations, matrix
// products, reductions, and softmax. These are the forward kernels the
// autograd layer builds on.
#ifndef KT_TENSOR_TENSOR_OPS_H_
#define KT_TENSOR_TENSOR_OPS_H_

#include <functional>

#include "tensor/tensor.h"

namespace kt {

// ---- Broadcasting ----
// Returns the broadcast result shape of `a` and `b` under NumPy rules, or
// aborts if they are incompatible.
Shape BroadcastShape(const Shape& a, const Shape& b);
// True if a tensor of shape `from` broadcasts to exactly `to`.
bool BroadcastsTo(const Shape& from, const Shape& to);
// Sums `t` down to `target` shape (the adjoint of broadcasting). Requires
// BroadcastsTo(target, t.shape()).
Tensor ReduceToShape(const Tensor& t, const Shape& target);

// ---- Elementwise binary (broadcasting) ----
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);
// 1.0 where a >= b else 0.0 (broadcasting).
Tensor GreaterEqualMask(const Tensor& a, const Tensor& b);

// Scalar forms.
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// ---- Elementwise unary ----
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Abs(const Tensor& a);
// Generic pointwise map (not differentiable; for tests/tools).
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

// ---- Matrix products ----
// 2-D matmul: [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// Batched matmul: [..., m, k] x [..., k, n] -> [..., m, n]; leading batch
// dims must match exactly.
Tensor BatchMatMul(const Tensor& a, const Tensor& b);

// ---- Reductions ----
// Sum of all elements -> rank-0 scalar.
Tensor SumAll(const Tensor& a);
Tensor MeanAll(const Tensor& a);
// Sum along dimension `d`; result drops that dim unless keepdim.
Tensor Sum(const Tensor& a, int64_t d, bool keepdim = false);
Tensor Mean(const Tensor& a, int64_t d, bool keepdim = false);
// Max along the last dimension; returns values (and indices if non-null).
Tensor MaxLastDim(const Tensor& a, std::vector<int64_t>* argmax = nullptr);

// ---- Softmax ----
// Numerically stable softmax along the last dimension.
Tensor SoftmaxLastDim(const Tensor& a);

}  // namespace kt

#endif  // KT_TENSOR_TENSOR_OPS_H_
