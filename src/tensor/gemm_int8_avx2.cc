// AVX2 build of the int8 symmetric GEMM row sweep (see tensor/quant.h for
// the k-pair-interleaved panel layout). Compiled -mavx2 (CMakeLists.txt) —
// no FMA needed: the multiply-accumulate is vpmaddwd.
//
// Per k-pair and 8-column panel, one vpmaddwd computes
//   acc[j] += b[2p][j] * a[2p] + b[2p+1][j] * a[2p+1]
// with the (a0, a1) int16 pair pre-packed into a broadcast word per row.
// Saturation safety: |a*b| <= 127*127, so each int16-pair sum is at most
// 32258 — far inside int16-product/int32 range — and the int32 accumulator
// cannot overflow until k ~ 66k, far above any model dimension here.
// Integer accumulation is exact, so the result matches the portable kernel
// bit for bit; the only rounding is the cvtepi32_ps + one multiply
// epilogue, identical (round-to-nearest-even) in both.
#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "tensor/gemm_kernels.h"
#include "tensor/quant_kernels.h"

namespace kt {
namespace quant {
namespace internal {
namespace {

constexpr int kMR = 4;  // rows per block (acc + broadcast regs stay in ymm)
constexpr int kNR = ::kt::internal::kGemmPanelWidth;

}  // namespace

void GemmInt8RowsAvx2(const int8_t* aq, const int8_t* panels,
                      float combined_scale, float* c, int64_t ldc, int64_t m,
                      int64_t k, int64_t n, int32_t* row_words) {
  const int64_t kpairs = (k + 1) / 2;
  const int64_t kpad = kpairs * 2;
  const __m256 scale = _mm256_set1_ps(combined_scale);
  for (int64_t i0 = 0; i0 < m; i0 += kMR) {
    const int64_t mr = std::min<int64_t>(kMR, m - i0);
    for (int64_t r = 0; r < mr; ++r) {
      const int8_t* a_row = aq + (i0 + r) * k;
      int32_t* words = row_words + r * kpairs;
      for (int64_t p2 = 0; p2 < kpairs; ++p2) {
        const uint32_t a0 = static_cast<uint16_t>(a_row[2 * p2]);
        const uint32_t a1 = static_cast<uint16_t>(
            2 * p2 + 1 < k ? a_row[2 * p2 + 1] : int8_t{0});
        words[p2] = static_cast<int32_t>(a0 | (a1 << 16));
      }
    }
    for (int64_t j0 = 0; j0 < n; j0 += kNR) {
      const int8_t* panel = panels + j0 * kpad;
      __m256i acc[kMR];
      for (int64_t r = 0; r < mr; ++r) acc[r] = _mm256_setzero_si256();
      for (int64_t p2 = 0; p2 < kpairs; ++p2) {
        const __m128i b8 = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(panel + p2 * 2 * kNR));
        const __m256i b16 = _mm256_cvtepi8_epi16(b8);
        for (int64_t r = 0; r < mr; ++r) {
          const __m256i w = _mm256_set1_epi32(row_words[r * kpairs + p2]);
          acc[r] = _mm256_add_epi32(acc[r], _mm256_madd_epi16(b16, w));
        }
      }
      const int64_t nr = std::min<int64_t>(kNR, n - j0);
      for (int64_t r = 0; r < mr; ++r) {
        const __m256 fp = _mm256_mul_ps(_mm256_cvtepi32_ps(acc[r]), scale);
        float* c_row = c + (i0 + r) * ldc + j0;
        if (nr == kNR) {
          _mm256_storeu_ps(c_row, fp);
        } else {
          float tmp[kNR];
          _mm256_storeu_ps(tmp, fp);
          for (int64_t jj = 0; jj < nr; ++jj) c_row[jj] = tmp[jj];
        }
      }
    }
  }
}

}  // namespace internal
}  // namespace quant
}  // namespace kt
