#include "tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>

namespace kt {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    KT_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor() : Tensor(Shape{}) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(NumElements(shape_)),
      data_(std::make_shared<std::vector<float>>(
          static_cast<size_t>(numel_), 0.0f)) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(NumElements(shape_)) {
  KT_CHECK_EQ(numel_, static_cast<int64_t>(values.size()))
      << "shape " << ShapeToString(shape_) << " vs " << values.size()
      << " values";
  data_ = std::make_shared<std::vector<float>>(std::move(values));
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape{}};
  t.flat(0) = value;
  return t;
}

Tensor Tensor::Uniform(Shape shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i)
    t.flat(i) = static_cast<float>(rng.Uniform(lo, hi));
  return t;
}

Tensor Tensor::Randn(Shape shape, float mean, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i)
    t.flat(i) = static_cast<float>(rng.Gaussian(mean, stddev));
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t(Shape{n});
  for (int64_t i = 0; i < n; ++i) t.flat(i) = static_cast<float>(i);
  return t;
}

int64_t Tensor::size(int64_t d) const {
  if (d < 0) d += dim();
  KT_CHECK(d >= 0 && d < dim()) << "dim " << d << " of " << ShapeToString(shape_);
  return shape_[static_cast<size_t>(d)];
}

// The two `at` overloads share index math via this helper.
namespace {
int64_t FlatIndex(const Shape& shape, std::initializer_list<int64_t> idx) {
  KT_CHECK_EQ(static_cast<int64_t>(idx.size()),
              static_cast<int64_t>(shape.size()));
  int64_t flat = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    KT_DCHECK(i >= 0 && i < shape[d]);
    flat = flat * shape[d] + i;
    ++d;
  }
  return flat;
}
}  // namespace

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return flat(FlatIndex(shape_, idx));
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return flat(FlatIndex(shape_, idx));
}

float Tensor::item() const {
  KT_CHECK_EQ(numel_, 1);
  return flat(0);
}

Tensor Tensor::Reshape(Shape new_shape) const {
  // Resolve a single -1 dimension.
  int64_t known = 1;
  int infer = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      KT_CHECK_EQ(infer, -1) << "at most one -1 dimension";
      infer = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer >= 0) {
    KT_CHECK_GT(known, 0);
    KT_CHECK_EQ(numel_ % known, 0);
    new_shape[static_cast<size_t>(infer)] = numel_ / known;
  }
  KT_CHECK_EQ(NumElements(new_shape), numel_)
      << ShapeToString(shape_) << " -> " << ShapeToString(new_shape);
  Tensor out = *this;  // shares data
  out.shape_ = std::move(new_shape);
  return out;
}

Tensor Tensor::Clone() const {
  Tensor out(shape_);
  std::memcpy(out.data(), data(), sizeof(float) * static_cast<size_t>(numel_));
  return out;
}

Tensor Tensor::TransposeLast2() const {
  KT_CHECK_GE(dim(), 2);
  const int64_t rows = shape_[shape_.size() - 2];
  const int64_t cols = shape_[shape_.size() - 1];
  const int64_t batch = numel_ / (rows * cols);
  Shape out_shape = shape_;
  std::swap(out_shape[out_shape.size() - 2], out_shape[out_shape.size() - 1]);
  Tensor out(out_shape);
  const float* src = data();
  float* dst = out.data();
  for (int64_t b = 0; b < batch; ++b) {
    const float* s = src + b * rows * cols;
    float* d = dst + b * rows * cols;
    for (int64_t r = 0; r < rows; ++r)
      for (int64_t c = 0; c < cols; ++c) d[c * rows + r] = s[r * cols + c];
  }
  return out;
}

Tensor Tensor::Slice(int64_t d, int64_t start, int64_t end) const {
  if (d < 0) d += dim();
  KT_CHECK(d >= 0 && d < dim());
  const int64_t dim_size = shape_[static_cast<size_t>(d)];
  KT_CHECK(start >= 0 && start <= end && end <= dim_size)
      << "slice [" << start << ", " << end << ") of dim size " << dim_size;

  Shape out_shape = shape_;
  out_shape[static_cast<size_t>(d)] = end - start;
  Tensor out(out_shape);

  // View the tensor as [outer, dim_size, inner] and copy contiguous spans.
  int64_t outer = 1;
  for (int64_t i = 0; i < d; ++i) outer *= shape_[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (int64_t i = d + 1; i < dim(); ++i) inner *= shape_[static_cast<size_t>(i)];

  const int64_t span = (end - start) * inner;
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = data() + (o * dim_size + start) * inner;
    float* dst = out.data() + o * span;
    std::memcpy(dst, src, sizeof(float) * static_cast<size_t>(span));
  }
  return out;
}

Tensor Tensor::Concat(const std::vector<Tensor>& tensors, int64_t d) {
  KT_CHECK(!tensors.empty());
  const Tensor& first = tensors.front();
  int64_t axis = d < 0 ? d + first.dim() : d;
  KT_CHECK(axis >= 0 && axis < first.dim());

  int64_t total = 0;
  for (const Tensor& t : tensors) {
    KT_CHECK_EQ(t.dim(), first.dim());
    for (int64_t i = 0; i < first.dim(); ++i) {
      if (i != axis) KT_CHECK_EQ(t.size(i), first.size(i));
    }
    total += t.size(axis);
  }

  Shape out_shape = first.shape();
  out_shape[static_cast<size_t>(axis)] = total;
  Tensor out(out_shape);

  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= first.size(i);
  int64_t inner = 1;
  for (int64_t i = axis + 1; i < first.dim(); ++i) inner *= first.size(i);

  int64_t dst_offset = 0;  // running offset (in elements) within one outer row
  for (const Tensor& t : tensors) {
    const int64_t span = t.size(axis) * inner;
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = t.data() + o * span;
      float* dst = out.data() + o * total * inner + dst_offset;
      std::memcpy(dst, src, sizeof(float) * static_cast<size_t>(span));
    }
    dst_offset += span;
  }
  return out;
}

Tensor Tensor::IndexSelectRows(const Tensor& table,
                               const std::vector<int64_t>& indices) {
  KT_CHECK_EQ(table.dim(), 2);
  const int64_t rows = table.size(0);
  const int64_t cols = table.size(1);
  Tensor out(Shape{static_cast<int64_t>(indices.size()), cols});
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t r = indices[i];
    KT_CHECK(r >= 0 && r < rows) << "index " << r << " out of " << rows;
    std::memcpy(out.data() + static_cast<int64_t>(i) * cols,
                table.data() + r * cols,
                sizeof(float) * static_cast<size_t>(cols));
  }
  return out;
}

void Tensor::Fill(float value) {
  for (int64_t i = 0; i < numel_; ++i) flat(i) = value;
}

void Tensor::AddInPlace(const Tensor& other) {
  KT_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  const float* src = other.data();
  float* dst = data();
  for (int64_t i = 0; i < numel_; ++i) dst[i] += src[i];
}

void Tensor::MulInPlace(float scalar) {
  float* dst = data();
  for (int64_t i = 0; i < numel_; ++i) dst[i] *= scalar;
}

bool Tensor::AllClose(const Tensor& other, float rtol, float atol) const {
  if (!SameShape(other)) return false;
  for (int64_t i = 0; i < numel_; ++i) {
    const float a = flat(i);
    const float b = other.flat(i);
    if (std::isnan(a) || std::isnan(b)) return false;
    if (std::fabs(a - b) > atol + rtol * std::fabs(b)) return false;
  }
  return true;
}

std::string Tensor::ToString(int64_t max_per_dim) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << " {";
  const int64_t n = std::min<int64_t>(numel_, max_per_dim * 4);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << flat(i);
  }
  if (n < numel_) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace kt
