// Dense float32 tensor with row-major contiguous storage.
//
// This is the numeric substrate under the autograd engine and every model in
// the repository. Design choices, deliberately simple for a CPU research
// library:
//   * storage is always contiguous row-major; slicing copies (no views),
//   * shapes are std::vector<int64_t>; a scalar is rank-0 with one element,
//   * data is shared via shared_ptr so Tensor is cheap to copy by value;
//     mutation through data() affects all copies (autograd relies on this
//     for in-place gradient accumulation).
#ifndef KT_TENSOR_TENSOR_H_
#define KT_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/rng.h"

namespace kt {

using Shape = std::vector<int64_t>;

// Number of elements implied by `shape`.
int64_t NumElements(const Shape& shape);
// Human-readable "[2, 3]".
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  // Rank-0 scalar holding 0.
  Tensor();
  // Zero-initialized tensor of `shape`.
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> values);

  // ---- Factories ----
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value);
  // Uniform in [lo, hi).
  static Tensor Uniform(Shape shape, float lo, float hi, Rng& rng);
  // Gaussian(mean, stddev).
  static Tensor Randn(Shape shape, float mean, float stddev, Rng& rng);
  // 1-D tensor [0, 1, ..., n-1].
  static Tensor Arange(int64_t n);

  // ---- Introspection ----
  const Shape& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t d) const;
  int64_t numel() const { return numel_; }

  float* data() { return data_->data(); }
  const float* data() const { return data_->data(); }

  // Element access for rank <= 4 convenience; bounds-checked in debug.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;
  // Flat access.
  float& flat(int64_t i) {
    KT_DCHECK(i >= 0 && i < numel_);
    return (*data_)[static_cast<size_t>(i)];
  }
  float flat(int64_t i) const {
    KT_DCHECK(i >= 0 && i < numel_);
    return (*data_)[static_cast<size_t>(i)];
  }
  // Scalar value; requires numel() == 1.
  float item() const;

  // ---- Shape manipulation (Reshape shares storage; others copy) ----
  // Requires the same number of elements. One dimension may be -1 (inferred).
  Tensor Reshape(Shape new_shape) const;
  // Deep copy.
  Tensor Clone() const;
  // Swaps the last two dimensions (copying). Requires dim() >= 2.
  Tensor TransposeLast2() const;
  // Copies rows `start`..`end` (exclusive) along dimension `d`.
  Tensor Slice(int64_t d, int64_t start, int64_t end) const;
  // Concatenates along dimension `d`. All inputs must agree elsewhere.
  static Tensor Concat(const std::vector<Tensor>& tensors, int64_t d);
  // Gathers rows of a 2-D table: result[i, :] = table[indices[i], :].
  // `indices` values must be in [0, table.size(0)).
  static Tensor IndexSelectRows(const Tensor& table,
                                const std::vector<int64_t>& indices);

  // ---- Mutation helpers ----
  void Fill(float value);
  // this += other (same shape).
  void AddInPlace(const Tensor& other);
  void MulInPlace(float scalar);

  // ---- Comparison / debugging ----
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }
  // Max |a-b| <= atol + rtol*|b| elementwise.
  bool AllClose(const Tensor& other, float rtol = 1e-5f,
                float atol = 1e-6f) const;
  std::string ToString(int64_t max_per_dim = 8) const;

 private:
  Shape shape_;
  int64_t numel_ = 1;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace kt

#endif  // KT_TENSOR_TENSOR_H_
