// kt::quant — low-precision storage GEMM families for the serve hot path.
//
// Two families, both with pre-packed weight panels (the weight matrix of a
// serving model is packed ONCE at load, so serving pays only the A-side
// work per request, where the fp32 path re-packs B on every call):
//
//   * bf16 storage: packed B panels hold bfloat16 (round-to-nearest-even
//     truncation of fp32), halving weight bytes moved per GEMM;
//     accumulation is fp32 via fused multiply-add. Error per element is
//     bounded by the bf16 relative step (2^-8) times the accumulated
//     magnitude — see GemmBf16's bound below.
//   * int8 symmetric: per-tensor symmetric calibration (scale =
//     maxabs/127, no zero point), int8 storage for both operands, exact
//     int32 accumulation, and a dequantize-fused epilogue (one multiply by
//     scale_a * scale_b per output). Activations are quantized per call
//     against a FIXED calibrated scale (static quantization: the serve
//     engine calibrates from a sample batch at model load).
//
// Determinism contract: within a family, results are bit-identical across
// ISAs and thread counts. The int8 family accumulates in exact integer
// arithmetic (order-independent) with a single fp multiply epilogue; the
// bf16 family runs one ascending-k fma chain per output element, which the
// AVX2+FMA micro kernel and the scalar fmaf fallback replay identically.
// Neither family is bit-identical to the fp32 reference chain — they are
// gated by accuracy parity (scripts/check_precision.sh), not bitwise
// parity.
#ifndef KT_TENSOR_QUANT_H_
#define KT_TENSOR_QUANT_H_

#include <cstdint>
#include <vector>

namespace kt {
namespace quant {

// ---------------------------------------------------------------------------
// bfloat16 scalar conversions
// ---------------------------------------------------------------------------

// Round-to-nearest-even truncation of the fp32 bit pattern.
uint16_t Bf16FromFloat(float f);
float FloatFromBf16(uint16_t h);

// ---------------------------------------------------------------------------
// bf16-storage GEMM
// ---------------------------------------------------------------------------

// B [k, n] packed into 8-wide column panels of bf16, column-padded to a
// multiple of 8 so the micro kernel has a single full-width path. Panel j0
// (j0 a multiple of 8) lives at data[j0 * k] and holds 8 bf16 per k step.
struct Bf16Panels {
  int64_t k = 0;
  int64_t n = 0;  // logical columns (padding is internal)
  std::vector<uint16_t> data;
};

Bf16Panels PackBf16(const float* b, int64_t k, int64_t n);

// C = A * B with A [m, k] fp32 row-major, C [m, n] fp32 row-major
// (overwritten). Per element: one ascending-k chain of
// fma(a, widen(bf16), acc) accumulated from zero. Error bound per element:
//   |C - C_fp32| <= k * max|a| * max|b| * 2^-8 * (1 + o(1)),
// asserted (with slack) by the property tests. Row-parallel across the
// kt::parallel pool above the same flop threshold as the fp32 family;
// bit-identical for every thread count.
void GemmBf16(const float* a, const Bf16Panels& b, float* c, int64_t m);

// ---------------------------------------------------------------------------
// int8 symmetric quantization
// ---------------------------------------------------------------------------

// Per-tensor symmetric scale: dequant(q) = q * scale.
struct QuantParams {
  float scale = 1.0f;
};

// scale = maxabs(x)/127 (1.0 for an all-zero or empty tensor, so
// quantization stays well-defined).
QuantParams CalibrateSymmetric(const float* x, int64_t n);

// q = clamp(round-to-nearest(x / scale), -127, 127). Values beyond the
// calibrated range saturate.
void QuantizeSymmetric(const float* x, int64_t n, const QuantParams& params,
                       int8_t* out);

// B [k, n] quantized per-tensor and packed into 8-wide column panels with
// k-pairs interleaved for the AVX2 vpmaddwd kernel: panel j0 stores, per
// k-pair p2, the 16 bytes  b[2p2][j0..j0+7] / b[2p2+1][j0..j0+7]
// interleaved as (col, pair) bytes. Odd k pads the last pair with zeros;
// columns pad to a multiple of 8. The portable kernel consumes the same
// layout.
struct Int8Panels {
  int64_t k = 0;
  int64_t n = 0;
  QuantParams params;
  std::vector<int8_t> data;
};

// Calibrates scale from B itself (per-tensor symmetric), quantizes once,
// packs. This is the model-load-time step for serve weights.
Int8Panels PackInt8(const float* b, int64_t k, int64_t n);

// C = (Aq * Bq) * (a_params.scale * b.params.scale): exact int32
// accumulation, dequantize-fused epilogue (one multiply per output).
// aq is [m, k] row-major int8. Bit-identical across ISAs and thread
// counts (integer accumulation is exact; the epilogue is one rounding).
void GemmInt8(const int8_t* aq, const QuantParams& a_params,
              const Int8Panels& b, float* c, int64_t m);

// Convenience for the serve head: quantizes each A row against the fixed
// calibrated activation params, then GemmInt8.
void GemmInt8FromFloat(const float* a, const QuantParams& a_params,
                       const Int8Panels& b, float* c, int64_t m);

namespace internal {
// Test hook: force the portable kernels even when the CPU has the SIMD
// fast path, so tests can assert portable == SIMD bit for bit.
void SetSimdEnabledForTest(bool enabled);
bool SimdEnabledForTest();
}  // namespace internal

}  // namespace quant
}  // namespace kt

#endif  // KT_TENSOR_QUANT_H_
