// Internal interface between the low-precision dispatchers (quant.cc) and
// their ISA-specific translation units. Not part of the public API (use
// tensor/quant.h).
//
// Both kernels consume panels padded to a multiple of kGemmPanelWidth
// columns (see quant.h for the exact layouts), so they have a single
// full-width inner path; only C stores honor the logical n.
#ifndef KT_TENSOR_QUANT_KERNELS_H_
#define KT_TENSOR_QUANT_KERNELS_H_

#include <cstdint>

namespace kt {
namespace quant {
namespace internal {

#ifdef KT_HAVE_AVX2_FMA_KERNEL
// bf16-storage row sweep (gemm_bf16_avx2.cc, compiled -mavx2 -mfma): widen
// 8 bf16 lanes by a 16-bit shift, then one vfmadd per (row, k). Matches
// the portable fmaf chain bit for bit. Call only if cpu avx2 && fma.
void GemmBf16RowsAvx2(const float* a, const uint16_t* panels, float* c,
                      int64_t ldc, int64_t m, int64_t k, int64_t n);
#endif

#ifdef KT_HAVE_AVX2_KERNEL
// int8 row sweep (gemm_int8_avx2.cc, compiled -mavx2): vpmaddwd over
// k-pair-interleaved panels with per-row precomputed (a0, a1) broadcast
// words, int32 accumulate, dequant epilogue multiply by combined_scale.
// Integer accumulation is exact, so this matches the portable kernel bit
// for bit. `row_words` is scratch of ceil(k/2) int32 per call (caller
// provides so the kernel stays allocation-free). Call only if cpu avx2.
void GemmInt8RowsAvx2(const int8_t* aq, const int8_t* panels,
                      float combined_scale, float* c, int64_t ldc, int64_t m,
                      int64_t k, int64_t n, int32_t* row_words);
#endif

}  // namespace internal
}  // namespace quant
}  // namespace kt

#endif  // KT_TENSOR_QUANT_KERNELS_H_
