// Tests for the serve-path precision policy (serve/lowp_head.h and the
// InferenceEngine --precision plumbing).
//
// The policy under test: below fp32, ONLY the predict MLP head changes.
// Session state, updates, and replay stay bitwise fp32, so a low-precision
// engine's predictions track an fp32 engine within the head's error bound
// while its internal state never diverges at all. int8 additionally
// requires static activation calibration and must fall back to fp32
// predictions until it has it.
#include "serve/lowp_head.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/simulator.h"
#include "nn/linear.h"
#include "rckt/rckt_model.h"
#include "serve/engine.h"

namespace kt {
namespace serve {
namespace {

uint32_t Bits(float f) {
  uint32_t u = 0;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

data::Dataset TinyDataset() {
  data::SimulatorConfig config;
  config.num_students = 10;
  config.num_questions = 25;
  config.num_concepts = 4;
  config.min_responses = 10;
  config.max_responses = 16;
  config.seed = 17;
  data::StudentSimulator sim(config);
  return sim.Generate();
}

rckt::RcktConfig SmallConfig() {
  rckt::RcktConfig config;
  config.encoder = rckt::EncoderKind::kDKT;
  config.dim = 16;
  config.num_layers = 1;
  config.dropout = 0.0f;
  config.seed = 4;
  return config;
}

TEST(PrecisionNameTest, ParsesAndRejects) {
  Precision p = Precision::kFp32;
  EXPECT_TRUE(PrecisionByName("bf16", &p));
  EXPECT_EQ(p, Precision::kBf16);
  EXPECT_TRUE(PrecisionByName("int8", &p));
  EXPECT_EQ(p, Precision::kInt8);
  EXPECT_TRUE(PrecisionByName("fp32", &p));
  EXPECT_EQ(p, Precision::kFp32);
  EXPECT_FALSE(PrecisionByName("fp16", &p));
  EXPECT_FALSE(PrecisionByName("", &p));
  EXPECT_STREQ(PrecisionName(Precision::kBf16), "bf16");
}

// Reference fp32 head: x [m, 2d] -> relu(x W1 + b1) -> sigmoid(. W2 + b2),
// the same formulas ExecutePredict runs through the autograd path.
std::vector<float> Fp32Head(const nn::Linear& hidden, const nn::Linear& out,
                            const Tensor& x) {
  const int64_t m = x.size(0), in = x.size(1);
  const int64_t mid = hidden.out_features();
  const Tensor& w1 = hidden.weight().value();
  const Tensor& w2 = out.weight().value();
  std::vector<float> h(static_cast<size_t>(m * mid), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < mid; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < in; ++p) {
        acc += x.flat(i * in + p) * w1.flat(p * mid + j);
      }
      acc += hidden.bias().value().flat(j);
      h[static_cast<size_t>(i * mid + j)] = acc > 0.0f ? acc : 0.0f;
    }
  }
  std::vector<float> probs(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    float acc = 0.0f;
    for (int64_t j = 0; j < mid; ++j) {
      acc += h[static_cast<size_t>(i * mid + j)] * w2.flat(j);
    }
    acc += out.bias().value().flat(0);
    probs[static_cast<size_t>(i)] = 1.0f / (1.0f + std::exp(-acc));
  }
  return probs;
}

class LowpHeadTest : public ::testing::Test {
 protected:
  LowpHeadTest() : rng_(7), hidden_(2 * kDim, kDim, rng_), out_(kDim, 1, rng_) {}

  Tensor SampleX(int64_t rows) {
    Tensor x({rows, 2 * kDim});
    for (int64_t i = 0; i < x.numel(); ++i) {
      x.flat(i) = static_cast<float>(rng_.Uniform(-2.0, 2.0));
    }
    return x;
  }

  static constexpr int64_t kDim = 16;
  Rng rng_;
  nn::Linear hidden_;
  nn::Linear out_;
};

TEST_F(LowpHeadTest, Bf16ForwardTracksFp32) {
  LowpHead head(Precision::kBf16, hidden_, out_);
  EXPECT_TRUE(head.calibrated());  // bf16 needs no calibration
  for (int64_t rows : {1, 3, 16}) {
    const Tensor x = SampleX(rows);
    std::vector<float> probs(static_cast<size_t>(rows));
    head.Forward(x, probs.data());
    const std::vector<float> ref = Fp32Head(hidden_, out_, x);
    for (int64_t i = 0; i < rows; ++i) {
      // Sigmoid has slope <= 1/4, so logit error passes through damped;
      // 1e-2 is ~25x slack over the observed bf16 head error.
      EXPECT_NEAR(probs[static_cast<size_t>(i)],
                  ref[static_cast<size_t>(i)], 1e-2);
      EXPECT_GE(probs[static_cast<size_t>(i)], 0.0f);
      EXPECT_LE(probs[static_cast<size_t>(i)], 1.0f);
    }
  }
}

TEST_F(LowpHeadTest, Int8ForwardTracksFp32AfterCalibration) {
  LowpHead head(Precision::kInt8, hidden_, out_);
  EXPECT_FALSE(head.calibrated());  // needs activation scales first
  head.CalibrateInt8(SampleX(64));
  ASSERT_TRUE(head.calibrated());
  EXPECT_GT(head.x_scale(), 0.0f);
  EXPECT_GT(head.hidden_scale(), 0.0f);
  for (int64_t rows : {1, 5, 16}) {
    const Tensor x = SampleX(rows);
    std::vector<float> probs(static_cast<size_t>(rows));
    head.Forward(x, probs.data());
    const std::vector<float> ref = Fp32Head(hidden_, out_, x);
    for (int64_t i = 0; i < rows; ++i) {
      EXPECT_NEAR(probs[static_cast<size_t>(i)],
                  ref[static_cast<size_t>(i)], 5e-2);
    }
  }
}

TEST_F(LowpHeadTest, ForwardIsDeterministic) {
  LowpHead head(Precision::kBf16, hidden_, out_);
  const Tensor x = SampleX(8);
  std::vector<float> first(8), second(8);
  head.Forward(x, first.data());
  head.Forward(x, second.data());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(Bits(first[i]), Bits(second[i]));
  }
}

// ---- engine-level policy ----

struct EnginePair {
  EnginePair(rckt::RCKT& model, const data::Dataset& ds,
             Precision precision)
      : fp32_options(), lowp_options() {
    fp32_options.num_questions = ds.num_questions;
    fp32_options.num_concepts = ds.num_concepts;
    lowp_options = fp32_options;
    lowp_options.precision = precision;
    fp32 = std::make_unique<InferenceEngine>(model, fp32_options);
    lowp = std::make_unique<InferenceEngine>(model, lowp_options);
  }

  EngineOptions fp32_options, lowp_options;
  std::unique_ptr<InferenceEngine> fp32, lowp;
};

// Drives both engines through one student's history; returns the pairs of
// (fp32, lowp) predictions at every step with at least two turns of
// history.
std::vector<std::pair<float, float>> DrivePair(
    EnginePair& pair, const data::ResponseSequence& seq) {
  std::vector<std::pair<float, float>> pairs;
  for (int64_t t = 0; t < seq.length(); ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    if (t >= 2) {
      ServeRequest predict;
      predict.op = Op::kPredict;
      predict.student = "s0";
      predict.question = it.question;
      predict.has_concepts = true;
      predict.concepts = it.concepts;
      const ServeResponse a = pair.fp32->Execute(predict);
      const ServeResponse b = pair.lowp->Execute(predict);
      EXPECT_TRUE(a.ok) << a.error;
      EXPECT_TRUE(b.ok) << b.error;
      pairs.emplace_back(a.p, b.p);
    }
    ServeRequest update;
    update.op = Op::kUpdate;
    update.student = "s0";
    update.question = it.question;
    update.response = it.response;
    update.has_concepts = true;
    update.concepts = it.concepts;
    EXPECT_TRUE(pair.fp32->Execute(update).ok);
    EXPECT_TRUE(pair.lowp->Execute(update).ok);
  }
  return pairs;
}

TEST(EnginePrecisionTest, Bf16PredictsTrackFp32) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig());
  EnginePair pair(model, ds, Precision::kBf16);
  EXPECT_TRUE(pair.lowp->lowp_active());
  EXPECT_EQ(pair.lowp->precision(), Precision::kBf16);
  for (const auto& [fp32_p, lowp_p] : DrivePair(pair, ds.sequences[0])) {
    EXPECT_NEAR(lowp_p, fp32_p, 1e-2);
  }
}

TEST(EnginePrecisionTest, Int8FallsBackToFp32UntilCalibrated) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig());
  EnginePair pair(model, ds, Precision::kInt8);
  // No CalibrateLowp yet: the int8 head has no activation scales, so
  // predictions are served on the fp32 path — bitwise identical.
  EXPECT_FALSE(pair.lowp->lowp_active());
  for (const auto& [fp32_p, lowp_p] : DrivePair(pair, ds.sequences[0])) {
    EXPECT_EQ(Bits(lowp_p), Bits(fp32_p));
  }
}

TEST(EnginePrecisionTest, Int8PredictsTrackFp32AfterCalibrateLowp) {
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig());
  EnginePair pair(model, ds, Precision::kInt8);
  pair.lowp->CalibrateLowp(ds);
  ASSERT_TRUE(pair.lowp->lowp_active());
  for (const auto& [fp32_p, lowp_p] : DrivePair(pair, ds.sequences[1])) {
    EXPECT_NEAR(lowp_p, fp32_p, 5e-2);
  }
}

TEST(EnginePrecisionTest, CalibrationIsDeterministic) {
  // Two engines calibrated from the same dataset land on identical scales
  // (the shard-invariance requirement: every shard calibrates itself).
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig());
  EngineOptions options;
  options.num_questions = ds.num_questions;
  options.num_concepts = ds.num_concepts;
  options.precision = Precision::kInt8;
  InferenceEngine first(model, options);
  InferenceEngine second(model, options);
  first.CalibrateLowp(ds);
  second.CalibrateLowp(ds);
  ASSERT_TRUE(first.lowp_active());
  ASSERT_TRUE(second.lowp_active());

  // Identical scales => identical predictions, bit for bit.
  const auto& seq = ds.sequences[2];
  for (int64_t t = 0; t < seq.length(); ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    if (t >= 2) {
      ServeRequest predict;
      predict.op = Op::kPredict;
      predict.student = "s0";
      predict.question = it.question;
      predict.has_concepts = true;
      predict.concepts = it.concepts;
      const ServeResponse a = first.Execute(predict);
      const ServeResponse b = second.Execute(predict);
      ASSERT_TRUE(a.ok && b.ok);
      EXPECT_EQ(Bits(a.p), Bits(b.p)) << "t=" << t;
    }
    ServeRequest update;
    update.op = Op::kUpdate;
    update.student = "s0";
    update.question = it.question;
    update.response = it.response;
    update.has_concepts = true;
    update.concepts = it.concepts;
    ASSERT_TRUE(first.Execute(update).ok);
    ASSERT_TRUE(second.Execute(update).ok);
  }
}

TEST(EnginePrecisionTest, ExplainStaysOnFp32Path) {
  // Explanations replay counterfactuals through the full model; the
  // precision policy must leave them bitwise identical to an fp32 engine.
  data::Dataset ds = TinyDataset();
  rckt::RCKT model(ds.num_questions, ds.num_concepts, SmallConfig());
  EnginePair pair(model, ds, Precision::kBf16);
  const auto& seq = ds.sequences[0];
  for (int64_t t = 0; t < 6; ++t) {
    const auto& it = seq.interactions[static_cast<size_t>(t)];
    ServeRequest update;
    update.op = Op::kUpdate;
    update.student = "s0";
    update.question = it.question;
    update.response = it.response;
    update.has_concepts = true;
    update.concepts = it.concepts;
    ASSERT_TRUE(pair.fp32->Execute(update).ok);
    ASSERT_TRUE(pair.lowp->Execute(update).ok);
  }
  ServeRequest explain;
  explain.op = Op::kExplain;
  explain.student = "s0";
  explain.question = seq.interactions[6].question;
  explain.has_concepts = true;
  explain.concepts = seq.interactions[6].concepts;
  const ServeResponse a = pair.fp32->Execute(explain);
  const ServeResponse b = pair.lowp->Execute(explain);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(a.influence.size(), b.influence.size());
  for (size_t i = 0; i < a.influence.size(); ++i) {
    EXPECT_EQ(Bits(a.influence[i]), Bits(b.influence[i])) << "i=" << i;
  }
}

}  // namespace
}  // namespace serve
}  // namespace kt
